//! AIG optimization passes: `balance`, `rewrite`, `refactor` and the
//! `optimize` script combining them.
//!
//! These are from-scratch implementations of the ABC passes the paper runs
//! unmodified (§3.1.3, §4.1): DAG-aware cut rewriting (Mishchenko et al.,
//! DAC'06), reconvergence-driven refactoring, and AND-tree balancing. All
//! passes preserve the PI/PO/latch interface and are verified by CEC in the
//! test suites.
//!
//! # Parallel evaluate, sequential commit
//!
//! The resynthesis passes (`rewrite`, `rewrite_zero`, `refactor*`) are split
//! into two phases per batch of nodes:
//!
//! * **evaluate** — per candidate cut: the cut function, the MFFC size and
//!   the isolation-cost prefilter. These read only the *immutable input
//!   graph* (plus the finished cut lists), so the batch fans out across the
//!   [`xsfq_exec::ThreadPool`] with one [`CutScratch`] + [`Synthesizer`]
//!   arena per worker thread.
//! * **commit** — the sharing-aware gain measurement (speculative build +
//!   rollback against the growing output graph) and the winning rebuild.
//!   Commit order determines node ids and structural-hash sharing, so this
//!   phase runs single-threaded in ascending node-index order.
//!
//! Because every evaluate result is a pure function of `(input graph,
//! node)`, scheduling cannot change it, and the committed output is
//! **bit-identical for every thread count** — pinned by the
//! `parallel_identity` proptest and exercised both ways in CI
//! (`XSFQ_THREADS=1` and default).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::cuts::{self, Cut, CutArena, CutScratch};
use crate::pass::{PassCtx, PassRegistry, Script};
use crate::synth::Synthesizer;
use crate::tt::TruthTable;
use crate::{Aig, Lit, NodeId, NodeKind};
use xsfq_exec::{CancelToken, ThreadPool};

/// Remove dangling nodes (alias of [`Aig::compact`]).
pub fn cleanup(aig: &Aig) -> Aig {
    aig.compact()
}

/// Balance AND trees to reduce depth (ABC's `balance`).
///
/// Single-fanout chains of non-complemented ANDs are collected into
/// super-gates and rebuilt as level-minimal trees (combine the two
/// lowest-level operands first). Levels of the output graph are maintained
/// incrementally as nodes are created — one O(1) update per fresh AND —
/// instead of re-scanning the node table.
///
/// Like the resynthesis passes, `balance` follows the evaluate/commit mold:
/// super-gate leaf collection is a pure function of the input graph and fans
/// out across the executor, while the tree rebuild commits single-threaded
/// in node-index order — the output is bit-identical for every thread count
/// (gated by the `parallel_identity` suite).
pub fn balance(aig: &Aig) -> Aig {
    balance_with(aig, ThreadPool::global())
}

/// [`balance`] on an explicit executor pool.
pub fn balance_with(aig: &Aig, pool: &ThreadPool) -> Aig {
    balance_counted(aig, pool, &CancelToken::default()).0
}

/// [`balance_with`] that also reports how many multi-input super-gates were
/// rebuilt (the pass's commit counter). Checks `token` at every
/// evaluate-batch boundary; on cancellation the input graph is returned
/// unchanged (the caller discards cancelled results).
pub(crate) fn balance_counted(aig: &Aig, pool: &ThreadPool, token: &CancelToken) -> (Aig, u64) {
    let fanouts = aig.fanout_counts(true);
    let and_ids: Vec<u32> = (0..aig.num_nodes() as u32)
        .filter(|&i| aig.nodes()[i as usize].is_and())
        .collect();

    // An AND is *absorbed* when a parent super-gate expands through it
    // (the exact `collect_supergate` rule); its own rebuilt tree is dead,
    // so only non-absorbed roots count as committed super-gates.
    let mut absorbed = vec![false; aig.num_nodes()];
    for kind in aig.nodes() {
        let NodeKind::And { a, b } = *kind else {
            continue;
        };
        for f in [a, b] {
            if !f.is_complement() && aig.node(f.node()).is_and() && fanouts[f.node().index()] == 1 {
                absorbed[f.node().index()] = true;
            }
        }
    }

    // Commit: rebuild level-minimal trees single-threaded in node-index
    // order (tree shape depends on the mapped levels of the growing output
    // graph, which fixes node ids and strash state).
    let mut commits = 0u64;
    let mut out = Aig::new(aig.name().to_string());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    map_cis(aig, &mut out, &mut map);
    // `levels[i]` is the level of output node `i`; constants and CIs sit at
    // level 0, and `and_leveled` appends exactly when `out.and` allocates.
    let mut levels: Vec<u32> = vec![0; out.num_nodes()];
    let and_leveled = |out: &mut Aig, levels: &mut Vec<u32>, a: Lit, b: Lit| -> Lit {
        let r = out.and(a, b);
        if out.num_nodes() > levels.len() {
            debug_assert_eq!(out.num_nodes(), levels.len() + 1);
            let lv = 1 + levels[a.node().index()].max(levels[b.node().index()]);
            levels.push(lv);
        }
        r
    };

    // Evaluate in EVAL_BATCH waves (like the resynthesis passes) so the
    // pending leaf lists stay bounded — a chain of single-fanout ANDs
    // would otherwise hold O(n²) leaves live at once. Super-gate leaf
    // collection reads only the immutable input graph, so the batch fans
    // out across the pool and the boundary cannot change the result.
    for batch in and_ids.chunks(EVAL_BATCH) {
        // Evaluate-batch boundary: cancelled jobs abandon the rebuild.
        if token.is_cancelled() {
            return (aig.clone(), commits);
        }
        let leaves_per: Vec<Vec<Lit>> = pool.map_init(
            batch,
            || (),
            |_, _, &i| {
                let mut leaves = Vec::new();
                collect_supergate(
                    aig,
                    NodeId::from_index(i as usize),
                    &fanouts,
                    true,
                    &mut leaves,
                );
                leaves
            },
        );
        for (&i, leaves) in batch.iter().zip(&leaves_per) {
            if leaves.len() > 2 && !absorbed[i as usize] {
                commits += 1;
            }
            // Map leaves into the new graph and combine lowest-level first.
            let mut heap: BinaryHeap<Reverse<(u32, u32)>> = leaves
                .iter()
                .map(|l| {
                    let mapped = map[l.node().index()].complement_if(l.is_complement());
                    Reverse((levels[mapped.node().index()], mapped.raw()))
                })
                .collect();
            let mut result = Lit::TRUE;
            if let Some(Reverse((_, first))) = heap.pop() {
                result = Lit::from_raw(first);
                while let Some(Reverse((_, next))) = heap.pop() {
                    result = and_leveled(&mut out, &mut levels, result, Lit::from_raw(next));
                    heap.push(Reverse((levels[result.node().index()], result.raw())));
                    let Some(Reverse((_, top))) = heap.pop() else {
                        unreachable!()
                    };
                    result = Lit::from_raw(top);
                }
            }
            map[i as usize] = result;
        }
    }
    finish(aig, &mut out, &map);
    (out.compact(), commits)
}

/// Collect the operand literals of the AND tree rooted at `id`, expanding
/// through non-complemented, single-fanout AND fanins.
fn collect_supergate(aig: &Aig, id: NodeId, fanouts: &[u32], is_root: bool, leaves: &mut Vec<Lit>) {
    let NodeKind::And { a, b } = aig.node(id) else {
        unreachable!("supergate collection starts at AND nodes");
    };
    if !is_root && fanouts[id.index()] != 1 {
        unreachable!("only single-fanout interior nodes are expanded");
    }
    for f in [a, b] {
        if !f.is_complement() && aig.node(f.node()).is_and() && fanouts[f.node().index()] == 1 {
            collect_supergate(aig, f.node(), fanouts, false, leaves);
        } else {
            leaves.push(f);
        }
    }
}

/// DAG-aware cut rewriting (ABC's `rewrite`): for every AND node, enumerate
/// 4-feasible cuts, resynthesize the best one, and accept when the new
/// implementation is smaller than the node's maximum fanout-free cone.
pub fn rewrite(aig: &Aig) -> Aig {
    rewrite_ctx(aig, false, &mut PassCtx::new(ThreadPool::global()))
}

/// Like [`rewrite`] but also accepts size-neutral replacements (ABC's
/// `rewrite -z`): restructuring toward canonical forms unlocks gains in the
/// following passes.
pub fn rewrite_zero(aig: &Aig) -> Aig {
    rewrite_ctx(aig, true, &mut PassCtx::new(ThreadPool::global()))
}

/// Reconvergence-driven refactoring (ABC's `refactor`): one larger cut per
/// node (default 8 leaves), resynthesized through ISOP + factoring.
pub fn refactor(aig: &Aig) -> Aig {
    refactor_with_cut_size(aig, 8)
}

/// Like [`refactor`] with a custom cut size (up to 12).
pub fn refactor_with_cut_size(aig: &Aig, k: usize) -> Aig {
    refactor_ctx(aig, k, &mut PassCtx::new(ThreadPool::global()))
}

/// [`refactor`] against a pass context (pool + shared arenas + commit
/// counter) — the form the script engine invokes.
pub(crate) fn refactor_ctx(aig: &Aig, k: usize, ctx: &mut PassCtx) -> Aig {
    resynthesis_pass(aig, ResynthMode::Refactor { k: k.clamp(2, 12) }, ctx)
}

/// [`rewrite`] against a pass context — the form the script engine invokes.
pub(crate) fn rewrite_ctx(aig: &Aig, zero_gain: bool, ctx: &mut PassCtx) -> Aig {
    resynthesis_pass(
        aig,
        ResynthMode::Rewrite {
            k: 4,
            max_cuts: 8,
            zero_gain,
        },
        ctx,
    )
}

enum ResynthMode {
    Rewrite {
        k: usize,
        max_cuts: usize,
        zero_gain: bool,
    },
    Refactor {
        k: usize,
    },
}

/// Nodes evaluated per parallel wave. Bounds the memory held by pending
/// evaluation results while keeping the pool dispatch overhead amortized;
/// the batch boundary has no effect on the result (evaluation is pure).
const EVAL_BATCH: usize = 256;

/// One surviving candidate of the evaluate phase.
struct Candidate {
    cut: Cut,
    tt: TruthTable,
    mffc: isize,
}

/// Evaluate-phase output for one AND node: the candidate cuts that passed
/// the isolation-cost prefilter, in enumeration order.
struct NodeEval {
    candidates: Vec<Candidate>,
}

/// Per-worker evaluate-phase arenas (one per executor thread, owned by the
/// [`PassCtx`] so they persist across all passes of a script).
#[derive(Default)]
pub(crate) struct EvalScratch {
    pub(crate) scratch: CutScratch,
    pub(crate) synth: Synthesizer,
}

fn resynthesis_pass(aig: &Aig, mode: ResynthMode, ctx: &mut PassCtx) -> Aig {
    let pool = ctx.pool();
    let fanouts = aig.fanout_counts(true);
    let zero_gain = matches!(
        mode,
        ResynthMode::Rewrite {
            zero_gain: true,
            ..
        }
    );
    let min_gain = if zero_gain { 0 } else { 1 };
    // The cut arena lives in the pass context, so one flat buffer serves
    // every rewrite pass of a script (and every design of a batch).
    let enumerated: Option<&CutArena> = match &mode {
        ResynthMode::Rewrite { k, max_cuts, .. } => {
            cuts::enumerate_cuts_into(aig, *k, *max_cuts, pool, &mut ctx.cut_arena);
            Some(&ctx.cut_arena)
        }
        ResynthMode::Refactor { .. } => None,
    };
    let mut out = Aig::new(aig.name().to_string());
    let mut map: Vec<Lit> = vec![Lit::FALSE; aig.num_nodes()];
    map_cis(aig, &mut out, &mut map);
    // One evaluate arena per executor participant, owned by the pass
    // context so the cost memos stay warm for the whole pass — and for
    // every later pass of the same script. The commit phase reuses
    // participant 0's synthesizer: its memo entries are pure function
    // values, so sharing them between the phases (and across arbitrary
    // evaluation schedules or earlier passes) never changes the committed
    // graph — with one thread this collapses to the single-synthesizer
    // walk the sequential pass always did.
    let token = ctx.token().clone();
    let states = &mut ctx.arenas;
    let mut commits = 0u64;
    let mut leaf_lits: Vec<Lit> = Vec::new();

    let and_ids: Vec<u32> = (0..aig.num_nodes() as u32)
        .filter(|&i| aig.nodes()[i as usize].is_and())
        .collect();
    for batch in and_ids.chunks(EVAL_BATCH) {
        // Evaluate-batch boundary: a cancelled job must stop in bounded
        // time even mid-pass. The partial rebuild is abandoned and the
        // input graph returned unchanged (the engine discards it anyway).
        if token.is_cancelled() {
            ctx.add_commits(commits);
            return aig.clone();
        }
        let evals = pool.map_reuse(batch, states, |st, _, &i| {
            evaluate_node(aig, &mode, enumerated, &fanouts, i, st)
        });
        for (&i, eval) in batch.iter().zip(&evals) {
            commits += u64::from(commit_node(
                aig,
                &mut out,
                &mut map,
                &mut states[0].synth,
                &mut leaf_lits,
                min_gain,
                i as usize,
                eval,
            ));
        }
    }
    finish(aig, &mut out, &map);
    ctx.add_commits(commits);
    let out = out.compact();
    // The gain estimates are heuristic; never accept a larger graph
    // (zero-gain mode intentionally tolerates equal size).
    if out.num_ands() < aig.num_ands() || (zero_gain && out.num_ands() == aig.num_ands()) {
        out
    } else {
        aig.clone()
    }
}

/// Evaluate phase for one node: collect candidate cuts and precompute the
/// data the commit phase needs. Reads only the immutable input graph, so
/// results are independent of scheduling and thread count.
fn evaluate_node(
    aig: &Aig,
    mode: &ResynthMode,
    enumerated: Option<&CutArena>,
    fanouts: &[u32],
    i: u32,
    st: &mut EvalScratch,
) -> NodeEval {
    let id = NodeId::from_index(i as usize);
    let mut candidates = Vec::new();
    match mode {
        ResynthMode::Rewrite { .. } => {
            for cut in enumerated
                .expect("rewrite enumerates cuts")
                .node(i as usize)
                .iter()
                .filter(|c| c.len() >= 2 && c.leaves() != [id])
            {
                push_candidate(aig, id, *cut, fanouts, st, &mut candidates);
            }
        }
        ResynthMode::Refactor { k } => {
            let cut = cuts::reconvergence_cut_with(aig, id, *k, &mut st.scratch);
            if cut.len() >= 2 {
                push_candidate(aig, id, cut, fanouts, st, &mut candidates);
            }
        }
    }
    NodeEval { candidates }
}

fn push_candidate(
    aig: &Aig,
    id: NodeId,
    cut: Cut,
    fanouts: &[u32],
    st: &mut EvalScratch,
    candidates: &mut Vec<Candidate>,
) {
    let tt = cuts::cut_function_with(aig, id, cut.leaves(), &mut st.scratch);
    let mffc = cuts::mffc_size_with(aig, id, cut.leaves(), fanouts, &mut st.scratch) as isize;
    // Cheap pre-filter on the isolation estimate (the synthesis cost is a
    // pure function of the table, so per-thread memos agree).
    if st.synth.cost(&tt) as isize - mffc > 2 {
        return;
    }
    candidates.push(Candidate { cut, tt, mffc });
}

/// Commit phase for one node: measure each surviving candidate's
/// *sharing-aware* gain by building it on top of the output graph, counting
/// the nodes actually created and rolling back; rebuild the winner for
/// real. Returns whether a replacement was accepted.
#[allow(clippy::too_many_arguments)]
fn commit_node(
    aig: &Aig,
    out: &mut Aig,
    map: &mut [Lit],
    synth: &mut Synthesizer,
    leaf_lits: &mut Vec<Lit>,
    min_gain: isize,
    i: usize,
    eval: &NodeEval,
) -> bool {
    let NodeKind::And { a, b } = aig.nodes()[i] else {
        unreachable!("commit only visits AND nodes");
    };
    let mut best: Option<(isize, usize)> = None; // (gain, candidate index)
    for (ci, cand) in eval.candidates.iter().enumerate() {
        leaf_lits.clear();
        leaf_lits.extend(cand.cut.leaves().iter().map(|l| map[l.index()]));
        let watermark = out.num_nodes();
        synth.build(out, &cand.tt, leaf_lits);
        let added = (out.num_nodes() - watermark) as isize;
        out.truncate_nodes(watermark);
        let gain = cand.mffc - added;
        if gain >= min_gain && best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, ci));
        }
    }
    map[i] = if let Some((_, ci)) = best {
        let cand = &eval.candidates[ci];
        leaf_lits.clear();
        leaf_lits.extend(cand.cut.leaves().iter().map(|l| map[l.index()]));
        synth.build(out, &cand.tt, leaf_lits)
    } else {
        let fa = map[a.node().index()].complement_if(a.is_complement());
        let fb = map[b.node().index()].complement_if(b.is_complement());
        out.and(fa, fb)
    };
    best.is_some()
}

fn map_cis(aig: &Aig, out: &mut Aig, map: &mut [Lit]) {
    for (i, &id) in aig.inputs().iter().enumerate() {
        map[id.index()] = out.input(aig.input_name(i).to_string());
    }
    for latch in aig.latches() {
        map[latch.output.index()] = out.latch(latch.name.clone(), latch.init);
    }
}

fn finish(aig: &Aig, out: &mut Aig, map: &[Lit]) {
    for o in aig.outputs() {
        let lit = map[o.lit.node().index()].complement_if(o.lit.is_complement());
        out.output(o.name.clone(), lit);
    }
    for (i, latch) in aig.latches().iter().enumerate() {
        let next = map[latch.next.node().index()].complement_if(latch.next.is_complement());
        let output = out.latches()[i].output.lit();
        out.set_latch_next(output, next);
    }
}

/// Optimization effort for [`optimize`].
///
/// Each level is a thin facade over a preset pass script
/// ([`Script::preset`]); the pass manager in [`crate::pass`] is the
/// general mechanism.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Effort {
    /// One balance + rewrite round (`c; repeat 1 { b; rw; rf; b; rwz; rw }`).
    Fast,
    /// Up to three rounds of balance/rewrite/refactor (≈ ABC `resyn2`;
    /// `c; repeat 3 { b; rw; rf; b; rwz; rw }`).
    #[default]
    Standard,
    /// Up to six rounds with larger refactoring cuts
    /// (`c; repeat 6 { b; rw; rf -K 10; b; rwz; rw }`).
    High,
}

/// Run the optimization script: alternating balance / rewrite / refactor
/// until no improvement (bounded by the effort level). Returns the smallest
/// graph seen.
///
/// ```
/// use xsfq_aig::{Aig, build, opt};
/// let mut g = Aig::new("fa");
/// let a = g.input("a");
/// let b = g.input("b");
/// let c = g.input("cin");
/// let (s, co) = build::full_adder(&mut g, a, b, c);
/// g.output("s", s);
/// g.output("cout", co);
/// let opt = opt::optimize(&g, opt::Effort::Standard);
/// assert!(opt.num_ands() <= 7, "full adder optimizes to ≤ 7 nodes");
/// ```
pub fn optimize(aig: &Aig, effort: Effort) -> Aig {
    optimize_with(aig, effort, ThreadPool::global())
}

/// [`optimize`] on an explicit executor pool.
///
/// Expands the effort level to its preset script and runs it through the
/// pass manager — `script_golden` pins the expansion to the legacy
/// hard-coded loop node-for-node. The result is bit-identical for every
/// pool size (including 1): the parallel evaluate phases are pure functions
/// of the input graph and every replacement is committed single-threaded in
/// node-index order. The `parallel_identity` proptest gates this in CI.
pub fn optimize_with(aig: &Aig, effort: Effort, pool: &ThreadPool) -> Aig {
    let compiled = Script::preset(effort)
        .compile(&PassRegistry::structural())
        .expect("preset scripts compile against the structural registry");
    compiled.run(aig, &mut PassCtx::new(pool))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, sim};

    fn fa_naive() -> Aig {
        // 9-NAND full adder (the paper's "typical CMOS synthesis" example).
        let mut g = Aig::new("fa9");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let x1 = g.nand(a, b);
        let x2 = g.nand(a, x1);
        let x3 = g.nand(b, x1);
        let s1 = g.nand(x2, x3);
        let x4 = g.nand(s1, c);
        let x5 = g.nand(s1, x4);
        let x6 = g.nand(c, x4);
        let s = g.nand(x5, x6);
        let cout = g.nand(x1, x4);
        g.output("s", s);
        g.output("cout", cout);
        g
    }

    #[test]
    fn nand_full_adder_has_nine_nodes() {
        assert_eq!(fa_naive().num_ands(), 9);
    }

    #[test]
    fn optimize_full_adder_to_seven() {
        let g = fa_naive();
        let opt = optimize(&g, Effort::Standard);
        assert!(
            opt.num_ands() <= 7,
            "expected ≤ 7 nodes, got {}",
            opt.num_ands()
        );
        assert!(
            sim::random_equiv(&g, &opt, 8, 3),
            "optimization broke the function"
        );
    }

    #[test]
    fn balance_reduces_depth_of_chain() {
        let mut g = Aig::new("chain");
        let xs = g.input_word("x", 8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = g.and(acc, x);
        }
        g.output("o", acc);
        assert_eq!(g.depth(), 7);
        let b = balance(&g);
        assert_eq!(b.depth(), 3);
        assert!(sim::random_equiv(&g, &b, 4, 11));
    }

    #[test]
    fn rewrite_removes_redundancy() {
        // (a & b) | (a & b & c) == a & b — rewriting should shrink it.
        let mut g = Aig::new("red");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        let o = g.or(ab, abc);
        g.output("o", o);
        let r = optimize(&g, Effort::Standard);
        assert_eq!(r.num_ands(), 1);
        assert!(sim::random_equiv(&g, &r, 4, 5));
    }

    #[test]
    fn optimize_is_equivalence_preserving_on_alu_slice() {
        // A small ALU-like block with muxes and arithmetic.
        let mut g = Aig::new("alu");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let sel = g.input("sel");
        let (sum, _) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        let ands: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| g.and(x, y)).collect();
        let out = build::mux_word(&mut g, sel, &sum, &ands);
        g.output_word("o", &out);
        let opt = optimize(&g, Effort::Standard);
        assert!(opt.num_ands() <= g.num_ands());
        assert!(sim::random_equiv(&g, &opt, 16, 99));
    }

    #[test]
    fn optimize_preserves_latch_interface() {
        let mut g = Aig::new("seq");
        let d = g.input("d");
        let q = g.latch("q", true);
        let nx = g.xor(d, q);
        g.set_latch_next(q, nx);
        g.output("o", q);
        let opt = optimize(&g, Effort::Standard);
        assert_eq!(opt.num_latches(), 1);
        assert!(opt.latches()[0].init);
        assert_eq!(opt.num_inputs(), 1);
    }

    #[test]
    fn optimize_mux_tree() {
        // An 8:1 mux built wastefully; optimization must not grow it.
        let mut g = Aig::new("mux8");
        let data = g.input_word("d", 8);
        let sel = g.input_word("s", 3);
        let onehot = build::decoder(&mut g, &sel, None);
        let terms: Vec<Lit> = onehot
            .iter()
            .zip(&data)
            .map(|(&h, &d)| g.and(h, d))
            .collect();
        let out = g.or_many(&terms);
        g.output("o", out);
        let before = g.num_ands();
        let opt = optimize(&g, Effort::High);
        assert!(opt.num_ands() <= before);
        assert!(sim::random_equiv(&g, &opt, 16, 17));
    }
}
