//! Fast non-cryptographic hashing for the synthesis hot paths.
//!
//! `std`'s default SipHash is DoS-resistant but slow for the tiny keys the
//! synthesis loops hash (node ids, truth-table words). [`FxHasher`] is the
//! rustc multiply-rotate hash; the aliases [`FxHashMap`] / [`FxHashSet`]
//! drop into `std::collections` signatures. All inputs here are internal
//! node/table data, so hash-flooding resistance is not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// rustc's Fx hash: multiply-rotate word mixing.
#[derive(Default, Clone, Debug)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(17)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(17))), Some(&i));
        }
    }

    #[test]
    fn hash_distributes() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let mut buckets = [0usize; 64];
        for i in 0..4096u64 {
            buckets[(b.hash_one(i) % 64) as usize] += 1;
        }
        assert!(buckets.iter().all(|&c| c > 16), "lopsided: {buckets:?}");
    }
}
