//! BLIF import/export.
//!
//! The Berkeley Logic Interchange Format is the lingua franca of academic
//! synthesis tools (and of the ISCAS/EPFL benchmark distributions). The
//! reader covers the combinational + latch subset the benchmarks use:
//! `.model`, `.inputs`, `.outputs`, `.names` (SOP tables), `.latch`, `.end`.
//! Users who have the original benchmark files can load them here; the
//! in-repo suite uses the generators in `xsfq-benchmarks`.

use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{Aig, Lit};

/// Error parsing a BLIF file.
#[derive(Debug)]
pub struct ParseBlifError {
    line: usize,
    message: String,
}

impl ParseBlifError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseBlifError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blif parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseBlifError {}

/// Read a BLIF model into an AIG. `.names` tables become SOP logic over
/// AND/INV; `.latch` statements become latches (init values `0`, `1`;
/// `2`/`3`/missing default to `0`).
///
/// # Errors
///
/// Returns [`ParseBlifError`] on malformed input, undriven signals or
/// unsupported constructs (`.subckt`, multiple models).
pub fn read_blif<R: BufRead>(reader: R) -> Result<Aig, ParseBlifError> {
    // Collect logical lines (joining `\` continuations).
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (idx, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| ParseBlifError::new(idx + 1, e.to_string()))?;
        let content = match line.find('#') {
            Some(p) => &line[..p],
            None => &line[..],
        };
        let trimmed = content.trim_end();
        if pending.is_empty() {
            pending_start = idx + 1;
        }
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
            continue;
        }
        pending.push_str(trimmed);
        if !pending.trim().is_empty() {
            lines.push((pending_start, std::mem::take(&mut pending)));
        } else {
            pending.clear();
        }
    }

    #[derive(Debug)]
    struct NamesBlock {
        line: usize,
        signals: Vec<String>, // inputs then the output
        cubes: Vec<(String, char)>,
    }

    let mut model_name = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(usize, String)> = Vec::new(); // (declaring line, name)
    let mut latches: Vec<(usize, String, String, bool)> = Vec::new(); // (line, input, output, init)
    let mut names: Vec<NamesBlock> = Vec::new();

    let mut i = 0;
    while i < lines.len() {
        let (lineno, line) = &lines[i];
        let mut tokens = line.split_whitespace();
        let Some(head) = tokens.next() else {
            i += 1;
            continue;
        };
        match head {
            ".model" => {
                if let Some(n) = tokens.next() {
                    model_name = n.to_string();
                }
            }
            ".inputs" => inputs.extend(tokens.map(str::to_string)),
            ".outputs" => outputs.extend(tokens.map(|t| (*lineno, t.to_string()))),
            ".latch" => {
                let args: Vec<&str> = tokens.collect();
                if args.len() < 2 {
                    return Err(ParseBlifError::new(
                        *lineno,
                        ".latch needs input and output",
                    ));
                }
                // .latch <input> <output> [<type> <control>] [<init>]
                let init = matches!(args.last(), Some(&"1"));
                latches.push((*lineno, args[0].to_string(), args[1].to_string(), init));
            }
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(ParseBlifError::new(
                        *lineno,
                        ".names needs at least an output",
                    ));
                }
                let mut cubes = Vec::new();
                while i + 1 < lines.len() {
                    let (cl, cline) = &lines[i + 1];
                    if cline.trim_start().starts_with('.') {
                        break;
                    }
                    let parts: Vec<&str> = cline.split_whitespace().collect();
                    match parts.as_slice() {
                        [out] if signals.len() == 1 => {
                            let v = out.chars().next().unwrap_or('0');
                            cubes.push((String::new(), v));
                        }
                        [mask, out] => {
                            if mask.len() != signals.len() - 1 {
                                return Err(ParseBlifError::new(
                                    *cl,
                                    format!(
                                        "cube width {} does not match {} inputs",
                                        mask.len(),
                                        signals.len() - 1
                                    ),
                                ));
                            }
                            let v = out.chars().next().unwrap_or('0');
                            cubes.push((mask.to_string(), v));
                        }
                        _ => {
                            return Err(ParseBlifError::new(*cl, "malformed cube line"));
                        }
                    }
                    i += 1;
                }
                names.push(NamesBlock {
                    line: *lineno,
                    signals,
                    cubes,
                });
            }
            ".end" => break,
            ".exdc" | ".subckt" | ".gate" => {
                return Err(ParseBlifError::new(
                    *lineno,
                    format!("unsupported construct {head}"),
                ));
            }
            _ => { /* ignore unknown dot-commands */ }
        }
        i += 1;
    }

    // Build the AIG: create PIs and latch outputs, then elaborate `.names`
    // blocks in dependency order.
    let mut aig = Aig::new(model_name);
    let mut env: HashMap<String, Lit> = HashMap::new();
    for name in &inputs {
        let l = aig.input(name.clone());
        env.insert(name.clone(), l);
    }
    for (_, _, out, init) in &latches {
        let l = aig.latch(out.clone(), *init);
        env.insert(out.clone(), l);
    }

    // Iteratively elaborate blocks whose inputs are all available.
    let mut remaining: Vec<NamesBlock> = names;
    loop {
        let before = remaining.len();
        remaining.retain(|block| {
            let (out_name, in_names) = block.signals.split_last().expect("non-empty");
            if !in_names.iter().all(|n| env.contains_key(n)) {
                return true; // keep for a later round
            }
            let in_lits: Vec<Lit> = in_names.iter().map(|n| env[n]).collect();
            let lit = build_sop(&mut aig, &in_lits, &block.cubes);
            env.insert(out_name.clone(), lit);
            false
        });
        if remaining.is_empty() {
            break;
        }
        if remaining.len() == before {
            let block = &remaining[0];
            return Err(ParseBlifError::new(
                block.line,
                format!(
                    "combinational cycle or undriven signal feeding '{}'",
                    block.signals.last().unwrap()
                ),
            ));
        }
    }

    for (lineno, input, output, _) in &latches {
        let Some(&next) = env.get(input) else {
            return Err(ParseBlifError::new(
                *lineno,
                format!("latch input '{input}' is undriven"),
            ));
        };
        let q = env[output];
        aig.set_latch_next(q, next);
    }
    for (lineno, name) in &outputs {
        let Some(&lit) = env.get(name) else {
            return Err(ParseBlifError::new(
                *lineno,
                format!("output '{name}' is undriven"),
            ));
        };
        aig.output(name.clone(), lit);
    }
    Ok(aig)
}

/// The netlist formats [`read_netlist_auto`] can detect.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NetlistFormat {
    /// Berkeley Logic Interchange Format (this module's reader).
    Blif,
    /// ASCII AIGER (`aag` header; [`crate::aiger`]).
    AigerAscii,
    /// Binary AIGER (`aig` header; [`crate::aiger`]).
    AigerBinary,
}

impl fmt::Display for NetlistFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NetlistFormat::Blif => "blif",
            NetlistFormat::AigerAscii => "ascii aiger",
            NetlistFormat::AigerBinary => "binary aiger",
        })
    }
}

/// Error from [`read_netlist_auto`]: either no known format was detected,
/// or the detected format's parser rejected the bytes.
#[derive(Debug)]
pub enum ReadNetlistError {
    /// The bytes match none of the known format signatures.
    UnknownFormat,
    /// Detected as BLIF, but the BLIF parser failed.
    Blif(ParseBlifError),
    /// Detected as AIGER (either variant), but the AIGER parser failed.
    Aiger(crate::aiger::ParseAigerError),
}

impl fmt::Display for ReadNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadNetlistError::UnknownFormat => {
                write!(f, "unrecognized netlist format (expected BLIF or AIGER)")
            }
            ReadNetlistError::Blif(e) => write!(f, "{e}"),
            ReadNetlistError::Aiger(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ReadNetlistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadNetlistError::UnknownFormat => None,
            ReadNetlistError::Blif(e) => Some(e),
            ReadNetlistError::Aiger(e) => Some(e),
        }
    }
}

/// Sniff the netlist format from content, never from a file extension.
///
/// AIGER files are self-identifying: the very first bytes are the header
/// keyword `aag` (ASCII) or `aig` (binary) followed by whitespace. BLIF has
/// no magic, so anything whose first non-blank, non-comment line starts
/// with a BLIF dot-command is treated as BLIF. Returns `None` when neither
/// signature matches.
pub fn sniff_format(bytes: &[u8]) -> Option<NetlistFormat> {
    let header_ws = |rest: &[u8]| rest.first().is_some_and(|b| b" \t\r\n".contains(b));
    if bytes.len() >= 4 && &bytes[..3] == b"aag" && header_ws(&bytes[3..]) {
        return Some(NetlistFormat::AigerAscii);
    }
    if bytes.len() >= 4 && &bytes[..3] == b"aig" && header_ws(&bytes[3..]) {
        return Some(NetlistFormat::AigerBinary);
    }
    // BLIF: skip blank lines and `#` comments; the first real line must be
    // a dot-command (`.model`, `.inputs`, ...).
    for line in bytes.split(|&b| b == b'\n') {
        let mut trimmed = line;
        while trimmed.first().is_some_and(|b| b" \t\r".contains(b)) {
            trimmed = &trimmed[1..];
        }
        match trimmed.first() {
            None => continue,
            Some(b'#') => continue,
            Some(b'.') => return Some(NetlistFormat::Blif),
            Some(_) => return None,
        }
    }
    None
}

/// Read a netlist in any supported format, detecting the format from the
/// content ([`sniff_format`]) — the single ingest path of the serving
/// daemon, where jobs arrive as bytes without trustworthy extensions.
///
/// # Errors
///
/// [`ReadNetlistError::UnknownFormat`] when no format signature matches;
/// otherwise the detected parser's error, wrapped.
pub fn read_netlist_auto(bytes: &[u8]) -> Result<Aig, ReadNetlistError> {
    match sniff_format(bytes) {
        Some(NetlistFormat::Blif) => read_blif(bytes).map_err(ReadNetlistError::Blif),
        Some(NetlistFormat::AigerAscii) | Some(NetlistFormat::AigerBinary) => {
            crate::aiger::read_aiger(bytes).map_err(ReadNetlistError::Aiger)
        }
        None => Err(ReadNetlistError::UnknownFormat),
    }
}

/// Elaborate one `.names` SOP block (ON-set or OFF-set convention).
fn build_sop(aig: &mut Aig, inputs: &[Lit], cubes: &[(String, char)]) -> Lit {
    if cubes.is_empty() {
        return Lit::FALSE; // empty table = constant 0
    }
    let on_set = cubes[0].1 != '0';
    let mut terms = Vec::with_capacity(cubes.len());
    for (mask, _) in cubes {
        let mut lits = Vec::new();
        for (i, ch) in mask.chars().enumerate() {
            match ch {
                '1' => lits.push(inputs[i]),
                '0' => lits.push(!inputs[i]),
                _ => {}
            }
        }
        terms.push(aig.and_many(&lits));
    }
    let cover = aig.or_many(&terms);
    if on_set {
        cover
    } else {
        !cover
    }
}

/// Write an AIG as BLIF. Every AND node becomes a two-input `.names` block;
/// complemented edges are expressed in the cube masks, so no extra inverter
/// nodes are emitted.
///
/// Port names are sanitized collision-free: whitespace maps to `_` (BLIF
/// signals are whitespace-delimited), names that collide afterwards — or
/// that would shadow the writer's synthetic `nd<i>`/`ln_<i>` node names, or
/// an input port — are uniquified with `_2`, `_3`, … suffixes. Without
/// this, ports like `a b` and `a_b` silently merged into one signal and a
/// port literally named `nd0` shorted itself to the constant node.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_blif<W: Write>(aig: &Aig, mut w: W) -> std::io::Result<()> {
    let (in_names, out_names) = blif_port_names(aig);
    writeln!(w, ".model {}", aig.name())?;
    if aig.num_inputs() > 0 {
        write!(w, ".inputs")?;
        for name in &in_names {
            write!(w, " {name}")?;
        }
        writeln!(w)?;
    }
    if aig.num_outputs() > 0 {
        write!(w, ".outputs")?;
        for name in &out_names {
            write!(w, " {name}")?;
        }
        writeln!(w)?;
    }
    // Internal nodes get synthetic names; PI nodes must resolve to their
    // declared port names so the reader can reconnect them.
    let node_name = |id: crate::NodeId| -> String {
        match aig.node(id) {
            crate::NodeKind::Input { index } => in_names[index as usize].clone(),
            _ => format!("nd{}", id.index()),
        }
    };
    for latch in aig.latches() {
        writeln!(
            w,
            ".latch ln_{} {} re clk {}",
            latch.output.index(),
            node_name(latch.output),
            if latch.init { 1 } else { 0 }
        )?;
    }
    // Constant node, if referenced.
    writeln!(w, ".names nd0")?; // constant 0: empty table

    for id in aig.and_ids() {
        let (a, b) = aig.and_fanins(id);
        writeln!(
            w,
            ".names {} {} {}",
            node_name(a.node()),
            node_name(b.node()),
            node_name(id)
        )?;
        writeln!(
            w,
            "{}{} 1",
            if a.is_complement() { '0' } else { '1' },
            if b.is_complement() { '0' } else { '1' }
        )?;
    }
    // Output buffers / inverters.
    for (o, name) in aig.outputs().iter().zip(&out_names) {
        writeln!(w, ".names {} {name}", node_name(o.lit.node()))?;
        writeln!(w, "{} 1", if o.lit.is_complement() { '0' } else { '1' })?;
    }
    for latch in aig.latches() {
        writeln!(
            w,
            ".names {} ln_{}",
            node_name(latch.next.node()),
            latch.output.index()
        )?;
        writeln!(
            w,
            "{} 1",
            if latch.next.is_complement() { '0' } else { '1' }
        )?;
    }
    writeln!(w, ".end")
}

/// Collision-free BLIF signal names for every port, inputs before outputs.
fn blif_port_names(aig: &Aig) -> (Vec<String>, Vec<String>) {
    /// `nd<i>` / `ln_<i>`: the writer's synthetic node and latch names.
    fn synthetic(name: &str) -> bool {
        let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
        name.strip_prefix("nd").is_some_and(digits) || name.strip_prefix("ln_").is_some_and(digits)
    }
    let mut used: HashSet<String> = HashSet::new();
    let mut unique = |name: &str| -> String {
        let mut base: String = name
            .chars()
            .map(|c| if c.is_whitespace() { '_' } else { c })
            .collect();
        if base.is_empty() || synthetic(&base) {
            base.push('_');
        }
        let mut candidate = base.clone();
        let mut n = 2usize;
        while !used.insert(candidate.clone()) {
            candidate = format!("{base}_{n}");
            n += 1;
        }
        candidate
    };
    let inputs = (0..aig.num_inputs())
        .map(|i| unique(aig.input_name(i)))
        .collect();
    let outputs = aig.outputs().iter().map(|o| unique(&o.name)).collect();
    (inputs, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn parse_simple_model() {
        let text = "\
# a full adder
.model fa
.inputs a b cin
.outputs s cout
.names a b cin s
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";
        let aig = read_blif(text.as_bytes()).unwrap();
        assert_eq!(aig.name(), "fa");
        assert_eq!(aig.num_inputs(), 3);
        assert_eq!(aig.num_outputs(), 2);
        for p in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| p >> i & 1 == 1).collect();
            let ones = inputs.iter().filter(|&&b| b).count();
            let out = sim::eval_outputs(&aig, &inputs);
            assert_eq!(out[0], ones % 2 == 1, "sum for {p:03b}");
            assert_eq!(out[1], ones >= 2, "cout for {p:03b}");
        }
    }

    #[test]
    fn parse_offset_table_and_constants() {
        let text = "\
.model t
.inputs a b
.outputs nor one
.names a b nor
00 1
.names one
1
.end
";
        let aig = read_blif(text.as_bytes()).unwrap();
        let out = sim::eval_outputs(&aig, &[false, false]);
        assert_eq!(out, [true, true]);
        let out = sim::eval_outputs(&aig, &[true, false]);
        assert_eq!(out, [false, true]);
    }

    #[test]
    fn parse_latches() {
        let text = "\
.model cnt
.inputs en
.outputs q
.latch nq q re clk 1
.names en q nq
10 1
01 1
.end
";
        let aig = read_blif(text.as_bytes()).unwrap();
        assert_eq!(aig.num_latches(), 1);
        assert!(aig.latches()[0].init);
        let mut s = sim::SeqSim::new(&aig);
        assert_eq!(s.step(&[true]), [true]); // q=1, toggles
        assert_eq!(s.step(&[true]), [false]);
        assert_eq!(s.step(&[false]), [true]);
        assert_eq!(s.step(&[true]), [true]);
    }

    #[test]
    fn roundtrip_through_blif() {
        let mut g = Aig::new("rt");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let (s, co) = crate::build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let mut buf = Vec::new();
        write_blif(&g, &mut buf).unwrap();
        let back = read_blif(buf.as_slice()).unwrap();
        assert!(sim::random_equiv(&g, &back, 8, 1));
    }

    /// Regression: whitespace sanitization used to merge distinct ports
    /// (`a b` vs `a_b`), an output sharing an input's name produced a
    /// self-loop, and a port literally named `nd0` shorted itself to the
    /// writer's synthetic constant node. All must round-trip now.
    #[test]
    fn roundtrip_with_colliding_port_names() {
        let mut g = Aig::new("collide");
        let a = g.input("a b");
        let b = g.input("a_b");
        let c = g.input("nd0");
        let x = g.and(a, b);
        let y = g.xor(x, c);
        g.output("a_b", y); // collides with input "a_b"
        g.output("y", !y);
        g.output("y", x); // duplicate output name
        let mut buf = Vec::new();
        write_blif(&g, &mut buf).unwrap();
        let back = read_blif(buf.as_slice()).unwrap();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.num_outputs(), 3);
        assert!(sim::random_equiv(&g, &back, 16, 7));
        // Input names survived distinct.
        let names: Vec<&str> = (0..3).map(|i| back.input_name(i)).collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), 3, "input names must stay distinct: {names:?}");
    }

    /// A constant-zero and constant-one output survive the round trip.
    #[test]
    fn roundtrip_constant_outputs() {
        let mut g = Aig::new("consts");
        let a = g.input("a");
        g.output("zero", Lit::FALSE);
        g.output("one", Lit::TRUE);
        g.output("buf", a);
        let mut buf = Vec::new();
        write_blif(&g, &mut buf).unwrap();
        let back = read_blif(buf.as_slice()).unwrap();
        for v in [false, true] {
            let out = sim::eval_outputs(&back, &[v]);
            assert_eq!(out, [false, true, v]);
        }
    }

    /// One circuit through all three on-disk formats: the auto reader must
    /// detect each by content and parse to an equivalent graph.
    #[test]
    fn auto_reader_detects_all_three_formats() {
        let mut g = Aig::new("rt");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let (s, co) = crate::build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);

        let mut blif = Vec::new();
        write_blif(&g, &mut blif).unwrap();
        assert_eq!(sniff_format(&blif), Some(NetlistFormat::Blif));

        let mut ascii = Vec::new();
        crate::aiger::write_aiger(&g, &mut ascii).unwrap();
        assert_eq!(sniff_format(&ascii), Some(NetlistFormat::AigerAscii));

        // Binary AIGER, hand-rolled (there is no binary writer): a single
        // AND of the two inputs, lhs 6 = 4 & 2, delta-encoded as [2, 2].
        let mut binary = b"aig 3 2 0 1 1\n6\n".to_vec();
        binary.extend_from_slice(&[2, 2]);
        assert_eq!(sniff_format(&binary), Some(NetlistFormat::AigerBinary));

        for bytes in [&blif, &ascii] {
            let back = read_netlist_auto(bytes).unwrap();
            assert!(sim::random_equiv(&g, &back, 16, 3));
        }
        let small = read_netlist_auto(&binary).unwrap();
        assert_eq!(small.num_inputs(), 2);
        assert_eq!(small.num_ands(), 1);
    }

    #[test]
    fn auto_reader_rejects_garbage() {
        for garbage in [
            &b""[..],
            b"hello world\n",
            b"\x00\x01\x02\x03binary soup",
            b"aigx 1 2 3", // near-miss header keyword
            b"  \n# only comments\n",
        ] {
            assert!(
                matches!(
                    read_netlist_auto(garbage),
                    Err(ReadNetlistError::UnknownFormat)
                ),
                "{garbage:?} must be UnknownFormat"
            );
        }
        // Detected-but-malformed inputs surface the inner parser's error.
        assert!(matches!(
            read_netlist_auto(b".model t\n.outputs z\n.end\n"),
            Err(ReadNetlistError::Blif(_))
        ));
        assert!(matches!(
            read_netlist_auto(b"aag 1 2 3\n"),
            Err(ReadNetlistError::Aiger(_))
        ));
        // Errors chain through `source()` for idiomatic boxing.
        let err = read_netlist_auto(b"aag 1 2 3\n").unwrap_err();
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_on_undriven_output() {
        let text = ".model t\n.inputs a\n.outputs z\n.end\n";
        let err = read_blif(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("undriven"));
    }

    #[test]
    fn error_on_cycle() {
        let text = "\
.model t
.inputs a
.outputs x
.names a y x
11 1
.names a x y
11 1
.end
";
        let err = read_blif(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }
}
