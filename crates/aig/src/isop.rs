//! Irredundant sum-of-products extraction (Minato–Morreale ISOP).
//!
//! Used by the refactoring pass to derive a compact two-level cover of a cut
//! function before algebraic factoring rebuilds it as an AIG (the paper's
//! §3.1.3 relies on exactly this ABC machinery being applicable unchanged).

use crate::tt::TruthTable;

/// A product term over cut variables: bit `i` of `pos`/`neg` selects the
/// positive/negative literal of variable `i`. A cube with both bits set for
/// the same variable is contradictory (never produced here).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Cube {
    /// Positive literals bitset.
    pub pos: u32,
    /// Negative literals bitset.
    pub neg: u32,
}

impl Cube {
    /// The universal cube (no literals, covers everything).
    pub const UNIVERSE: Cube = Cube { pos: 0, neg: 0 };

    /// Number of literals in the cube.
    pub fn num_literals(self) -> u32 {
        self.pos.count_ones() + self.neg.count_ones()
    }

    /// Add the positive literal of `var`.
    #[must_use]
    pub fn with_pos(self, var: usize) -> Cube {
        Cube {
            pos: self.pos | 1 << var,
            neg: self.neg,
        }
    }

    /// Add the negative literal of `var`.
    #[must_use]
    pub fn with_neg(self, var: usize) -> Cube {
        Cube {
            pos: self.pos,
            neg: self.neg | 1 << var,
        }
    }

    /// Truth table of this cube over `vars` variables.
    pub fn table(self, vars: usize) -> TruthTable {
        let mut t = TruthTable::ones(vars);
        for v in 0..vars {
            if self.pos >> v & 1 == 1 {
                t.and_with(&TruthTable::variable(vars, v));
            }
            if self.neg >> v & 1 == 1 {
                let mut nv = TruthTable::variable(vars, v);
                nv.invert();
                t.and_with(&nv);
            }
        }
        t
    }
}

/// Compute an irredundant SOP cover `c` with `lower ⊆ c ⊆ upper`.
///
/// For a completely specified function pass `lower == upper == f`.
/// Returns the cube list; the cover of the cubes is guaranteed to lie within
/// the interval (checked in debug builds).
///
/// # Panics
///
/// Panics if `lower ⊄ upper` (the interval is infeasible).
pub fn isop(lower: &TruthTable, upper: &TruthTable) -> Vec<Cube> {
    assert!(
        lower.is_subset_of(upper),
        "isop: lower bound not contained in upper bound"
    );
    let vars = lower.num_vars();
    let (cover, _table) = isop_rec(lower, upper, vars, 0);
    debug_assert!({
        let mut c = TruthTable::zeros(vars);
        for cube in &cover {
            c.or_with(&cube.table(vars));
        }
        lower.is_subset_of(&c) && c.is_subset_of(upper)
    });
    cover
}

fn isop_rec(
    lower: &TruthTable,
    upper: &TruthTable,
    vars: usize,
    first_var: usize,
) -> (Vec<Cube>, TruthTable) {
    if lower.is_zero() {
        return (Vec::new(), TruthTable::zeros(vars));
    }
    if upper.is_ones() {
        return (vec![Cube::UNIVERSE], TruthTable::ones(vars));
    }
    // Find a variable both bounds can be split on.
    let mut var = first_var;
    while var < vars && !lower.depends_on(var) && !upper.depends_on(var) {
        var += 1;
    }
    assert!(var < vars, "isop: non-constant interval with empty support");

    let l0 = lower.cofactor0(var);
    let l1 = lower.cofactor1(var);
    let u0 = upper.cofactor0(var);
    let u1 = upper.cofactor1(var);

    // Cubes that must contain the negative literal of `var`.
    let mut bound = u1.not();
    bound.and_with(&l0);
    let (c0, t0) = isop_rec(&bound, &u0, vars, var + 1);
    // Cubes that must contain the positive literal of `var`.
    let mut bound = u0.not();
    bound.and_with(&l1);
    let (c1, t1) = isop_rec(&bound, &u1, vars, var + 1);
    // Remaining minterms, coverable without mentioning `var`.
    let mut lnew = t0.not();
    lnew.and_with(&l0);
    let mut lnew1 = t1.not();
    lnew1.and_with(&l1);
    lnew.or_with(&lnew1);
    let mut unew = u0;
    unew.and_with(&u1);
    let (c2, t2) = isop_rec(&lnew, &unew, vars, var + 1);

    let v = TruthTable::variable(vars, var);
    let mut table = v.not();
    table.and_with(&t0);
    let mut pos = v;
    pos.and_with(&t1);
    table.or_with(&pos);
    table.or_with(&t2);
    let mut cover = Vec::with_capacity(c0.len() + c1.len() + c2.len());
    cover.extend(c0.into_iter().map(|c| c.with_neg(var)));
    cover.extend(c1.into_iter().map(|c| c.with_pos(var)));
    cover.extend(c2);
    (cover, table)
}

/// Total literal count of a cover (the classic SIS cost function).
pub fn cover_literals(cover: &[Cube]) -> u32 {
    cover.iter().map(|c| c.num_literals()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover_table(cover: &[Cube], vars: usize) -> TruthTable {
        let mut t = TruthTable::zeros(vars);
        for c in cover {
            t = t.or(&c.table(vars));
        }
        t
    }

    #[test]
    fn isop_exact_function() {
        // maj3 = ab + ac + bc
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 1);
        let c = TruthTable::variable(3, 2);
        let f = a.and(&b).or(&a.and(&c)).or(&b.and(&c));
        let cover = isop(&f, &f);
        assert_eq!(cover_table(&cover, 3), f);
        assert_eq!(cover.len(), 3, "maj3 has a 3-cube irredundant cover");
    }

    #[test]
    fn isop_xor() {
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(2, 1);
        let f = a.xor(&b);
        let cover = isop(&f, &f);
        assert_eq!(cover_table(&cover, 2), f);
        assert_eq!(cover.len(), 2);
        assert_eq!(cover_literals(&cover), 4);
    }

    #[test]
    fn isop_constants() {
        let zero = TruthTable::zeros(3);
        let one = TruthTable::ones(3);
        assert!(isop(&zero, &zero).is_empty());
        let cover = isop(&one, &one);
        assert_eq!(cover, vec![Cube::UNIVERSE]);
    }

    #[test]
    fn isop_with_dont_cares() {
        // lower = ab, upper = a (don't care when a=1, b=0): cover can be just `a`.
        let a = TruthTable::variable(2, 0);
        let b = TruthTable::variable(2, 1);
        let lower = a.and(&b);
        let cover = isop(&lower, &a);
        assert_eq!(cover.len(), 1);
        assert_eq!(cover[0], Cube::UNIVERSE.with_pos(0));
    }

    #[test]
    fn isop_larger_function() {
        // 7-variable threshold function; checks the multi-word path.
        let vars = 7;
        let mut f = TruthTable::zeros(vars);
        for p in 0..(1usize << vars) {
            if (p as u32).count_ones() >= 4 {
                f.set_bit(p, true);
            }
        }
        let cover = isop(&f, &f);
        assert_eq!(cover_table(&cover, vars), f);
        // Every cube of a monotone function's ISOP is positive.
        assert!(cover.iter().all(|c| c.neg == 0));
    }
}
