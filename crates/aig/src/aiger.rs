//! AIGER import/export.
//!
//! AIGER is the exchange format of the hardware model-checking community
//! (and of ABC): a literal-numbered AND-inverter graph with inputs,
//! latches, outputs and two-input ANDs. The reader covers both variants of
//! the 1.x format family:
//!
//! * `aag` — the ASCII variant: one line per input / latch / output / AND.
//! * `aig` — the binary variant: implicit input and AND numbering, ANDs
//!   encoded as pairs of LEB128-style deltas.
//!
//! Both share the header `aag|aig M I L O A` and the trailing symbol table
//! (`i0 name`, `l0 name`, `o0 name`) and comment section. The reader is
//! **total**: any byte sequence either parses to an [`Aig`] or returns a
//! line-numbered [`ParseAigerError`] — it never panics, never overflows,
//! and never allocates proportionally to an attacker-controlled header
//! (pinned by the `parser_fuzz` proptest suite). AND definitions must obey
//! the format's ordering rule `rhs0, rhs1 < lhs`, which is what makes
//! single-pass construction sound.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{Aig, Lit};

/// Largest accepted maximum-variable index (`M` in the header). Bounds the
/// literal-map allocation so a malicious header cannot demand gigabytes
/// before a single definition is read.
pub const MAX_VARS: u64 = 1 << 26;

/// Error parsing an AIGER file.
#[derive(Debug)]
pub struct ParseAigerError {
    line: usize,
    message: String,
}

impl ParseAigerError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseAigerError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number where parsing failed. For faults inside the
    /// binary AND section of an `aig` file this is the line the section
    /// starts on.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "aiger parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseAigerError {}

/// The parsed shape of a file before AIG construction.
struct AigerFile {
    inputs: Vec<u64>,               // input literals (even)
    latches: Vec<(u64, u64, bool)>, // (latch literal, next-state literal, init)
    outputs: Vec<u64>,              // output literals
    ands: Vec<(u64, u64, u64)>,     // (lhs, rhs0, rhs1)
    symbols: HashMap<(u8, usize), String>,
    max_var: u64,
}

/// A line-oriented cursor over the raw bytes, tracking 1-based line
/// numbers (the binary AND section is consumed byte-wise in between).
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor {
            data,
            pos: 0,
            line: 1,
        }
    }

    /// The next line as UTF-8 (without the newline), or `None` at EOF.
    fn next_line(&mut self) -> Result<Option<(usize, &'a str)>, ParseAigerError> {
        if self.pos >= self.data.len() {
            return Ok(None);
        }
        let start = self.pos;
        let lineno = self.line;
        let end = self.data[start..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| start + i)
            .unwrap_or(self.data.len());
        self.pos = (end + 1).min(self.data.len());
        if end < self.data.len() {
            self.line += 1;
        }
        let text = std::str::from_utf8(&self.data[start..end])
            .map_err(|_| ParseAigerError::new(lineno, "line is not valid UTF-8"))?;
        Ok(Some((lineno, text.trim_end_matches('\r'))))
    }

    /// One raw byte of the binary AND section.
    fn next_byte(&mut self) -> Option<u8> {
        let b = *self.data.get(self.pos)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    /// One LEB128-style delta (7 data bits per byte, high bit continues).
    fn next_delta(&mut self, context: &str) -> Result<u64, ParseAigerError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(b) = self.next_byte() else {
                return Err(ParseAigerError::new(
                    self.line,
                    format!("unexpected end of file in {context}"),
                ));
            };
            let payload = u64::from(b & 0x7f);
            if shift >= 63 && payload > (u64::MAX >> shift) {
                return Err(ParseAigerError::new(
                    self.line,
                    format!("delta overflows 64 bits in {context}"),
                ));
            }
            value |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(ParseAigerError::new(
                    self.line,
                    format!("delta overflows 64 bits in {context}"),
                ));
            }
        }
    }
}

fn parse_u64(lineno: usize, token: &str, what: &str) -> Result<u64, ParseAigerError> {
    token
        .parse::<u64>()
        .map_err(|_| ParseAigerError::new(lineno, format!("{what} `{token}` is not a number")))
}

/// Read an AIGER file (ASCII `aag` or binary `aig`) into an [`Aig`].
///
/// Latch init values `0` and `1` are honored; the "uninitialized" form
/// (init equal to the latch literal) is read as `0`. Symbol-table names are
/// applied to inputs, latches and outputs; unnamed ports get `i<k>` /
/// `l<k>` / `o<k>`.
///
/// # Errors
///
/// Returns a line-numbered [`ParseAigerError`] on any malformed input:
/// bad header counts (`M` must cover every declared index and stay below
/// [`MAX_VARS`]), odd input/AND literals, literals out of range, redefined
/// or undefined variables, and AND definitions violating the ordering rule
/// `rhs0, rhs1 < lhs`.
pub fn read_aiger<R: BufRead>(mut reader: R) -> Result<Aig, ParseAigerError> {
    let mut data = Vec::new();
    reader
        .read_to_end(&mut data)
        .map_err(|e| ParseAigerError::new(1, e.to_string()))?;
    let mut cur = Cursor::new(&data);

    // -- Header: `aag|aig M I L O A`.
    let Some((hline, header)) = cur.next_line()? else {
        return Err(ParseAigerError::new(1, "empty file"));
    };
    let mut toks = header.split_whitespace();
    let format = toks.next().unwrap_or("");
    let binary = match format {
        "aag" => false,
        "aig" => true,
        other => {
            return Err(ParseAigerError::new(
                hline,
                format!("expected `aag` or `aig` header, got `{other}`"),
            ))
        }
    };
    let mut field = |what: &str| -> Result<u64, ParseAigerError> {
        let Some(tok) = toks.next() else {
            return Err(ParseAigerError::new(
                hline,
                format!("header is missing the {what} count"),
            ));
        };
        parse_u64(hline, tok, what)
    };
    let max_var = field("maximum variable")?;
    let num_inputs = field("input")?;
    let num_latches = field("latch")?;
    let num_outputs = field("output")?;
    let num_ands = field("AND")?;
    if toks.next().is_some() {
        return Err(ParseAigerError::new(hline, "trailing tokens after header"));
    }
    if max_var > MAX_VARS {
        return Err(ParseAigerError::new(
            hline,
            format!("maximum variable {max_var} exceeds the supported limit {MAX_VARS}"),
        ));
    }
    let declared = num_inputs
        .checked_add(num_latches)
        .and_then(|s| s.checked_add(num_ands));
    match declared {
        Some(d) if d <= max_var => {}
        _ => {
            return Err(ParseAigerError::new(
                hline,
                format!(
                    "maximum variable {max_var} cannot hold {num_inputs} inputs + \
                     {num_latches} latches + {num_ands} ANDs"
                ),
            ))
        }
    }
    let max_lit = 2 * max_var + 1;

    let mut file = AigerFile {
        inputs: Vec::new(),
        latches: Vec::new(),
        outputs: Vec::new(),
        ands: Vec::new(),
        symbols: HashMap::new(),
        max_var,
    };

    let expect_line =
        |cur: &mut Cursor<'_>, what: &str| -> Result<(usize, String), ParseAigerError> {
            match cur.next_line()? {
                Some((n, l)) => Ok((n, l.to_string())),
                None => Err(ParseAigerError::new(
                    cur.line,
                    format!("unexpected end of file: missing {what}"),
                )),
            }
        };

    // -- Inputs: explicit literal lines in `aag`, implicit 2..2I in `aig`.
    if binary {
        for k in 0..num_inputs {
            file.inputs.push(2 * (k + 1));
        }
    } else {
        for k in 0..num_inputs {
            let (n, line) = expect_line(&mut cur, "input definition")?;
            let lit = parse_u64(n, line.trim(), "input literal")?;
            if lit % 2 != 0 || lit == 0 || lit > max_lit {
                return Err(ParseAigerError::new(
                    n,
                    format!("input {k}: literal {lit} is not a valid variable literal"),
                ));
            }
            file.inputs.push(lit);
        }
    }

    // -- Latches: `lhs next [init]` in `aag`, `next [init]` in `aig`.
    for k in 0..num_latches {
        let (n, line) = expect_line(&mut cur, "latch definition")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let (lhs, rest) = if binary {
            (2 * (num_inputs + k + 1), toks.as_slice())
        } else {
            let Some((first, rest)) = toks.split_first() else {
                return Err(ParseAigerError::new(n, format!("latch {k}: empty line")));
            };
            let lhs = parse_u64(n, first, "latch literal")?;
            if lhs % 2 != 0 || lhs == 0 || lhs > max_lit {
                return Err(ParseAigerError::new(
                    n,
                    format!("latch {k}: literal {lhs} is not a valid variable literal"),
                ));
            }
            (lhs, rest)
        };
        let (next_tok, init_tok) = match rest {
            [next] => (*next, None),
            [next, init] => (*next, Some(*init)),
            _ => {
                return Err(ParseAigerError::new(
                    n,
                    format!("latch {k}: expected `next [init]`, got `{line}`"),
                ))
            }
        };
        let next = parse_u64(n, next_tok, "latch next-state literal")?;
        if next > max_lit {
            return Err(ParseAigerError::new(
                n,
                format!("latch {k}: next-state literal {next} is out of range"),
            ));
        }
        let init = match init_tok {
            None | Some("0") => false,
            Some("1") => true,
            Some(other) if parse_u64(n, other, "latch init")? == lhs => false, // "uninitialized"
            Some(other) => {
                return Err(ParseAigerError::new(
                    n,
                    format!("latch {k}: init `{other}` is not 0, 1 or the latch literal"),
                ))
            }
        };
        file.latches.push((lhs, next, init));
    }

    // -- Outputs.
    for k in 0..num_outputs {
        let (n, line) = expect_line(&mut cur, "output definition")?;
        let lit = parse_u64(n, line.trim(), "output literal")?;
        if lit > max_lit {
            return Err(ParseAigerError::new(
                n,
                format!("output {k}: literal {lit} is out of range"),
            ));
        }
        file.outputs.push(lit);
    }

    // -- ANDs: `lhs rhs0 rhs1` lines in `aag`, delta pairs in `aig`.
    if binary {
        let section_line = cur.line;
        for k in 0..num_ands {
            let lhs = 2 * (num_inputs + num_latches + k + 1);
            let delta0 = cur.next_delta("AND definitions")?;
            let delta1 = cur.next_delta("AND definitions")?;
            let Some(rhs0) = lhs.checked_sub(delta0) else {
                return Err(ParseAigerError::new(
                    section_line,
                    format!("AND {k}: rhs0 delta {delta0} underflows lhs {lhs}"),
                ));
            };
            let Some(rhs1) = rhs0.checked_sub(delta1) else {
                return Err(ParseAigerError::new(
                    section_line,
                    format!("AND {k}: rhs1 delta {delta1} underflows rhs0 {rhs0}"),
                ));
            };
            if delta0 == 0 {
                return Err(ParseAigerError::new(
                    section_line,
                    format!("AND {k}: rhs0 must be smaller than lhs {lhs}"),
                ));
            }
            file.ands.push((lhs, rhs0, rhs1));
        }
    } else {
        for k in 0..num_ands {
            let (n, line) = expect_line(&mut cur, "AND definition")?;
            let toks: Vec<&str> = line.split_whitespace().collect();
            let [lhs_tok, rhs0_tok, rhs1_tok] = toks.as_slice() else {
                return Err(ParseAigerError::new(
                    n,
                    format!("AND {k}: expected `lhs rhs0 rhs1`, got `{line}`"),
                ));
            };
            let lhs = parse_u64(n, lhs_tok, "AND lhs literal")?;
            let rhs0 = parse_u64(n, rhs0_tok, "AND rhs0 literal")?;
            let rhs1 = parse_u64(n, rhs1_tok, "AND rhs1 literal")?;
            if lhs % 2 != 0 || lhs == 0 || lhs > max_lit {
                return Err(ParseAigerError::new(
                    n,
                    format!("AND {k}: lhs {lhs} is not a valid variable literal"),
                ));
            }
            if rhs0 >= lhs || rhs1 >= lhs {
                return Err(ParseAigerError::new(
                    n,
                    format!("AND {k}: operands must be smaller than lhs ({lhs} {rhs0} {rhs1})"),
                ));
            }
            file.ands.push((lhs, rhs0, rhs1));
        }
    }

    // -- Symbol table + comments.
    while let Some((n, line)) = cur.next_line()? {
        let line = line.trim_end();
        if line == "c" {
            break; // comment section: everything after is free-form
        }
        if line.is_empty() {
            continue;
        }
        let Some((tag, name)) = line.split_once(' ') else {
            return Err(ParseAigerError::new(
                n,
                format!("malformed symbol line `{line}`"),
            ));
        };
        // Byte-wise split: `tag` is untrusted, so it may be empty or start
        // with a multi-byte character, either of which `split_at(1)` would
        // panic on.
        let (kind, index) = match tag.as_bytes().first() {
            Some(&k @ (b'i' | b'l' | b'o')) => {
                (k, parse_u64(n, &tag[1..], "symbol index")? as usize)
            }
            _ => {
                return Err(ParseAigerError::new(
                    n,
                    format!("symbol tag `{tag}` is not i<k>, l<k> or o<k>"),
                ))
            }
        };
        let count = match kind {
            b'i' => file.inputs.len(),
            b'l' => file.latches.len(),
            _ => file.outputs.len(),
        };
        if index >= count {
            return Err(ParseAigerError::new(
                n,
                format!("symbol `{tag}` is out of range (only {count} declared)"),
            ));
        }
        file.symbols.insert((kind, index), name.to_string());
    }

    build_aig(file)
}

/// Second phase: turn the parsed file into an [`Aig`]. ANDs are committed
/// in ascending-lhs order, which the `rhs < lhs` rule makes topological.
fn build_aig(mut file: AigerFile) -> Result<Aig, ParseAigerError> {
    let mut aig = Aig::new("aiger");
    // map[var] = the AIG literal driving AIGER variable `var`.
    let mut map: Vec<Option<Lit>> = vec![None; file.max_var as usize + 1];
    map[0] = Some(Lit::FALSE);

    let define = |map: &mut Vec<Option<Lit>>, lit: u64, value: Lit, what: String| {
        let var = (lit >> 1) as usize;
        if map[var].is_some() {
            return Err(ParseAigerError::new(
                0,
                format!("{what}: variable {var} is defined twice"),
            ));
        }
        map[var] = Some(value);
        Ok(())
    };

    let name_of = |symbols: &HashMap<(u8, usize), String>, kind: u8, index: usize| -> String {
        symbols
            .get(&(kind, index))
            .cloned()
            .unwrap_or_else(|| format!("{}{index}", kind as char))
    };

    for (k, &lit) in file.inputs.iter().enumerate() {
        let l = aig.input(name_of(&file.symbols, b'i', k));
        define(&mut map, lit, l, format!("input {k}"))?;
    }
    for (k, &(lhs, _, init)) in file.latches.iter().enumerate() {
        let l = aig.latch(name_of(&file.symbols, b'l', k), init);
        define(&mut map, lhs, l, format!("latch {k}"))?;
    }

    // Ascending-lhs order + `rhs < lhs` ⇒ every operand is already mapped.
    file.ands.sort_by_key(|&(lhs, _, _)| lhs);
    let resolve = |map: &[Option<Lit>], lit: u64, what: &str| -> Result<Lit, ParseAigerError> {
        let var = (lit >> 1) as usize;
        let Some(base) = map[var] else {
            return Err(ParseAigerError::new(
                0,
                format!("{what}: variable {var} is used but never defined"),
            ));
        };
        Ok(base.complement_if(lit & 1 == 1))
    };
    for &(lhs, rhs0, rhs1) in &file.ands {
        let a = resolve(&map, rhs0, "AND operand")?;
        let b = resolve(&map, rhs1, "AND operand")?;
        let value = aig.and(a, b);
        define(&mut map, lhs, value, format!("AND {}", lhs >> 1))?;
    }

    for (k, &(lhs, next, _)) in file.latches.iter().enumerate() {
        let next = resolve(&map, next, &format!("latch {k} next-state"))?;
        let q = resolve(&map, lhs, &format!("latch {k}"))?;
        aig.set_latch_next(q, next);
    }
    for (k, &lit) in file.outputs.iter().enumerate() {
        let value = resolve(&map, lit, &format!("output {k}"))?;
        aig.output(name_of(&file.symbols, b'o', k), value);
    }
    Ok(aig)
}

/// Write an AIG in ASCII AIGER (`aag`) form, with a full symbol table.
/// Inputs take variables `1..=I`, latches the next `L`, ANDs the rest in
/// topological node order — so the output always satisfies the reader's
/// `rhs < lhs` rule and round-trips.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_aiger<W: Write>(aig: &Aig, mut w: W) -> std::io::Result<()> {
    let num_inputs = aig.num_inputs() as u64;
    let num_latches = aig.num_latches() as u64;
    let and_ids: Vec<crate::NodeId> = aig.and_ids().collect();
    let max_var = num_inputs + num_latches + and_ids.len() as u64;

    // AIGER variable per AIG node.
    let mut var: Vec<u64> = vec![0; aig.num_nodes()];
    for (k, kind) in aig.nodes().iter().enumerate() {
        match *kind {
            crate::NodeKind::Input { index } => var[k] = 1 + u64::from(index),
            crate::NodeKind::Latch { index } => var[k] = 1 + num_inputs + u64::from(index),
            _ => {}
        }
    }
    for (k, &id) in and_ids.iter().enumerate() {
        var[id.index()] = num_inputs + num_latches + 1 + k as u64;
    }
    let lit = |l: Lit| -> u64 { 2 * var[l.node().index()] + u64::from(l.is_complement()) };

    writeln!(
        w,
        "aag {max_var} {num_inputs} {num_latches} {} {}",
        aig.num_outputs(),
        and_ids.len()
    )?;
    for k in 0..aig.num_inputs() {
        writeln!(w, "{}", 2 * (1 + k as u64))?;
    }
    for latch in aig.latches() {
        writeln!(
            w,
            "{} {} {}",
            lit(latch.output.lit()),
            lit(latch.next),
            u8::from(latch.init)
        )?;
    }
    for o in aig.outputs() {
        writeln!(w, "{}", lit(o.lit))?;
    }
    for &id in &and_ids {
        let (a, b) = aig.and_fanins(id);
        let (l0, l1) = (lit(a), lit(b));
        let (hi, lo) = if l0 >= l1 { (l0, l1) } else { (l1, l0) };
        writeln!(w, "{} {hi} {lo}", 2 * var[id.index()])?;
    }
    for k in 0..aig.num_inputs() {
        writeln!(w, "i{k} {}", aig.input_name(k))?;
    }
    for (k, latch) in aig.latches().iter().enumerate() {
        writeln!(w, "l{k} {}", latch.name)?;
    }
    for (k, o) in aig.outputs().iter().enumerate() {
        writeln!(w, "o{k} {}", o.name)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    #[test]
    fn parse_ascii_full_adder() {
        // The canonical aag full adder from the AIGER spec family.
        // Half adder over a,b (input 3 and variable 6 are deliberate gaps):
        // 8 = a&b (carry), 10 = !a&!b, 14 = !8 & !10 = a^b (sum).
        let text = "\
aag 7 3 0 2 3
2
4
6
8
14
8 2 4
10 3 5
14 9 11
i0 a
i1 b
o0 c
o1 s
";
        let aig = read_aiger(text.as_bytes()).unwrap();
        assert_eq!(aig.num_inputs(), 3);
        assert_eq!(aig.num_outputs(), 2);
        assert_eq!(aig.num_ands(), 3);
        assert_eq!(aig.input_name(0), "a");
        assert_eq!(aig.outputs()[0].name, "c");
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = sim::eval_outputs(&aig, &[a, b, false]);
            assert_eq!(out[0], a && b, "carry({a},{b})");
            assert_eq!(out[1], a ^ b, "sum({a},{b})");
        }
    }

    #[test]
    fn parse_binary_and_gate() {
        // aig 3 2 0 1 1: single AND of the two inputs. lhs = 6,
        // rhs0 = 4, rhs1 = 2 → deltas 2 and 2.
        let mut data = Vec::new();
        data.extend_from_slice(b"aig 3 2 0 1 1\n6\n");
        data.extend_from_slice(&[2, 2]);
        let aig = read_aiger(data.as_slice()).unwrap();
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.num_ands(), 1);
        for (a, b) in [(false, false), (true, false), (true, true)] {
            assert_eq!(sim::eval_outputs(&aig, &[a, b]), [a && b]);
        }
    }

    #[test]
    fn roundtrip_through_aag() {
        let mut g = Aig::new("rt");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = crate::build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let mut buf = Vec::new();
        write_aiger(&g, &mut buf).unwrap();
        let back = read_aiger(buf.as_slice()).unwrap();
        assert_eq!(back.num_inputs(), 3);
        assert_eq!(back.input_name(2), "cin");
        assert!(sim::random_equiv(&g, &back, 8, 1));
    }

    #[test]
    fn roundtrip_latches_through_aag() {
        let mut g = Aig::new("cnt");
        let q0 = g.latch("q0", true);
        let q1 = g.latch("q1", false);
        g.set_latch_next(q0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_latch_next(q1, n1);
        g.output("o", q1);
        let mut buf = Vec::new();
        write_aiger(&g, &mut buf).unwrap();
        let back = read_aiger(buf.as_slice()).unwrap();
        assert_eq!(back.num_latches(), 2);
        assert!(back.latches()[0].init);
        assert!(!back.latches()[1].init);
        let mut a = sim::SeqSim::new(&g);
        let mut b = sim::SeqSim::new(&back);
        for _ in 0..8 {
            assert_eq!(a.step(&[]), b.step(&[]));
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        // Input literal on line 2 is odd.
        let err = read_aiger("aag 1 1 0 0 0\n3\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 2);
        // AND on line 3 violates rhs < lhs.
        let err = read_aiger("aag 2 1 0 0 1\n2\n4 6 2\n".as_bytes()).unwrap_err();
        assert_eq!(err.line(), 3);
        assert!(err.to_string().contains("smaller than lhs"));
        // Truncated file: missing AND definition.
        let err = read_aiger("aag 2 1 0 0 1\n2\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("end of file"));
    }

    #[test]
    fn malformed_symbol_tags_error_instead_of_panicking() {
        let base = "aag 1 1 0 1 0\n2\n2\n";
        // Empty tag (line starts with a space), a multi-byte first
        // character, and a plain unknown tag: all must return Err — the
        // first two used to panic in `str::split_at(1)`.
        for sym in [" 0", "é0 x", "q0 n"] {
            let text = format!("{base}{sym}\n");
            let err = read_aiger(text.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("symbol"), "{sym}: {err}");
        }
        // A tag that is only the kind letter (no index digits) errors too.
        let err = read_aiger(format!("{base}i x\n").as_bytes()).unwrap_err();
        assert_eq!(err.line(), 4);
    }

    #[test]
    fn oversized_header_is_rejected_without_allocating() {
        let text = format!("aag {} {} 0 0 0\n", u64::MAX / 2, u64::MAX / 2);
        let err = read_aiger(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("limit"), "{err}");
        // Header counts that don't fit in M are rejected too.
        let err = read_aiger("aag 1 2 0 0 0\n2\n4\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("cannot hold"), "{err}");
    }
}
