//! Composable pass manager: first-class optimization passes, ABC-style
//! scripts, and per-pass telemetry.
//!
//! The paper's flow (§3.1.3) runs a fixed ABC recipe. This module makes the
//! recipe a value instead of a hard-coded loop:
//!
//! * [`Pass`] — one transformation (`balance`, `rewrite`, …) with a name,
//!   run against a [`PassCtx`] that carries the executor pool, the shared
//!   per-worker synthesis arenas, and the telemetry sink.
//! * [`PassRegistry`] — name → pass factory. [`PassRegistry::structural`]
//!   registers the built-in AIG passes; downstream crates register more
//!   (`xsfq-sat` adds `fraig`).
//! * [`Script`] — a parsed ABC-style pass script (`"b; rw; rf; b; rwz;
//!   rw"`), with a `repeat N { … }` keep-best construct and the named
//!   presets `fast` / `standard` / `high` that expand to **bit-identical**
//!   sequences to the legacy [`Effort`](crate::opt::Effort) paths (pinned
//!   by the `script_golden` test suite).
//! * [`PassStat`] — per-pass telemetry (wall time, node/depth deltas,
//!   commit counts) recorded by the script engine and surfaced through the
//!   flow report and `perf_summary`.
//!
//! # Script grammar
//!
//! ```text
//! script :=  stmt (';' stmt)*            -- empty statements are ignored
//! stmt   :=  'repeat' INT '{' script '}'
//!         |  PRESET                       -- fast | standard | high (inlined)
//!         |  PASS ARG*                    -- e.g. "rf -K 10"
//! ```
//!
//! Built-in pass names (aliases in parentheses): `b` (`balance`), `rw`
//! (`rewrite`), `rwz` (`rewrite_zero`), `rf` (`refactor`, optional
//! `-K <2..=12>` cut size), `c` (`cleanup`). The synthesis flow also
//! registers `f` (`fraig`). A `repeat N { body }` block runs `body` up to
//! `N` times starting from its input, keeps the best graph seen (fewest AND
//! nodes, ties broken by depth), and stops early when a round fails to
//! shrink the graph — exactly the legacy `optimize` loop.
//!
//! ```
//! use xsfq_aig::pass::{PassCtx, PassRegistry, Script};
//! use xsfq_aig::{build, Aig};
//! use xsfq_exec::ThreadPool;
//!
//! let mut g = Aig::new("fa");
//! let a = g.input("a");
//! let b = g.input("b");
//! let c = g.input("cin");
//! let (s, co) = build::full_adder(&mut g, a, b, c);
//! g.output("s", s);
//! g.output("cout", co);
//!
//! let script = Script::parse("b; rw; rf; b; rwz; rw").unwrap();
//! let compiled = script.compile(&PassRegistry::structural()).unwrap();
//! let mut ctx = PassCtx::new(ThreadPool::global());
//! let out = compiled.run(&g, &mut ctx);
//! assert!(out.num_ands() <= g.num_ands());
//! assert_eq!(ctx.telemetry().len(), 6, "one stat per executed pass");
//! ```

use std::error::Error;
use std::fmt;
use std::time::Instant;

use crate::cuts::CutArena;
use crate::opt::{self, EvalScratch};
use crate::Aig;
use xsfq_exec::ThreadPool;

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Per-pass telemetry recorded by the script engine.
#[derive(Clone, Debug)]
pub struct PassStat {
    /// Canonical pass name as scripted (e.g. `"rf -K 10"`).
    pub name: String,
    /// Wall-clock time of the pass in nanoseconds.
    pub wall_ns: u64,
    /// AND nodes before the pass.
    pub nodes_before: usize,
    /// AND nodes after the pass.
    pub nodes_after: usize,
    /// AIG depth before the pass.
    pub depth_before: usize,
    /// AIG depth after the pass.
    pub depth_after: usize,
    /// Pass-specific commit counter: accepted cut replacements for the
    /// resynthesis passes, rebuilt super-gates for `balance`, proven merges
    /// for `fraig`, zero for `cleanup`.
    pub commits: u64,
}

impl fmt::Display for PassStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} nodes, depth {} -> {}, {} commits, {:.2} ms",
            self.name,
            self.nodes_before,
            self.nodes_after,
            self.depth_before,
            self.depth_after,
            self.commits,
            self.wall_ns as f64 / 1e6,
        )
    }
}

/// Observer hook invoked after every executed pass.
pub trait PassObserver {
    /// Called once per executed pass, in execution order.
    fn on_pass(&mut self, stat: &PassStat);
}

// ---------------------------------------------------------------------------
// PassCtx
// ---------------------------------------------------------------------------

/// The reusable arena set of a [`PassCtx`]: one evaluate-phase arena (cut
/// scratch + synthesizer) per pool participant plus the shared CSR
/// [`CutArena`] the rewrite passes enumerate into.
///
/// Detach it with [`PassCtx::take_arenas`] and re-install it with
/// [`PassCtx::reuse_arenas`] to keep the buffers (and the pure-function
/// cost memos) warm across whole designs — the flow's `run_many` keeps one
/// `PassArenas` per executor worker for an entire batch. Sharing arenas
/// never changes results: everything they cache is a pure function of its
/// inputs.
#[derive(Default)]
pub struct PassArenas {
    arenas: Vec<EvalScratch>,
    cut_arena: CutArena,
}

impl fmt::Debug for PassArenas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassArenas")
            .field("workers", &self.arenas.len())
            .field("cut_capacity", &self.cut_arena.total_cuts())
            .finish()
    }
}

/// Execution context threaded through every pass of a script run.
///
/// Carries the executor pool, one evaluate-phase arena
/// (cut scratch + synthesizer) per pool participant — shared across passes
/// so cost memos stay warm for the whole script — the shared CSR cut arena,
/// the commit counter passes report into, and the telemetry sink. Arena
/// sharing cannot change results: the memoized synthesis costs are pure
/// functions of the truth table (the invariant the `parallel_identity` and
/// `script_golden` suites pin).
pub struct PassCtx<'p, 'o> {
    pool: &'p ThreadPool,
    pub(crate) arenas: Vec<EvalScratch>,
    pub(crate) cut_arena: CutArena,
    commits: u64,
    telemetry: Vec<PassStat>,
    observer: Option<&'o mut dyn PassObserver>,
}

impl<'p, 'o> PassCtx<'p, 'o> {
    /// Context running on `pool`, with one evaluate arena per participant.
    pub fn new(pool: &'p ThreadPool) -> Self {
        PassCtx {
            pool,
            arenas: (0..pool.num_threads())
                .map(|_| EvalScratch::default())
                .collect(),
            cut_arena: CutArena::new(),
            commits: 0,
            telemetry: Vec::new(),
            observer: None,
        }
    }

    /// [`PassCtx::new`] with an observer notified after every pass.
    pub fn with_observer(pool: &'p ThreadPool, observer: &'o mut dyn PassObserver) -> Self {
        let mut ctx = PassCtx::new(pool);
        ctx.observer = Some(observer);
        ctx
    }

    /// Install a previously detached arena set (topped up to one evaluate
    /// arena per pool participant). Reusing arenas across designs keeps the
    /// cut storage and synthesis memos warm without changing any result.
    pub fn reuse_arenas(&mut self, arenas: PassArenas) {
        let PassArenas {
            mut arenas,
            cut_arena,
        } = arenas;
        while arenas.len() < self.pool.num_threads() {
            arenas.push(EvalScratch::default());
        }
        self.arenas = arenas;
        self.cut_arena = cut_arena;
    }

    /// Detach the arena set for reuse by a later context (the context keeps
    /// working with fresh, empty arenas).
    pub fn take_arenas(&mut self) -> PassArenas {
        let taken = PassArenas {
            arenas: std::mem::take(&mut self.arenas),
            cut_arena: std::mem::take(&mut self.cut_arena),
        };
        // Keep the context runnable: one (empty) evaluate arena per
        // participant, as `new` would have built.
        self.arenas = (0..self.pool.num_threads())
            .map(|_| EvalScratch::default())
            .collect();
        taken
    }

    /// The executor pool passes should fan their evaluate phases across.
    pub fn pool(&self) -> &'p ThreadPool {
        self.pool
    }

    /// Report `n` committed transformations (accepted replacements, merges,
    /// rebuilt trees) for the currently running pass.
    pub fn add_commits(&mut self, n: u64) {
        self.commits += n;
    }

    /// Telemetry of every pass executed through this context so far.
    pub fn telemetry(&self) -> &[PassStat] {
        &self.telemetry
    }

    /// Drain the recorded telemetry.
    pub fn take_telemetry(&mut self) -> Vec<PassStat> {
        std::mem::take(&mut self.telemetry)
    }

    /// Run one pass with telemetry: time it, diff node/depth counts, and
    /// attribute the commit counter delta.
    fn run_instrumented(&mut self, pass: &dyn Pass, aig: &Aig) -> Aig {
        let nodes_before = aig.num_ands();
        let depth_before = aig.depth();
        let commits_before = self.commits;
        let start = Instant::now();
        let out = pass.run(aig, self);
        let stat = PassStat {
            name: pass.name().to_string(),
            wall_ns: start.elapsed().as_nanos() as u64,
            nodes_before,
            nodes_after: out.num_ands(),
            depth_before,
            depth_after: out.depth(),
            commits: self.commits - commits_before,
        };
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_pass(&stat);
        }
        self.telemetry.push(stat);
        out
    }
}

impl fmt::Debug for PassCtx<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassCtx")
            .field("threads", &self.pool.num_threads())
            .field("commits", &self.commits)
            .field("passes_run", &self.telemetry.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Pass trait + built-in passes
// ---------------------------------------------------------------------------

/// One named AIG transformation.
///
/// Passes must preserve the PI/PO/latch interface and the function of every
/// output (scripted flows are CEC-checked against their source in the test
/// suites), and must be deterministic for every pool size — evaluate in
/// parallel, commit in a canonical order (see `xsfq_exec`'s module docs).
pub trait Pass: Send + Sync {
    /// Canonical scripted name (used in telemetry and error messages).
    fn name(&self) -> &str;
    /// Apply the pass.
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig;
}

struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &str {
        "b"
    }
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        let (out, commits) = opt::balance_counted(aig, ctx.pool());
        ctx.add_commits(commits);
        out
    }
}

struct RewritePass {
    zero_gain: bool,
}

impl Pass for RewritePass {
    fn name(&self) -> &str {
        if self.zero_gain {
            "rwz"
        } else {
            "rw"
        }
    }
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        opt::rewrite_ctx(aig, self.zero_gain, ctx)
    }
}

struct RefactorPass {
    k: usize,
    name: String,
}

impl RefactorPass {
    fn new(k: usize) -> Self {
        RefactorPass {
            name: if k == 8 {
                "rf".to_string()
            } else {
                format!("rf -K {k}")
            },
            k,
        }
    }
}

impl Pass for RefactorPass {
    fn name(&self) -> &str {
        &self.name
    }
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        opt::refactor_ctx(aig, self.k, ctx)
    }
}

struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &str {
        "c"
    }
    fn run(&self, aig: &Aig, _ctx: &mut PassCtx) -> Aig {
        aig.compact()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A pass factory: builds a pass instance from its script arguments.
pub type PassFactory = Box<dyn Fn(&[String]) -> Result<Box<dyn Pass>, ScriptError> + Send + Sync>;

/// Name → pass factory registry a [`Script`] is compiled against.
///
/// [`PassRegistry::structural`] covers the built-in AIG passes; crates that
/// own heavier passes extend it (`xsfq_sat::pass::register` adds `fraig`,
/// and `xsfq_core::flow_registry` returns the full synthesis-flow set).
#[derive(Default)]
pub struct PassRegistry {
    entries: Vec<(Vec<&'static str>, PassFactory)>,
}

impl PassRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry of the built-in structural passes: `b`/`balance`,
    /// `rw`/`rewrite`, `rwz`/`rewrite_zero`, `rf`/`refactor` (optional
    /// `-K <cut size>`), `c`/`cleanup`.
    pub fn structural() -> Self {
        let mut reg = Self::new();
        reg.register(&["b", "balance"], |args| {
            no_args("b", args)?;
            Ok(Box::new(BalancePass))
        });
        reg.register(&["rw", "rewrite"], |args| {
            no_args("rw", args)?;
            Ok(Box::new(RewritePass { zero_gain: false }))
        });
        reg.register(&["rwz", "rewrite_zero"], |args| {
            no_args("rwz", args)?;
            Ok(Box::new(RewritePass { zero_gain: true }))
        });
        reg.register(&["rf", "refactor"], |args| {
            let k = match args {
                [] => 8,
                [flag, value] if flag == "-K" => {
                    value.parse::<usize>().map_err(|_| ScriptError::BadArgs {
                        pass: "rf".into(),
                        msg: format!("cut size `{value}` is not a number"),
                    })?
                }
                _ => {
                    return Err(ScriptError::BadArgs {
                        pass: "rf".into(),
                        msg: format!("expected `rf` or `rf -K <k>`, got args {args:?}"),
                    })
                }
            };
            if !(2..=12).contains(&k) {
                return Err(ScriptError::BadArgs {
                    pass: "rf".into(),
                    msg: format!("cut size {k} outside 2..=12"),
                });
            }
            Ok(Box::new(RefactorPass::new(k)))
        });
        reg.register(&["c", "cleanup"], |args| {
            no_args("c", args)?;
            Ok(Box::new(CleanupPass))
        });
        reg
    }

    /// Register a pass under one or more aliases. Later registrations win
    /// on alias collision.
    /// # Panics
    ///
    /// Panics when an alias is one of the script parser's reserved words
    /// (`repeat`, `fast`, `standard`, `high`, `{`, `}`, `;`) — the parser
    /// intercepts those before registry lookup, so such a pass could never
    /// be invoked from a script.
    pub fn register(
        &mut self,
        aliases: &[&'static str],
        factory: impl Fn(&[String]) -> Result<Box<dyn Pass>, ScriptError> + Send + Sync + 'static,
    ) {
        const RESERVED: [&str; 7] = ["repeat", "fast", "standard", "high", "{", "}", ";"];
        for alias in aliases {
            assert!(
                !RESERVED.contains(alias),
                "`{alias}` is reserved by the script grammar and cannot name a pass"
            );
        }
        self.entries
            .insert(0, (aliases.to_vec(), Box::new(factory)));
    }

    /// Build the pass registered under `name` with `args`.
    pub fn build(&self, name: &str, args: &[String]) -> Result<Box<dyn Pass>, ScriptError> {
        for (aliases, factory) in &self.entries {
            if aliases.contains(&name) {
                return factory(args);
            }
        }
        Err(ScriptError::UnknownPass(name.to_string()))
    }

    /// Every *effective* alias (for diagnostics): lookup order, shadowed
    /// registrations omitted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for (aliases, _) in &self.entries {
            for alias in aliases {
                if !names.contains(alias) {
                    names.push(alias);
                }
            }
        }
        names
    }
}

impl fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassRegistry")
            .field("passes", &self.names())
            .finish()
    }
}

fn no_args(pass: &str, args: &[String]) -> Result<(), ScriptError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(ScriptError::BadArgs {
            pass: pass.to_string(),
            msg: format!("takes no arguments, got {args:?}"),
        })
    }
}

// ---------------------------------------------------------------------------
// Script errors
// ---------------------------------------------------------------------------

/// Error from parsing or compiling a [`Script`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptError {
    /// The script text does not match the grammar.
    Parse(String),
    /// A pass name is not in the registry the script was compiled against.
    UnknownPass(String),
    /// A pass rejected its arguments.
    BadArgs {
        /// Pass name.
        pass: String,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse(msg) => write!(f, "script parse error: {msg}"),
            ScriptError::UnknownPass(name) => write!(f, "unknown pass `{name}`"),
            ScriptError::BadArgs { pass, msg } => write!(f, "pass `{pass}`: {msg}"),
        }
    }
}

impl Error for ScriptError {}

// ---------------------------------------------------------------------------
// Script AST + parser
// ---------------------------------------------------------------------------

/// One statement of a [`Script`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptStmt {
    /// Run one pass.
    Pass {
        /// Registered pass name.
        name: String,
        /// Arguments (e.g. `["-K", "10"]`).
        args: Vec<String>,
    },
    /// Keep-best loop: run `body` up to `times` times starting from the
    /// incoming graph, keep the best result (fewest AND nodes, ties broken
    /// by depth), stop early when a round does not shrink the best graph.
    Repeat {
        /// Maximum rounds.
        times: usize,
        /// Statements run each round.
        body: Vec<ScriptStmt>,
    },
}

/// A parsed, registry-independent pass script. See the
/// [module docs](self) for the grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Script {
    stmts: Vec<ScriptStmt>,
}

impl Script {
    /// Parse an ABC-style script. Preset names (`fast`, `standard`,
    /// `high`) appearing as statements are inlined.
    pub fn parse(text: &str) -> Result<Script, ScriptError> {
        let tokens = tokenize(text);
        let mut pos = 0;
        let stmts = parse_stmts(&tokens, &mut pos, false)?;
        if pos != tokens.len() {
            return Err(ScriptError::Parse(format!("unexpected `{}`", tokens[pos])));
        }
        Ok(Script { stmts })
    }

    /// The named preset (`"fast"`, `"standard"`, `"high"`), if any.
    pub fn named(name: &str) -> Option<Script> {
        let effort = match name {
            "fast" => opt::Effort::Fast,
            "standard" => opt::Effort::Standard,
            "high" => opt::Effort::High,
            _ => return None,
        };
        Some(Script::preset(effort))
    }

    /// The preset script matching a legacy [`Effort`](opt::Effort) level.
    /// Bit-identical to the pre-pass-manager `optimize` paths (pinned by
    /// the `script_golden` suite):
    ///
    /// * `Fast` → `c; repeat 1 { b; rw; rf; b; rwz; rw }`
    /// * `Standard` → `c; repeat 3 { b; rw; rf; b; rwz; rw }`
    /// * `High` → `c; repeat 6 { b; rw; rf -K 10; b; rwz; rw }`
    pub fn preset(effort: opt::Effort) -> Script {
        let (rounds, refactor_k) = match effort {
            opt::Effort::Fast => (1, 8),
            opt::Effort::Standard => (3, 8),
            opt::Effort::High => (6, 10),
        };
        let pass = |name: &str| ScriptStmt::Pass {
            name: name.to_string(),
            args: Vec::new(),
        };
        let refactor = if refactor_k == 8 {
            pass("rf")
        } else {
            ScriptStmt::Pass {
                name: "rf".to_string(),
                args: vec!["-K".to_string(), refactor_k.to_string()],
            }
        };
        Script {
            stmts: vec![
                pass("c"),
                ScriptStmt::Repeat {
                    times: rounds,
                    body: vec![
                        pass("b"),
                        pass("rw"),
                        refactor,
                        pass("b"),
                        pass("rwz"),
                        pass("rw"),
                    ],
                },
            ],
        }
    }

    /// Statements of the script.
    pub fn stmts(&self) -> &[ScriptStmt] {
        &self.stmts
    }

    /// Concatenate two scripts (`self` then `other`).
    #[must_use]
    pub fn then(mut self, other: Script) -> Script {
        self.stmts.extend(other.stmts);
        self
    }

    /// Number of pass invocations an execution performs at most (repeat
    /// bodies count `times` times).
    pub fn max_passes(&self) -> usize {
        fn count(stmts: &[ScriptStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    ScriptStmt::Pass { .. } => 1,
                    ScriptStmt::Repeat { times, body } => times * count(body),
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Resolve every pass against `registry`, producing an executable
    /// script.
    pub fn compile(&self, registry: &PassRegistry) -> Result<CompiledScript, ScriptError> {
        fn compile_stmts(
            stmts: &[ScriptStmt],
            registry: &PassRegistry,
        ) -> Result<Vec<CompiledStmt>, ScriptError> {
            stmts
                .iter()
                .map(|s| match s {
                    ScriptStmt::Pass { name, args } => {
                        Ok(CompiledStmt::Pass(registry.build(name, args)?))
                    }
                    ScriptStmt::Repeat { times, body } => Ok(CompiledStmt::Repeat {
                        times: *times,
                        body: compile_stmts(body, registry)?,
                    }),
                })
                .collect()
        }
        Ok(CompiledScript {
            stmts: compile_stmts(&self.stmts, registry)?,
        })
    }
}

impl Default for Script {
    /// The `standard` preset.
    fn default() -> Self {
        Script::preset(opt::Effort::Standard)
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_stmts(stmts: &[ScriptStmt], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for (i, s) in stmts.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                match s {
                    ScriptStmt::Pass { name, args } => {
                        write!(f, "{name}")?;
                        for a in args {
                            write!(f, " {a}")?;
                        }
                    }
                    ScriptStmt::Repeat { times, body } => {
                        write!(f, "repeat {times} {{ ")?;
                        write_stmts(body, f)?;
                        write!(f, " }}")?;
                    }
                }
            }
            Ok(())
        }
        write_stmts(&self.stmts, f)
    }
}

fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        match ch {
            ';' | '{' | '}' => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
                tokens.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Parse `;`-separated statements until end of input (`in_block == false`)
/// or a closing `}` (`in_block == true`, brace consumed by the caller).
fn parse_stmts(
    tokens: &[String],
    pos: &mut usize,
    in_block: bool,
) -> Result<Vec<ScriptStmt>, ScriptError> {
    let mut stmts = Vec::new();
    loop {
        // Skip statement separators.
        while *pos < tokens.len() && tokens[*pos] == ";" {
            *pos += 1;
        }
        if *pos >= tokens.len() || (in_block && tokens[*pos] == "}") {
            return Ok(stmts);
        }
        let tok = tokens[*pos].as_str();
        match tok {
            "{" | "}" => {
                return Err(ScriptError::Parse(format!("unexpected `{tok}`")));
            }
            "repeat" => {
                *pos += 1;
                let times = tokens
                    .get(*pos)
                    .and_then(|t| t.parse::<usize>().ok())
                    .ok_or_else(|| {
                        ScriptError::Parse("`repeat` needs a round count".to_string())
                    })?;
                if times == 0 {
                    return Err(ScriptError::Parse("`repeat 0` is empty".to_string()));
                }
                *pos += 1;
                if tokens.get(*pos).map(String::as_str) != Some("{") {
                    return Err(ScriptError::Parse("`repeat N` needs a `{ … }` body".into()));
                }
                *pos += 1;
                let body = parse_stmts(tokens, pos, true)?;
                if tokens.get(*pos).map(String::as_str) != Some("}") {
                    return Err(ScriptError::Parse("unclosed `{`".to_string()));
                }
                *pos += 1;
                if body.is_empty() {
                    return Err(ScriptError::Parse("empty `repeat` body".to_string()));
                }
                stmts.push(ScriptStmt::Repeat { times, body });
            }
            preset @ ("fast" | "standard" | "high") => {
                *pos += 1;
                stmts.extend(Script::named(preset).expect("preset exists").stmts);
            }
            _ => {
                let name = tok.to_string();
                *pos += 1;
                let mut args = Vec::new();
                // Arguments run to the next separator.
                while *pos < tokens.len() {
                    match tokens[*pos].as_str() {
                        ";" | "{" | "}" => break,
                        a => {
                            args.push(a.to_string());
                            *pos += 1;
                        }
                    }
                }
                stmts.push(ScriptStmt::Pass { name, args });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled script + execution
// ---------------------------------------------------------------------------

enum CompiledStmt {
    Pass(Box<dyn Pass>),
    Repeat {
        times: usize,
        body: Vec<CompiledStmt>,
    },
}

/// A [`Script`] resolved against a [`PassRegistry`], ready to run.
///
/// Compiled scripts are `Sync`, so one compilation can drive many designs
/// concurrently (the flow's `run_many` does exactly that).
pub struct CompiledScript {
    stmts: Vec<CompiledStmt>,
}

impl CompiledScript {
    /// Execute the script, recording one [`PassStat`] per executed pass
    /// into `ctx`. The output is bit-identical for every pool size.
    pub fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        run_seq(&self.stmts, aig, ctx)
    }
}

impl fmt::Debug for CompiledScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn count(stmts: &[CompiledStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    CompiledStmt::Pass(_) => 1,
                    CompiledStmt::Repeat { body, .. } => count(body),
                })
                .sum()
        }
        f.debug_struct("CompiledScript")
            .field("distinct_passes", &count(&self.stmts))
            .finish()
    }
}

fn run_seq(stmts: &[CompiledStmt], aig: &Aig, ctx: &mut PassCtx) -> Aig {
    let Some(first) = stmts.first() else {
        return aig.clone();
    };
    let mut cur = run_stmt(first, aig, ctx);
    for stmt in &stmts[1..] {
        cur = run_stmt(stmt, &cur, ctx);
    }
    cur
}

fn run_stmt(stmt: &CompiledStmt, aig: &Aig, ctx: &mut PassCtx) -> Aig {
    match stmt {
        CompiledStmt::Pass(pass) => ctx.run_instrumented(pass.as_ref(), aig),
        CompiledStmt::Repeat { times, body } => {
            // The legacy optimize loop: run the body on the best graph so
            // far, keep the result only when it improves (fewer ANDs, or
            // equal ANDs and lower depth), stop once a round does not
            // shrink the best size.
            let mut best = aig.clone();
            for _ in 0..*times {
                let before = best.num_ands();
                let cur = run_seq(body, &best, ctx);
                if cur.num_ands() < best.num_ands()
                    || (cur.num_ands() == best.num_ands() && cur.depth() < best.depth())
                {
                    best = cur;
                }
                if best.num_ands() >= before {
                    break;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn adder() -> Aig {
        let mut g = Aig::new("add4");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let (s, c) = build::ripple_add(&mut g, &a, &b, crate::Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        g
    }

    #[test]
    fn parse_roundtrips_through_display() {
        for text in [
            "b; rw; rf; b; rwz; rwz",
            "c; repeat 3 { b; rw; rf; b; rwz; rw }",
            "rf -K 10",
            "c; repeat 2 { b; repeat 2 { rw; rwz }; rf }",
        ] {
            let script = Script::parse(text).unwrap();
            let rendered = script.to_string();
            assert_eq!(Script::parse(&rendered).unwrap(), script, "{text}");
        }
    }

    #[test]
    fn presets_parse_by_name() {
        for (name, effort) in [
            ("fast", opt::Effort::Fast),
            ("standard", opt::Effort::Standard),
            ("high", opt::Effort::High),
        ] {
            assert_eq!(Script::parse(name).unwrap(), Script::preset(effort));
            assert_eq!(Script::named(name).unwrap(), Script::preset(effort));
        }
        // Presets inline into surrounding scripts.
        let s = Script::parse("fast; c").unwrap();
        assert_eq!(
            s.stmts().len(),
            Script::preset(opt::Effort::Fast).stmts().len() + 1
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            Script::parse("repeat { b }"),
            Err(ScriptError::Parse(_))
        ));
        assert!(matches!(
            Script::parse("repeat 2 { b"),
            Err(ScriptError::Parse(_))
        ));
        assert!(matches!(
            Script::parse("repeat 2 }"),
            Err(ScriptError::Parse(_))
        ));
        assert!(matches!(
            Script::parse("repeat 2 { }"),
            Err(ScriptError::Parse(_))
        ));
        let reg = PassRegistry::structural();
        assert!(matches!(
            Script::parse("nosuch").unwrap().compile(&reg),
            Err(ScriptError::UnknownPass(_))
        ));
        assert!(matches!(
            Script::parse("rf -K 99").unwrap().compile(&reg),
            Err(ScriptError::BadArgs { .. })
        ));
        assert!(matches!(
            Script::parse("b -K 3").unwrap().compile(&reg),
            Err(ScriptError::BadArgs { .. })
        ));
    }

    #[test]
    fn script_runs_and_records_telemetry() {
        let g = adder();
        let compiled = Script::parse("c; b; rw")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        let out = compiled.run(&g, &mut ctx);
        assert!(out.num_ands() <= g.num_ands());
        let stats = ctx.telemetry();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].name, "c");
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[2].name, "rw");
        assert_eq!(stats[0].nodes_before, g.num_ands());
        assert_eq!(stats[2].nodes_after, out.num_ands());
        // Stats chain: each pass starts where the previous ended.
        assert_eq!(stats[1].nodes_after, stats[2].nodes_before);
    }

    #[test]
    fn observer_sees_every_pass() {
        struct Count(usize);
        impl PassObserver for Count {
            fn on_pass(&mut self, _stat: &PassStat) {
                self.0 += 1;
            }
        }
        let g = adder();
        let compiled = Script::parse("b; rw; b")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut count = Count(0);
        let pool = ThreadPool::new(1);
        let mut ctx = PassCtx::with_observer(&pool, &mut count);
        compiled.run(&g, &mut ctx);
        assert_eq!(ctx.telemetry().len(), 3);
        drop(ctx);
        assert_eq!(count.0, 3);
    }

    #[test]
    fn repeat_keeps_best_and_stops_early() {
        let g = adder();
        let reg = PassRegistry::structural();
        // A repeat of a no-op pass must terminate after one round (no
        // improvement) and return an unchanged graph.
        let compiled = Script::parse("repeat 5 { c }")
            .unwrap()
            .compile(&reg)
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        let out = compiled.run(&g.compact(), &mut ctx);
        assert_eq!(out.nodes(), g.compact().nodes());
        assert_eq!(ctx.telemetry().len(), 1, "early exit after round 1");
    }

    #[test]
    fn context_stays_runnable_after_take_arenas_and_reuse_is_invisible() {
        let g = adder();
        let compiled = Script::parse("b; rw")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let pool = ThreadPool::new(2);
        let mut ctx = PassCtx::new(&pool);
        let a = compiled.run(&g, &mut ctx);
        let arenas = ctx.take_arenas();
        // The drained context must keep working with fresh arenas.
        let b = compiled.run(&g, &mut ctx);
        assert_eq!(a.nodes(), b.nodes());
        // Warm arenas on a new context cannot change the result.
        let mut warm = PassCtx::new(&pool);
        warm.reuse_arenas(arenas);
        let c = compiled.run(&g, &mut warm);
        assert_eq!(a.nodes(), c.nodes());
    }

    #[test]
    #[should_panic(expected = "reserved by the script grammar")]
    fn registering_a_reserved_name_panics() {
        let mut reg = PassRegistry::structural();
        reg.register(&["fast"], |_| Ok(Box::new(CleanupPass)));
    }

    #[test]
    fn max_passes_counts_repeat_expansion() {
        let s = Script::parse("c; repeat 3 { b; rw }").unwrap();
        assert_eq!(s.max_passes(), 1 + 3 * 2);
    }
}
