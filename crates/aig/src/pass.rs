//! Composable pass manager: first-class optimization passes, ABC-style
//! scripts, and per-pass telemetry.
//!
//! The paper's flow (§3.1.3) runs a fixed ABC recipe. This module makes the
//! recipe a value instead of a hard-coded loop:
//!
//! * [`Pass`] — one transformation (`balance`, `rewrite`, …) with a name,
//!   run against a [`PassCtx`] that carries the executor pool, the shared
//!   per-worker synthesis arenas, and the telemetry sink.
//! * [`PassRegistry`] — name → pass factory. [`PassRegistry::structural`]
//!   registers the built-in AIG passes; downstream crates register more
//!   (`xsfq-sat` adds `fraig`).
//! * [`Script`] — a parsed ABC-style pass script (`"b; rw; rf; b; rwz;
//!   rw"`), with a `repeat N { … }` keep-best construct and the named
//!   presets `fast` / `standard` / `high` that expand to **bit-identical**
//!   sequences to the legacy [`Effort`](crate::opt::Effort) paths (pinned
//!   by the `script_golden` test suite).
//! * [`PassStat`] — per-pass telemetry (wall time, node/depth deltas,
//!   commit counts) recorded by the script engine and surfaced through the
//!   flow report and `perf_summary`.
//!
//! # Script grammar
//!
//! ```text
//! script :=  stmt (';' stmt)*            -- empty statements are ignored
//! stmt   :=  'repeat' INT '{' script '}'
//!         |  PRESET                       -- fast | standard | high (inlined)
//!         |  PASS ARG*                    -- e.g. "rf -K 10"
//! ```
//!
//! Built-in pass names (aliases in parentheses): `b` (`balance`), `rw`
//! (`rewrite`), `rwz` (`rewrite_zero`), `rf` (`refactor`, optional
//! `-K <2..=12>` cut size), `c` (`cleanup`). The synthesis flow also
//! registers `f` (`fraig`). A `repeat N { body }` block runs `body` up to
//! `N` times starting from its input, keeps the best graph seen (fewest AND
//! nodes, ties broken by depth), and stops early when a round fails to
//! shrink the graph — exactly the legacy `optimize` loop.
//!
//! ```
//! use xsfq_aig::pass::{PassCtx, PassRegistry, Script};
//! use xsfq_aig::{build, Aig};
//! use xsfq_exec::ThreadPool;
//!
//! let mut g = Aig::new("fa");
//! let a = g.input("a");
//! let b = g.input("b");
//! let c = g.input("cin");
//! let (s, co) = build::full_adder(&mut g, a, b, c);
//! g.output("s", s);
//! g.output("cout", co);
//!
//! let script = Script::parse("b; rw; rf; b; rwz; rw").unwrap();
//! let compiled = script.compile(&PassRegistry::structural()).unwrap();
//! let mut ctx = PassCtx::new(ThreadPool::global());
//! let out = compiled.run(&g, &mut ctx);
//! assert!(out.num_ands() <= g.num_ands());
//! assert_eq!(ctx.telemetry().len(), 6, "one stat per executed pass");
//! ```

use std::error::Error;
use std::fmt;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::cuts::CutArena;
use crate::opt::{self, EvalScratch};
use crate::Aig;
use xsfq_exec::{CancelToken, ThreadPool};

// ---------------------------------------------------------------------------
// Resource guards
// ---------------------------------------------------------------------------

/// Which resource guard rejected a pass's result (see [`PassGuards`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GuardKind {
    /// The pass grew the graph past the node-growth budget.
    NodeGrowth,
    /// The pass overran its wall-time budget.
    WallTime,
    /// A chaos-injected trip (`chaos` feature; tests of the recovery path).
    Injected,
}

impl GuardKind {
    /// Stable lowercase name (telemetry / error messages).
    pub fn name(self) -> &'static str {
        match self {
            GuardKind::NodeGrowth => "node-growth",
            GuardKind::WallTime => "wall-time",
            GuardKind::Injected => "injected",
        }
    }
}

impl fmt::Display for GuardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-pass resource budgets with graceful degradation.
///
/// A pass whose output violates a budget is **rolled back**: its result is
/// discarded and the script continues (or degrades, see below) from the
/// pre-pass graph — the same keep-best idea `repeat { … }` blocks always
/// had, generalized to every pass. What happens to the *rest* of the script
/// depends on [`PassGuards::degrade_to_fast`]:
///
/// * `true` — the remaining script is abandoned and the cheap `fast` preset
///   runs (unguarded) on the rolled-back graph instead; the job still
///   succeeds, with [`PassCtx::degraded`] set and the trip recorded in the
///   tripping pass's [`PassStat::tripped`].
/// * `false` — the script stops at the trip and the caller (the flow's job
///   runner) turns it into a structured guard-trip error.
///
/// Budgets default to `None` (no guard): the checks are a size compare and
/// a clock read per pass, so an unguarded script pays nothing measurable
/// (the `flow/guarded_run` criterion pair pins the <2% envelope).
#[derive(Clone, Debug, Default)]
pub struct PassGuards {
    /// Node-growth budget: the pass output may hold at most
    /// `ceil(nodes_before * factor)` AND nodes. (The structural passes
    /// never grow the graph by construction; this guards registered
    /// third-party passes and chaos-injected growth.)
    pub max_growth: Option<f64>,
    /// Wall-time budget per pass invocation.
    pub wall_budget: Option<Duration>,
    /// On a trip, degrade the remainder of the script to the `fast` preset
    /// instead of stopping with an error.
    pub degrade_to_fast: bool,
}

impl PassGuards {
    /// No budgets, no degradation (the default).
    pub fn none() -> PassGuards {
        PassGuards::default()
    }

    /// Evaluate the budgets against one executed pass.
    fn check(&self, nodes_before: usize, nodes_after: usize, wall: Duration) -> Option<GuardKind> {
        if let Some(factor) = self.max_growth {
            let allowed = (nodes_before as f64 * factor).ceil() as usize;
            if nodes_after > allowed {
                return Some(GuardKind::NodeGrowth);
            }
        }
        if let Some(budget) = self.wall_budget {
            if wall > budget {
                return Some(GuardKind::WallTime);
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Per-pass telemetry recorded by the script engine.
#[derive(Clone, Debug)]
pub struct PassStat {
    /// Canonical pass name as scripted (e.g. `"rf -K 10"`).
    pub name: String,
    /// Wall-clock time of the pass in nanoseconds.
    pub wall_ns: u64,
    /// AND nodes before the pass.
    pub nodes_before: usize,
    /// AND nodes after the pass.
    pub nodes_after: usize,
    /// AIG depth before the pass.
    pub depth_before: usize,
    /// AIG depth after the pass.
    pub depth_after: usize,
    /// Pass-specific commit counter: accepted cut replacements for the
    /// resynthesis passes, rebuilt super-gates for `balance`, proven merges
    /// for `fraig`, zero for `cleanup`.
    pub commits: u64,
    /// The resource guard this pass tripped, if any — the pass was rolled
    /// back, so `nodes_after`/`depth_after` equal the *pre-pass* values.
    pub tripped: Option<GuardKind>,
}

impl fmt::Display for PassStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} nodes, depth {} -> {}, {} commits, {:.2} ms",
            self.name,
            self.nodes_before,
            self.nodes_after,
            self.depth_before,
            self.depth_after,
            self.commits,
            self.wall_ns as f64 / 1e6,
        )?;
        if let Some(kind) = self.tripped {
            write!(f, " [tripped {kind} guard, rolled back]")?;
        }
        Ok(())
    }
}

/// Observer hook invoked around every executed pass.
pub trait PassObserver {
    /// Called before a pass starts running. Fault reports use this to name
    /// the pass that was in flight when a job panicked or stalled.
    fn on_pass_start(&mut self, _name: &str) {}
    /// Called once per executed pass, in execution order.
    fn on_pass(&mut self, stat: &PassStat);
    /// Called with the graph a pass produced (after guard rollback, so it
    /// is exactly the graph the rest of the script will see). Paranoid
    /// validation hooks in here; the default does nothing.
    fn on_graph(&mut self, _aig: &Aig) {}
}

// ---------------------------------------------------------------------------
// PassCtx
// ---------------------------------------------------------------------------

/// The reusable arena set of a [`PassCtx`]: one evaluate-phase arena (cut
/// scratch + synthesizer) per pool participant plus the shared CSR
/// [`CutArena`] the rewrite passes enumerate into.
///
/// Detach it with [`PassCtx::take_arenas`] and re-install it with
/// [`PassCtx::reuse_arenas`] to keep the buffers (and the pure-function
/// cost memos) warm across whole designs — the flow's `run_many` keeps one
/// `PassArenas` per executor worker for an entire batch. Sharing arenas
/// never changes results: everything they cache is a pure function of its
/// inputs.
#[derive(Default)]
pub struct PassArenas {
    arenas: Vec<EvalScratch>,
    cut_arena: CutArena,
}

impl fmt::Debug for PassArenas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassArenas")
            .field("workers", &self.arenas.len())
            .field("cut_capacity", &self.cut_arena.total_cuts())
            .finish()
    }
}

/// Execution context threaded through every pass of a script run.
///
/// Carries the executor pool, one evaluate-phase arena
/// (cut scratch + synthesizer) per pool participant — shared across passes
/// so cost memos stay warm for the whole script — the shared CSR cut arena,
/// the commit counter passes report into, and the telemetry sink. Arena
/// sharing cannot change results: the memoized synthesis costs are pure
/// functions of the truth table (the invariant the `parallel_identity` and
/// `script_golden` suites pin).
pub struct PassCtx<'p, 'o> {
    pool: &'p ThreadPool,
    pub(crate) arenas: Vec<EvalScratch>,
    pub(crate) cut_arena: CutArena,
    commits: u64,
    telemetry: Vec<PassStat>,
    observer: Option<&'o mut dyn PassObserver>,
    /// Cooperative cancellation: checked at every pass boundary by the
    /// engine and at every evaluate-batch boundary inside the parallel
    /// passes. Defaults to a token that never cancels.
    token: CancelToken,
    /// Per-pass resource budgets (default: none).
    guards: PassGuards,
    /// Set once a boundary check observed the token cancelled; the engine
    /// stops the script and callers map it to a structured job error.
    cancelled: bool,
    /// The most recent un-handled guard trip: `(pass name, kind)`.
    pending_trip: Option<(String, GuardKind)>,
    /// Whether the script fell back to the `fast` preset after a trip.
    degraded: bool,
    /// Executed-pass counter across the whole context lifetime (unlike
    /// `telemetry.len()`, never drained) — keys chaos fault injection.
    passes_started: usize,
    /// Deterministic fault injection plan for this job (tests only).
    #[cfg(feature = "chaos")]
    chaos: Option<crate::chaos::Injector>,
}

impl<'p, 'o> PassCtx<'p, 'o> {
    /// Context running on `pool`, with one evaluate arena per participant.
    pub fn new(pool: &'p ThreadPool) -> Self {
        PassCtx {
            pool,
            arenas: (0..pool.num_threads())
                .map(|_| EvalScratch::default())
                .collect(),
            cut_arena: CutArena::new(),
            commits: 0,
            telemetry: Vec::new(),
            observer: None,
            token: CancelToken::default(),
            guards: PassGuards::default(),
            cancelled: false,
            pending_trip: None,
            degraded: false,
            passes_started: 0,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// Install the cancellation token the engine (and every token-aware
    /// pass) polls. Replaces the default never-cancelled token.
    pub fn set_token(&mut self, token: CancelToken) {
        self.token = token;
    }

    /// The job's cancellation token. Parallel passes clone it and check at
    /// evaluate-batch boundaries; anything long-running should do the same.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Install per-pass resource budgets.
    pub fn set_guards(&mut self, guards: PassGuards) {
        self.guards = guards;
    }

    /// The active resource budgets.
    pub fn guards(&self) -> &PassGuards {
        &self.guards
    }

    /// Whether a boundary check observed the token cancelled (the script
    /// stopped early and its output must be discarded).
    pub fn cancelled(&self) -> bool {
        self.cancelled
    }

    /// The guard trip that stopped the script, when degradation is off:
    /// `(pass name, guard kind)`.
    pub fn guard_trip(&self) -> Option<(&str, GuardKind)> {
        self.pending_trip.as_ref().map(|(n, k)| (n.as_str(), *k))
    }

    /// Whether the script degraded to the `fast` preset after a guard trip.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Install a chaos injection plan for this job (deterministic fault
    /// injection; see [`crate::chaos`]).
    #[cfg(feature = "chaos")]
    pub fn set_chaos(&mut self, injector: crate::chaos::Injector) {
        self.chaos = Some(injector);
    }

    /// [`PassCtx::new`] with an observer notified after every pass.
    pub fn with_observer(pool: &'p ThreadPool, observer: &'o mut dyn PassObserver) -> Self {
        let mut ctx = PassCtx::new(pool);
        ctx.observer = Some(observer);
        ctx
    }

    /// Install a previously detached arena set (topped up to one evaluate
    /// arena per pool participant). Reusing arenas across designs keeps the
    /// cut storage and synthesis memos warm without changing any result.
    pub fn reuse_arenas(&mut self, arenas: PassArenas) {
        let PassArenas {
            mut arenas,
            cut_arena,
        } = arenas;
        while arenas.len() < self.pool.num_threads() {
            arenas.push(EvalScratch::default());
        }
        self.arenas = arenas;
        self.cut_arena = cut_arena;
    }

    /// Detach the arena set for reuse by a later context (the context keeps
    /// working with fresh, empty arenas).
    pub fn take_arenas(&mut self) -> PassArenas {
        let taken = PassArenas {
            arenas: std::mem::take(&mut self.arenas),
            cut_arena: std::mem::take(&mut self.cut_arena),
        };
        // Keep the context runnable: one (empty) evaluate arena per
        // participant, as `new` would have built.
        self.arenas = (0..self.pool.num_threads())
            .map(|_| EvalScratch::default())
            .collect();
        taken
    }

    /// The executor pool passes should fan their evaluate phases across.
    pub fn pool(&self) -> &'p ThreadPool {
        self.pool
    }

    /// The shared CSR cut arena the rewrite passes enumerate into. Exposed
    /// read-only so integrity audits (`CutArena::check_integrity`) can run
    /// between passes without detaching the arenas.
    pub fn cut_arena(&self) -> &CutArena {
        &self.cut_arena
    }

    /// Report `n` committed transformations (accepted replacements, merges,
    /// rebuilt trees) for the currently running pass.
    pub fn add_commits(&mut self, n: u64) {
        self.commits += n;
    }

    /// Telemetry of every pass executed through this context so far.
    pub fn telemetry(&self) -> &[PassStat] {
        &self.telemetry
    }

    /// Drain the recorded telemetry.
    pub fn take_telemetry(&mut self) -> Vec<PassStat> {
        std::mem::take(&mut self.telemetry)
    }

    /// Run one pass with telemetry: time it, diff node/depth counts,
    /// attribute the commit counter delta, and enforce the resource guards
    /// (a tripping pass is rolled back to its input).
    fn run_instrumented(&mut self, pass: &dyn Pass, aig: &Aig) -> Aig {
        // Pass boundary: a cancelled job must not start another pass.
        if self.token.is_cancelled() {
            self.cancelled = true;
            return aig.clone();
        }
        let pass_index = self.passes_started;
        self.passes_started += 1;
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_pass_start(pass.name());
        }
        let forced_trip = self.apply_chaos(pass.name(), pass_index);
        // Second boundary check: cancellation may have arrived while the
        // pass was announced (or while a chaos stall held it). The pass
        // stays "in flight" — announced but never run, so it leaves no
        // telemetry row and keeps the fault attribution.
        if self.token.is_cancelled() {
            self.cancelled = true;
            return aig.clone();
        }
        let nodes_before = aig.num_ands();
        let depth_before = aig.depth();
        let commits_before = self.commits;
        let start = Instant::now();
        let mut out = pass.run(aig, self);
        let wall = start.elapsed();
        let mut tripped = if forced_trip {
            Some(GuardKind::Injected)
        } else {
            None
        };
        if tripped.is_none() {
            tripped = self.guards.check(nodes_before, out.num_ands(), wall);
        }
        if let Some(kind) = tripped {
            // Keep-best semantics generalized from `repeat {}`: the budget
            // violator's output is discarded, the pre-pass graph survives.
            out = aig.clone();
            self.pending_trip = Some((pass.name().to_string(), kind));
        }
        let stat = PassStat {
            name: pass.name().to_string(),
            wall_ns: wall.as_nanos() as u64,
            nodes_before,
            nodes_after: out.num_ands(),
            depth_before,
            depth_after: out.depth(),
            commits: self.commits - commits_before,
            tripped,
        };
        if let Some(obs) = self.observer.as_deref_mut() {
            obs.on_pass(&stat);
            obs.on_graph(&out);
        }
        self.telemetry.push(stat);
        out
    }

    /// Fire the chaos fault planned for this `(job, pass_index)`, if any.
    /// Returns whether a guard trip must be forced. Compiled to a constant
    /// `false` without the `chaos` feature.
    #[cfg(feature = "chaos")]
    fn apply_chaos(&mut self, pass_name: &str, pass_index: usize) -> bool {
        let Some(injector) = &self.chaos else {
            return false;
        };
        match injector.fault_at(pass_index) {
            Some(crate::chaos::FaultKind::Panic) => {
                panic!("chaos: injected panic in pass `{pass_name}` (pass #{pass_index})")
            }
            Some(crate::chaos::FaultKind::Stall) => {
                crate::chaos::stall_until_cancelled(&self.token);
                false
            }
            Some(crate::chaos::FaultKind::GuardTrip) => true,
            None => false,
        }
    }

    #[cfg(not(feature = "chaos"))]
    #[inline]
    fn apply_chaos(&mut self, _pass_name: &str, _pass_index: usize) -> bool {
        false
    }

    /// Whether the engine must stop before running another statement:
    /// the job was cancelled, or a guard trip awaits handling.
    fn stopped(&self) -> bool {
        self.cancelled || self.pending_trip.is_some()
    }
}

impl fmt::Debug for PassCtx<'_, '_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassCtx")
            .field("threads", &self.pool.num_threads())
            .field("commits", &self.commits)
            .field("passes_run", &self.telemetry.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Pass trait + built-in passes
// ---------------------------------------------------------------------------

/// One named AIG transformation.
///
/// Passes must preserve the PI/PO/latch interface and the function of every
/// output (scripted flows are CEC-checked against their source in the test
/// suites), and must be deterministic for every pool size — evaluate in
/// parallel, commit in a canonical order (see `xsfq_exec`'s module docs).
pub trait Pass: Send + Sync {
    /// Canonical scripted name (used in telemetry and error messages).
    fn name(&self) -> &str;
    /// Apply the pass.
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig;
}

struct BalancePass;

impl Pass for BalancePass {
    fn name(&self) -> &str {
        "b"
    }
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        let (out, commits) = opt::balance_counted(aig, ctx.pool(), ctx.token());
        ctx.add_commits(commits);
        out
    }
}

struct RewritePass {
    zero_gain: bool,
}

impl Pass for RewritePass {
    fn name(&self) -> &str {
        if self.zero_gain {
            "rwz"
        } else {
            "rw"
        }
    }
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        opt::rewrite_ctx(aig, self.zero_gain, ctx)
    }
}

struct RefactorPass {
    k: usize,
    name: String,
}

impl RefactorPass {
    fn new(k: usize) -> Self {
        RefactorPass {
            name: if k == 8 {
                "rf".to_string()
            } else {
                format!("rf -K {k}")
            },
            k,
        }
    }
}

impl Pass for RefactorPass {
    fn name(&self) -> &str {
        &self.name
    }
    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        opt::refactor_ctx(aig, self.k, ctx)
    }
}

struct CleanupPass;

impl Pass for CleanupPass {
    fn name(&self) -> &str {
        "c"
    }
    fn run(&self, aig: &Aig, _ctx: &mut PassCtx) -> Aig {
        aig.compact()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A pass factory: builds a pass instance from its script arguments.
pub type PassFactory = Box<dyn Fn(&[String]) -> Result<Box<dyn Pass>, ScriptError> + Send + Sync>;

/// Name → pass factory registry a [`Script`] is compiled against.
///
/// [`PassRegistry::structural`] covers the built-in AIG passes; crates that
/// own heavier passes extend it (`xsfq_sat::pass::register` adds `fraig`,
/// and `xsfq_core::flow_registry` returns the full synthesis-flow set).
#[derive(Default)]
pub struct PassRegistry {
    entries: Vec<(Vec<&'static str>, PassFactory)>,
}

impl PassRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry of the built-in structural passes: `b`/`balance`,
    /// `rw`/`rewrite`, `rwz`/`rewrite_zero`, `rf`/`refactor` (optional
    /// `-K <cut size>`), `c`/`cleanup`.
    pub fn structural() -> Self {
        let mut reg = Self::new();
        reg.register(&["b", "balance"], |args| {
            no_args("b", args)?;
            Ok(Box::new(BalancePass))
        });
        reg.register(&["rw", "rewrite"], |args| {
            no_args("rw", args)?;
            Ok(Box::new(RewritePass { zero_gain: false }))
        });
        reg.register(&["rwz", "rewrite_zero"], |args| {
            no_args("rwz", args)?;
            Ok(Box::new(RewritePass { zero_gain: true }))
        });
        reg.register(&["rf", "refactor"], |args| {
            let k = match args {
                [] => 8,
                [flag, value] if flag == "-K" => {
                    value.parse::<usize>().map_err(|_| ScriptError::BadArgs {
                        pass: "rf".into(),
                        msg: format!("cut size `{value}` is not a number"),
                    })?
                }
                _ => {
                    return Err(ScriptError::BadArgs {
                        pass: "rf".into(),
                        msg: format!("expected `rf` or `rf -K <k>`, got args {args:?}"),
                    })
                }
            };
            if !(2..=12).contains(&k) {
                return Err(ScriptError::BadArgs {
                    pass: "rf".into(),
                    msg: format!("cut size {k} outside 2..=12"),
                });
            }
            Ok(Box::new(RefactorPass::new(k)))
        });
        reg.register(&["c", "cleanup"], |args| {
            no_args("c", args)?;
            Ok(Box::new(CleanupPass))
        });
        reg
    }

    /// Register a pass under one or more aliases. Later registrations win
    /// on alias collision.
    /// # Panics
    ///
    /// Panics when an alias is one of the script parser's reserved words
    /// (`repeat`, `fast`, `standard`, `high`, `{`, `}`, `;`) — the parser
    /// intercepts those before registry lookup, so such a pass could never
    /// be invoked from a script.
    pub fn register(
        &mut self,
        aliases: &[&'static str],
        factory: impl Fn(&[String]) -> Result<Box<dyn Pass>, ScriptError> + Send + Sync + 'static,
    ) {
        const RESERVED: [&str; 7] = ["repeat", "fast", "standard", "high", "{", "}", ";"];
        for alias in aliases {
            assert!(
                !RESERVED.contains(alias),
                "`{alias}` is reserved by the script grammar and cannot name a pass"
            );
        }
        self.entries
            .insert(0, (aliases.to_vec(), Box::new(factory)));
    }

    /// Build the pass registered under `name` with `args`.
    pub fn build(&self, name: &str, args: &[String]) -> Result<Box<dyn Pass>, ScriptError> {
        for (aliases, factory) in &self.entries {
            if aliases.contains(&name) {
                return factory(args);
            }
        }
        Err(ScriptError::UnknownPass(name.to_string()))
    }

    /// Every *effective* alias (for diagnostics): lookup order, shadowed
    /// registrations omitted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for (aliases, _) in &self.entries {
            for alias in aliases {
                if !names.contains(alias) {
                    names.push(alias);
                }
            }
        }
        names
    }
}

impl fmt::Debug for PassRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassRegistry")
            .field("passes", &self.names())
            .finish()
    }
}

fn no_args(pass: &str, args: &[String]) -> Result<(), ScriptError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(ScriptError::BadArgs {
            pass: pass.to_string(),
            msg: format!("takes no arguments, got {args:?}"),
        })
    }
}

// ---------------------------------------------------------------------------
// Script errors
// ---------------------------------------------------------------------------

/// Error from parsing or compiling a [`Script`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptError {
    /// The script text does not match the grammar.
    Parse {
        /// What was wrong.
        msg: String,
        /// 1-based column of the offending token in the script text,
        /// or `0` when the error is at end of input.
        col: usize,
        /// The offending token, verbatim (empty at end of input).
        token: String,
    },
    /// A pass name is not in the registry the script was compiled against.
    UnknownPass(String),
    /// A pass rejected its arguments.
    BadArgs {
        /// Pass name.
        pass: String,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScriptError::Parse { msg, col, token } => {
                write!(f, "script parse error: {msg}")?;
                if *col > 0 {
                    write!(f, " at column {col} (`{token}`)")
                } else {
                    write!(f, " at end of script")
                }
            }
            ScriptError::UnknownPass(name) => write!(f, "unknown pass `{name}`"),
            ScriptError::BadArgs { pass, msg } => write!(f, "pass `{pass}`: {msg}"),
        }
    }
}

impl Error for ScriptError {}

// ---------------------------------------------------------------------------
// Script AST + parser
// ---------------------------------------------------------------------------

/// One statement of a [`Script`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptStmt {
    /// Run one pass.
    Pass {
        /// Registered pass name.
        name: String,
        /// Arguments (e.g. `["-K", "10"]`).
        args: Vec<String>,
    },
    /// Keep-best loop: run `body` up to `times` times starting from the
    /// incoming graph, keep the best result (fewest AND nodes, ties broken
    /// by depth), stop early when a round does not shrink the best graph.
    Repeat {
        /// Maximum rounds.
        times: usize,
        /// Statements run each round.
        body: Vec<ScriptStmt>,
    },
}

/// A parsed, registry-independent pass script. See the
/// [module docs](self) for the grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Script {
    stmts: Vec<ScriptStmt>,
}

impl Script {
    /// Parse an ABC-style script. Preset names (`fast`, `standard`,
    /// `high`) appearing as statements are inlined.
    pub fn parse(text: &str) -> Result<Script, ScriptError> {
        let tokens = tokenize(text);
        let mut pos = 0;
        let stmts = parse_stmts(&tokens, &mut pos, false)?;
        if pos != tokens.len() {
            return Err(parse_err(
                format!("unexpected `{}`", tokens[pos].text),
                &tokens,
                pos,
            ));
        }
        Ok(Script { stmts })
    }

    /// A one-statement script invoking the pass `name` with no arguments,
    /// built directly on the AST — no parse step, so no parse error to
    /// handle for names that are plain identifiers.
    pub fn single(name: &str) -> Script {
        Script {
            stmts: vec![ScriptStmt::Pass {
                name: name.to_string(),
                args: Vec::new(),
            }],
        }
    }

    /// The named preset (`"fast"`, `"standard"`, `"high"`), if any.
    pub fn named(name: &str) -> Option<Script> {
        let effort = match name {
            "fast" => opt::Effort::Fast,
            "standard" => opt::Effort::Standard,
            "high" => opt::Effort::High,
            _ => return None,
        };
        Some(Script::preset(effort))
    }

    /// The preset script matching a legacy [`Effort`](opt::Effort) level.
    /// Bit-identical to the pre-pass-manager `optimize` paths (pinned by
    /// the `script_golden` suite):
    ///
    /// * `Fast` → `c; repeat 1 { b; rw; rf; b; rwz; rw }`
    /// * `Standard` → `c; repeat 3 { b; rw; rf; b; rwz; rw }`
    /// * `High` → `c; repeat 6 { b; rw; rf -K 10; b; rwz; rw }`
    pub fn preset(effort: opt::Effort) -> Script {
        let (rounds, refactor_k) = match effort {
            opt::Effort::Fast => (1, 8),
            opt::Effort::Standard => (3, 8),
            opt::Effort::High => (6, 10),
        };
        let pass = |name: &str| ScriptStmt::Pass {
            name: name.to_string(),
            args: Vec::new(),
        };
        let refactor = if refactor_k == 8 {
            pass("rf")
        } else {
            ScriptStmt::Pass {
                name: "rf".to_string(),
                args: vec!["-K".to_string(), refactor_k.to_string()],
            }
        };
        Script {
            stmts: vec![
                pass("c"),
                ScriptStmt::Repeat {
                    times: rounds,
                    body: vec![
                        pass("b"),
                        pass("rw"),
                        refactor,
                        pass("b"),
                        pass("rwz"),
                        pass("rw"),
                    ],
                },
            ],
        }
    }

    /// Statements of the script.
    pub fn stmts(&self) -> &[ScriptStmt] {
        &self.stmts
    }

    /// Concatenate two scripts (`self` then `other`).
    #[must_use]
    pub fn then(mut self, other: Script) -> Script {
        self.stmts.extend(other.stmts);
        self
    }

    /// Number of pass invocations an execution performs at most (repeat
    /// bodies count `times` times).
    pub fn max_passes(&self) -> usize {
        fn count(stmts: &[ScriptStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    ScriptStmt::Pass { .. } => 1,
                    ScriptStmt::Repeat { times, body } => times * count(body),
                })
                .sum()
        }
        count(&self.stmts)
    }

    /// Resolve every pass against `registry`, producing an executable
    /// script.
    pub fn compile(&self, registry: &PassRegistry) -> Result<CompiledScript, ScriptError> {
        fn compile_stmts(
            stmts: &[ScriptStmt],
            registry: &PassRegistry,
        ) -> Result<Vec<CompiledStmt>, ScriptError> {
            stmts
                .iter()
                .map(|s| match s {
                    ScriptStmt::Pass { name, args } => {
                        Ok(CompiledStmt::Pass(registry.build(name, args)?))
                    }
                    ScriptStmt::Repeat { times, body } => Ok(CompiledStmt::Repeat {
                        times: *times,
                        body: compile_stmts(body, registry)?,
                    }),
                })
                .collect()
        }
        Ok(CompiledScript {
            stmts: compile_stmts(&self.stmts, registry)?,
        })
    }
}

impl Default for Script {
    /// The `standard` preset.
    fn default() -> Self {
        Script::preset(opt::Effort::Standard)
    }
}

impl fmt::Display for Script {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_stmts(stmts: &[ScriptStmt], f: &mut fmt::Formatter<'_>) -> fmt::Result {
            for (i, s) in stmts.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                match s {
                    ScriptStmt::Pass { name, args } => {
                        write!(f, "{name}")?;
                        for a in args {
                            write!(f, " {a}")?;
                        }
                    }
                    ScriptStmt::Repeat { times, body } => {
                        write!(f, "repeat {times} {{ ")?;
                        write_stmts(body, f)?;
                        write!(f, " }}")?;
                    }
                }
            }
            Ok(())
        }
        write_stmts(&self.stmts, f)
    }
}

/// One script token plus its 1-based column in the source text.
struct Token {
    text: String,
    col: usize,
}

fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut cur_col = 0;
    for (i, ch) in text.chars().enumerate() {
        let col = i + 1;
        match ch {
            ';' | '{' | '}' => {
                if !cur.is_empty() {
                    tokens.push(Token {
                        text: std::mem::take(&mut cur),
                        col: cur_col,
                    });
                }
                tokens.push(Token {
                    text: ch.to_string(),
                    col,
                });
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    tokens.push(Token {
                        text: std::mem::take(&mut cur),
                        col: cur_col,
                    });
                }
            }
            c => {
                if cur.is_empty() {
                    cur_col = col;
                }
                cur.push(c);
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(Token {
            text: cur,
            col: cur_col,
        });
    }
    tokens
}

/// A [`ScriptError::Parse`] pointing at `tokens[pos]` (or end of input).
fn parse_err(msg: impl Into<String>, tokens: &[Token], pos: usize) -> ScriptError {
    let (col, token) = match tokens.get(pos) {
        Some(t) => (t.col, t.text.clone()),
        None => (0, String::new()),
    };
    ScriptError::Parse {
        msg: msg.into(),
        col,
        token,
    }
}

/// Parse `;`-separated statements until end of input (`in_block == false`)
/// or a closing `}` (`in_block == true`, brace consumed by the caller).
fn parse_stmts(
    tokens: &[Token],
    pos: &mut usize,
    in_block: bool,
) -> Result<Vec<ScriptStmt>, ScriptError> {
    let mut stmts = Vec::new();
    loop {
        // Skip statement separators.
        while *pos < tokens.len() && tokens[*pos].text == ";" {
            *pos += 1;
        }
        if *pos >= tokens.len() || (in_block && tokens[*pos].text == "}") {
            return Ok(stmts);
        }
        let tok = tokens[*pos].text.as_str();
        match tok {
            "{" | "}" => {
                return Err(parse_err(format!("unexpected `{tok}`"), tokens, *pos));
            }
            "repeat" => {
                *pos += 1;
                let times = tokens
                    .get(*pos)
                    .and_then(|t| t.text.parse::<usize>().ok())
                    .ok_or_else(|| parse_err("`repeat` needs a round count", tokens, *pos))?;
                if times == 0 {
                    return Err(parse_err("`repeat 0` is empty", tokens, *pos));
                }
                *pos += 1;
                if tokens.get(*pos).map(|t| t.text.as_str()) != Some("{") {
                    return Err(parse_err("`repeat N` needs a `{ … }` body", tokens, *pos));
                }
                let open = *pos;
                *pos += 1;
                let body = parse_stmts(tokens, pos, true)?;
                if tokens.get(*pos).map(|t| t.text.as_str()) != Some("}") {
                    return Err(parse_err("unclosed `{`", tokens, open));
                }
                if body.is_empty() {
                    return Err(parse_err("empty `repeat` body", tokens, *pos));
                }
                *pos += 1;
                stmts.push(ScriptStmt::Repeat { times, body });
            }
            preset @ ("fast" | "standard" | "high") => {
                *pos += 1;
                stmts.extend(Script::named(preset).expect("preset exists").stmts);
            }
            _ => {
                let name = tok.to_string();
                *pos += 1;
                let mut args = Vec::new();
                // Arguments run to the next separator.
                while *pos < tokens.len() {
                    match tokens[*pos].text.as_str() {
                        ";" | "{" | "}" => break,
                        a => {
                            args.push(a.to_string());
                            *pos += 1;
                        }
                    }
                }
                stmts.push(ScriptStmt::Pass { name, args });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Compiled script + execution
// ---------------------------------------------------------------------------

enum CompiledStmt {
    Pass(Box<dyn Pass>),
    Repeat {
        times: usize,
        body: Vec<CompiledStmt>,
    },
}

/// A [`Script`] resolved against a [`PassRegistry`], ready to run.
///
/// Compiled scripts are `Sync`, so one compilation can drive many designs
/// concurrently (the flow's `run_many` does exactly that).
pub struct CompiledScript {
    stmts: Vec<CompiledStmt>,
}

impl CompiledScript {
    /// Execute the script, recording one [`PassStat`] per executed pass
    /// into `ctx`. The output is bit-identical for every pool size.
    ///
    /// Execution stops early when the context's [`CancelToken`] reports
    /// cancelled (check [`PassCtx::cancelled`]; the returned graph must be
    /// discarded) or when a resource guard trips ([`PassCtx::guard_trip`]).
    /// With [`PassGuards::degrade_to_fast`] set, a trip instead abandons
    /// the rest of this script and runs the `fast` preset — unguarded, so
    /// degradation cannot recurse — on the rolled-back graph; the job then
    /// completes normally with [`PassCtx::degraded`] set.
    pub fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        let mut cur = run_seq(&self.stmts, aig, ctx);
        if ctx.pending_trip.is_some() && ctx.guards.degrade_to_fast && !ctx.cancelled {
            ctx.pending_trip = None;
            ctx.degraded = true;
            // The fallback runs without budgets: it exists to finish the
            // job, and a second trip would have nowhere left to degrade to.
            let saved = std::mem::take(&mut ctx.guards);
            cur = run_seq(&fast_fallback().stmts, &cur, ctx);
            ctx.guards = saved;
        }
        cur
    }
}

/// The compiled `fast` preset the guard-degradation path falls back to.
/// Preset scripts only use structural passes, so one compilation against
/// [`PassRegistry::structural`] serves the whole process.
fn fast_fallback() -> &'static CompiledScript {
    static FALLBACK: OnceLock<CompiledScript> = OnceLock::new();
    FALLBACK.get_or_init(|| {
        Script::preset(opt::Effort::Fast)
            .compile(&PassRegistry::structural())
            .expect("preset scripts compile against the structural registry")
    })
}

impl fmt::Debug for CompiledScript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn count(stmts: &[CompiledStmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    CompiledStmt::Pass(_) => 1,
                    CompiledStmt::Repeat { body, .. } => count(body),
                })
                .sum()
        }
        f.debug_struct("CompiledScript")
            .field("distinct_passes", &count(&self.stmts))
            .finish()
    }
}

fn run_seq(stmts: &[CompiledStmt], aig: &Aig, ctx: &mut PassCtx) -> Aig {
    let Some(first) = stmts.first() else {
        return aig.clone();
    };
    let mut cur = run_stmt(first, aig, ctx);
    for stmt in &stmts[1..] {
        if ctx.stopped() {
            break;
        }
        cur = run_stmt(stmt, &cur, ctx);
    }
    cur
}

fn run_stmt(stmt: &CompiledStmt, aig: &Aig, ctx: &mut PassCtx) -> Aig {
    match stmt {
        CompiledStmt::Pass(pass) => ctx.run_instrumented(pass.as_ref(), aig),
        CompiledStmt::Repeat { times, body } => {
            // The legacy optimize loop: run the body on the best graph so
            // far, keep the result only when it improves (fewer ANDs, or
            // equal ANDs and lower depth), stop once a round does not
            // shrink the best size.
            let mut best = aig.clone();
            for _ in 0..*times {
                let before = best.num_ands();
                let cur = run_seq(body, &best, ctx);
                if ctx.stopped() {
                    // Cancelled output is discarded by the caller; a tripped
                    // round already rolled back, so keep-best still holds.
                    break;
                }
                if cur.num_ands() < best.num_ands()
                    || (cur.num_ands() == best.num_ands() && cur.depth() < best.depth())
                {
                    best = cur;
                }
                if best.num_ands() >= before {
                    break;
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn adder() -> Aig {
        let mut g = Aig::new("add4");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let (s, c) = build::ripple_add(&mut g, &a, &b, crate::Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        g
    }

    #[test]
    fn parse_roundtrips_through_display() {
        for text in [
            "b; rw; rf; b; rwz; rwz",
            "c; repeat 3 { b; rw; rf; b; rwz; rw }",
            "rf -K 10",
            "c; repeat 2 { b; repeat 2 { rw; rwz }; rf }",
        ] {
            let script = Script::parse(text).unwrap();
            let rendered = script.to_string();
            assert_eq!(Script::parse(&rendered).unwrap(), script, "{text}");
        }
    }

    #[test]
    fn presets_parse_by_name() {
        for (name, effort) in [
            ("fast", opt::Effort::Fast),
            ("standard", opt::Effort::Standard),
            ("high", opt::Effort::High),
        ] {
            assert_eq!(Script::parse(name).unwrap(), Script::preset(effort));
            assert_eq!(Script::named(name).unwrap(), Script::preset(effort));
        }
        // Presets inline into surrounding scripts.
        let s = Script::parse("fast; c").unwrap();
        assert_eq!(
            s.stmts().len(),
            Script::preset(opt::Effort::Fast).stmts().len() + 1
        );
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(matches!(
            Script::parse("repeat { b }"),
            Err(ScriptError::Parse { .. })
        ));
        assert!(matches!(
            Script::parse("repeat 2 { b"),
            Err(ScriptError::Parse { .. })
        ));
        assert!(matches!(
            Script::parse("repeat 2 }"),
            Err(ScriptError::Parse { .. })
        ));
        assert!(matches!(
            Script::parse("repeat 2 { }"),
            Err(ScriptError::Parse { .. })
        ));
        let reg = PassRegistry::structural();
        assert!(matches!(
            Script::parse("nosuch").unwrap().compile(&reg),
            Err(ScriptError::UnknownPass(_))
        ));
        assert!(matches!(
            Script::parse("rf -K 99").unwrap().compile(&reg),
            Err(ScriptError::BadArgs { .. })
        ));
        assert!(matches!(
            Script::parse("b -K 3").unwrap().compile(&reg),
            Err(ScriptError::BadArgs { .. })
        ));
    }

    #[test]
    fn script_runs_and_records_telemetry() {
        let g = adder();
        let compiled = Script::parse("c; b; rw")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        let out = compiled.run(&g, &mut ctx);
        assert!(out.num_ands() <= g.num_ands());
        let stats = ctx.telemetry();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].name, "c");
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[2].name, "rw");
        assert_eq!(stats[0].nodes_before, g.num_ands());
        assert_eq!(stats[2].nodes_after, out.num_ands());
        // Stats chain: each pass starts where the previous ended.
        assert_eq!(stats[1].nodes_after, stats[2].nodes_before);
    }

    #[test]
    fn observer_sees_every_pass() {
        struct Count(usize);
        impl PassObserver for Count {
            fn on_pass(&mut self, _stat: &PassStat) {
                self.0 += 1;
            }
        }
        let g = adder();
        let compiled = Script::parse("b; rw; b")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut count = Count(0);
        let pool = ThreadPool::new(1);
        let mut ctx = PassCtx::with_observer(&pool, &mut count);
        compiled.run(&g, &mut ctx);
        assert_eq!(ctx.telemetry().len(), 3);
        drop(ctx);
        assert_eq!(count.0, 3);
    }

    #[test]
    fn repeat_keeps_best_and_stops_early() {
        let g = adder();
        let reg = PassRegistry::structural();
        // A repeat of a no-op pass must terminate after one round (no
        // improvement) and return an unchanged graph.
        let compiled = Script::parse("repeat 5 { c }")
            .unwrap()
            .compile(&reg)
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        let out = compiled.run(&g.compact(), &mut ctx);
        assert_eq!(out.nodes(), g.compact().nodes());
        assert_eq!(ctx.telemetry().len(), 1, "early exit after round 1");
    }

    #[test]
    fn context_stays_runnable_after_take_arenas_and_reuse_is_invisible() {
        let g = adder();
        let compiled = Script::parse("b; rw")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let pool = ThreadPool::new(2);
        let mut ctx = PassCtx::new(&pool);
        let a = compiled.run(&g, &mut ctx);
        let arenas = ctx.take_arenas();
        // The drained context must keep working with fresh arenas.
        let b = compiled.run(&g, &mut ctx);
        assert_eq!(a.nodes(), b.nodes());
        // Warm arenas on a new context cannot change the result.
        let mut warm = PassCtx::new(&pool);
        warm.reuse_arenas(arenas);
        let c = compiled.run(&g, &mut warm);
        assert_eq!(a.nodes(), c.nodes());
    }

    #[test]
    #[should_panic(expected = "reserved by the script grammar")]
    fn registering_a_reserved_name_panics() {
        let mut reg = PassRegistry::structural();
        reg.register(&["fast"], |_| Ok(Box::new(CleanupPass)));
    }

    #[test]
    fn max_passes_counts_repeat_expansion() {
        let s = Script::parse("c; repeat 3 { b; rw }").unwrap();
        assert_eq!(s.max_passes(), 1 + 3 * 2);
    }

    #[test]
    fn parse_errors_carry_column_and_token() {
        // "b; rw; }" — the stray brace sits at column 8.
        let Err(ScriptError::Parse { msg, col, token }) = Script::parse("b; rw; }") else {
            panic!("stray `}}` must be a parse error");
        };
        assert_eq!(col, 8);
        assert_eq!(token, "}");
        assert!(msg.contains("unexpected"), "{msg}");
        // "repeat x { b }" — the bad round count at column 8.
        let Err(ScriptError::Parse { col, token, .. }) = Script::parse("repeat x { b }") else {
            panic!("bad round count must be a parse error");
        };
        assert_eq!(col, 8);
        assert_eq!(token, "x");
        // Unclosed brace points at the `{` that was never closed.
        let Err(ScriptError::Parse { col, token, .. }) = Script::parse("repeat 2 { b") else {
            panic!("unclosed brace must be a parse error");
        };
        assert_eq!(col, 10);
        assert_eq!(token, "{");
        // End-of-input errors report column 0 and an empty token.
        let Err(ScriptError::Parse { col, token, .. }) = Script::parse("repeat 2") else {
            panic!("missing body must be a parse error");
        };
        assert_eq!(col, 0);
        assert_eq!(token, "");
        let rendered = Script::parse("repeat 2").unwrap_err().to_string();
        assert!(rendered.contains("end of script"), "{rendered}");
    }

    #[test]
    fn single_builds_a_one_pass_script() {
        let s = Script::single("f");
        assert_eq!(s.max_passes(), 1);
        assert_eq!(s.to_string(), "f");
        assert_eq!(Script::parse("f").unwrap(), s);
    }

    #[test]
    fn cancelled_token_stops_the_script_at_a_pass_boundary() {
        use xsfq_exec::CancelToken;
        let g = adder();
        let compiled = Script::parse("c; b; rw; rf; b; rwz")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let token = CancelToken::new();
        token.cancel();
        let mut ctx = PassCtx::new(ThreadPool::global());
        ctx.set_token(token);
        let out = compiled.run(&g, &mut ctx);
        assert!(ctx.cancelled());
        assert_eq!(ctx.telemetry().len(), 0, "no pass may start when cancelled");
        assert_eq!(out.nodes(), g.nodes(), "input passes through unchanged");
    }

    #[test]
    fn wall_time_guard_rolls_back_and_stops_without_degradation() {
        let g = adder();
        let compiled = Script::parse("b; rw; rf")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        ctx.set_guards(PassGuards {
            wall_budget: Some(Duration::ZERO),
            ..PassGuards::none()
        });
        let out = compiled.run(&g, &mut ctx);
        // Every pass takes > 0ns, so the very first one trips and the
        // script stops: one stat, graph rolled back to the input.
        assert_eq!(ctx.telemetry().len(), 1);
        let stat = &ctx.telemetry()[0];
        assert_eq!(stat.tripped, Some(GuardKind::WallTime));
        assert_eq!(stat.nodes_after, stat.nodes_before, "rolled back");
        assert_eq!(ctx.guard_trip(), Some(("b", GuardKind::WallTime)));
        assert!(!ctx.degraded());
        assert_eq!(out.nodes(), g.nodes());
    }

    #[test]
    fn wall_time_guard_degrades_to_the_fast_preset() {
        let g = adder();
        let compiled = Script::parse("high")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        ctx.set_guards(PassGuards {
            wall_budget: Some(Duration::ZERO),
            degrade_to_fast: true,
            ..PassGuards::none()
        });
        let out = compiled.run(&g, &mut ctx);
        assert!(ctx.degraded());
        assert_eq!(ctx.guard_trip(), None, "trip was absorbed by degradation");
        // Stats: the tripped pass, then the whole fast fallback (whose
        // guards are cleared, so none of its passes trip).
        let stats = ctx.telemetry();
        assert_eq!(stats[0].tripped, Some(GuardKind::WallTime));
        assert!(stats.len() > 1, "fallback passes ran");
        assert!(stats[1..].iter().all(|s| s.tripped.is_none()));
        // The fallback output matches a plain fast run from the same input.
        let fast = Script::preset(opt::Effort::Fast)
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut plain = PassCtx::new(ThreadPool::global());
        let want = fast.run(&g, &mut plain);
        assert_eq!(out.nodes(), want.nodes());
    }

    #[test]
    fn node_growth_guard_passes_shrinking_passes() {
        let g = adder();
        let compiled = Script::parse("c; b; rw")
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        ctx.set_guards(PassGuards {
            max_growth: Some(1.0),
            ..PassGuards::none()
        });
        compiled.run(&g, &mut ctx);
        // Structural passes never grow the graph, so nothing trips.
        assert_eq!(ctx.guard_trip(), None);
        assert_eq!(ctx.telemetry().len(), 3);
        assert!(ctx.telemetry().iter().all(|s| s.tripped.is_none()));
    }
}
