//! Cut computation: k-feasible cut enumeration, reconvergence-driven cuts,
//! cone extraction and cut-function evaluation.
//!
//! Cuts are the windows through which the rewriting passes look at the
//! graph; the paper's point (§3.1.3) is that xSFQ needs exactly this stock
//! machinery and nothing more.

use std::collections::{HashMap, HashSet};

use crate::tt::TruthTable;
use crate::{Aig, NodeId, NodeKind};

/// A cut: a set of leaf nodes (sorted by id) that together cover every path
/// from the combinational inputs to the cut's root.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Cut {
    leaves: Vec<NodeId>,
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: NodeId) -> Self {
        Cut {
            leaves: vec![node],
        }
    }

    /// Leaf nodes, sorted by id.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// True if the cut has no leaves (never produced by enumeration).
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Merge two cuts; `None` if the union exceeds `k` leaves.
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while i < self.leaves.len() || j < other.leaves.len() {
            let next = match (self.leaves.get(i), other.leaves.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                    a
                }
                (Some(&a), Some(&b)) if a < b => {
                    i += 1;
                    a
                }
                (Some(_), Some(&b)) => {
                    j += 1;
                    b
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (None, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!(),
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// True if `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// dominates `other`).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        let mut j = 0;
        for &l in &self.leaves {
            while j < other.leaves.len() && other.leaves[j] < l {
                j += 1;
            }
            if j == other.leaves.len() || other.leaves[j] != l {
                return false;
            }
        }
        true
    }
}

/// Enumerate up to `max_cuts` k-feasible cuts per node (the trivial cut is
/// always included and not counted against the budget).
///
/// Returns one cut list per node id.
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<Cut>> {
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); aig.num_nodes()];
    for (i, kind) in aig.nodes().iter().enumerate() {
        let id = NodeId::from_index(i);
        match *kind {
            NodeKind::Const0 | NodeKind::Input { .. } | NodeKind::Latch { .. } => {
                cuts[i] = vec![Cut::trivial(id)];
            }
            NodeKind::And { a, b } => {
                let mut list: Vec<Cut> = Vec::new();
                let (ca, cb) = (&cuts[a.node().index()], &cuts[b.node().index()]);
                for cut_a in ca {
                    for cut_b in cb {
                        let Some(merged) = cut_a.merge(cut_b, k) else {
                            continue;
                        };
                        if list.iter().any(|c| c.dominates(&merged)) {
                            continue;
                        }
                        list.retain(|c| !merged.dominates(c));
                        list.push(merged);
                    }
                }
                list.sort_by_key(Cut::len);
                list.truncate(max_cuts);
                list.push(Cut::trivial(id));
                cuts[i] = list;
            }
        }
    }
    cuts
}

/// Compute a reconvergence-driven cut of at most `k` leaves for `root`
/// (ABC's `abc_NodeFindCut` strategy): greedily expand the leaf whose
/// expansion adds the fewest new leaves.
pub fn reconvergence_cut(aig: &Aig, root: NodeId, k: usize) -> Cut {
    let mut leaves: HashSet<NodeId> = HashSet::new();
    let mut visited: HashSet<NodeId> = HashSet::new();
    visited.insert(root);
    match aig.node(root) {
        NodeKind::And { a, b } => {
            leaves.insert(a.node());
            leaves.insert(b.node());
        }
        _ => {
            leaves.insert(root);
        }
    }
    loop {
        // Cost of expanding a leaf = new leaves introduced - 1.
        let mut best: Option<(i32, NodeId)> = None;
        for &leaf in &leaves {
            let NodeKind::And { a, b } = aig.node(leaf) else {
                continue;
            };
            let mut added = 0;
            for f in [a.node(), b.node()] {
                if !leaves.contains(&f) && !visited.contains(&f) {
                    added += 1;
                }
            }
            let cost = added - 1;
            if leaves.len() + added as usize - 1 > k {
                continue;
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, leaf));
            }
        }
        let Some((_, leaf)) = best else { break };
        leaves.remove(&leaf);
        visited.insert(leaf);
        let NodeKind::And { a, b } = aig.node(leaf) else {
            unreachable!()
        };
        for f in [a.node(), b.node()] {
            if !visited.contains(&f) {
                leaves.insert(f);
            }
        }
        if leaves.len() >= k {
            break;
        }
    }
    let mut sorted: Vec<NodeId> = leaves.into_iter().collect();
    sorted.sort();
    Cut { leaves: sorted }
}

/// Interior nodes of the cone of `root` above the cut leaves, in topological
/// order (root last). Leaves are excluded; the root is included.
pub fn cone_nodes(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> Vec<NodeId> {
    let leaf_set: HashSet<NodeId> = leaves.iter().copied().collect();
    let mut cone = Vec::new();
    let mut seen: HashSet<NodeId> = HashSet::new();
    // Iterative post-order DFS.
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if leaf_set.contains(&id) || seen.contains(&id) && !expanded {
            continue;
        }
        if expanded {
            cone.push(id);
            continue;
        }
        seen.insert(id);
        stack.push((id, true));
        if let NodeKind::And { a, b } = aig.node(id) {
            stack.push((a.node(), false));
            stack.push((b.node(), false));
        }
    }
    cone
}

/// Truth table of `root` as a function of the cut leaves.
///
/// # Panics
///
/// Panics if some path from `root` reaches a combinational input that is not
/// a cut leaf (i.e. `leaves` is not a valid cut for `root`).
pub fn cut_function(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> TruthTable {
    let vars = leaves.len();
    let mut tables: HashMap<NodeId, TruthTable> = HashMap::new();
    for (i, &leaf) in leaves.iter().enumerate() {
        tables.insert(leaf, TruthTable::variable(vars, i));
    }
    tables
        .entry(NodeId::CONST0)
        .or_insert_with(|| TruthTable::zeros(vars));
    for id in cone_nodes(aig, root, leaves) {
        let NodeKind::And { a, b } = aig.node(id) else {
            panic!("cone reached non-AND node {id:?} that is not a cut leaf");
        };
        let ta = {
            let t = tables.get(&a.node()).expect("fanin table computed");
            if a.is_complement() {
                t.not()
            } else {
                t.clone()
            }
        };
        let tb = {
            let t = tables.get(&b.node()).expect("fanin table computed");
            if b.is_complement() {
                t.not()
            } else {
                t.clone()
            }
        };
        tables.insert(id, ta.and(&tb));
    }
    tables.remove(&root).expect("root evaluated")
}

/// Size of the maximum fanout-free cone of `root` with respect to the cut:
/// the number of cone nodes (including the root) that would become dangling
/// if `root` were replaced by a new implementation over the cut leaves.
///
/// `fanouts` must come from [`Aig::fanout_counts`] with roots included.
pub fn mffc_size(aig: &Aig, root: NodeId, leaves: &[NodeId], fanouts: &[u32]) -> usize {
    let leaf_set: HashSet<NodeId> = leaves.iter().copied().collect();
    let mut local: HashMap<NodeId, u32> = HashMap::new();
    let mut size = 0usize;
    // Deref the root unconditionally (it is being replaced).
    let mut stack = vec![root];
    let mut first = true;
    while let Some(id) = stack.pop() {
        if leaf_set.contains(&id) {
            continue;
        }
        let NodeKind::And { a, b } = aig.node(id) else {
            continue;
        };
        size += 1;
        for f in [a.node(), b.node()] {
            if leaf_set.contains(&f) || !aig.node(f).is_and() {
                continue;
            }
            let remaining = local
                .entry(f)
                .or_insert_with(|| fanouts[f.index()])
                .saturating_sub(1);
            local.insert(f, remaining);
            if remaining == 0 {
                stack.push(f);
            }
        }
        if first {
            first = false;
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use crate::Lit;

    fn full_adder_aig() -> (Aig, Lit, Lit) {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        (g, s, co)
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::trivial(NodeId::from_index(1));
        let b = Cut::trivial(NodeId::from_index(2));
        let ab = a.merge(&b, 2).unwrap();
        assert_eq!(ab.len(), 2);
        let c = Cut::trivial(NodeId::from_index(3));
        assert!(ab.merge(&c, 2).is_none());
        assert!(ab.merge(&c, 3).is_some());
    }

    #[test]
    fn dominance() {
        let small = Cut {
            leaves: vec![NodeId::from_index(1), NodeId::from_index(3)],
        };
        let big = Cut {
            leaves: vec![
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(3),
            ],
        };
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
    }

    #[test]
    fn enumerate_full_adder() {
        let (g, s, co) = full_adder_aig();
        let cuts = enumerate_cuts(&g, 4, 8);
        // The sum output node must have a cut consisting of the three PIs.
        let pi_cut: Vec<NodeId> = g.inputs().to_vec();
        let s_cuts = &cuts[s.node().index()];
        assert!(
            s_cuts.iter().any(|c| c.leaves() == pi_cut.as_slice()),
            "sum node should have the PI cut, got {s_cuts:?}"
        );
        let co_cuts = &cuts[co.node().index()];
        assert!(co_cuts.iter().any(|c| c.leaves() == pi_cut.as_slice()));
    }

    #[test]
    fn cut_function_matches_semantics() {
        let (g, s, co) = full_adder_aig();
        let pis: Vec<NodeId> = g.inputs().to_vec();
        let ts = cut_function(&g, s.node(), &pis);
        let tc = cut_function(&g, co.node(), &pis);
        for p in 0..8usize {
            let ones = (p & 1) + (p >> 1 & 1) + (p >> 2 & 1);
            // s output literal may be complemented relative to its node.
            let node_s = ts.bit(p);
            let expect_s = (ones & 1) == 1;
            assert_eq!(node_s ^ s.is_complement(), expect_s, "sum pattern {p}");
            let node_c = tc.bit(p);
            let expect_c = ones >= 2;
            assert_eq!(node_c ^ co.is_complement(), expect_c, "cout pattern {p}");
        }
    }

    #[test]
    fn reconvergence_cut_covers_root() {
        let (g, s, _) = full_adder_aig();
        let cut = reconvergence_cut(&g, s.node(), 4);
        assert!(cut.len() <= 4);
        // Evaluating the cut function must succeed (i.e. it is a real cut).
        let _ = cut_function(&g, s.node(), cut.leaves());
    }

    #[test]
    fn mffc_of_exclusive_cone() {
        // x = a&b feeding only y = x&c: replacing y frees both.
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.output("o", y);
        let fanouts = g.fanout_counts(true);
        let leaves: Vec<NodeId> = g.inputs().to_vec();
        assert_eq!(mffc_size(&g, y.node(), &leaves, &fanouts), 2);

        // If x is also an output, it survives the replacement.
        let mut g2 = Aig::new("t2");
        let a = g2.input("a");
        let b = g2.input("b");
        let c = g2.input("c");
        let x = g2.and(a, b);
        let y = g2.and(x, c);
        g2.output("o", y);
        g2.output("x", x);
        let fanouts = g2.fanout_counts(true);
        let leaves: Vec<NodeId> = g2.inputs().to_vec();
        assert_eq!(mffc_size(&g2, y.node(), &leaves, &fanouts), 1);
    }
}
