//! Cut computation: k-feasible cut enumeration, reconvergence-driven cuts,
//! cone extraction and cut-function evaluation.
//!
//! Cuts are the windows through which the rewriting passes look at the
//! graph; the paper's point (§3.1.3) is that xSFQ needs exactly this stock
//! machinery and nothing more.
//!
//! # Data-structure invariants
//!
//! [`Cut`] stores its leaves **inline** as a `[NodeId; MAX_CUT_SIZE]` plus a
//! length — merging and dominance filtering never touch the heap. Each cut
//! also carries a 64-bit **leaf signature**: bit `id % 64` is set for every
//! leaf `id`. The signature is a Bloom-style summary with the subset
//! property `A ⊆ B ⇒ sig(A) & !sig(B) == 0`, so [`Cut::dominates`] and
//! [`Cut::merge`] reject most non-subset / oversize pairs with a single AND
//! (resp. popcount) before looking at any leaf. Leaves are kept sorted by
//! id, making the exact subset/merge scans linear.
//!
//! [`CutScratch`] holds the per-cone working state (generation-stamped node
//! slots, a truth-table arena, DFS stacks) so the resynthesis loops reuse
//! one flat buffer instead of building a `HashMap<NodeId, TruthTable>` per
//! cone.
//!
//! # CSR cut arena
//!
//! [`enumerate_cuts`] returns a [`CutArena`]: **one** flat `Vec<Cut>` plus a
//! per-node `(start, end)` offset range — the compressed-sparse-row layout —
//! instead of the former `Vec<Vec<Cut>>` (one heap list per node). During
//! enumeration each executor worker appends the lists of the nodes it
//! evaluates to a private segment buffer; after every level the segments are
//! stitched into the flat arena **in node order**, so the arena contents are
//! bit-identical for every thread count (the per-node lists are pure
//! functions of the fanins' finished lists). The arena, its ranges and the
//! worker segments are all recycled across enumerations via
//! [`enumerate_cuts_into`], which is how a whole pass script (and
//! `run_many`'s per-worker flows) get away with a handful of allocations
//! for all their cut storage.

use crate::tt::TruthTable;
use crate::{Aig, NodeId, NodeKind};
use xsfq_exec::ThreadPool;

/// Maximum number of leaves a [`Cut`] can hold inline. Covers every user in
/// the workspace (`rewrite` uses k = 4, `refactor` clamps to k ≤ 12).
pub const MAX_CUT_SIZE: usize = 12;

/// A cut: a set of leaf nodes (sorted by id) that together cover every path
/// from the combinational inputs to the cut's root.
///
/// Stored inline (no heap allocation); see the module docs for the
/// signature scheme.
#[derive(Copy, Clone, Debug)]
pub struct Cut {
    leaves: [NodeId; MAX_CUT_SIZE],
    len: u8,
    sig: u64,
}

#[inline]
fn leaf_sig(node: NodeId) -> u64 {
    1u64 << (node.index() % 64)
}

impl Cut {
    /// The trivial cut `{node}`.
    pub fn trivial(node: NodeId) -> Self {
        let mut leaves = [NodeId::CONST0; MAX_CUT_SIZE];
        leaves[0] = node;
        Cut {
            leaves,
            len: 1,
            sig: leaf_sig(node),
        }
    }

    /// Build a cut from sorted, deduplicated leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is unsorted, has duplicates, or exceeds
    /// [`MAX_CUT_SIZE`].
    pub fn from_leaves(leaves: &[NodeId]) -> Self {
        assert!(leaves.len() <= MAX_CUT_SIZE, "cut exceeds MAX_CUT_SIZE");
        assert!(
            leaves.windows(2).all(|w| w[0] < w[1]),
            "cut leaves must be sorted and unique"
        );
        let mut array = [NodeId::CONST0; MAX_CUT_SIZE];
        let mut sig = 0u64;
        for (slot, &leaf) in array.iter_mut().zip(leaves) {
            *slot = leaf;
            sig |= leaf_sig(leaf);
        }
        Cut {
            leaves: array,
            len: leaves.len() as u8,
            sig,
        }
    }

    /// Leaf nodes, sorted by id.
    #[inline]
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves[..self.len as usize]
    }

    /// Number of leaves.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if the cut has no leaves (never produced by enumeration).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The 64-bit leaf signature (bit `id % 64` set per leaf).
    #[inline]
    pub fn signature(&self) -> u64 {
        self.sig
    }

    /// Merge two cuts; `None` if the union exceeds `k` leaves.
    ///
    /// Allocation-free: the union is built inline. The signature popcount
    /// prunes oversize unions before any leaf comparison (the signature
    /// undercounts, so the check never rejects a feasible merge).
    pub fn merge(&self, other: &Cut, k: usize) -> Option<Cut> {
        debug_assert!(k <= MAX_CUT_SIZE, "k exceeds MAX_CUT_SIZE");
        let sig = self.sig | other.sig;
        if sig.count_ones() as usize > k {
            return None;
        }
        let mut leaves = [NodeId::CONST0; MAX_CUT_SIZE];
        let mut len = 0usize;
        let (a, b) = (self.leaves(), other.leaves());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = if j == b.len() || (i < a.len() && a[i] < b[j]) {
                i += 1;
                a[i - 1]
            } else if i < a.len() && a[i] == b[j] {
                i += 1;
                j += 1;
                a[i - 1]
            } else {
                j += 1;
                b[j - 1]
            };
            if len == k {
                return None;
            }
            leaves[len] = next;
            len += 1;
        }
        Some(Cut {
            leaves,
            len: len as u8,
            sig,
        })
    }

    /// True if `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// dominates `other`). One AND over the signatures rejects most
    /// non-subsets before the leaf scan.
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.len > other.len || self.sig & !other.sig != 0 {
            return false;
        }
        let (a, b) = (self.leaves(), other.leaves());
        let mut j = 0;
        for &l in a {
            while j < b.len() && b[j] < l {
                j += 1;
            }
            if j == b.len() || b[j] != l {
                return false;
            }
        }
        true
    }
}

impl PartialEq for Cut {
    fn eq(&self, other: &Self) -> bool {
        self.leaves() == other.leaves()
    }
}

impl Eq for Cut {}

impl std::hash::Hash for Cut {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.leaves().hash(state);
    }
}

/// Insert `merged` into the antichain `list` unless an existing cut
/// dominates it; drops existing cuts it dominates. Single pass — the
/// antichain invariant guarantees the two cases cannot both occur.
fn antichain_insert(list: &mut Vec<Cut>, merged: Cut) {
    let mut keep = 0;
    let mut read = 0;
    while read < list.len() {
        let c = list[read];
        if c.dominates(&merged) {
            // Nothing can have been dropped before this point: a cut
            // strictly dominated by `merged` would also be strictly
            // dominated by `c`, violating the antichain invariant.
            debug_assert_eq!(keep, read);
            return;
        }
        if !merged.dominates(&c) {
            list[keep] = c;
            keep += 1;
        }
        read += 1;
    }
    list.truncate(keep);
    list.push(merged);
}

/// CSR cut storage: every node's cut list is a contiguous slice of one flat
/// `Vec<Cut>`, addressed through a per-node offset range (see the module
/// docs). Produced by [`enumerate_cuts`]; recycle it across enumerations
/// with [`enumerate_cuts_into`].
#[derive(Default, Debug)]
pub struct CutArena {
    /// All cut lists back to back, in node-id stitch order per level.
    cuts: Vec<Cut>,
    /// `ranges[node] = (start, end)` into `cuts`.
    ranges: Vec<(u32, u32)>,
    /// Per-worker segment buffers (and per-worker antichain scratch),
    /// recycled across enumerations.
    segments: Vec<WorkerSegment>,
}

/// One executor participant's private append buffer plus its antichain
/// scratch list. The `wid` tag lets the stitch phase find the buffer a
/// node's list landed in without assuming anything about scheduling.
#[derive(Default, Debug)]
struct WorkerSegment {
    wid: u32,
    buf: Vec<Cut>,
    list: Vec<Cut>,
}

impl CutArena {
    /// Empty arena (buffers grow on first enumeration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes the arena holds lists for.
    pub fn num_nodes(&self) -> usize {
        self.ranges.len()
    }

    /// The cut list of a node.
    #[inline]
    pub fn node(&self, i: usize) -> &[Cut] {
        let (start, end) = self.ranges[i];
        &self.cuts[start as usize..end as usize]
    }

    /// Total cuts stored across all nodes.
    pub fn total_cuts(&self) -> usize {
        self.cuts.len()
    }

    /// Per-node cut lists, in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = &[Cut]> + '_ {
        (0..self.ranges.len()).map(move |i| self.node(i))
    }

    /// Audit the CSR storage invariants: every node range lies inside the
    /// flat cut buffer, cut sizes respect [`MAX_CUT_SIZE`], leaves are
    /// strictly sorted and point at nodes the arena knows about, and each
    /// stored signature matches the one recomputed from its leaves.
    ///
    /// Returns the first violation as a description, `Ok(())` on a clean
    /// arena (including the empty one).
    pub fn check_integrity(&self) -> Result<(), String> {
        for (i, &(start, end)) in self.ranges.iter().enumerate() {
            if start > end || end as usize > self.cuts.len() {
                return Err(format!(
                    "node {i}: range {start}..{end} escapes the cut buffer (len {})",
                    self.cuts.len()
                ));
            }
            for (ci, cut) in self.cuts[start as usize..end as usize].iter().enumerate() {
                if cut.len() > MAX_CUT_SIZE {
                    return Err(format!("node {i} cut {ci}: {} leaves", cut.len()));
                }
                let leaves = cut.leaves();
                let mut sig = 0u64;
                for (li, &leaf) in leaves.iter().enumerate() {
                    if leaf.index() >= self.ranges.len() {
                        return Err(format!(
                            "node {i} cut {ci}: leaf {} out of bounds",
                            leaf.index()
                        ));
                    }
                    if li > 0 && leaves[li - 1] >= leaf {
                        return Err(format!("node {i} cut {ci}: leaves not strictly sorted"));
                    }
                    sig |= leaf_sig(leaf);
                }
                if cut.signature() != sig {
                    return Err(format!(
                        "node {i} cut {ci}: stored signature {:#x} != recomputed {sig:#x}",
                        cut.signature()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Enumerate up to `max_cuts` k-feasible cuts per node (the trivial cut is
/// always included and not counted against the budget), on the global
/// executor pool.
///
/// Returns a [`CutArena`] with one cut list per node id.
pub fn enumerate_cuts(aig: &Aig, k: usize, max_cuts: usize) -> CutArena {
    enumerate_cuts_with_pool(aig, k, max_cuts, ThreadPool::global())
}

/// [`enumerate_cuts`] on an explicit executor pool.
pub fn enumerate_cuts_with_pool(
    aig: &Aig,
    k: usize,
    max_cuts: usize,
    pool: &ThreadPool,
) -> CutArena {
    let mut arena = CutArena::new();
    enumerate_cuts_into(aig, k, max_cuts, pool, &mut arena);
    arena
}

/// [`enumerate_cuts`] into a caller-owned (reusable) [`CutArena`].
///
/// A node's cut list depends only on its fanins' lists, and fanins sit at
/// strictly lower logic levels — so the nodes of one level are enumerated
/// in parallel, each worker appending to its private segment buffer, and
/// the segments are stitched into the flat arena in node order before the
/// next level starts. Each per-node list is computed by the same
/// merge/antichain walk in the same order as a sequential id-order pass, so
/// the arena is identical for every thread count (the
/// `cut_enumeration_matches_reference` proptest pins the sequential
/// reference).
pub fn enumerate_cuts_into(
    aig: &Aig,
    k: usize,
    max_cuts: usize,
    pool: &ThreadPool,
    arena: &mut CutArena,
) {
    assert!(k <= MAX_CUT_SIZE, "k exceeds MAX_CUT_SIZE");
    let n = aig.num_nodes();
    let threads = pool.num_threads();
    arena.cuts.clear();
    arena.ranges.clear();
    arena.ranges.resize(n, (0, 0));
    if arena.segments.len() < threads {
        arena.segments.resize_with(threads, WorkerSegment::default);
    }
    for (wid, seg) in arena.segments.iter_mut().enumerate() {
        seg.wid = wid as u32;
    }
    // Split the arena borrows: workers read `cuts`/`ranges` of finished
    // levels while filling their own segment.
    let mut cuts = std::mem::take(&mut arena.cuts);
    let mut ranges = std::mem::take(&mut arena.ranges);
    let mut segments = std::mem::take(&mut arena.segments);

    // Constants and combinational inputs carry only their trivial cut.
    for (i, kind) in aig.nodes().iter().enumerate() {
        if !kind.is_and() {
            let start = cuts.len() as u32;
            cuts.push(Cut::trivial(NodeId::from_index(i)));
            ranges[i] = (start, start + 1);
        }
    }
    // AND nodes bucketed by level, ascending; ids stay ascending within a
    // level (stable sort), which fixes the stitch order.
    let levels = aig.levels();
    let mut order: Vec<u32> = (0..n as u32)
        .filter(|&i| aig.nodes()[i as usize].is_and())
        .collect();
    order.sort_by_key(|&i| levels[i as usize]);
    let mut start = 0;
    while start < order.len() {
        let level = levels[order[start] as usize];
        let mut end = start + 1;
        while end < order.len() && levels[order[end] as usize] == level {
            end += 1;
        }
        let group = &order[start..end];
        for seg in &mut segments {
            seg.buf.clear();
        }
        // Evaluate: each worker appends its nodes' lists to its segment and
        // reports where the list landed. Which worker handled a node is
        // scheduling-dependent; the list *content* is not.
        let placements = {
            let cuts_ref = &cuts;
            let ranges_ref = &ranges;
            pool.map_reuse(group, &mut segments, |seg, _, &i| {
                let at = seg.buf.len() as u32;
                node_cuts(aig, cuts_ref, ranges_ref, i, k, max_cuts, seg);
                (seg.wid, at, seg.buf.len() as u32 - at)
            })
        };
        // Commit: stitch the segments into the flat arena in node order.
        for (&i, &(wid, at, len)) in group.iter().zip(&placements) {
            let from = &segments[wid as usize].buf[at as usize..(at + len) as usize];
            let start = cuts.len() as u32;
            cuts.extend_from_slice(from);
            ranges[i as usize] = (start, start + len);
        }
        start = end;
    }
    arena.cuts = cuts;
    arena.ranges = ranges;
    arena.segments = segments;
}

/// Cut list of a single AND node from its fanins' finished lists, appended
/// to the worker's segment buffer (antichain built in `seg.list`).
fn node_cuts(
    aig: &Aig,
    cuts: &[Cut],
    ranges: &[(u32, u32)],
    i: u32,
    k: usize,
    max_cuts: usize,
    seg: &mut WorkerSegment,
) {
    let NodeKind::And { a, b } = aig.nodes()[i as usize] else {
        unreachable!("only AND nodes are enumerated per level");
    };
    let slice = |node: NodeId| -> &[Cut] {
        let (s, e) = ranges[node.index()];
        &cuts[s as usize..e as usize]
    };
    let list = &mut seg.list;
    list.clear();
    for cut_a in slice(a.node()) {
        for cut_b in slice(b.node()) {
            let Some(merged) = cut_a.merge(cut_b, k) else {
                continue;
            };
            antichain_insert(list, merged);
        }
    }
    list.sort_by_key(Cut::len);
    list.truncate(max_cuts);
    list.push(Cut::trivial(NodeId::from_index(i as usize)));
    seg.buf.extend_from_slice(list);
}

/// Reusable per-cone working state for [`reconvergence_cut_with`],
/// [`cut_function_with`] and [`mffc_size_with`].
///
/// All node-indexed state is generation-stamped, so reuse across cones is a
/// stamp bump, not a clear. The resynthesis passes keep one scratch for the
/// whole graph walk; the convenience wrappers create a throwaway one.
#[derive(Default, Debug)]
pub struct CutScratch {
    stamp: u32,
    /// Per-node (stamp, payload) slots. Payload meaning is caller-specific:
    /// truth-table index for `cut_function_with`, remaining fanout count for
    /// `mffc_size_with`, visited/leaf marker for `reconvergence_cut_with`.
    slots: Vec<(u32, u32)>,
    tables: Vec<TruthTable>,
    stack: Vec<(NodeId, bool)>,
    nodes: Vec<NodeId>,
}

impl CutScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new cone: bump the stamp and size the slot table.
    fn begin(&mut self, num_nodes: usize) {
        if self.slots.len() < num_nodes {
            self.slots.resize(num_nodes, (0, 0));
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Wrapped: invalidate everything once.
            self.slots.fill((0, 0));
            self.stamp = 1;
        }
        self.tables.clear();
        self.stack.clear();
        self.nodes.clear();
    }

    #[inline]
    fn get(&self, id: NodeId) -> Option<u32> {
        let (s, v) = self.slots[id.index()];
        (s == self.stamp).then_some(v)
    }

    #[inline]
    fn set(&mut self, id: NodeId, value: u32) {
        self.slots[id.index()] = (self.stamp, value);
    }
}

/// Compute a reconvergence-driven cut of at most `k` leaves for `root`
/// (ABC's `abc_NodeFindCut` strategy): greedily expand the leaf whose
/// expansion adds the fewest new leaves.
pub fn reconvergence_cut(aig: &Aig, root: NodeId, k: usize) -> Cut {
    reconvergence_cut_with(aig, root, k, &mut CutScratch::new())
}

/// [`reconvergence_cut`] with caller-provided scratch (slot payload: 1 =
/// visited interior, 0 = current leaf).
pub fn reconvergence_cut_with(aig: &Aig, root: NodeId, k: usize, scratch: &mut CutScratch) -> Cut {
    assert!(k <= MAX_CUT_SIZE, "k exceeds MAX_CUT_SIZE");
    scratch.begin(aig.num_nodes());
    // `scratch.nodes` holds the current leaf set (≤ k + 1 entries).
    scratch.set(root, 1);
    match aig.node(root) {
        NodeKind::And { a, b } => {
            for f in [a.node(), b.node()] {
                if scratch.get(f).is_none() {
                    scratch.set(f, 0);
                    scratch.nodes.push(f);
                }
            }
        }
        _ => {
            scratch.set(root, 0);
            scratch.nodes.push(root);
        }
    }
    loop {
        // Cost of expanding a leaf = new leaves introduced - 1.
        let mut best: Option<(i32, usize)> = None;
        for (pos, &leaf) in scratch.nodes.iter().enumerate() {
            let NodeKind::And { a, b } = aig.node(leaf) else {
                continue;
            };
            let mut added = 0;
            for f in [a.node(), b.node()] {
                if scratch.get(f).is_none() {
                    added += 1;
                }
            }
            let cost = added - 1;
            if scratch.nodes.len() + added as usize - 1 > k {
                continue;
            }
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, pos));
            }
        }
        let Some((_, pos)) = best else { break };
        let leaf = scratch.nodes.swap_remove(pos);
        scratch.set(leaf, 1);
        let NodeKind::And { a, b } = aig.node(leaf) else {
            unreachable!()
        };
        for f in [a.node(), b.node()] {
            if scratch.get(f).is_none() {
                scratch.set(f, 0);
                scratch.nodes.push(f);
            }
        }
        if scratch.nodes.len() >= k {
            break;
        }
    }
    scratch.nodes.sort();
    Cut::from_leaves(&scratch.nodes)
}

/// Interior nodes of the cone of `root` above the cut leaves, in topological
/// order (root last). Leaves are excluded; the root is included.
pub fn cone_nodes(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> Vec<NodeId> {
    let mut scratch = CutScratch::new();
    collect_cone(aig, root, leaves, &mut scratch);
    std::mem::take(&mut scratch.nodes)
}

/// Fill `scratch.nodes` with the cone interior in topological order
/// (post-order DFS over stamped slots; payload 1 = visited).
fn collect_cone(aig: &Aig, root: NodeId, leaves: &[NodeId], scratch: &mut CutScratch) {
    scratch.begin(aig.num_nodes());
    for &leaf in leaves {
        scratch.set(leaf, 1);
    }
    scratch.stack.push((root, false));
    while let Some((id, expanded)) = scratch.stack.pop() {
        if expanded {
            scratch.nodes.push(id);
            continue;
        }
        if scratch.get(id).is_some() {
            continue;
        }
        scratch.set(id, 1);
        scratch.stack.push((id, true));
        if let NodeKind::And { a, b } = aig.node(id) {
            scratch.stack.push((a.node(), false));
            scratch.stack.push((b.node(), false));
        }
    }
}

/// Truth table of `root` as a function of the cut leaves.
///
/// # Panics
///
/// Panics if some path from `root` reaches a combinational input that is not
/// a cut leaf (i.e. `leaves` is not a valid cut for `root`).
pub fn cut_function(aig: &Aig, root: NodeId, leaves: &[NodeId]) -> TruthTable {
    cut_function_with(aig, root, leaves, &mut CutScratch::new())
}

/// [`cut_function`] with caller-provided scratch: tables live in a flat
/// reusable arena indexed through the stamped slots, so evaluating a ≤6-input
/// cone performs no per-node allocation at all (inline `u64` tables).
pub fn cut_function_with(
    aig: &Aig,
    root: NodeId,
    leaves: &[NodeId],
    scratch: &mut CutScratch,
) -> TruthTable {
    let vars = leaves.len();
    if let Some(pos) = leaves.iter().position(|&l| l == root) {
        return TruthTable::variable(vars, pos);
    }
    if root == NodeId::CONST0 {
        return TruthTable::zeros(vars);
    }
    collect_cone(aig, root, leaves, scratch);
    debug_assert!(
        scratch.get(root).is_some(),
        "root must be inside its own cone"
    );
    // Stamp was consumed by collect_cone; re-stamp leaf slots to table
    // indices without disturbing the collected topological order.
    scratch.stamp = scratch.stamp.wrapping_add(1);
    if scratch.stamp == 0 {
        scratch.slots.fill((0, 0));
        scratch.stamp = 1;
    }
    for (i, &leaf) in leaves.iter().enumerate() {
        scratch.tables.push(TruthTable::variable(vars, i));
        scratch.set(leaf, i as u32);
    }
    if scratch.get(NodeId::CONST0).is_none() {
        scratch.tables.push(TruthTable::zeros(vars));
        scratch.set(NodeId::CONST0, vars as u32);
    }
    let mut result = None;
    for idx in 0..scratch.nodes.len() {
        let id = scratch.nodes[idx];
        let NodeKind::And { a, b } = aig.node(id) else {
            panic!("cone reached non-AND node {id:?} that is not a cut leaf");
        };
        let ta = scratch.get(a.node()).expect("fanin table computed") as usize;
        let tb = scratch.get(b.node()).expect("fanin table computed") as usize;
        let mut t = scratch.tables[ta].clone();
        if a.is_complement() {
            t.invert();
        }
        if b.is_complement() {
            let mut o = scratch.tables[tb].clone();
            o.invert();
            t.and_with(&o);
        } else {
            t.and_with(&scratch.tables[tb]);
        }
        if id == root {
            result = Some(t);
            break;
        }
        scratch.set(id, scratch.tables.len() as u32);
        scratch.tables.push(t);
    }
    result.expect("root evaluated")
}

/// Size of the maximum fanout-free cone of `root` with respect to the cut:
/// the number of cone nodes (including the root) that would become dangling
/// if `root` were replaced by a new implementation over the cut leaves.
///
/// `fanouts` must come from [`Aig::fanout_counts`] with roots included.
pub fn mffc_size(aig: &Aig, root: NodeId, leaves: &[NodeId], fanouts: &[u32]) -> usize {
    mffc_size_with(aig, root, leaves, fanouts, &mut CutScratch::new())
}

/// [`mffc_size`] with caller-provided scratch (slot payload: remaining
/// fanout count, offset by 1 so a leaf marker of 0 stays distinct).
pub fn mffc_size_with(
    aig: &Aig,
    root: NodeId,
    leaves: &[NodeId],
    fanouts: &[u32],
    scratch: &mut CutScratch,
) -> usize {
    scratch.begin(aig.num_nodes());
    for &leaf in leaves {
        scratch.set(leaf, 0);
    }
    let mut size = 0usize;
    // Deref the root unconditionally (it is being replaced).
    scratch.stack.push((root, false));
    while let Some((id, _)) = scratch.stack.pop() {
        if scratch.get(id) == Some(0) {
            continue; // Cut leaf.
        }
        let NodeKind::And { a, b } = aig.node(id) else {
            continue;
        };
        size += 1;
        for f in [a.node(), b.node()] {
            if scratch.get(f) == Some(0) || !aig.node(f).is_and() {
                continue;
            }
            // Payload is remaining-references + 1 (so 0 stays the leaf
            // marker); each cone edge dereferences once.
            let remaining = match scratch.get(f) {
                Some(r) => {
                    debug_assert!(r >= 2, "node dereferenced past zero");
                    r - 1
                }
                None => fanouts[f.index()],
            };
            scratch.set(f, remaining);
            if remaining == 1 {
                scratch.stack.push((f, false));
            }
        }
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use crate::Lit;

    fn full_adder_aig() -> (Aig, Lit, Lit) {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        (g, s, co)
    }

    #[test]
    fn merge_respects_k() {
        let a = Cut::trivial(NodeId::from_index(1));
        let b = Cut::trivial(NodeId::from_index(2));
        let ab = a.merge(&b, 2).unwrap();
        assert_eq!(ab.len(), 2);
        let c = Cut::trivial(NodeId::from_index(3));
        assert!(ab.merge(&c, 2).is_none());
        assert!(ab.merge(&c, 3).is_some());
    }

    #[test]
    fn integrity_check_accepts_real_enumerations_and_catches_corruption() {
        let (g, _, _) = full_adder_aig();
        let mut arena = enumerate_cuts(&g, 4, 8);
        arena.check_integrity().unwrap();
        // Corrupt a stored signature: the audit must localize it.
        if let Some(cut) = arena.cuts.iter_mut().find(|c| !c.is_empty()) {
            cut.sig ^= 0xdead_beef;
        }
        assert!(arena.check_integrity().unwrap_err().contains("signature"));
        // Corrupt a range: escapes the buffer.
        let mut arena = enumerate_cuts(&g, 4, 8);
        let last = arena.ranges.len() - 1;
        arena.ranges[last].1 = u32::MAX;
        assert!(arena.check_integrity().unwrap_err().contains("escapes"));
    }

    #[test]
    fn dominance() {
        let small = Cut::from_leaves(&[NodeId::from_index(1), NodeId::from_index(3)]);
        let big = Cut::from_leaves(&[
            NodeId::from_index(1),
            NodeId::from_index(2),
            NodeId::from_index(3),
        ]);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
    }

    #[test]
    fn signature_is_subset_summary() {
        // Ids 64 apart collide in the signature — dominance must still be
        // exact (the signature may only produce false "maybe"s).
        let a = Cut::from_leaves(&[NodeId::from_index(1), NodeId::from_index(65)]);
        let b = Cut::from_leaves(&[NodeId::from_index(1), NodeId::from_index(129)]);
        assert_eq!(a.signature(), b.signature());
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        let sup = Cut::from_leaves(&[
            NodeId::from_index(1),
            NodeId::from_index(65),
            NodeId::from_index(70),
        ]);
        assert!(a.dominates(&sup));
        assert_eq!(a.signature() & !sup.signature(), 0);
    }

    #[test]
    fn antichain_insert_keeps_minimal_cuts() {
        let mut list = vec![Cut::from_leaves(&[
            NodeId::from_index(1),
            NodeId::from_index(2),
            NodeId::from_index(3),
        ])];
        // A subset drops the superset.
        antichain_insert(
            &mut list,
            Cut::from_leaves(&[NodeId::from_index(1), NodeId::from_index(2)]),
        );
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].len(), 2);
        // A superset of an existing cut is rejected.
        antichain_insert(
            &mut list,
            Cut::from_leaves(&[
                NodeId::from_index(1),
                NodeId::from_index(2),
                NodeId::from_index(9),
            ]),
        );
        assert_eq!(list.len(), 1);
        // An incomparable cut is added.
        antichain_insert(
            &mut list,
            Cut::from_leaves(&[NodeId::from_index(7), NodeId::from_index(8)]),
        );
        assert_eq!(list.len(), 2);
        // Re-inserting an existing cut is a no-op (equality dominates).
        antichain_insert(
            &mut list,
            Cut::from_leaves(&[NodeId::from_index(7), NodeId::from_index(8)]),
        );
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn enumerate_full_adder() {
        let (g, s, co) = full_adder_aig();
        let cuts = enumerate_cuts(&g, 4, 8);
        assert_eq!(cuts.num_nodes(), g.num_nodes());
        // The sum output node must have a cut consisting of the three PIs.
        let pi_cut: Vec<NodeId> = g.inputs().to_vec();
        let s_cuts = cuts.node(s.node().index());
        assert!(
            s_cuts.iter().any(|c| c.leaves() == pi_cut.as_slice()),
            "sum node should have the PI cut, got {s_cuts:?}"
        );
        let co_cuts = cuts.node(co.node().index());
        assert!(co_cuts.iter().any(|c| c.leaves() == pi_cut.as_slice()));
    }

    #[test]
    fn cut_arena_reuse_and_pool_size_are_invisible() {
        // One warm arena across different graphs and pool sizes must hold
        // exactly what a fresh sequential enumeration holds.
        let (fa, _, _) = full_adder_aig();
        let mut chain = Aig::new("chain");
        let xs = chain.input_word("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = chain.and(acc, x);
        }
        chain.output("o", acc);

        let mut warm = CutArena::new();
        for g in [&fa, &chain, &fa] {
            for threads in [1usize, 3] {
                let pool = ThreadPool::new(threads);
                enumerate_cuts_into(g, 4, 8, &pool, &mut warm);
                let fresh = enumerate_cuts_with_pool(g, 4, 8, &ThreadPool::new(1));
                assert_eq!(warm.num_nodes(), fresh.num_nodes());
                for i in 0..fresh.num_nodes() {
                    assert_eq!(warm.node(i), fresh.node(i), "node {i}, {threads} threads");
                }
            }
        }
    }

    #[test]
    fn cut_function_matches_semantics() {
        let (g, s, co) = full_adder_aig();
        let pis: Vec<NodeId> = g.inputs().to_vec();
        let ts = cut_function(&g, s.node(), &pis);
        let tc = cut_function(&g, co.node(), &pis);
        for p in 0..8usize {
            let ones = (p & 1) + (p >> 1 & 1) + (p >> 2 & 1);
            // s output literal may be complemented relative to its node.
            let node_s = ts.bit(p);
            let expect_s = (ones & 1) == 1;
            assert_eq!(node_s ^ s.is_complement(), expect_s, "sum pattern {p}");
            let node_c = tc.bit(p);
            let expect_c = ones >= 2;
            assert_eq!(node_c ^ co.is_complement(), expect_c, "cout pattern {p}");
        }
    }

    #[test]
    fn cut_function_scratch_reuse_is_clean() {
        let (g, s, co) = full_adder_aig();
        let pis: Vec<NodeId> = g.inputs().to_vec();
        let mut scratch = CutScratch::new();
        let fresh_s = cut_function(&g, s.node(), &pis);
        let fresh_c = cut_function(&g, co.node(), &pis);
        for _ in 0..3 {
            assert_eq!(cut_function_with(&g, s.node(), &pis, &mut scratch), fresh_s);
            assert_eq!(
                cut_function_with(&g, co.node(), &pis, &mut scratch),
                fresh_c
            );
        }
    }

    #[test]
    fn reconvergence_cut_covers_root() {
        let (g, s, _) = full_adder_aig();
        let cut = reconvergence_cut(&g, s.node(), 4);
        assert!(cut.len() <= 4);
        // Evaluating the cut function must succeed (i.e. it is a real cut).
        let _ = cut_function(&g, s.node(), cut.leaves());
    }

    #[test]
    fn mffc_of_exclusive_cone() {
        // x = a&b feeding only y = x&c: replacing y frees both.
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.output("o", y);
        let fanouts = g.fanout_counts(true);
        let leaves: Vec<NodeId> = g.inputs().to_vec();
        assert_eq!(mffc_size(&g, y.node(), &leaves, &fanouts), 2);

        // If x is also an output, it survives the replacement.
        let mut g2 = Aig::new("t2");
        let a = g2.input("a");
        let b = g2.input("b");
        let c = g2.input("c");
        let x = g2.and(a, b);
        let y = g2.and(x, c);
        g2.output("o", y);
        g2.output("x", x);
        let fanouts = g2.fanout_counts(true);
        let leaves: Vec<NodeId> = g2.inputs().to_vec();
        assert_eq!(mffc_size(&g2, y.node(), &leaves, &fanouts), 1);
    }
}
