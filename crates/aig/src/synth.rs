//! Resynthesis of a truth table into AIG structure.
//!
//! [`synthesize`] turns a cut function back into AND/INV logic using a
//! combination of:
//!
//! * simple decomposition rules (constant/unate/XOR cofactor patterns),
//! * Shannon expansion (MUX) on the most binate variable, and
//! * ISOP extraction ([`crate::isop`]) followed by algebraic literal
//!   factoring (the SIS `quick_factor` recipe).
//!
//! The cheapest alternative (in freshly created AND nodes) wins; costs are
//! memoized per truth table so large cones stay cheap to evaluate. This is
//! the engine behind both the `rewrite` (4-input cuts) and `refactor`
//! (reconvergence-driven cuts) passes.

use crate::hash::FxHashMap;
use crate::isop::{isop, Cube};
use crate::tt::TruthTable;
use crate::{Aig, Lit};

/// Rebuild `tt` over the literals `leaves` inside `aig`.
///
/// `leaves[i]` supplies variable `i` of the table. Returns the output
/// literal. New nodes are structurally hashed into `aig`, so logic shared
/// with the existing graph is free.
///
/// # Panics
///
/// Panics if `leaves.len() != tt.num_vars()`.
pub fn synthesize(aig: &mut Aig, tt: &TruthTable, leaves: &[Lit]) -> Lit {
    Synthesizer::new().build(aig, tt, leaves)
}

/// Count how many AND nodes [`synthesize`] would create in isolation
/// (conservative: ignores sharing with the surrounding graph).
pub fn synthesis_cost(tt: &TruthTable, num_leaves: usize) -> usize {
    let mut s = Synthesizer::new();
    let mut scratch = Aig::new("scratch");
    let leaves: Vec<Lit> = (0..num_leaves).map(|_| scratch.input("")).collect();
    s.build(&mut scratch, tt, &leaves);
    scratch.num_ands()
}

/// Reusable resynthesis engine with cross-call cost memoization.
///
/// Optimization passes that resynthesize many cuts should reuse one
/// `Synthesizer` so repeated cut functions (buffers, carry chains…) are
/// costed once.
#[derive(Default, Debug)]
pub struct Synthesizer {
    /// Keyed by the table itself: ≤6-variable tables are a single inline
    /// word, so the common key is 16 bytes and never heap-allocated.
    cost_memo: FxHashMap<TruthTable, usize>,
    /// Factored-form cost keyed by the SOP cover. Repeated covers (carry
    /// chains, buffers, mux slices…) would otherwise rebuild a scratch AIG
    /// per evaluation; the cover fully determines the cost, so one build
    /// per distinct cover suffices.
    sop_cost_memo: FxHashMap<Vec<Cube>, usize>,
    /// Per-build node memo. Entries are only valid for one `build` call
    /// (they bind leaf literals); the map is kept on the struct and cleared
    /// per call so the commit phase of the rewriting passes — thousands of
    /// `build`s per pass — reuses one allocation instead of building a
    /// fresh `FxHashMap` each time.
    build_memo: FxHashMap<TruthTable, Lit>,
}

/// How a function will be decomposed at the top level.
#[derive(Clone, Debug)]
enum Plan {
    Const(bool),
    Literal {
        var: usize,
        complement: bool,
    },
    /// `f = (v ^ v_complement) op rest-cofactor`
    Rule {
        var: usize,
        rule: Rule,
    },
    Mux {
        var: usize,
    },
    Sop {
        cover: Vec<Cube>,
        complement: bool,
    },
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Rule {
    /// `f = v & f1`
    AndPos,
    /// `f = !v & f0`
    AndNeg,
    /// `f = !v | f1`
    OrNeg,
    /// `f = v | f0`
    OrPos,
    /// `f = v ^ f0`
    Xor,
}

impl Synthesizer {
    /// Create a fresh engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build `tt` over `leaves` in `aig`; see [`synthesize`].
    pub fn build(&mut self, aig: &mut Aig, tt: &TruthTable, leaves: &[Lit]) -> Lit {
        assert_eq!(leaves.len(), tt.num_vars(), "leaf count must match table");
        // Take the retained memo (stale entries bind other leaves — clear),
        // recurse, and put it back so its buckets survive to the next call.
        let mut build_memo = std::mem::take(&mut self.build_memo);
        build_memo.clear();
        let lit = self.build_rec(aig, tt, leaves, &mut build_memo);
        self.build_memo = build_memo;
        lit
    }

    /// Memoized AND-node cost of building `tt` (isolation estimate).
    pub fn cost(&mut self, tt: &TruthTable) -> usize {
        if let Some(&c) = self.cost_memo.get(tt) {
            return c;
        }
        let c = match self.plan(tt) {
            Plan::Const(_) | Plan::Literal { .. } => 0,
            Plan::Rule { var, rule } => {
                let (step, rest) = match rule {
                    Rule::AndPos => (1, tt.cofactor1(var)),
                    Rule::AndNeg => (1, tt.cofactor0(var)),
                    Rule::OrNeg => (1, tt.cofactor1(var)),
                    Rule::OrPos => (1, tt.cofactor0(var)),
                    Rule::Xor => (3, tt.cofactor0(var)),
                };
                step + self.cost(&rest)
            }
            Plan::Mux { var } => 3 + self.cost(&tt.cofactor0(var)) + self.cost(&tt.cofactor1(var)),
            Plan::Sop { cover, .. } => self.factored_cost(&cover, tt.num_vars()),
        };
        self.cost_memo.insert(tt.clone(), c);
        c
    }

    /// Memoized factored-form cost of an SOP cover (see [`build_factored`]).
    /// The scratch AIG is only built the first time a cover is seen.
    fn factored_cost(&mut self, cover: &[Cube], num_leaves: usize) -> usize {
        if let Some(&c) = self.sop_cost_memo.get(cover) {
            return c;
        }
        let mut scratch = Aig::new("cost");
        let leaves: Vec<Lit> = (0..num_leaves).map(|_| scratch.input("")).collect();
        build_factored(&mut scratch, cover, &leaves);
        let c = scratch.num_ands();
        self.sop_cost_memo.insert(cover.to_vec(), c);
        c
    }

    fn plan(&mut self, tt: &TruthTable) -> Plan {
        if tt.is_zero() {
            return Plan::Const(false);
        }
        if tt.is_ones() {
            return Plan::Const(true);
        }
        let support = tt.support();
        if support.len() == 1 {
            let var = support[0];
            return Plan::Literal {
                var,
                complement: !tt.cofactor1(var).is_ones(),
            };
        }
        for &v in &support {
            let c0 = tt.cofactor0(v);
            let c1 = tt.cofactor1(v);
            let rule = if c0.is_zero() {
                Some(Rule::AndPos)
            } else if c1.is_zero() {
                Some(Rule::AndNeg)
            } else if c0.is_ones() {
                Some(Rule::OrNeg)
            } else if c1.is_ones() {
                Some(Rule::OrPos)
            } else if c1.is_complement_of(&c0) {
                Some(Rule::Xor)
            } else {
                None
            };
            if let Some(rule) = rule {
                return Plan::Rule { var: v, rule };
            }
        }
        // No free rule: compare MUX expansion against factored SOP covers.
        let var = most_binate_var(tt, &support);
        let mux_cost = 3 + self.cost(&tt.cofactor0(var)) + self.cost(&tt.cofactor1(var));
        let cover = isop(tt, tt);
        let neg = tt.not();
        let cover_neg = isop(&neg, &neg);
        let sop_cost = self.factored_cost(&cover, tt.num_vars());
        let sop_neg_cost = self.factored_cost(&cover_neg, tt.num_vars());
        if mux_cost < sop_cost.min(sop_neg_cost) {
            Plan::Mux { var }
        } else if sop_cost <= sop_neg_cost {
            Plan::Sop {
                cover,
                complement: false,
            }
        } else {
            Plan::Sop {
                cover: cover_neg,
                complement: true,
            }
        }
    }

    fn build_rec(
        &mut self,
        aig: &mut Aig,
        tt: &TruthTable,
        leaves: &[Lit],
        memo: &mut FxHashMap<TruthTable, Lit>,
    ) -> Lit {
        if let Some(&hit) = memo.get(tt) {
            return hit;
        }
        let complement = tt.not();
        if let Some(&hit) = memo.get(&complement) {
            return !hit;
        }
        let lit = match self.plan(tt) {
            Plan::Const(value) => {
                if value {
                    Lit::TRUE
                } else {
                    Lit::FALSE
                }
            }
            Plan::Literal { var, complement } => leaves[var].complement_if(complement),
            Plan::Rule { var, rule } => match rule {
                Rule::AndPos => {
                    let f1 = self.build_rec(aig, &tt.cofactor1(var), leaves, memo);
                    aig.and(leaves[var], f1)
                }
                Rule::AndNeg => {
                    let f0 = self.build_rec(aig, &tt.cofactor0(var), leaves, memo);
                    aig.and(!leaves[var], f0)
                }
                Rule::OrNeg => {
                    let f1 = self.build_rec(aig, &tt.cofactor1(var), leaves, memo);
                    aig.or(!leaves[var], f1)
                }
                Rule::OrPos => {
                    let f0 = self.build_rec(aig, &tt.cofactor0(var), leaves, memo);
                    aig.or(leaves[var], f0)
                }
                Rule::Xor => {
                    let f0 = self.build_rec(aig, &tt.cofactor0(var), leaves, memo);
                    aig.xor(leaves[var], f0)
                }
            },
            Plan::Mux { var } => {
                let f0 = self.build_rec(aig, &tt.cofactor0(var), leaves, memo);
                let f1 = self.build_rec(aig, &tt.cofactor1(var), leaves, memo);
                aig.mux(leaves[var], f1, f0)
            }
            Plan::Sop { cover, complement } => {
                let lit = build_factored(aig, &cover, leaves);
                lit.complement_if(complement)
            }
        };
        memo.insert(tt.clone(), lit);
        lit
    }
}

/// Variable that splits the ON-set most evenly — the classic choice for
/// Shannon expansion.
fn most_binate_var(tt: &TruthTable, support: &[usize]) -> usize {
    let mut best = support[0];
    let mut best_score = usize::MAX;
    for &v in support {
        let ones0 = tt.cofactor0(v).count_ones();
        let ones1 = tt.cofactor1(v).count_ones();
        let score = ones0.abs_diff(ones1);
        if score < best_score {
            best_score = score;
            best = v;
        }
    }
    best
}

/// Build a factored form of an SOP cover (SIS-style literal factoring):
/// recursively divide the cover by its most frequent literal.
pub fn build_factored(aig: &mut Aig, cover: &[Cube], leaves: &[Lit]) -> Lit {
    if cover.is_empty() {
        return Lit::FALSE;
    }
    if cover.contains(&Cube::UNIVERSE) {
        return Lit::TRUE;
    }
    if cover.len() == 1 {
        return build_cube(aig, cover[0], leaves);
    }
    // Pick the literal appearing in the most cubes.
    let mut best: Option<(bool, usize, usize)> = None; // (positive, var, count)
    for v in 0..leaves.len() {
        let pos_count = cover.iter().filter(|c| c.pos >> v & 1 == 1).count();
        let neg_count = cover.iter().filter(|c| c.neg >> v & 1 == 1).count();
        if pos_count > 0 && best.is_none_or(|(_, _, c)| pos_count > c) {
            best = Some((true, v, pos_count));
        }
        if neg_count > 0 && best.is_none_or(|(_, _, c)| neg_count > c) {
            best = Some((false, v, neg_count));
        }
    }
    let (positive, var, count) = best.expect("non-trivial cover has literals");
    if count <= 1 {
        // No sharing opportunity: OR the cubes directly.
        let terms: Vec<Lit> = cover.iter().map(|&c| build_cube(aig, c, leaves)).collect();
        return aig.or_many(&terms);
    }
    let bit = 1u32 << var;
    let mut quotient = Vec::new();
    let mut remainder = Vec::new();
    for &c in cover {
        let has = if positive {
            c.pos & bit != 0
        } else {
            c.neg & bit != 0
        };
        if has {
            let stripped = if positive {
                Cube {
                    pos: c.pos & !bit,
                    neg: c.neg,
                }
            } else {
                Cube {
                    pos: c.pos,
                    neg: c.neg & !bit,
                }
            };
            quotient.push(stripped);
        } else {
            remainder.push(c);
        }
    }
    let lit = leaves[var].complement_if(!positive);
    let q = build_factored(aig, &quotient, leaves);
    let lq = aig.and(lit, q);
    if remainder.is_empty() {
        lq
    } else {
        let r = build_factored(aig, &remainder, leaves);
        aig.or(lq, r)
    }
}

fn build_cube(aig: &mut Aig, cube: Cube, leaves: &[Lit]) -> Lit {
    let mut lits = Vec::new();
    for (v, &leaf) in leaves.iter().enumerate() {
        if cube.pos >> v & 1 == 1 {
            lits.push(leaf);
        }
        if cube.neg >> v & 1 == 1 {
            lits.push(!leaf);
        }
    }
    aig.and_many(&lits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn check_roundtrip(vars: usize, word_fn: impl Fn(usize) -> bool) {
        let mut tt = TruthTable::zeros(vars);
        for p in 0..(1usize << vars) {
            tt.set_bit(p, word_fn(p));
        }
        let mut aig = Aig::new("t");
        let leaves: Vec<Lit> = (0..vars).map(|i| aig.input(format!("x{i}"))).collect();
        let out = synthesize(&mut aig, &tt, &leaves);
        aig.output("f", out);
        for p in 0..(1usize << vars) {
            let inputs: Vec<bool> = (0..vars).map(|i| p >> i & 1 == 1).collect();
            let got = sim::eval_outputs(&aig, &inputs)[0];
            assert_eq!(got, word_fn(p), "pattern {p:b}");
        }
    }

    #[test]
    fn synthesizes_basic_functions() {
        check_roundtrip(2, |p| p == 3); // AND
        check_roundtrip(2, |p| p != 0); // OR
        check_roundtrip(2, |p| (p.count_ones() & 1) == 1); // XOR
        check_roundtrip(3, |p| p.count_ones() >= 2); // MAJ
        check_roundtrip(4, |p| (p.count_ones() & 1) == 0); // XNOR4
    }

    #[test]
    fn xor_chain_is_linear_size() {
        // Parity of 6 variables must synthesize as an XOR chain
        // (5 XORs = 15 ANDs), not an exponential SOP.
        let vars = 6;
        let mut tt = TruthTable::zeros(vars);
        for p in 0..(1usize << vars) {
            if (p as u32).count_ones() & 1 == 1 {
                tt.set_bit(p, true);
            }
        }
        let cost = synthesis_cost(&tt, vars);
        assert_eq!(cost, 15, "parity6 should cost 5 XORs");
    }

    #[test]
    fn maj3_is_four_ands() {
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 1);
        let c = TruthTable::variable(3, 2);
        let f = a.and(&b).or(&a.and(&c)).or(&b.and(&c));
        assert!(
            synthesis_cost(&f, 3) <= 4,
            "maj3 should cost at most 4 ANDs"
        );
    }

    #[test]
    fn random_functions_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let word: u64 = rng.gen();
            check_roundtrip(5, |p| word >> (p % 64) & 1 == 1);
        }
    }

    #[test]
    fn constants_and_literals() {
        let mut aig = Aig::new("t");
        let leaves: Vec<Lit> = (0..3).map(|i| aig.input(format!("x{i}"))).collect();
        assert_eq!(
            synthesize(&mut aig, &TruthTable::zeros(3), &leaves),
            Lit::FALSE
        );
        assert_eq!(
            synthesize(&mut aig, &TruthTable::ones(3), &leaves),
            Lit::TRUE
        );
        let v1 = TruthTable::variable(3, 1);
        assert_eq!(synthesize(&mut aig, &v1, &leaves), leaves[1]);
        assert_eq!(synthesize(&mut aig, &v1.not(), &leaves), !leaves[1]);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn factored_cost_is_memoized_per_cover() {
        use crate::isop::isop;
        let mut s = Synthesizer::new();
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 1);
        let c = TruthTable::variable(3, 2);
        let maj = a.and(&b).or(&a.and(&c)).or(&b.and(&c));
        let cover = isop(&maj, &maj);
        let c1 = s.factored_cost(&cover, 3);
        let c2 = s.factored_cost(&cover, 3);
        assert_eq!(c1, c2);
        assert_eq!(s.sop_cost_memo.len(), 1, "one distinct cover, one entry");
    }

    #[test]
    fn cost_memo_is_consistent() {
        let mut s = Synthesizer::new();
        let a = TruthTable::variable(4, 0);
        let b = TruthTable::variable(4, 1);
        let f = a.xor(&b);
        let c1 = s.cost(&f);
        let c2 = s.cost(&f);
        assert_eq!(c1, c2);
        assert_eq!(c1, 3);
    }
}
