//! Deterministic fault injection for the pass engine (`chaos` feature).
//!
//! Robustness claims are only as good as the faults they were tested
//! against. This module lets a test *plan* a fault — a panic, a stall, or a
//! forced guard trip — at pass *i* of design *j*, and the pass engine fires
//! it at exactly that point. Every recovery path in the hardened job runner
//! (`xsfq_core::flow::SynthesisFlow::run_many_isolated`) is exercised by
//! real injected faults rather than hand-mocked errors:
//!
//! * [`FaultKind::Panic`] — `panic!` inside the pass boundary, testing
//!   per-job unwind isolation and partial-telemetry capture.
//! * [`FaultKind::Stall`] — busy-wait until the job's [`CancelToken`]
//!   cancels (a deadline firing or an explicit cancel), testing the
//!   deadline path with a *real* stuck pass instead of a sleep of a guessed
//!   length.
//! * [`FaultKind::GuardTrip`] — force the pass's guard check to report
//!   [`GuardKind::Injected`](crate::pass::GuardKind::Injected), testing
//!   rollback and fast-preset degradation without needing a pass that
//!   actually misbehaves.
//!
//! The plan is deterministic — `(design index, pass index) → fault` — so
//! chaos tests are exactly reproducible under every pool size.
//!
//! ```
//! use xsfq_aig::chaos::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new()
//!     .fault(1, 0, FaultKind::Panic) // design 1 dies in its first pass
//!     .fault(3, 2, FaultKind::Stall); // design 3 stalls in its third
//! assert!(plan.for_design(0).is_none(), "healthy designs get no injector");
//! let inj = plan.for_design(1).unwrap();
//! assert_eq!(inj.fault_at(0), Some(FaultKind::Panic));
//! assert_eq!(inj.fault_at(1), None);
//! ```

use std::time::{Duration, Instant};

use xsfq_exec::CancelToken;

/// What to inject at the planned point. See the [module docs](self).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the pass boundary.
    Panic,
    /// Busy-wait until the job's cancellation token fires.
    Stall,
    /// Force the pass's resource-guard check to trip.
    GuardTrip,
}

/// A deterministic fault plan for a whole batch: which fault (if any) fires
/// at pass `i` of design `j`. Built once by a test, shared read-only by
/// every job.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    faults: Vec<(usize, usize, FaultKind)>,
}

impl FaultPlan {
    /// An empty plan (no faults anywhere).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Plan `kind` to fire when design `design` starts its `pass`-th pass
    /// (0-based, counted across the whole script in execution order).
    #[must_use]
    pub fn fault(mut self, design: usize, pass: usize, kind: FaultKind) -> FaultPlan {
        self.faults.push((design, pass, kind));
        self
    }

    /// The injector for one design of the batch, or `None` when the plan
    /// holds nothing for it.
    pub fn for_design(&self, design: usize) -> Option<Injector> {
        let faults: Vec<(usize, FaultKind)> = self
            .faults
            .iter()
            .filter(|(d, _, _)| *d == design)
            .map(|(_, p, k)| (*p, *k))
            .collect();
        if faults.is_empty() {
            None
        } else {
            Some(Injector { faults })
        }
    }
}

/// One design's slice of a [`FaultPlan`], installed into the pass context
/// ([`PassCtx::set_chaos`](crate::pass::PassCtx::set_chaos)) and queried by
/// the engine at every pass boundary.
#[derive(Clone, Debug)]
pub struct Injector {
    faults: Vec<(usize, FaultKind)>,
}

impl Injector {
    /// The fault planned for the `pass_index`-th executed pass, if any.
    pub fn fault_at(&self, pass_index: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|(p, _)| *p == pass_index)
            .map(|(_, k)| *k)
    }
}

/// Busy-wait (with short sleeps) until `token` reports cancelled — the
/// [`FaultKind::Stall`] implementation. A stalled pass must only ever end
/// because cancellation reached it; if nothing cancels the token within a
/// generous safety cap the test harness is broken, and panicking beats
/// hanging CI forever.
pub fn stall_until_cancelled(token: &CancelToken) {
    const SAFETY_CAP: Duration = Duration::from_secs(60);
    let start = Instant::now();
    while !token.is_cancelled() {
        if start.elapsed() > SAFETY_CAP {
            panic!("chaos: stalled pass was never cancelled within {SAFETY_CAP:?}");
        }
        std::thread::sleep(Duration::from_micros(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_routes_faults_by_design_and_pass() {
        let plan = FaultPlan::new()
            .fault(0, 2, FaultKind::GuardTrip)
            .fault(2, 0, FaultKind::Panic)
            .fault(2, 5, FaultKind::Stall);
        assert!(plan.for_design(1).is_none());
        let d0 = plan.for_design(0).unwrap();
        assert_eq!(d0.fault_at(2), Some(FaultKind::GuardTrip));
        assert_eq!(d0.fault_at(0), None);
        let d2 = plan.for_design(2).unwrap();
        assert_eq!(d2.fault_at(0), Some(FaultKind::Panic));
        assert_eq!(d2.fault_at(5), Some(FaultKind::Stall));
    }

    #[test]
    fn stall_returns_once_cancelled() {
        let token = CancelToken::new();
        token.cancel();
        stall_until_cancelled(&token); // must return immediately
    }
}
