//! Canonical structural digests — the content address of a design.
//!
//! A serving layer wants to answer "have I synthesized this design
//! before?" without trusting the submitter's node numbering: two BLIF
//! files written by different tools for the same circuit differ in
//! internal signal names and node order even when the graphs are
//! structurally identical. [`canonical_digest`] renumbers the graph into
//! a canonical form — inputs in declaration order, latches in declaration
//! order, AND nodes in the post-order of a deterministic DFS from the
//! combinational roots — and hashes that form into a 128-bit [`Digest`].
//! Internal names and arena node ids do not participate; the *interface*
//! (design name, port and latch names, latch init values, output
//! polarities) does, because a cached synthesis result is returned
//! verbatim, netlist port names included.
//!
//! Two AIGs get equal digests iff they have the same canonical form:
//! same interface and the same AND structure reachable from it.
//! Unreachable (dangling) AND nodes are ignored, so a design and its
//! [`Aig::compact`] hash identically.
//!
//! The hash is a seeded 128-bit SplitMix construction — fast and
//! well-distributed, **not** cryptographic. Collisions are astronomically
//! unlikely by accident but constructible on purpose; a result cache keyed
//! by it trusts its clients, which is the serving daemon's trust model
//! (the cache is per-deployment, not a public content store).

use std::fmt;

use crate::{Aig, Lit, NodeId, NodeKind};

/// A 128-bit canonical content digest of an [`Aig`]. Displays as 32 hex
/// digits.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Digest(pub [u8; 16]);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl Digest {
    /// Parse the 32-hex-digit form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<Digest> {
        let s = s.as_bytes();
        if s.len() != 32 {
            return None;
        }
        let mut out = [0u8; 16];
        for (i, chunk) in s.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(Digest(out))
    }
}

/// The SplitMix64 finalizer: a cheap, well-distributed 64-bit permutation.
#[inline]
fn sm64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Two independently seeded SplitMix64 lanes folded into 128 bits.
struct Mix {
    a: u64,
    b: u64,
}

impl Mix {
    fn new() -> Mix {
        Mix {
            a: 0x9e37_79b9_7f4a_7c15,
            b: 0x5851_f42d_4c95_7f2d,
        }
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.a = sm64(self.a ^ w);
        self.b = sm64(self.b ^ w.rotate_left(32));
    }

    fn bytes(&mut self, bytes: &[u8]) {
        self.word(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = [0u8; 8];
            w[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(w));
        }
    }

    fn finish(self) -> Digest {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.a.to_le_bytes());
        out[8..].copy_from_slice(&self.b.to_le_bytes());
        Digest(out)
    }
}

/// Bottom-up, id-free structural hash per node. Used only to order DFS
/// child visits: strash stores an AND's fanins sorted by arena id, which
/// reflects build order, not structure. Arena order is topological (fanins
/// are created before the nodes that use them), so one forward sweep
/// suffices.
fn subtree_hashes(aig: &Aig) -> Vec<u64> {
    let mut h = vec![0u64; aig.num_nodes()];
    for idx in 0..aig.num_nodes() {
        let id = NodeId::from_index(idx);
        h[idx] = match aig.node(id) {
            NodeKind::Const0 => sm64(1),
            NodeKind::Input { index } => sm64(sm64(2) ^ index as u64),
            NodeKind::Latch { index } => sm64(sm64(3) ^ index as u64),
            NodeKind::And { a, b } => {
                let ea = sm64(h[a.node().index()] ^ a.is_complement() as u64);
                let eb = sm64(h[b.node().index()] ^ b.is_complement() as u64);
                sm64(sm64(sm64(4) ^ ea.min(eb)) ^ ea.max(eb))
            }
        };
    }
    h
}

/// Canonical node numbering: constant 0, then inputs `1..=I` in input
/// order, latches `I+1..=I+L` in latch order, then reachable AND nodes in
/// deterministic DFS post-order from the combinational roots, visiting the
/// structurally-smaller fanin (by [`subtree_hashes`]) first.
fn canonical_ids(aig: &Aig) -> (Vec<u64>, Vec<NodeId>) {
    let sub = subtree_hashes(aig);
    const UNSEEN: u64 = u64::MAX;
    let mut canon: Vec<u64> = vec![UNSEEN; aig.num_nodes()];
    canon[NodeId::CONST0.index()] = 0;
    for (i, &id) in aig.inputs().iter().enumerate() {
        canon[id.index()] = 1 + i as u64;
    }
    let ci_base = 1 + aig.num_inputs() as u64;
    for (i, latch) in aig.latches().iter().enumerate() {
        canon[latch.output.index()] = ci_base + i as u64;
    }
    let mut next = ci_base + aig.num_latches() as u64;
    let mut order: Vec<NodeId> = Vec::new();
    let mut stack: Vec<(NodeId, bool)> = Vec::new();
    // Roots: output literals in output order, then latch next-state
    // functions in latch order — the same order every structurally
    // identical graph presents them in.
    let roots = aig
        .outputs()
        .iter()
        .map(|o| o.lit)
        .chain(aig.latches().iter().map(|l| l.next));
    for root in roots {
        stack.push((root.node(), false));
        while let Some((id, expanded)) = stack.pop() {
            if canon[id.index()] != UNSEEN {
                continue;
            }
            let NodeKind::And { a, b } = aig.node(id) else {
                // CIs and the constant are pre-numbered above; anything
                // else reaching here would be a malformed graph.
                continue;
            };
            if expanded {
                canon[id.index()] = next;
                next += 1;
                order.push(id);
            } else {
                stack.push((id, true));
                // Visit the structurally-smaller fanin first (a stack pops
                // in reverse push order). Equal keys mean structurally
                // identical subtrees — strash would have shared them — so
                // the tie-break cannot matter.
                let ka = sm64(sub[a.node().index()] ^ a.is_complement() as u64);
                let kb = sm64(sub[b.node().index()] ^ b.is_complement() as u64);
                let (first, second) = if ka <= kb { (a, b) } else { (b, a) };
                stack.push((second.node(), false));
                stack.push((first.node(), false));
            }
        }
    }
    (canon, order)
}

/// Canonical edge encoding: `2 * canonical node id + complement bit`.
#[inline]
fn encode(canon: &[u64], lit: Lit) -> u64 {
    canon[lit.node().index()] * 2 + lit.is_complement() as u64
}

/// The canonical structural digest of a design. See the [module
/// docs](self) for what participates in the hash and what does not.
pub fn canonical_digest(aig: &Aig) -> Digest {
    let (canon, order) = canonical_ids(aig);
    let mut mix = Mix::new();
    mix.bytes(b"xsfq-aig-digest/1");
    mix.bytes(aig.name().as_bytes());
    mix.word(aig.num_inputs() as u64);
    mix.word(aig.num_latches() as u64);
    mix.word(aig.num_outputs() as u64);
    mix.word(order.len() as u64);
    for i in 0..aig.num_inputs() {
        mix.bytes(aig.input_name(i).as_bytes());
    }
    for id in order {
        let NodeKind::And { a, b } = aig.node(id) else {
            unreachable!("canonical order only holds AND nodes");
        };
        // Strash keeps fanins ordered by arena id, which is not canonical;
        // sort by canonical encoding so fanin order never leaks through.
        let (x, y) = (encode(&canon, a), encode(&canon, b));
        mix.word(x.min(y));
        mix.word(x.max(y));
    }
    for latch in aig.latches() {
        mix.bytes(latch.name.as_bytes());
        mix.word(latch.init as u64);
        mix.word(encode(&canon, latch.next));
    }
    for output in aig.outputs() {
        mix.bytes(output.name.as_bytes());
        mix.word(encode(&canon, output.lit));
    }
    mix.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    fn adder(name: &str) -> Aig {
        let mut g = Aig::new(name);
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let (sum, carry) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("sum", &sum);
        g.output("carry", carry);
        g
    }

    #[test]
    fn digest_is_stable_and_hex_round_trips() {
        let d1 = canonical_digest(&adder("add4"));
        let d2 = canonical_digest(&adder("add4"));
        assert_eq!(d1, d2);
        let hex = d1.to_string();
        assert_eq!(hex.len(), 32);
        assert_eq!(Digest::from_hex(&hex), Some(d1));
        assert_eq!(Digest::from_hex("xyz"), None);
    }

    #[test]
    fn digest_ignores_node_order_but_not_structure() {
        // Same function, built in a different node order: the strash
        // arena ids differ, the canonical form must not.
        let mut fwd = Aig::new("t");
        let a = fwd.input("a");
        let b = fwd.input("b");
        let c = fwd.input("c");
        let ab = fwd.and(a, b);
        let bc = fwd.and(b, c);
        let o = fwd.and(ab, bc);
        fwd.output("o", o);

        let mut rev = Aig::new("t");
        let a = rev.input("a");
        let b = rev.input("b");
        let c = rev.input("c");
        let bc = rev.and(b, c); // built first: different arena ids
        let ab = rev.and(a, b);
        let o = rev.and(ab, bc);
        rev.output("o", o);

        assert_eq!(canonical_digest(&fwd), canonical_digest(&rev));

        // A structural change (complemented edge) must change the digest.
        let mut neg = Aig::new("t");
        let a = neg.input("a");
        let b = neg.input("b");
        let c = neg.input("c");
        let ab = neg.and(a, b);
        let bc = neg.and(b, c);
        let o = neg.and(ab, !bc);
        neg.output("o", o);
        assert_ne!(canonical_digest(&fwd), canonical_digest(&neg));
    }

    #[test]
    fn digest_covers_the_interface() {
        let base = canonical_digest(&adder("add4"));
        // Design name participates (the report carries it).
        assert_ne!(base, canonical_digest(&adder("other")));
        // Output port names participate (the netlist carries them).
        let mut g = Aig::new("add4");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let (sum, carry) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("result", &sum);
        g.output("carry", carry);
        assert_ne!(base, canonical_digest(&g));
    }

    #[test]
    fn digest_ignores_unreachable_nodes() {
        let mut g = adder("add4");
        let reachable_only = canonical_digest(&g.compact());
        let x = g.inputs()[0];
        let y = g.inputs()[1];
        let dead = g.and(Lit::new(x, true), Lit::new(y, true));
        let _ = dead; // never connected to an output
        assert_eq!(canonical_digest(&g), reachable_only);
    }

    #[test]
    fn digest_distinguishes_latch_inits() {
        let seq = |init: bool| {
            let mut g = Aig::new("seq");
            let q = g.latch("q", init);
            g.set_latch_next(q, !q);
            g.output("o", q);
            canonical_digest(&g)
        };
        assert_ne!(seq(false), seq(true));
    }
}
