//! Truth-table manipulation for cut functions.
//!
//! Tables over up to 6 variables fit in one `u64`; larger tables use a word
//! vector. [`TruthTable`] supports the operations the optimizer needs:
//! cofactoring, variable support, NPN canonicalization (for the rewriting
//! library) and ISOP extraction (in [`crate::isop`]).

use std::fmt;

/// A complete truth table over `vars` variables (`2^vars` bits, LSB = the
/// all-zero input pattern, variable `i` toggles with period `2^i`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TruthTable {
    vars: usize,
    words: Vec<u64>,
}

/// Bit masks of the six "packed" variables within one 64-bit word.
pub const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Constant-false table over `vars` variables.
    pub fn zeros(vars: usize) -> Self {
        TruthTable {
            vars,
            words: vec![0; Self::word_count(vars)],
        }
    }

    /// Constant-true table over `vars` variables.
    pub fn ones(vars: usize) -> Self {
        let mut t = Self::zeros(vars);
        for w in &mut t.words {
            *w = !0;
        }
        t.mask_tail();
        t
    }

    /// Projection table of variable `var` over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= vars`.
    pub fn variable(vars: usize, var: usize) -> Self {
        assert!(var < vars, "variable index out of range");
        let mut t = Self::zeros(vars);
        if var < 6 {
            for w in &mut t.words {
                *w = VAR_MASKS[var];
            }
        } else {
            let period = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if i / period % 2 == 1 {
                    *w = !0;
                }
            }
        }
        t.mask_tail();
        t
    }

    /// Build from the low `2^vars` bits of a single word (`vars <= 6`).
    pub fn from_word(vars: usize, word: u64) -> Self {
        assert!(vars <= 6, "from_word limited to 6 variables");
        let mut t = Self::zeros(vars);
        t.words[0] = word;
        t.mask_tail();
        t
    }

    /// The table as a single word (`vars <= 6` only).
    pub fn as_word(&self) -> u64 {
        assert!(self.vars <= 6, "as_word limited to 6 variables");
        self.words[0]
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars
    }

    /// Raw words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn word_count(vars: usize) -> usize {
        if vars <= 6 {
            1
        } else {
            1usize << (vars - 6)
        }
    }

    fn tail_mask(vars: usize) -> u64 {
        if vars >= 6 {
            !0
        } else {
            (1u64 << (1usize << vars)) - 1
        }
    }

    fn mask_tail(&mut self) {
        let mask = Self::tail_mask(self.vars);
        if let Some(last) = self.words.last_mut() {
            *last &= mask;
        }
        if self.vars < 6 {
            self.words[0] &= mask;
        }
    }

    /// Bit `index` of the table.
    pub fn bit(&self, index: usize) -> bool {
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Set bit `index`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        if value {
            self.words[index / 64] |= 1u64 << (index % 64);
        } else {
            self.words[index / 64] &= !(1u64 << (index % 64));
        }
    }

    /// Number of ON-set minterms.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the table is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the table is constant true.
    pub fn is_ones(&self) -> bool {
        self.clone().not_ref().is_zero()
    }

    fn not_ref(mut self) -> Self {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
        self
    }

    /// Complement.
    #[must_use]
    pub fn not(&self) -> Self {
        self.clone().not_ref()
    }

    /// Conjunction.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        out
    }

    /// Disjunction.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        out
    }

    /// Exclusive or.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        assert_eq!(self.vars, other.vars);
        let mut out = self.clone();
        for (w, o) in out.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
        out
    }

    /// Negative cofactor with respect to variable `var` (the half where
    /// `var = 0`, replicated).
    #[must_use]
    pub fn cofactor0(&self, var: usize) -> Self {
        let mut out = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let mask = !VAR_MASKS[var];
            for w in &mut out.words {
                let lo = *w & mask;
                *w = lo | lo << shift;
            }
        } else {
            let period = 1usize << (var - 6);
            let n = out.words.len();
            for i in 0..n {
                if i / period % 2 == 1 {
                    out.words[i] = out.words[i - period];
                }
            }
        }
        out
    }

    /// Positive cofactor with respect to variable `var`.
    #[must_use]
    pub fn cofactor1(&self, var: usize) -> Self {
        let mut out = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let mask = VAR_MASKS[var];
            for w in &mut out.words {
                let hi = *w & mask;
                *w = hi | hi >> shift;
            }
        } else {
            let period = 1usize << (var - 6);
            let n = out.words.len();
            for i in 0..n {
                if i / period % 2 == 0 {
                    out.words[i] = out.words[i + period];
                }
            }
        }
        out
    }

    /// True if the function depends on variable `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// Indices of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Swap adjacent variables `var` and `var + 1`.
    #[must_use]
    pub fn swap_adjacent(&self, var: usize) -> Self {
        assert!(var + 1 < self.vars);
        let c00 = self.cofactor0(var).cofactor0(var + 1);
        let c01 = self.cofactor1(var).cofactor0(var + 1); // var=1, var+1=0
        let c10 = self.cofactor0(var).cofactor1(var + 1);
        let c11 = self.cofactor1(var).cofactor1(var + 1);
        let va = Self::variable(self.vars, var);
        let vb = Self::variable(self.vars, var + 1);
        // After the swap, old var plays var+1's role and vice versa.
        let t00 = va.not().and(&vb.not()).and(&c00);
        let t01 = va.clone().and(&vb.not()).and(&c10);
        let t10 = va.not().and(&vb).and(&c01);
        let t11 = va.and(&vb).and(&c11);
        t00.or(&t01).or(&t10).or(&t11)
    }

    /// Flip (complement) variable `var`.
    #[must_use]
    pub fn flip_var(&self, var: usize) -> Self {
        let c0 = self.cofactor0(var);
        let c1 = self.cofactor1(var);
        let v = Self::variable(self.vars, var);
        v.not().and(&c1).or(&v.and(&c0))
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tt{}[", self.vars)?;
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

/// NPN canonical form of a 4-variable function given as a 16-bit table.
///
/// Returns `(canonical_table, transform)` where the transform records how to
/// map the original function onto the canonical one (see [`NpnTransform`]).
pub fn npn_canon4(tt: u16) -> (u16, NpnTransform) {
    let mut best = u16::MAX;
    let mut best_tf = NpnTransform::default();
    for out_neg in [false, true] {
        let base = if out_neg { !tt } else { tt };
        for perm_idx in 0..24u8 {
            let perm = PERMS4[perm_idx as usize];
            let permuted = permute4(base, perm);
            for flips in 0..16u8 {
                let candidate = flip4(permuted, flips);
                if candidate < best {
                    best = candidate;
                    best_tf = NpnTransform {
                        perm_idx,
                        flips,
                        out_neg,
                    };
                }
            }
        }
    }
    (best, best_tf)
}

/// Transform mapping an original 4-input function to its NPN canonical form:
/// first permute inputs by `perm`, then complement inputs in `flips`, then
/// complement the output if `out_neg`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct NpnTransform {
    /// Index into [`PERMS4`].
    pub perm_idx: u8,
    /// Bit `i` set = canonical input `i` is the complement of the permuted
    /// original input.
    pub flips: u8,
    /// Whether the output is complemented.
    pub out_neg: bool,
}

/// All 24 permutations of 4 elements. `PERMS4[p][new_var] = old_var`.
pub const PERMS4: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// Apply an input permutation to a 16-bit truth table:
/// `out(pattern) = in(pattern mapped through perm)`.
pub fn permute4(tt: u16, perm: [u8; 4]) -> u16 {
    let mut out = 0u16;
    for pattern in 0..16u16 {
        // canonical pattern bit i = original variable perm[i]
        let mut orig = 0u16;
        for (new_var, &old_var) in perm.iter().enumerate() {
            if pattern >> new_var & 1 == 1 {
                orig |= 1 << old_var;
            }
        }
        if tt >> orig & 1 == 1 {
            out |= 1 << pattern;
        }
    }
    out
}

/// Complement the inputs selected by `flips` in a 16-bit truth table.
pub fn flip4(tt: u16, flips: u8) -> u16 {
    let mut out = 0u16;
    for pattern in 0..16u16 {
        let src = pattern ^ flips as u16;
        if tt >> src & 1 == 1 {
            out |= 1 << pattern;
        }
    }
    out
}

/// Apply an [`NpnTransform`] to a table (original → canonical direction).
pub fn apply_npn4(tt: u16, tf: NpnTransform) -> u16 {
    let base = if tf.out_neg { !tt } else { tt };
    flip4(permute4(base, PERMS4[tf.perm_idx as usize]), tf.flips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_projection() {
        let t = TruthTable::variable(3, 1);
        // var 1 toggles with period 2.
        for p in 0..8usize {
            assert_eq!(t.bit(p), p >> 1 & 1 == 1);
        }
    }

    #[test]
    fn cofactors() {
        // f = a & b over 2 vars: table 1000 = 0x8
        let f = TruthTable::from_word(2, 0x8);
        assert!(f.cofactor0(0).is_zero());
        let c1 = f.cofactor1(0);
        // f|a=1 = b
        assert_eq!(c1, TruthTable::variable(2, 1));
        assert_eq!(f.support(), vec![0, 1]);
    }

    #[test]
    fn large_variable_and_cofactor() {
        let t = TruthTable::variable(8, 7);
        assert!(t.depends_on(7));
        assert!(!t.depends_on(3));
        assert!(t.cofactor1(7).is_ones());
        assert!(t.cofactor0(7).is_zero());
    }

    #[test]
    fn swap_and_flip() {
        // f = a (var 0) over 3 vars
        let f = TruthTable::variable(3, 0);
        let g = f.swap_adjacent(0);
        assert_eq!(g, TruthTable::variable(3, 1));
        let h = f.flip_var(0);
        assert_eq!(h, f.not());
    }

    #[test]
    fn npn_canon_classes() {
        // All NPN-equivalent variants of AND2 (as 4-var tables) share a
        // canonical form.
        let and2: u16 = 0x8888; // a & b, vars 0,1
        let or2: u16 = 0xEEEE; // a | b = NPN-equivalent to AND
        let nand2: u16 = !and2;
        let (c1, _) = npn_canon4(and2);
        let (c2, _) = npn_canon4(or2);
        let (c3, _) = npn_canon4(nand2);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
        // XOR is in a different class.
        let xor2: u16 = 0x6666;
        let (c4, _) = npn_canon4(xor2);
        assert_ne!(c1, c4);
    }

    #[test]
    fn npn_transform_applies() {
        for tt in [0x8888u16, 0x6666, 0x1234, 0xCAFE, 0x0001] {
            let (canon, tf) = npn_canon4(tt);
            assert_eq!(apply_npn4(tt, tf), canon);
        }
    }

    #[test]
    fn permute_roundtrip() {
        let tt = 0xD1A5u16;
        for p in 0..24 {
            let perm = PERMS4[p];
            // Find inverse permutation.
            let mut inv = [0u8; 4];
            for (i, &v) in perm.iter().enumerate() {
                inv[v as usize] = i as u8;
            }
            assert_eq!(permute4(permute4(tt, perm), inv), tt);
        }
    }
}
