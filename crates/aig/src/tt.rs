//! Truth-table manipulation for cut functions.
//!
//! [`TruthTable`] supports the operations the optimizer needs: cofactoring,
//! variable support, NPN canonicalization (for the rewriting library) and
//! ISOP extraction (in [`crate::isop`]).
//!
//! # Small-table representation
//!
//! Tables over **up to 6 variables fit in one inline `u64`** — no heap
//! allocation at all. Only tables over 7+ variables (`2^(vars-6)` words)
//! spill to a heap vector. The representation is an invariant, not a
//! heuristic: `vars <= 6` always uses [`Repr::Small`] and `vars > 6` always
//! uses [`Repr::Big`], so equality/hashing never have to normalize.
//!
//! Because the rewriting loops (`opt`, `synth`, `isop`) run almost entirely
//! on ≤6-variable cut functions, every operator also has an **in-place
//! variant** (`invert`, `and_with`, `cofactor0_in_place`, …) so the hot
//! paths neither allocate nor copy: a ≤6-variable cofactor is a couple of
//! shifts on a register-resident word.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Internal storage: one inline word for ≤6 variables, heap words above.
#[derive(Clone, Debug)]
enum Repr {
    /// `vars <= 6`: the whole table in one word, tail bits zero.
    Small(u64),
    /// `vars > 6`: `2^(vars-6)` words.
    Big(Vec<u64>),
}

/// A complete truth table over `vars` variables (`2^vars` bits, LSB = the
/// all-zero input pattern, variable `i` toggles with period `2^i`).
#[derive(Clone, Debug)]
pub struct TruthTable {
    vars: usize,
    repr: Repr,
}

/// Bit masks of the six "packed" variables within one 64-bit word.
pub const VAR_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Constant-false table over `vars` variables.
    pub fn zeros(vars: usize) -> Self {
        let repr = if vars <= 6 {
            Repr::Small(0)
        } else {
            Repr::Big(vec![0; 1usize << (vars - 6)])
        };
        TruthTable { vars, repr }
    }

    /// Constant-true table over `vars` variables.
    pub fn ones(vars: usize) -> Self {
        let repr = if vars <= 6 {
            Repr::Small(Self::tail_mask(vars))
        } else {
            Repr::Big(vec![!0; 1usize << (vars - 6)])
        };
        TruthTable { vars, repr }
    }

    /// Projection table of variable `var` over `vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= vars`.
    pub fn variable(vars: usize, var: usize) -> Self {
        assert!(var < vars, "variable index out of range");
        let mut t = Self::zeros(vars);
        match &mut t.repr {
            Repr::Small(w) => *w = VAR_MASKS[var] & Self::tail_mask(vars),
            Repr::Big(words) => {
                if var < 6 {
                    for w in words.iter_mut() {
                        *w = VAR_MASKS[var];
                    }
                } else {
                    let period = 1usize << (var - 6);
                    for (i, w) in words.iter_mut().enumerate() {
                        if i / period % 2 == 1 {
                            *w = !0;
                        }
                    }
                }
            }
        }
        t
    }

    /// Build from the low `2^vars` bits of a single word (`vars <= 6`).
    pub fn from_word(vars: usize, word: u64) -> Self {
        assert!(vars <= 6, "from_word limited to 6 variables");
        TruthTable {
            vars,
            repr: Repr::Small(word & Self::tail_mask(vars)),
        }
    }

    /// The table as a single word (`vars <= 6` only).
    pub fn as_word(&self) -> u64 {
        match self.repr {
            Repr::Small(w) => w,
            Repr::Big(_) => panic!("as_word limited to 6 variables"),
        }
    }

    /// True when the table is stored inline (always the case for ≤6 vars).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Small(_))
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.vars
    }

    /// Raw words (the inline word is returned as a one-element slice).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Small(w) => std::slice::from_ref(w),
            Repr::Big(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Small(w) => std::slice::from_mut(w),
            Repr::Big(v) => v,
        }
    }

    fn tail_mask(vars: usize) -> u64 {
        if vars >= 6 {
            !0
        } else {
            (1u64 << (1usize << vars)) - 1
        }
    }

    /// Bit `index` of the table.
    #[inline]
    pub fn bit(&self, index: usize) -> bool {
        self.words()[index / 64] >> (index % 64) & 1 == 1
    }

    /// Set bit `index`.
    pub fn set_bit(&mut self, index: usize, value: bool) {
        let w = &mut self.words_mut()[index / 64];
        if value {
            *w |= 1u64 << (index % 64);
        } else {
            *w &= !(1u64 << (index % 64));
        }
    }

    /// Number of ON-set minterms.
    pub fn count_ones(&self) -> usize {
        match &self.repr {
            Repr::Small(w) => w.count_ones() as usize,
            Repr::Big(v) => v.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// True if the table is constant false.
    #[inline]
    pub fn is_zero(&self) -> bool {
        match &self.repr {
            Repr::Small(w) => *w == 0,
            Repr::Big(v) => v.iter().all(|&w| w == 0),
        }
    }

    /// True if the table is constant true (allocation-free).
    #[inline]
    pub fn is_ones(&self) -> bool {
        match &self.repr {
            Repr::Small(w) => *w == Self::tail_mask(self.vars),
            Repr::Big(v) => v.iter().all(|&w| w == !0),
        }
    }

    /// Complement in place.
    #[inline]
    pub fn invert(&mut self) {
        match &mut self.repr {
            Repr::Small(w) => *w = !*w & Self::tail_mask(self.vars),
            Repr::Big(v) => {
                for w in v.iter_mut() {
                    *w = !*w;
                }
            }
        }
    }

    /// Complement.
    #[must_use]
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        out.invert();
        out
    }

    /// In-place conjunction with `other`.
    ///
    /// # Panics
    ///
    /// Panics if variable counts differ (same for the other binary ops).
    #[inline]
    pub fn and_with(&mut self, other: &Self) {
        assert_eq!(self.vars, other.vars);
        match (&mut self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => *a &= *b,
            (Repr::Big(a), Repr::Big(b)) => {
                for (w, o) in a.iter_mut().zip(b) {
                    *w &= o;
                }
            }
            _ => unreachable!("equal vars implies equal repr"),
        }
    }

    /// In-place disjunction with `other`.
    #[inline]
    pub fn or_with(&mut self, other: &Self) {
        assert_eq!(self.vars, other.vars);
        match (&mut self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => *a |= *b,
            (Repr::Big(a), Repr::Big(b)) => {
                for (w, o) in a.iter_mut().zip(b) {
                    *w |= o;
                }
            }
            _ => unreachable!("equal vars implies equal repr"),
        }
    }

    /// In-place exclusive or with `other`.
    #[inline]
    pub fn xor_with(&mut self, other: &Self) {
        assert_eq!(self.vars, other.vars);
        match (&mut self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => *a ^= *b,
            (Repr::Big(a), Repr::Big(b)) => {
                for (w, o) in a.iter_mut().zip(b) {
                    *w ^= o;
                }
            }
            _ => unreachable!("equal vars implies equal repr"),
        }
    }

    /// Conjunction.
    #[must_use]
    pub fn and(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.and_with(other);
        out
    }

    /// Disjunction.
    #[must_use]
    pub fn or(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.or_with(other);
        out
    }

    /// Exclusive or.
    #[must_use]
    pub fn xor(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.xor_with(other);
        out
    }

    /// In-place negative cofactor with respect to variable `var` (the half
    /// where `var = 0`, replicated).
    pub fn cofactor0_in_place(&mut self, var: usize) {
        if var < 6 {
            let shift = 1u32 << var;
            let mask = !VAR_MASKS[var];
            for w in self.words_mut() {
                let lo = *w & mask;
                *w = lo | lo << shift;
            }
        } else {
            let Repr::Big(words) = &mut self.repr else {
                unreachable!("var >= 6 implies a multi-word table");
            };
            let period = 1usize << (var - 6);
            for i in 0..words.len() {
                if i / period % 2 == 1 {
                    words[i] = words[i - period];
                }
            }
        }
    }

    /// In-place positive cofactor with respect to variable `var`.
    pub fn cofactor1_in_place(&mut self, var: usize) {
        if var < 6 {
            let shift = 1u32 << var;
            let mask = VAR_MASKS[var];
            for w in self.words_mut() {
                let hi = *w & mask;
                *w = hi | hi >> shift;
            }
        } else {
            let Repr::Big(words) = &mut self.repr else {
                unreachable!("var >= 6 implies a multi-word table");
            };
            let period = 1usize << (var - 6);
            for i in 0..words.len() {
                if (i / period).is_multiple_of(2) {
                    words[i] = words[i + period];
                }
            }
        }
    }

    /// Negative cofactor with respect to variable `var`.
    #[must_use]
    pub fn cofactor0(&self, var: usize) -> Self {
        let mut out = self.clone();
        out.cofactor0_in_place(var);
        out
    }

    /// Positive cofactor with respect to variable `var`.
    #[must_use]
    pub fn cofactor1(&self, var: usize) -> Self {
        let mut out = self.clone();
        out.cofactor1_in_place(var);
        out
    }

    /// True if `self`'s ON-set is contained in `other`'s (`self & !other ==
    /// 0`), without materializing either intermediate.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        if self.vars != other.vars {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => *a & !*b == 0,
            (Repr::Big(a), Repr::Big(b)) => a.iter().zip(b).all(|(&x, &y)| x & !y == 0),
            _ => false,
        }
    }

    /// True if `self == other.not()`, without materializing the complement.
    pub fn is_complement_of(&self, other: &Self) -> bool {
        if self.vars != other.vars {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Small(a), Repr::Small(b)) => *a == !*b & Self::tail_mask(self.vars),
            (Repr::Big(a), Repr::Big(b)) => a.iter().zip(b).all(|(&x, &y)| x == !y),
            _ => false,
        }
    }

    /// True if the function depends on variable `var` (allocation-free: the
    /// two cofactors are compared without materializing either).
    pub fn depends_on(&self, var: usize) -> bool {
        if var < 6 {
            let shift = 1u32 << var;
            let mask = !VAR_MASKS[var];
            self.words().iter().any(|&w| (w >> shift ^ w) & mask != 0)
        } else {
            let Repr::Big(words) = &self.repr else {
                return false;
            };
            let period = 1usize << (var - 6);
            (0..words.len())
                .filter(|i| (i / period).is_multiple_of(2))
                .any(|i| words[i] != words[i + period])
        }
    }

    /// Indices of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Bitmask of variables the function depends on (`vars <= 32`).
    pub fn support_mask(&self) -> u32 {
        let mut mask = 0u32;
        for v in 0..self.vars {
            if self.depends_on(v) {
                mask |= 1 << v;
            }
        }
        mask
    }

    /// Swap adjacent variables `var` and `var + 1` (delta-swap bit tricks —
    /// no temporaries for packed variables).
    #[must_use]
    pub fn swap_adjacent(&self, var: usize) -> Self {
        assert!(var + 1 < self.vars);
        let mut out = self.clone();
        if var + 1 < 6 {
            // Both variables packed in-word: exchange the (var=1, var+1=0)
            // bits with their partners one 2^var stride up.
            let shift = 1u32 << var;
            let mask = VAR_MASKS[var] & !VAR_MASKS[var + 1];
            for w in out.words_mut() {
                let t = (*w >> shift ^ *w) & mask;
                *w ^= t | t << shift;
            }
        } else if var == 5 {
            // Word boundary: high half of even words ↔ low half of odd words.
            let Repr::Big(words) = &mut out.repr else {
                unreachable!("var + 1 >= 6 implies a multi-word table");
            };
            for i in (0..words.len()).step_by(2) {
                let hi_even = words[i] >> 32;
                let lo_odd = words[i + 1] & 0xFFFF_FFFF;
                words[i] = (words[i] & 0xFFFF_FFFF) | lo_odd << 32;
                words[i + 1] = (words[i + 1] & !0xFFFF_FFFF) | hi_even;
            }
        } else {
            // Both variables select words: swap word blocks.
            let Repr::Big(words) = &mut out.repr else {
                unreachable!("var >= 6 implies a multi-word table");
            };
            let period = 1usize << (var - 6);
            for base in 0..words.len() {
                if base / period % 2 == 1 && (base / (period * 2)).is_multiple_of(2) {
                    words.swap(base, base + period);
                }
            }
        }
        out
    }

    /// Flip (complement) variable `var`, exchanging the two cofactor halves.
    #[must_use]
    pub fn flip_var(&self, var: usize) -> Self {
        let mut out = self.clone();
        out.flip_var_in_place(var);
        out
    }

    /// In-place [`TruthTable::flip_var`].
    pub fn flip_var_in_place(&mut self, var: usize) {
        if var < 6 {
            let shift = 1u32 << var;
            let mask = VAR_MASKS[var];
            for w in self.words_mut() {
                *w = (*w & mask) >> shift | (*w & !mask) << shift;
            }
        } else {
            let Repr::Big(words) = &mut self.repr else {
                unreachable!("var >= 6 implies a multi-word table");
            };
            let period = 1usize << (var - 6);
            for base in 0..words.len() {
                if (base / period).is_multiple_of(2) {
                    words.swap(base, base + period);
                }
            }
        }
    }
}

impl PartialEq for TruthTable {
    fn eq(&self, other: &Self) -> bool {
        self.vars == other.vars
            && match (&self.repr, &other.repr) {
                (Repr::Small(a), Repr::Small(b)) => a == b,
                (Repr::Big(a), Repr::Big(b)) => a == b,
                _ => false,
            }
    }
}

impl Eq for TruthTable {}

impl Hash for TruthTable {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.vars.hash(state);
        match &self.repr {
            Repr::Small(w) => w.hash(state),
            Repr::Big(v) => v.hash(state),
        }
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tt{}[", self.vars)?;
        for w in self.words().iter().rev() {
            write!(f, "{w:016x}")?;
        }
        write!(f, "]")
    }
}

/// NPN canonical form of a 4-variable function given as a 16-bit table.
///
/// Returns `(canonical_table, transform)` where the transform records how to
/// map the original function onto the canonical one (see [`NpnTransform`]).
pub fn npn_canon4(tt: u16) -> (u16, NpnTransform) {
    let mut best = u16::MAX;
    let mut best_tf = NpnTransform::default();
    for out_neg in [false, true] {
        let base = if out_neg { !tt } else { tt };
        for perm_idx in 0..24u8 {
            let perm = PERMS4[perm_idx as usize];
            let permuted = permute4(base, perm);
            for flips in 0..16u8 {
                let candidate = flip4(permuted, flips);
                if candidate < best {
                    best = candidate;
                    best_tf = NpnTransform {
                        perm_idx,
                        flips,
                        out_neg,
                    };
                }
            }
        }
    }
    (best, best_tf)
}

/// Transform mapping an original 4-input function to its NPN canonical form:
/// first permute inputs by `perm`, then complement inputs in `flips`, then
/// complement the output if `out_neg`.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct NpnTransform {
    /// Index into [`PERMS4`].
    pub perm_idx: u8,
    /// Bit `i` set = canonical input `i` is the complement of the permuted
    /// original input.
    pub flips: u8,
    /// Whether the output is complemented.
    pub out_neg: bool,
}

/// All 24 permutations of 4 elements. `PERMS4[p][new_var] = old_var`.
pub const PERMS4: [[u8; 4]; 24] = [
    [0, 1, 2, 3],
    [0, 1, 3, 2],
    [0, 2, 1, 3],
    [0, 2, 3, 1],
    [0, 3, 1, 2],
    [0, 3, 2, 1],
    [1, 0, 2, 3],
    [1, 0, 3, 2],
    [1, 2, 0, 3],
    [1, 2, 3, 0],
    [1, 3, 0, 2],
    [1, 3, 2, 0],
    [2, 0, 1, 3],
    [2, 0, 3, 1],
    [2, 1, 0, 3],
    [2, 1, 3, 0],
    [2, 3, 0, 1],
    [2, 3, 1, 0],
    [3, 0, 1, 2],
    [3, 0, 2, 1],
    [3, 1, 0, 2],
    [3, 1, 2, 0],
    [3, 2, 0, 1],
    [3, 2, 1, 0],
];

/// Apply an input permutation to a 16-bit truth table:
/// `out(pattern) = in(pattern mapped through perm)`.
pub fn permute4(tt: u16, perm: [u8; 4]) -> u16 {
    let mut out = 0u16;
    for pattern in 0..16u16 {
        // canonical pattern bit i = original variable perm[i]
        let mut orig = 0u16;
        for (new_var, &old_var) in perm.iter().enumerate() {
            if pattern >> new_var & 1 == 1 {
                orig |= 1 << old_var;
            }
        }
        if tt >> orig & 1 == 1 {
            out |= 1 << pattern;
        }
    }
    out
}

/// Complement the inputs selected by `flips` in a 16-bit truth table.
pub fn flip4(tt: u16, flips: u8) -> u16 {
    let mut out = 0u16;
    for pattern in 0..16u16 {
        let src = pattern ^ flips as u16;
        if tt >> src & 1 == 1 {
            out |= 1 << pattern;
        }
    }
    out
}

/// Apply an [`NpnTransform`] to a table (original → canonical direction).
pub fn apply_npn4(tt: u16, tf: NpnTransform) -> u16 {
    let base = if tf.out_neg { !tt } else { tt };
    flip4(permute4(base, PERMS4[tf.perm_idx as usize]), tf.flips)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_projection() {
        let t = TruthTable::variable(3, 1);
        // var 1 toggles with period 2.
        for p in 0..8usize {
            assert_eq!(t.bit(p), p >> 1 & 1 == 1);
        }
    }

    #[test]
    fn cofactors() {
        // f = a & b over 2 vars: table 1000 = 0x8
        let f = TruthTable::from_word(2, 0x8);
        assert!(f.cofactor0(0).is_zero());
        let c1 = f.cofactor1(0);
        // f|a=1 = b
        assert_eq!(c1, TruthTable::variable(2, 1));
        assert_eq!(f.support(), vec![0, 1]);
        assert_eq!(f.support_mask(), 0b11);
    }

    #[test]
    fn large_variable_and_cofactor() {
        let t = TruthTable::variable(8, 7);
        assert!(t.depends_on(7));
        assert!(!t.depends_on(3));
        assert!(t.cofactor1(7).is_ones());
        assert!(t.cofactor0(7).is_zero());
    }

    #[test]
    fn swap_and_flip() {
        // f = a (var 0) over 3 vars
        let f = TruthTable::variable(3, 0);
        let g = f.swap_adjacent(0);
        assert_eq!(g, TruthTable::variable(3, 1));
        let h = f.flip_var(0);
        assert_eq!(h, f.not());
    }

    #[test]
    fn small_tables_are_inline() {
        for vars in 0..=6 {
            assert!(TruthTable::zeros(vars).is_inline());
            assert!(TruthTable::ones(vars).is_inline());
            let mut t = TruthTable::zeros(vars);
            t.set_bit(0, true);
            t.invert();
            if vars >= 2 {
                t.and_with(&TruthTable::variable(vars, 1));
                t.cofactor0_in_place(0);
            }
            assert!(t.is_inline(), "{vars}-var table must stay inline");
        }
        assert!(!TruthTable::zeros(7).is_inline());
    }

    #[test]
    fn in_place_ops_match_cloning_ops() {
        // Exercise both the inline (5-var) and heap (8-var) paths.
        for vars in [5usize, 8] {
            let a = TruthTable::variable(vars, 1);
            let b = TruthTable::variable(vars, vars - 1);
            let mut x = a.clone();
            x.and_with(&b);
            assert_eq!(x, a.and(&b));
            let mut x = a.clone();
            x.or_with(&b);
            assert_eq!(x, a.or(&b));
            let mut x = a.clone();
            x.xor_with(&b);
            assert_eq!(x, a.xor(&b));
            let mut x = a.xor(&b);
            x.invert();
            assert_eq!(x, a.xor(&b).not());
            for v in [0, vars - 1] {
                let f = a.xor(&b).or(&TruthTable::variable(vars, v));
                let mut c0 = f.clone();
                c0.cofactor0_in_place(v);
                assert_eq!(c0, f.cofactor0(v));
                let mut c1 = f.clone();
                c1.cofactor1_in_place(v);
                assert_eq!(c1, f.cofactor1(v));
                assert_eq!(f.depends_on(v), f.cofactor0(v) != f.cofactor1(v));
            }
        }
    }

    #[test]
    fn swap_adjacent_across_word_boundary() {
        // 8-var tables: exercise var+1<6, var==5 (word boundary), var>=6.
        for var in [2usize, 5, 6] {
            let vars = 8;
            let f = TruthTable::variable(vars, var)
                .and(&TruthTable::variable(vars, var + 1).not())
                .or(&TruthTable::variable(vars, 0));
            let g = f.swap_adjacent(var);
            // Check against the definition bit by bit.
            for p in 0..(1usize << vars) {
                let bit_a = p >> var & 1;
                let bit_b = p >> (var + 1) & 1;
                let q = (p & !(1 << var) & !(1 << (var + 1))) | bit_b << var | bit_a << (var + 1);
                assert_eq!(g.bit(p), f.bit(q), "var {var} pattern {p}");
            }
        }
    }

    #[test]
    fn npn_canon_classes() {
        // All NPN-equivalent variants of AND2 (as 4-var tables) share a
        // canonical form.
        let and2: u16 = 0x8888; // a & b, vars 0,1
        let or2: u16 = 0xEEEE; // a | b = NPN-equivalent to AND
        let nand2: u16 = !and2;
        let (c1, _) = npn_canon4(and2);
        let (c2, _) = npn_canon4(or2);
        let (c3, _) = npn_canon4(nand2);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
        // XOR is in a different class.
        let xor2: u16 = 0x6666;
        let (c4, _) = npn_canon4(xor2);
        assert_ne!(c1, c4);
    }

    #[test]
    fn npn_transform_applies() {
        for tt in [0x8888u16, 0x6666, 0x1234, 0xCAFE, 0x0001] {
            let (canon, tf) = npn_canon4(tt);
            assert_eq!(apply_npn4(tt, tf), canon);
        }
    }

    #[test]
    fn permute_roundtrip() {
        let tt = 0xD1A5u16;
        for perm in PERMS4 {
            // Find inverse permutation.
            let mut inv = [0u8; 4];
            for (i, &v) in perm.iter().enumerate() {
                inv[v as usize] = i as u8;
            }
            assert_eq!(permute4(permute4(tt, perm), inv), tt);
        }
    }
}
