//! # xsfq-aig — AND-Inverter graphs for the xSFQ synthesis flow
//!
//! This crate is the tech-independent logic substrate of the workspace: a
//! structurally hashed [`Aig`] with word-level construction helpers
//! ([`build`]), bit-parallel and sequential simulation ([`sim`]),
//! cut computation ([`cuts`]), truth-table manipulation ([`tt`], [`isop`],
//! [`synth`]) and the optimization passes ([`opt`]) the paper applies
//! off-the-shelf (§3.1.3: *"xSFQ netlists exhibit seamless compatibility
//! with ABC's internal AIG representation"*).
//!
//! ```
//! use xsfq_aig::{Aig, build, opt, sim};
//!
//! // Build a 4-bit adder, optimize it, and check equivalence.
//! let mut aig = Aig::new("adder4");
//! let a = aig.input_word("a", 4);
//! let b = aig.input_word("b", 4);
//! let (sum, carry) = build::ripple_add(&mut aig, &a, &b, xsfq_aig::Lit::FALSE);
//! aig.output_word("sum", &sum);
//! aig.output("carry", carry);
//!
//! let optimized = opt::optimize(&aig, opt::Effort::Standard);
//! assert!(optimized.num_ands() <= aig.num_ands());
//! assert!(sim::random_equiv(&aig, &optimized, 16, 42));
//! ```

#![warn(missing_docs)]

mod aig;
mod lit;

pub mod build;
pub mod cuts;
pub mod io;
pub mod isop;
pub mod opt;
pub mod sim;
pub mod synth;
pub mod tt;

pub use aig::{Aig, AigStats, Latch, NodeKind, Output};
pub use lit::{Lit, NodeId};
