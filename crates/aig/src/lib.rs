//! # xsfq-aig — AND-Inverter graphs for the xSFQ synthesis flow
//!
//! This crate is the tech-independent logic substrate of the workspace: a
//! structurally hashed [`Aig`] with word-level construction helpers
//! ([`build`]), bit-parallel and sequential simulation ([`sim`]),
//! cut computation ([`cuts`]), truth-table manipulation ([`tt`], [`isop`],
//! [`synth`]) and the optimization passes ([`opt`]) the paper applies
//! off-the-shelf (§3.1.3: *"xSFQ netlists exhibit seamless compatibility
//! with ABC's internal AIG representation"*). The passes are first-class
//! values: [`pass`] provides the `Pass` trait, an ABC-style script parser
//! (`Script::parse("b; rw; rf; b; rwz; rw")`) with `fast`/`standard`/`high`
//! presets, and per-pass telemetry — [`opt::Effort`] is a facade over
//! those presets.
//!
//! ```
//! use xsfq_aig::{Aig, build, opt, sim};
//!
//! // Build a 4-bit adder, optimize it, and check equivalence.
//! let mut aig = Aig::new("adder4");
//! let a = aig.input_word("a", 4);
//! let b = aig.input_word("b", 4);
//! let (sum, carry) = build::ripple_add(&mut aig, &a, &b, xsfq_aig::Lit::FALSE);
//! aig.output_word("sum", &sum);
//! aig.output("carry", carry);
//!
//! let optimized = opt::optimize(&aig, opt::Effort::Standard);
//! assert!(optimized.num_ands() <= aig.num_ands());
//! assert!(sim::random_equiv(&aig, &optimized, 16, 42));
//! ```
//!
//! # Hot-path data-structure invariants
//!
//! The three synthesis inner loops are allocation-free by construction;
//! property tests (`tests/properties.rs`) pin them to naive reference
//! implementations and `tests/alloc_free.rs` enforces the allocation
//! guarantees with a counting global allocator.
//!
//! * **Structural hashing** — [`Aig::and`] deduplicates through an
//!   open-addressing (linear-probe, backward-shift-delete) table whose slots
//!   hold only node indices; keys are read back from the node arena and
//!   hashed with one 64-bit multiply. [`Aig::num_ands`] is a maintained
//!   counter, O(1).
//! * **Cuts** — [`cuts::Cut`] stores up to [`cuts::MAX_CUT_SIZE`] leaves
//!   inline (sorted by id) plus a 64-bit signature with bit `id % 64` set
//!   per leaf. The signature has the subset property
//!   `A ⊆ B ⇒ sig(A) & !sig(B) == 0`, so dominance checks and oversize
//!   merges are rejected with one AND / popcount before any leaf scan.
//!   Cone evaluation reuses a flat, generation-stamped
//!   [`cuts::CutScratch`] instead of per-cone hash maps.
//! * **Truth tables** — [`tt::TruthTable`] stores ≤6-variable tables in a
//!   single inline `u64` (the representation is an invariant tied to the
//!   variable count, never a heuristic), and every operator has an in-place
//!   variant (`invert`, `and_with`, `cofactor0_in_place`, …) used by the
//!   rewriting loops.
//! * **Parallel resynthesis** — the rewriting passes and cut enumeration
//!   fan their evaluate phases across the vendored work-stealing executor
//!   (`xsfq-exec`), with per-thread scratch arenas, and commit replacements
//!   single-threaded in node-index order; the output is bit-identical for
//!   every thread count (`tests/parallel_identity.rs`, gated in CI; thread
//!   count defaults to `available_parallelism`, overridable with the
//!   `XSFQ_THREADS` environment variable or [`opt::optimize_with`]).

#![warn(missing_docs)]

mod aig;
mod lit;

pub mod aiger;
pub mod build;
#[cfg(feature = "chaos")]
pub mod chaos;
pub mod cuts;
pub mod digest;
pub mod hash;
pub mod io;
pub mod isop;
pub mod opt;
pub mod pass;
pub mod sim;
pub mod synth;
pub mod tt;

pub use aig::{Aig, AigDefect, AigStats, Latch, NodeKind, Output};
pub use lit::{Lit, NodeId};
