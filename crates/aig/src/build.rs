//! Word-level circuit builders.
//!
//! These helpers construct common datapath and control structures directly in
//! an [`Aig`]. They replace the RTL elaboration step (Yosys in the paper) for
//! programmatically-defined designs, and are the backbone of the
//! `xsfq-benchmarks` suite equivalents.

use crate::{Aig, Lit};

/// Half adder: returns `(sum, carry)`.
pub fn half_adder(aig: &mut Aig, a: Lit, b: Lit) -> (Lit, Lit) {
    (aig.xor(a, b), aig.and(a, b))
}

/// Full adder: returns `(sum, carry)`.
///
/// Built so that structural hashing shares the `a & b` and `(a ^ b) & cin`
/// products between sum and carry, yielding the 7-node minimal AIG the paper
/// reports in Figure 4.
pub fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let t1 = aig.and(a, b);
    let t2 = aig.and(axb, cin);
    let cout = aig.or(t1, t2);
    (sum, cout)
}

/// Ripple-carry addition of two equal-width words; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], mut carry: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "ripple_add requires equal widths");
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(aig, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`; returns `(difference, borrow_free)`.
/// The second element is the carry-out (`1` means no borrow, i.e. `a >= b`
/// for unsigned operands).
pub fn ripple_sub(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    ripple_add(aig, a, &nb, Lit::TRUE)
}

/// Increment a word by one; returns `(result, carry_out)`.
pub fn increment(aig: &mut Aig, a: &[Lit]) -> (Vec<Lit>, Lit) {
    let mut carry = Lit::TRUE;
    let mut out = Vec::with_capacity(a.len());
    for &x in a {
        out.push(aig.xor(x, carry));
        carry = aig.and(x, carry);
    }
    (out, carry)
}

/// Bitwise 2:1 multiplexer between equal-width words.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len(), "mux_word requires equal widths");
    t.iter()
        .zip(e)
        .map(|(&ti, &ei)| aig.mux(sel, ti, ei))
        .collect()
}

/// Equality comparator over words.
pub fn equals(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "equals requires equal widths");
    let bits: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_many(&bits)
}

/// Unsigned magnitude comparator: returns `a < b`.
pub fn less_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "less_than requires equal widths");
    // Borrow chain of a - b: subtract and look at the final borrow.
    let (_, no_borrow) = ripple_sub(aig, a, b);
    !no_borrow
}

/// Unsigned array multiplier (the structure of ISCAS85 c6288); returns the
/// `a.len() + b.len()`-bit product.
///
/// Built as the classic carry-save array: one AND plane plus a grid of
/// half/full adders, finished with a ripple row.
pub fn array_multiplier(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let n = a.len();
    let m = b.len();
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Partial-product rows.
    let mut rows: Vec<Vec<Lit>> = Vec::with_capacity(m);
    for &bj in b.iter() {
        rows.push(a.iter().map(|&ai| aig.and(ai, bj)).collect());
    }
    // Carry-save reduction, row by row (Braun array).
    let mut product = Vec::with_capacity(n + m);
    let mut acc: Vec<Lit> = rows[0].clone();
    for (j, row) in rows.iter().enumerate().skip(1) {
        product.push(acc[0]);
        let mut next = Vec::with_capacity(n);
        let mut carry = Lit::FALSE;
        for (i, &ri) in row.iter().enumerate().take(n) {
            let above = acc.get(i + 1).copied().unwrap_or(Lit::FALSE);
            let (s, c) = full_adder(aig, ri, above, carry);
            next.push(s);
            carry = c;
        }
        next.push(carry);
        acc = next;
        if j == m - 1 {
            // Flush the final accumulator into the product.
            product.extend(acc.iter().copied().take(n + m - product.len()));
        }
    }
    if m == 1 {
        product.extend(acc.iter().copied());
    }
    product.truncate(n + m);
    while product.len() < n + m {
        product.push(Lit::FALSE);
    }
    product
}

/// Binary decoder: `n` select bits to `2^n` one-hot outputs, with an
/// optional enable.
pub fn decoder(aig: &mut Aig, sel: &[Lit], enable: Option<Lit>) -> Vec<Lit> {
    let n = sel.len();
    let mut outs = Vec::with_capacity(1 << n);
    for code in 0..(1usize << n) {
        let bits: Vec<Lit> = sel
            .iter()
            .enumerate()
            .map(|(i, &s)| s.complement_if(code >> i & 1 == 0))
            .collect();
        let mut term = aig.and_many(&bits);
        if let Some(en) = enable {
            term = aig.and(term, en);
        }
        outs.push(term);
    }
    outs
}

/// Priority encoder over `req` (bit 0 has highest priority). Returns
/// `(grant_onehot, valid)`.
pub fn priority_encoder(aig: &mut Aig, req: &[Lit]) -> (Vec<Lit>, Lit) {
    let mut grants = Vec::with_capacity(req.len());
    let mut none_before = Lit::TRUE;
    for &r in req {
        grants.push(aig.and(r, none_before));
        none_before = aig.and(none_before, !r);
    }
    (grants, !none_before)
}

/// Binary encoder: one-hot word to `ceil(log2(n))`-bit index (assumes the
/// input really is one-hot; otherwise bits OR together).
pub fn onehot_to_binary(aig: &mut Aig, onehot: &[Lit]) -> Vec<Lit> {
    let width = usize::BITS as usize - (onehot.len().max(1) - 1).leading_zeros() as usize;
    let mut out = Vec::with_capacity(width);
    for bit in 0..width {
        let terms: Vec<Lit> = onehot
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> bit & 1 == 1)
            .map(|(_, &l)| l)
            .collect();
        out.push(aig.or_many(&terms));
    }
    out
}

/// Population count: returns `ceil(log2(n+1))` sum bits.
///
/// Built as a tree of carry-save adders — the structure behind the EPFL
/// `voter` equivalent.
pub fn popcount(aig: &mut Aig, bits: &[Lit]) -> Vec<Lit> {
    if bits.is_empty() {
        return vec![Lit::FALSE];
    }
    // Reduce groups of three equal-weight bits into (sum, carry) pairs until
    // every weight has at most one bit: a Wallace-style counter tree.
    let mut weights: Vec<Vec<Lit>> = vec![bits.to_vec()];
    loop {
        let mut changed = false;
        let mut next: Vec<Vec<Lit>> = vec![Vec::new(); weights.len() + 1];
        for (w, bucket) in weights.iter().enumerate() {
            let mut i = 0;
            while bucket.len() - i >= 3 {
                let (s, c) = full_adder(aig, bucket[i], bucket[i + 1], bucket[i + 2]);
                next[w].push(s);
                next[w + 1].push(c);
                i += 3;
                changed = true;
            }
            if bucket.len() - i == 2 {
                let (s, c) = half_adder(aig, bucket[i], bucket[i + 1]);
                next[w].push(s);
                next[w + 1].push(c);
                changed = true;
            } else if bucket.len() - i == 1 {
                next[w].push(bucket[i]);
            }
        }
        while next.last().is_some_and(|b| b.is_empty()) {
            next.pop();
        }
        weights = next;
        if !changed {
            break;
        }
    }
    weights
        .into_iter()
        .map(|bucket| bucket.first().copied().unwrap_or(Lit::FALSE))
        .collect()
}

/// Majority of an odd number of bits (`popcount > n/2`).
pub fn majority(aig: &mut Aig, bits: &[Lit]) -> Lit {
    assert!(bits.len() % 2 == 1, "majority requires an odd bit count");
    if bits.len() == 1 {
        return bits[0];
    }
    if bits.len() == 3 {
        let ab = aig.and(bits[0], bits[1]);
        let ac = aig.and(bits[0], bits[2]);
        let bc = aig.and(bits[1], bits[2]);
        let t = aig.or(ab, ac);
        return aig.or(t, bc);
    }
    let count = popcount(aig, bits);
    let threshold = bits.len() / 2; // strict majority: count >= threshold+1
    let width = count.len();
    let konst: Vec<Lit> = (0..width)
        .map(|i| {
            if threshold >> i & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect();
    // count > threshold  <=>  threshold < count
    less_than(aig, &konst, &count)
}

/// Leading-zero detector for a word (MSB at the highest index). Returns the
/// zero count as a binary word plus an `all_zero` flag. Core of the EPFL
/// `int2float` equivalent.
pub fn leading_zeros(aig: &mut Aig, word: &[Lit]) -> (Vec<Lit>, Lit) {
    // Scan from MSB: one-hot position of the first 1.
    let rev: Vec<Lit> = word.iter().rev().copied().collect();
    let (onehot, any) = priority_encoder(aig, &rev);
    let idx = onehot_to_binary(aig, &onehot);
    (idx, !any)
}

/// Logical right barrel shifter by a binary amount.
pub fn barrel_shift_right(aig: &mut Aig, word: &[Lit], amount: &[Lit]) -> Vec<Lit> {
    let mut cur: Vec<Lit> = word.to_vec();
    for (stage, &sel) in amount.iter().enumerate() {
        let shift = 1usize << stage;
        let shifted: Vec<Lit> = (0..cur.len())
            .map(|i| cur.get(i + shift).copied().unwrap_or(Lit::FALSE))
            .collect();
        cur = mux_word(aig, sel, &shifted, &cur);
    }
    cur
}

/// Logical left barrel shifter by a binary amount.
pub fn barrel_shift_left(aig: &mut Aig, word: &[Lit], amount: &[Lit]) -> Vec<Lit> {
    let mut cur: Vec<Lit> = word.to_vec();
    for (stage, &sel) in amount.iter().enumerate() {
        let shift = 1usize << stage;
        let shifted: Vec<Lit> = (0..cur.len())
            .map(|i| {
                if i >= shift {
                    cur[i - shift]
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        cur = mux_word(aig, sel, &shifted, &cur);
    }
    cur
}

/// Constant word literal of the given width.
pub fn constant(value: u64, width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if value >> i & 1 == 1 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

/// Multiply a word by an unsigned constant (shift-and-add).
pub fn multiply_by_constant(aig: &mut Aig, word: &[Lit], k: u64, out_width: usize) -> Vec<Lit> {
    let mut acc = constant(0, out_width);
    for bit in 0..64usize {
        if k >> bit & 1 == 1 {
            let shifted: Vec<Lit> = (0..out_width)
                .map(|i| {
                    if i >= bit && i - bit < word.len() {
                        word[i - bit]
                    } else {
                        Lit::FALSE
                    }
                })
                .collect();
            let (sum, _) = ripple_add(aig, &acc, &shifted, Lit::FALSE);
            acc = sum;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim;

    fn eval(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
        sim::eval_outputs(aig, inputs)
    }

    #[test]
    fn full_adder_is_seven_nodes() {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        // Paper Figure 4: the minimal full-adder AIG has 7 nodes.
        assert_eq!(g.num_ands(), 7);
    }

    #[test]
    fn ripple_add_matches_arithmetic() {
        let mut g = Aig::new("add");
        let a = g.input_word("a", 8);
        let b = g.input_word("b", 8);
        let (s, c) = ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        for (x, y) in [(3u64, 5u64), (255, 1), (200, 100), (0, 0), (127, 128)] {
            let mut inputs = Vec::new();
            for i in 0..8 {
                inputs.push(x >> i & 1 == 1);
            }
            for i in 0..8 {
                inputs.push(y >> i & 1 == 1);
            }
            let out = eval(&g, &inputs);
            let mut got = 0u64;
            for (i, &bit) in out.iter().enumerate().take(8) {
                got |= (bit as u64) << i;
            }
            got |= (out[8] as u64) << 8;
            assert_eq!(got, x + y, "{x} + {y}");
        }
    }

    #[test]
    fn multiplier_matches_arithmetic() {
        let mut g = Aig::new("mul");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let p = array_multiplier(&mut g, &a, &b);
        assert_eq!(p.len(), 8);
        g.output_word("p", &p);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inputs = Vec::new();
                for i in 0..4 {
                    inputs.push(x >> i & 1 == 1);
                }
                for i in 0..4 {
                    inputs.push(y >> i & 1 == 1);
                }
                let out = eval(&g, &inputs);
                let mut got = 0u64;
                for (i, &bit) in out.iter().enumerate() {
                    got |= (bit as u64) << i;
                }
                assert_eq!(got, x * y, "{x} * {y}");
            }
        }
    }

    #[test]
    fn popcount_and_majority() {
        let mut g = Aig::new("pc");
        let bits = g.input_word("x", 7);
        let cnt = popcount(&mut g, &bits);
        let maj = majority(&mut g, &bits);
        g.output_word("c", &cnt);
        g.output("m", maj);
        for pattern in 0..128u32 {
            let inputs: Vec<bool> = (0..7).map(|i| pattern >> i & 1 == 1).collect();
            let out = eval(&g, &inputs);
            let mut got = 0u32;
            for (i, &bit) in out.iter().enumerate().take(cnt.len()) {
                got |= (bit as u32) << i;
            }
            assert_eq!(got, pattern.count_ones(), "popcount {pattern:b}");
            assert_eq!(
                out[cnt.len()],
                pattern.count_ones() >= 4,
                "majority {pattern:b}"
            );
        }
    }

    #[test]
    fn decoder_is_onehot() {
        let mut g = Aig::new("dec");
        let sel = g.input_word("s", 3);
        let outs = decoder(&mut g, &sel, None);
        g.output_word("o", &outs);
        for code in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| code >> i & 1 == 1).collect();
            let out = eval(&g, &inputs);
            for (i, &bit) in out.iter().enumerate() {
                assert_eq!(bit, i == code);
            }
        }
    }

    #[test]
    fn priority_encoder_grants_first() {
        let mut g = Aig::new("pri");
        let req = g.input_word("r", 5);
        let (grant, valid) = priority_encoder(&mut g, &req);
        g.output_word("g", &grant);
        g.output("v", valid);
        let out = eval(&g, &[false, true, true, false, true]);
        assert_eq!(&out[..5], &[false, true, false, false, false]);
        assert!(out[5]);
        let out = eval(&g, &[false; 5]);
        assert!(!out[5]);
    }

    #[test]
    fn barrel_shifters() {
        let mut g = Aig::new("shr");
        let w = g.input_word("w", 8);
        let amt = g.input_word("k", 3);
        let r = barrel_shift_right(&mut g, &w, &amt);
        let l = barrel_shift_left(&mut g, &w, &amt);
        g.output_word("r", &r);
        g.output_word("l", &l);
        for value in [0b1011_0110u64, 0xff, 0x01, 0x80] {
            for k in 0..8u64 {
                let mut inputs = Vec::new();
                for i in 0..8 {
                    inputs.push(value >> i & 1 == 1);
                }
                for i in 0..3 {
                    inputs.push(k >> i & 1 == 1);
                }
                let out = eval(&g, &inputs);
                let mut right = 0u64;
                let mut left = 0u64;
                for i in 0..8 {
                    right |= (out[i] as u64) << i;
                    left |= (out[8 + i] as u64) << i;
                }
                assert_eq!(right, value >> k, "shr {value:#x} by {k}");
                assert_eq!(left, value << k & 0xff, "shl {value:#x} by {k}");
            }
        }
    }

    #[test]
    fn leading_zero_detector() {
        let mut g = Aig::new("lzd");
        let w = g.input_word("w", 8);
        let (lz, all_zero) = leading_zeros(&mut g, &w);
        g.output_word("z", &lz);
        g.output("az", all_zero);
        for value in [0u64, 1, 0x80, 0x40, 0x0f, 0xff] {
            let inputs: Vec<bool> = (0..8).map(|i| value >> i & 1 == 1).collect();
            let out = eval(&g, &inputs);
            let mut got = 0u64;
            for (i, &bit) in out.iter().enumerate().take(lz.len()) {
                got |= (bit as u64) << i;
            }
            if value == 0 {
                assert!(out[lz.len()], "all_zero flag for 0");
            } else {
                assert_eq!(
                    got,
                    (value as u8).leading_zeros() as u64,
                    "lz of {value:#x}"
                );
                assert!(!out[lz.len()]);
            }
        }
    }
}
