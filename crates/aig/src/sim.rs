//! Bit-parallel simulation of AIGs.
//!
//! Combinational simulation packs 64 patterns per word; sequential simulation
//! steps latches cycle by cycle. These are the golden models against which
//! mapped xSFQ netlists (and the pulse-level simulator) are verified.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Aig, Lit, NodeId, NodeKind};

/// Evaluate all nodes for 64 parallel input patterns.
///
/// `input_words[i]` supplies 64 values for primary input `i`;
/// `latch_words[i]` likewise for latch `i` (pass all-zeros for combinational
/// designs). Returns one word per node.
///
/// # Panics
///
/// Panics if the word slices do not match the input/latch counts.
pub fn simulate_words(aig: &Aig, input_words: &[u64], latch_words: &[u64]) -> Vec<u64> {
    assert_eq!(input_words.len(), aig.num_inputs(), "input word count");
    assert_eq!(latch_words.len(), aig.num_latches(), "latch word count");
    let mut words = vec![0u64; aig.num_nodes()];
    for (i, kind) in aig.nodes().iter().enumerate() {
        words[i] = match *kind {
            NodeKind::Const0 => 0,
            NodeKind::Input { index } => input_words[index as usize],
            NodeKind::Latch { index } => latch_words[index as usize],
            NodeKind::And { a, b } => lit_word(&words, a) & lit_word(&words, b),
        };
    }
    words
}

#[inline]
fn lit_word(words: &[u64], lit: Lit) -> u64 {
    let w = words[lit.node().index()];
    if lit.is_complement() {
        !w
    } else {
        w
    }
}

/// Value of an edge literal given the node words from [`simulate_words`].
pub fn lit_value(words: &[u64], lit: Lit) -> u64 {
    lit_word(words, lit)
}

/// Evaluate the primary outputs for a single input pattern.
pub fn eval_outputs(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
    let input_words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    let latch_words = vec![0u64; aig.num_latches()];
    let words = simulate_words(aig, &input_words, &latch_words);
    aig.outputs()
        .iter()
        .map(|o| lit_word(&words, o.lit) & 1 != 0)
        .collect()
}

/// Compute the full truth table of every output, for designs with at most 16
/// inputs. Output `o`'s table has bit `p` set iff the output is 1 under input
/// pattern `p` (input `i` = bit `i` of `p`).
///
/// # Panics
///
/// Panics if the design has more than 16 inputs or any latches.
pub fn exhaustive_truth_tables(aig: &Aig) -> Vec<Vec<u64>> {
    let n = aig.num_inputs();
    assert!(n <= 16, "exhaustive simulation limited to 16 inputs");
    assert_eq!(aig.num_latches(), 0, "combinational designs only");
    let patterns = 1usize << n;
    let words = patterns.div_ceil(64);
    let mut tables = vec![vec![0u64; words]; aig.num_outputs()];
    for base in (0..patterns).step_by(64) {
        let mut input_words = vec![0u64; n];
        for offset in 0..64.min(patterns - base) {
            let p = base + offset;
            for (i, w) in input_words.iter_mut().enumerate() {
                if p >> i & 1 == 1 {
                    *w |= 1u64 << offset;
                }
            }
        }
        let node_words = simulate_words(aig, &input_words, &[]);
        for (o, out) in aig.outputs().iter().enumerate() {
            tables[o][base / 64] = lit_word(&node_words, out.lit);
            if patterns - base < 64 {
                tables[o][base / 64] &= (1u64 << (patterns - base)) - 1;
            }
        }
    }
    tables
}

/// Random-simulation equivalence check between two combinational AIGs with
/// identical interfaces. Returns `false` as soon as any of `rounds × 64`
/// random patterns distinguishes them. A `true` result is evidence, not
/// proof — use `xsfq-sat`'s CEC for a decision procedure.
///
/// # Panics
///
/// Panics if the interfaces (input/output counts) differ.
pub fn random_equiv(a: &Aig, b: &Aig, rounds: usize, seed: u64) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    assert_eq!(a.num_latches(), 0, "combinational only");
    assert_eq!(b.num_latches(), 0, "combinational only");
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rounds {
        let input_words: Vec<u64> = (0..a.num_inputs()).map(|_| rng.gen()).collect();
        let wa = simulate_words(a, &input_words, &[]);
        let wb = simulate_words(b, &input_words, &[]);
        for (oa, ob) in a.outputs().iter().zip(b.outputs()) {
            if lit_word(&wa, oa.lit) != lit_word(&wb, ob.lit) {
                return false;
            }
        }
    }
    true
}

/// Incremental bit-parallel simulator with counterexample replay — the
/// random-simulation half of SAT sweeping (fraiging).
///
/// The simulator holds a growing set of input patterns, packed 64 per word,
/// and the resulting value words for *every* node. Nodes whose
/// [canonical signatures](Simulator::canonical_key) collide are *candidate*
/// equivalences (possibly complemented); a SAT disproof feeds the
/// distinguishing pattern back via [`Simulator::add_pattern`], which refines
/// the signatures for the next round. Latches are treated as free inputs
/// (cut-point abstraction), so a pattern is one bool per combinational input
/// (primary inputs first, then latches).
///
/// Invariant: equal canonical keys are *candidates*, never proof — only a
/// SAT verdict (or exhaustive patterns) promotes a candidate to a fact.
///
/// ```
/// use xsfq_aig::{Aig, sim::Simulator};
/// let mut g = Aig::new("t");
/// let a = g.input("a");
/// let b = g.input("b");
/// let x = g.and(a, b);
/// g.output("o", x);
/// let mut sim = Simulator::empty(&g, 1);
/// sim.add_pattern(&[true, true]);
/// sim.flush();
/// // On the single pattern (1,1), `a & b` and `a` agree.
/// assert_eq!(sim.canonical_key(x.node()).0, sim.canonical_key(a.node()).0);
/// // Replaying the distinguishing pattern (1,0) separates them.
/// sim.add_pattern(&[true, false]);
/// sim.flush();
/// assert_ne!(sim.canonical_key(x.node()).0, sim.canonical_key(a.node()).0);
/// ```
#[derive(Clone, Debug)]
pub struct Simulator<'a> {
    aig: &'a Aig,
    /// One entry per simulated word: `rounds[r][node]` holds 64 pattern
    /// values of `node`.
    rounds: Vec<Vec<u64>>,
    /// Replayed patterns waiting to be packed into the next word.
    pending: Vec<Vec<bool>>,
    rng: StdRng,
}

impl<'a> Simulator<'a> {
    /// Simulator with `words × 64` uniformly random patterns.
    pub fn random(aig: &'a Aig, words: usize, seed: u64) -> Self {
        let mut sim = Self::empty(aig, seed);
        for _ in 0..words {
            let ci_words: Vec<u64> = (0..sim.num_cis()).map(|_| sim.rng.gen()).collect();
            sim.simulate_ci_words(&ci_words);
        }
        sim
    }

    /// Simulator covering *all* `2^n` input patterns, for designs with at
    /// most [`Simulator::EXHAUSTIVE_LIMIT`] combinational inputs. Signatures
    /// are then exact truth tables: equal canonical keys are real
    /// equivalences, and SAT disproofs are impossible.
    ///
    /// # Panics
    ///
    /// Panics if the design has more combinational inputs than the limit.
    pub fn exhaustive(aig: &'a Aig) -> Self {
        let n = aig.num_inputs() + aig.num_latches();
        assert!(
            n <= Self::EXHAUSTIVE_LIMIT,
            "exhaustive simulation limited to {} inputs",
            Self::EXHAUSTIVE_LIMIT
        );
        let mut sim = Self::empty(aig, 0);
        let patterns = 1usize << n;
        for base in (0..patterns).step_by(64) {
            let mut ci_words = vec![0u64; n];
            for offset in 0..64.min(patterns - base) {
                let p = base + offset;
                for (i, w) in ci_words.iter_mut().enumerate() {
                    if p >> i & 1 == 1 {
                        *w |= 1u64 << offset;
                    }
                }
            }
            // With fewer than 64 patterns left, the tail lanes hold the
            // all-zero pattern — harmless duplicates.
            sim.simulate_ci_words(&ci_words);
        }
        sim
    }

    /// Maximum combinational-input count for [`Simulator::exhaustive`]
    /// (4096 patterns = 64 words).
    pub const EXHAUSTIVE_LIMIT: usize = 12;

    /// Simulator with no patterns yet (everything looks equivalent until
    /// patterns are added).
    pub fn empty(aig: &'a Aig, seed: u64) -> Self {
        Simulator {
            aig,
            rounds: Vec::new(),
            pending: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of combinational inputs (primary inputs + latches) a pattern
    /// must supply.
    pub fn num_cis(&self) -> usize {
        self.aig.num_inputs() + self.aig.num_latches()
    }

    /// Number of simulated patterns (64 per flushed word; pending patterns
    /// are not counted until [`Simulator::flush`]).
    pub fn num_patterns(&self) -> usize {
        self.rounds.len() * 64
    }

    /// Queue a replay pattern (one bool per combinational input). Patterns
    /// are packed 64 to a word; a full word is simulated immediately.
    ///
    /// # Panics
    ///
    /// Panics if the pattern length does not match [`Simulator::num_cis`].
    pub fn add_pattern(&mut self, pattern: &[bool]) {
        assert_eq!(pattern.len(), self.num_cis(), "pattern length");
        self.pending.push(pattern.to_vec());
        if self.pending.len() == 64 {
            self.flush();
        }
    }

    /// Simulate any queued replay patterns. A partial word is padded by
    /// cycling through the queued patterns again (deterministic duplicates),
    /// so every lane carries a counterexample-derived pattern.
    pub fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let n = self.num_cis();
        let mut ci_words = vec![0u64; n];
        for lane in 0..64 {
            let pattern = &self.pending[lane % self.pending.len()];
            for (i, w) in ci_words.iter_mut().enumerate() {
                if pattern[i] {
                    *w |= 1u64 << lane;
                }
            }
        }
        self.pending.clear();
        self.simulate_ci_words(&ci_words);
    }

    fn simulate_ci_words(&mut self, ci_words: &[u64]) {
        let (input_words, latch_words) = ci_words.split_at(self.aig.num_inputs());
        self.rounds
            .push(simulate_words(self.aig, input_words, latch_words));
    }

    /// Signature word of `node` in round `r`.
    pub fn word(&self, r: usize, node: NodeId) -> u64 {
        self.rounds[r][node.index()]
    }

    /// Canonical signature key of a node: a hash of the signature with the
    /// polarity normalized so a node and its complement collide, plus the
    /// complement flag that was applied. Two nodes are candidate-equivalent
    /// (up to complement) iff their keys are equal *and*
    /// [`Simulator::signatures_match`] confirms the full signatures (the
    /// hash alone can collide).
    pub fn canonical_key(&self, node: NodeId) -> (u64, bool) {
        let i = node.index();
        // Normalize polarity by the first pattern's value so `x` and `!x`
        // land in the same class.
        let complement = self.rounds.first().map(|r| r[i] & 1 == 1).unwrap_or(false);
        let mask = if complement { !0u64 } else { 0 };
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for round in &self.rounds {
            hash ^= round[i] ^ mask;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        (hash, complement)
    }

    /// True when the full signatures of `a` and `b` agree, complementing
    /// `b`'s when `complement` is set.
    pub fn signatures_match(&self, a: NodeId, b: NodeId, complement: bool) -> bool {
        let mask = if complement { !0u64 } else { 0 };
        self.rounds
            .iter()
            .all(|r| r[a.index()] == r[b.index()] ^ mask)
    }
}

/// Cycle-accurate sequential simulator.
///
/// ```
/// use xsfq_aig::{Aig, sim::SeqSim};
/// // 1-bit toggle counter.
/// let mut aig = Aig::new("toggle");
/// let q = aig.latch("q", false);
/// aig.set_latch_next(q, !q);
/// aig.output("o", q);
/// let mut sim = SeqSim::new(&aig);
/// let mut trace = Vec::new();
/// for _ in 0..4 {
///     trace.push(sim.step(&[])[0]);
/// }
/// assert_eq!(trace, [false, true, false, true]);
/// ```
#[derive(Clone, Debug)]
pub struct SeqSim<'a> {
    aig: &'a Aig,
    state: Vec<bool>,
}

impl<'a> SeqSim<'a> {
    /// Create a simulator with all latches at their declared init values.
    pub fn new(aig: &'a Aig) -> Self {
        SeqSim {
            aig,
            state: aig.latches().iter().map(|l| l.init).collect(),
        }
    }

    /// Current latch state.
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Force the latch state (for exploring initialization scenarios).
    pub fn set_state(&mut self, state: Vec<bool>) {
        assert_eq!(state.len(), self.aig.num_latches());
        self.state = state;
    }

    /// Apply one input vector, return the outputs sampled *before* the clock
    /// edge, then advance the latches.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let input_words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let latch_words: Vec<u64> = self.state.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let words = simulate_words(self.aig, &input_words, &latch_words);
        let outputs = self
            .aig
            .outputs()
            .iter()
            .map(|o| lit_word(&words, o.lit) & 1 != 0)
            .collect();
        self.state = self
            .aig
            .latches()
            .iter()
            .map(|l| lit_word(&words, l.next) & 1 != 0)
            .collect();
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;

    #[test]
    fn words_and_bools_agree() {
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let x = g.xor(a, b);
        g.output("x", x);
        assert_eq!(eval_outputs(&g, &[false, false]), [false]);
        assert_eq!(eval_outputs(&g, &[true, false]), [true]);
        assert_eq!(eval_outputs(&g, &[false, true]), [true]);
        assert_eq!(eval_outputs(&g, &[true, true]), [false]);
    }

    #[test]
    fn exhaustive_xor3() {
        let mut g = Aig::new("x3");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.xor_many(&[a, b, c]);
        g.output("x", x);
        let tts = exhaustive_truth_tables(&g);
        // XOR3 truth table over p = c b a: parity of bits.
        let mut expect = 0u64;
        for p in 0..8u64 {
            if (p.count_ones() & 1) == 1 {
                expect |= 1 << p;
            }
        }
        assert_eq!(tts[0][0], expect);
    }

    #[test]
    fn random_equiv_detects_difference() {
        let mut g1 = Aig::new("g1");
        let a = g1.input("a");
        let b = g1.input("b");
        let o = g1.and(a, b);
        g1.output("o", o);

        let mut g2 = Aig::new("g2");
        let a = g2.input("a");
        let b = g2.input("b");
        let o = g2.or(a, b);
        g2.output("o", o);

        assert!(!random_equiv(&g1, &g2, 4, 42));
        assert!(random_equiv(&g1, &g1.clone(), 4, 42));
    }

    #[test]
    fn counterexample_replay_refines_classes() {
        // f = a&b&c and g = a&b differ only on (1,1,0). Seed the simulator
        // with patterns that cannot tell them apart, then replay the
        // distinguishing pattern as a SAT counterexample would be.
        let mut aig = Aig::new("t");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("c");
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        aig.output("f", abc);
        aig.output("g", ab);

        let mut sim = Simulator::empty(&aig, 7);
        sim.add_pattern(&[true, true, true]);
        sim.add_pattern(&[false, true, false]);
        sim.flush();
        assert_eq!(sim.num_patterns(), 64);
        let (kf, cf) = sim.canonical_key(abc.node());
        let (kg, cg) = sim.canonical_key(ab.node());
        assert_eq!((kf, cf), (kg, cg), "agreeing patterns leave a candidate");
        assert!(sim.signatures_match(abc.node(), ab.node(), cf ^ cg));

        sim.add_pattern(&[true, true, false]);
        sim.flush();
        let (kf, cf) = sim.canonical_key(abc.node());
        let (kg, cg) = sim.canonical_key(ab.node());
        assert!(
            (kf, cf) != (kg, cg) || !sim.signatures_match(abc.node(), ab.node(), cf ^ cg),
            "replayed counterexample must split the class"
        );
    }

    #[test]
    fn exhaustive_simulator_matches_truth_tables() {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.xor_many(&[a, b, c]);
        g.output("x", x);
        let sim = Simulator::exhaustive(&g);
        let tts = exhaustive_truth_tables(&g);
        // The first 8 lanes of round 0 enumerate all 3-input patterns.
        assert_eq!(sim.word(0, x.node()) & 0xff, tts[0][0]);
    }

    #[test]
    fn sequential_counter() {
        // 2-bit counter: q0' = !q0, q1' = q1 ^ q0.
        let mut g = Aig::new("cnt2");
        let q0 = g.latch("q0", false);
        let q1 = g.latch("q1", false);
        g.set_latch_next(q0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_latch_next(q1, n1);
        g.output("o0", q0);
        g.output("o1", q1);
        let mut sim = SeqSim::new(&g);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let o = sim.step(&[]);
            seen.push((o[1] as u8) << 1 | o[0] as u8);
        }
        assert_eq!(seen, [0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn full_adder_exhaustive() {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("co", co);
        let tts = exhaustive_truth_tables(&g);
        for p in 0..8usize {
            let bits = (p & 1) + (p >> 1 & 1) + (p >> 2 & 1);
            assert_eq!(tts[0][0] >> p & 1 == 1, bits & 1 == 1);
            assert_eq!(tts[1][0] >> p & 1 == 1, bits >= 2);
        }
    }
}
