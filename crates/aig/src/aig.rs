//! The AND-Inverter graph container.
//!
//! # Structural-hash table
//!
//! New AND nodes are deduplicated through [`StrashTable`], an open-addressing
//! (linear-probe) hash-cons table over the node arena: slots store only node
//! indices, the key `(a, b)` is read back from the arena on probe, and the
//! hash is one 64-bit multiply — no SipHash, no per-entry heap boxes, and
//! removal (used by the optimization passes' speculative build/rollback)
//! is backward-shift, so the table never accumulates tombstones.

use std::fmt;

use crate::{Lit, NodeId};

/// Open-addressing hash-cons table mapping `(a, b)` fanin pairs to AND node
/// indices. Capacity is a power of two; `EMPTY` slots hold `u32::MAX`.
#[derive(Clone, Debug, Default)]
struct StrashTable {
    slots: Vec<u32>,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

#[inline]
fn strash_hash(a: u32, b: u32) -> u64 {
    // Single multiply-xorshift over the packed pair — quality is plenty for
    // power-of-two masking, cost is a few cycles.
    let x = ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^ x >> 29
}

impl StrashTable {
    /// Probe for the AND of `(a, b)`; `nodes` is the arena the slots index.
    #[inline]
    fn lookup(&self, a: Lit, b: Lit, nodes: &[NodeKind]) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut pos = strash_hash(a.raw(), b.raw()) as usize & mask;
        loop {
            let slot = self.slots[pos];
            if slot == EMPTY {
                return None;
            }
            if let NodeKind::And { a: sa, b: sb } = nodes[slot as usize] {
                if sa == a && sb == b {
                    return Some(slot);
                }
            }
            pos = (pos + 1) & mask;
        }
    }

    /// Insert node `idx` (must not already be present; the caller probes
    /// first via [`StrashTable::lookup`]).
    fn insert(&mut self, idx: u32, nodes: &[NodeKind]) {
        if self.len * 8 >= self.slots.len() * 7 {
            self.grow(nodes);
        }
        let mask = self.slots.len() - 1;
        let NodeKind::And { a, b } = nodes[idx as usize] else {
            unreachable!("only AND nodes are hashed");
        };
        let mut pos = strash_hash(a.raw(), b.raw()) as usize & mask;
        while self.slots[pos] != EMPTY {
            pos = (pos + 1) & mask;
        }
        self.slots[pos] = idx;
        self.len += 1;
    }

    /// Remove node `idx` with backward-shift deletion (no tombstones).
    fn remove(&mut self, idx: u32, nodes: &[NodeKind]) {
        let mask = self.slots.len() - 1;
        let NodeKind::And { a, b } = nodes[idx as usize] else {
            unreachable!("only AND nodes are hashed");
        };
        let mut pos = strash_hash(a.raw(), b.raw()) as usize & mask;
        loop {
            match self.slots[pos] {
                EMPTY => panic!("strash entry for n{idx} missing"),
                slot if slot == idx => break,
                _ => pos = (pos + 1) & mask,
            }
        }
        // Backward-shift: pull displaced entries into the hole so probe
        // chains stay contiguous.
        let mut hole = pos;
        let mut next = (hole + 1) & mask;
        while self.slots[next] != EMPTY {
            let entry = self.slots[next];
            let NodeKind::And { a, b } = nodes[entry as usize] else {
                unreachable!("only AND nodes are hashed");
            };
            let ideal = strash_hash(a.raw(), b.raw()) as usize & mask;
            // `entry` may move into the hole iff its ideal slot does not lie
            // strictly between the hole and its current position (cyclic).
            if (next.wrapping_sub(ideal) & mask) >= (next.wrapping_sub(hole) & mask) {
                self.slots[hole] = entry;
                hole = next;
            }
            next = (next + 1) & mask;
        }
        self.slots[hole] = EMPTY;
        self.len -= 1;
    }

    fn grow(&mut self, nodes: &[NodeKind]) {
        let new_cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for slot in old {
            if slot == EMPTY {
                continue;
            }
            let NodeKind::And { a, b } = nodes[slot as usize] else {
                unreachable!("only AND nodes are hashed");
            };
            let mut pos = strash_hash(a.raw(), b.raw()) as usize & mask;
            while self.slots[pos] != EMPTY {
                pos = (pos + 1) & mask;
            }
            self.slots[pos] = slot;
        }
    }
}

/// Kind of a node in the graph.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum NodeKind {
    /// The constant-false node (always node 0).
    Const0,
    /// Primary input.
    Input {
        /// Position in [`Aig::inputs`].
        index: u32,
    },
    /// Latch (register) output.
    Latch {
        /// Position in [`Aig::latches`].
        index: u32,
    },
    /// Two-input AND of the given edge literals.
    And {
        /// First fanin edge.
        a: Lit,
        /// Second fanin edge.
        b: Lit,
    },
}

impl NodeKind {
    /// True for AND nodes.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self, NodeKind::And { .. })
    }

    /// True for primary inputs.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, NodeKind::Input { .. })
    }

    /// True for latch outputs.
    #[inline]
    pub fn is_latch(&self) -> bool {
        matches!(self, NodeKind::Latch { .. })
    }

    /// True for inputs and latches — the "combinational inputs" of the graph.
    #[inline]
    pub fn is_ci(&self) -> bool {
        self.is_input() || self.is_latch()
    }
}

/// A named primary output driving literal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Output {
    /// Port name.
    pub name: String,
    /// Driving edge.
    pub lit: Lit,
}

/// A latch (synchronous storage element) in a sequential AIG.
///
/// In the xSFQ flow every latch eventually becomes a pair of DROC cells; the
/// `init` value participates in the paper's preloading strategy (§3.2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Latch {
    /// Node whose value is the latch's current state.
    pub output: NodeId,
    /// Next-state function (may reference any node, including later ones).
    pub next: Lit,
    /// Power-on value.
    pub init: bool,
    /// Latch name.
    pub name: String,
}

/// Summary statistics of an AIG.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct AigStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of latches.
    pub latches: usize,
    /// Number of two-input AND nodes.
    pub ands: usize,
    /// Logic depth in AND levels (combinational inputs are level 0).
    pub depth: usize,
}

impl fmt::Display for AigStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "i/o = {}/{}  latches = {}  ands = {}  depth = {}",
            self.inputs, self.outputs, self.latches, self.ands, self.depth
        )
    }
}

/// One violation found by [`Aig::validate`]: the offending node (when the
/// defect is attributable to one) and a human-readable description.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AigDefect {
    /// Index of the offending node, if the defect anchors to one.
    pub node: Option<usize>,
    /// What is wrong.
    pub detail: String,
}

impl fmt::Display for AigDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "node {n}: {}", self.detail),
            None => f.write_str(&self.detail),
        }
    }
}

/// An AND-Inverter graph: the tech-independent logic representation used by
/// the whole flow (ABC's internal representation, per paper §3.1.3).
///
/// Nodes are stored in topological order (AND fanins always precede the node)
/// and new ANDs are structurally hashed, so building `a & b` twice returns
/// the same literal:
///
/// ```
/// use xsfq_aig::Aig;
/// let mut aig = Aig::new("example");
/// let a = aig.input("a");
/// let b = aig.input("b");
/// let x = aig.and(a, b);
/// let y = aig.and(b, a);
/// assert_eq!(x, y);
/// assert_eq!(aig.num_ands(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    name: String,
    nodes: Vec<NodeKind>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    latches: Vec<Latch>,
    outputs: Vec<Output>,
    strash: StrashTable,
    and_count: usize,
}

impl Aig {
    /// Create an empty AIG containing only the constant node.
    pub fn new(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            nodes: vec![NodeKind::Const0],
            inputs: Vec::new(),
            input_names: Vec::new(),
            latches: Vec::new(),
            outputs: Vec::new(),
            strash: StrashTable::default(),
            and_count: 0,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes including the constant, inputs and latches.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of two-input AND nodes (O(1): a maintained counter, not a
    /// node-table scan).
    #[inline]
    pub fn num_ands(&self) -> usize {
        self.and_count
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of latches.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Kind of the given node.
    #[inline]
    pub fn node(&self, id: NodeId) -> NodeKind {
        self.nodes[id.index()]
    }

    /// All node kinds in topological (id) order.
    pub fn nodes(&self) -> &[NodeKind] {
        &self.nodes
    }

    /// Ids of the primary inputs, in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Name of primary input `index`.
    pub fn input_name(&self, index: usize) -> &str {
        &self.input_names[index]
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Latches in declaration order.
    pub fn latches(&self) -> &[Latch] {
        &self.latches
    }

    /// Iterate over the ids of all AND nodes in topological order.
    pub fn and_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_and())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Ids of all combinational inputs (primary inputs then latch outputs).
    pub fn ci_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.inputs
            .iter()
            .copied()
            .chain(self.latches.iter().map(|l| l.output))
    }

    /// Add a primary input and return its (positive) literal.
    pub fn input(&mut self, name: impl Into<String>) -> Lit {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeKind::Input {
            index: self.inputs.len() as u32,
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        id.lit()
    }

    /// Add `count` inputs named `prefix[0..count]`, returning their literals.
    pub fn input_word(&mut self, prefix: &str, count: usize) -> Vec<Lit> {
        (0..count)
            .map(|i| self.input(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Add a latch with the given power-on value; its next-state function
    /// must be set later with [`Aig::set_latch_next`]. Returns the literal of
    /// the latch's current-state output.
    pub fn latch(&mut self, name: impl Into<String>, init: bool) -> Lit {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeKind::Latch {
            index: self.latches.len() as u32,
        });
        self.latches.push(Latch {
            output: id,
            next: Lit::FALSE,
            init,
            name: name.into(),
        });
        id.lit()
    }

    /// Set the next-state function of the latch whose output node is
    /// `latch_output`.
    ///
    /// # Panics
    ///
    /// Panics if `latch_output` is not a latch node.
    pub fn set_latch_next(&mut self, latch_output: Lit, next: Lit) {
        let id = latch_output.node();
        let NodeKind::Latch { index } = self.nodes[id.index()] else {
            panic!("{id:?} is not a latch output");
        };
        // A complemented latch reference means the complement of the state;
        // store the next function complemented instead so the latch output
        // stays positive.
        let next = next.complement_if(latch_output.is_complement());
        self.latches[index as usize].next = next;
    }

    /// Declare a named primary output.
    pub fn output(&mut self, name: impl Into<String>, lit: Lit) {
        self.outputs.push(Output {
            name: name.into(),
            lit,
        });
    }

    /// Declare outputs `prefix[i]` for each literal in `word`.
    pub fn output_word(&mut self, prefix: &str, word: &[Lit]) {
        for (i, &lit) in word.iter().enumerate() {
            self.output(format!("{prefix}[{i}]"), lit);
        }
    }

    /// Replace output `index` with a new driving literal.
    pub fn set_output(&mut self, index: usize, lit: Lit) {
        self.outputs[index].lit = lit;
    }

    /// The two fanin literals of an AND node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an AND node.
    #[inline]
    pub fn and_fanins(&self, id: NodeId) -> (Lit, Lit) {
        match self.nodes[id.index()] {
            NodeKind::And { a, b } => (a, b),
            other => panic!("{id:?} is not an AND node (kind {other:?})"),
        }
    }

    /// Create (or look up) the AND of two literals.
    ///
    /// Performs constant folding, unit/idempotence/complement simplification
    /// and structural hashing, so the graph never contains two identical AND
    /// nodes.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Trivial cases.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(idx) = self.strash.lookup(a, b, &self.nodes) {
            return Lit(idx << 1);
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeKind::And { a, b });
        self.strash.insert(id.0, &self.nodes);
        self.and_count += 1;
        id.lit()
    }

    /// OR of two literals (`!(!a & !b)`).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// NAND of two literals.
    pub fn nand(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(a, b)
    }

    /// NOR of two literals.
    pub fn nor(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(!a, !b)
    }

    /// XOR of two literals, built from three ANDs (or fewer with constants).
    ///
    /// Uses the `(a|b) & !(a&b)` structure, whose `a&b` product is shared
    /// with carry logic — this is what makes [`crate::build::full_adder`]
    /// come out at the 7-node minimum of the paper's Figure 4.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        // Canonicalize to positive-polarity inputs so `xor(a, !b)` produces
        // the same internal nodes as `!xor(a, b)` — maximizing sharing.
        let flip = a.is_complement() ^ b.is_complement();
        let (a, b) = (a.positive(), b.positive());
        let both = self.and(a, b);
        let neither = self.and(!a, !b);
        let x = self.and(!both, !neither);
        x.complement_if(flip)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// 2:1 multiplexer: `sel ? t : e`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let pt = self.and(sel, t);
        let pe = self.and(!sel, e);
        self.or(pt, pe)
    }

    /// Conjunction of many literals, built as a balanced tree.
    pub fn and_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Self::and)
    }

    /// Disjunction of many literals, built as a balanced tree.
    pub fn or_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::or)
    }

    /// XOR of many literals, built as a balanced tree.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Self::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        empty: Lit,
        mut op: impl FnMut(&mut Self, Lit, Lit) -> Lit + Copy,
    ) -> Lit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            n => {
                let (lo, hi) = lits.split_at(n / 2);
                let l = self.reduce_balanced(lo, empty, op);
                let r = self.reduce_balanced(hi, empty, op);
                op(self, l, r)
            }
        }
    }

    /// Per-node logic level (`0` for constants/CIs, `1 + max(fanins)` for
    /// ANDs). Latch boundaries reset levels: next-state cones are measured
    /// from the combinational inputs.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeKind::And { a, b } = n {
                level[i] = 1 + level[a.node().index()].max(level[b.node().index()]);
            }
        }
        level
    }

    /// Maximum logic level over all outputs and latch next-state functions.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.combinational_roots()
            .map(|l| levels[l.node().index()] as usize)
            .max()
            .unwrap_or(0)
    }

    /// All combinational root literals: primary outputs plus latch
    /// next-state functions.
    pub fn combinational_roots(&self) -> impl Iterator<Item = Lit> + '_ {
        self.outputs
            .iter()
            .map(|o| o.lit)
            .chain(self.latches.iter().map(|l| l.next))
    }

    /// Number of fanout references per node (AND fanins plus, when
    /// `include_roots`, output and latch next references).
    pub fn fanout_counts(&self, include_roots: bool) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for n in &self.nodes {
            if let NodeKind::And { a, b } = n {
                counts[a.node().index()] += 1;
                counts[b.node().index()] += 1;
            }
        }
        if include_roots {
            for root in self.combinational_roots() {
                counts[root.node().index()] += 1;
            }
        }
        counts
    }

    /// Summary statistics.
    pub fn stats(&self) -> AigStats {
        AigStats {
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            latches: self.num_latches(),
            ands: self.num_ands(),
            depth: self.depth(),
        }
    }

    /// Audit every structural invariant the rest of the flow assumes and
    /// return the violations (empty = well-formed).
    ///
    /// Checked invariants:
    /// - node 0 is the unique `Const0`;
    /// - AND fanins reference strictly earlier nodes (topological order,
    ///   which also proves acyclicity) and are stored in canonical
    ///   `a.raw() < b.raw()` order with no constant or duplicated fanin
    ///   (the trivial cases [`Aig::and`] folds away);
    /// - every AND re-looks-up to itself in the structural hash table
    ///   (no duplicate or orphaned strash entries), and the maintained
    ///   [`Aig::num_ands`] counter matches the node table;
    /// - `Input`/`Latch` nodes and the `inputs`/`latches`/`input_names`
    ///   side tables form a consistent bijection;
    /// - output and latch next-state literals point inside the node table
    ///   (no dangling literals).
    ///
    /// Level consistency is implied: [`Aig::levels`] derives levels from
    /// the fanin order validated here, so a graph that passes cannot carry
    /// a stale incremental level.
    pub fn validate(&self) -> Vec<AigDefect> {
        let mut out = Vec::new();
        let mut defect = |node: Option<usize>, detail: String| {
            out.push(AigDefect { node, detail });
        };
        if self.nodes.first() != Some(&NodeKind::Const0) {
            defect(Some(0), "node 0 is not Const0".into());
        }
        if self.input_names.len() != self.inputs.len() {
            defect(
                None,
                format!(
                    "{} input names for {} inputs",
                    self.input_names.len(),
                    self.inputs.len()
                ),
            );
        }
        let mut ands = 0usize;
        let mut latch_nodes = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            match *n {
                NodeKind::Const0 => {
                    if i != 0 {
                        defect(Some(i), "stray Const0 past node 0".into());
                    }
                }
                NodeKind::Input { index } => {
                    let idx = index as usize;
                    if self.inputs.get(idx).map(|id| id.index()) != Some(i) {
                        defect(
                            Some(i),
                            format!("input table slot {idx} does not point back"),
                        );
                    }
                }
                NodeKind::Latch { index } => {
                    latch_nodes += 1;
                    let idx = index as usize;
                    if self.latches.get(idx).map(|l| l.output.index()) != Some(i) {
                        defect(
                            Some(i),
                            format!("latch table slot {idx} does not point back"),
                        );
                    }
                }
                NodeKind::And { a, b } => {
                    ands += 1;
                    if a.node().index() >= i || b.node().index() >= i {
                        defect(Some(i), "fanin references a node at or past itself".into());
                        continue;
                    }
                    if a.raw() >= b.raw() {
                        defect(Some(i), "fanins out of canonical order".into());
                    }
                    if a.is_const() || b.is_const() {
                        defect(Some(i), "unfolded constant fanin".into());
                    }
                    if self.strash.lookup(a, b, &self.nodes) != Some(i as u32) {
                        defect(Some(i), "strash re-lookup does not return this node".into());
                    }
                }
            }
        }
        if ands != self.and_count {
            defect(
                None,
                format!("and_count {} but {ands} AND nodes", self.and_count),
            );
        }
        if latch_nodes != self.latches.len() {
            defect(
                None,
                format!(
                    "{} latch entries but {latch_nodes} Latch nodes",
                    self.latches.len()
                ),
            );
        }
        for (i, o) in self.outputs.iter().enumerate() {
            if o.lit.node().index() >= self.nodes.len() {
                defect(None, format!("output {i} (`{}`) literal dangles", o.name));
            }
        }
        for (i, l) in self.latches.iter().enumerate() {
            if l.next.node().index() >= self.nodes.len() {
                defect(
                    None,
                    format!("latch {i} (`{}`) next-state literal dangles", l.name),
                );
            }
            if l.output.index() >= self.nodes.len() {
                defect(
                    None,
                    format!("latch {i} (`{}`) output node dangles", l.name),
                );
            } else if !self.nodes[l.output.index()].is_latch() {
                defect(
                    Some(l.output.index()),
                    format!("latch {i} (`{}`) output is not a Latch node", l.name),
                );
            }
        }
        out
    }

    /// Remove all nodes with index `>= watermark`, undoing their structural
    /// hash entries. Only valid when nothing below the watermark references
    /// them (true for freshly appended nodes), which is how the optimization
    /// passes evaluate candidate implementations without committing.
    pub(crate) fn truncate_nodes(&mut self, watermark: usize) {
        while self.nodes.len() > watermark {
            let idx = self.nodes.len() - 1;
            match self.nodes[idx] {
                NodeKind::And { a, b } => {
                    debug_assert_eq!(self.strash.lookup(a, b, &self.nodes), Some(idx as u32));
                    self.strash.remove(idx as u32, &self.nodes);
                    self.nodes.pop();
                    self.and_count -= 1;
                }
                other => panic!("cannot truncate non-AND node {other:?} at {idx}"),
            }
        }
    }

    /// Rebuild the graph keeping only nodes reachable from the outputs and
    /// latch next-state functions. The PI/PO/latch interface is preserved
    /// (all declared inputs and latches survive even if dangling).
    ///
    /// Returns the compacted graph; node ids are renumbered.
    pub fn compact(&self) -> Aig {
        let mut out = Aig::new(self.name.clone());
        let mut map: Vec<Option<Lit>> = vec![None; self.nodes.len()];
        map[0] = Some(Lit::FALSE);
        for (i, &id) in self.inputs.iter().enumerate() {
            let l = out.input(self.input_names[i].clone());
            map[id.index()] = Some(l);
        }
        for latch in &self.latches {
            let l = out.latch(latch.name.clone(), latch.init);
            map[latch.output.index()] = Some(l);
        }
        // Mark reachable AND nodes.
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.combinational_roots().map(|l| l.node()).collect();
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            if let NodeKind::And { a, b } = self.nodes[id.index()] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        // Rebuild live ANDs in topological (id) order.
        for (i, n) in self.nodes.iter().enumerate() {
            if let NodeKind::And { a, b } = n {
                if live[i] {
                    let fa = map[a.node().index()]
                        .expect("fanin built")
                        .complement_if(a.is_complement());
                    let fb = map[b.node().index()]
                        .expect("fanin built")
                        .complement_if(b.is_complement());
                    map[i] = Some(out.and(fa, fb));
                }
            }
        }
        let resolve = |map: &[Option<Lit>], l: Lit| -> Lit {
            map[l.node().index()]
                .expect("root points at live node")
                .complement_if(l.is_complement())
        };
        for o in &self.outputs {
            let lit = resolve(&map, o.lit);
            out.output(o.name.clone(), lit);
        }
        for (i, latch) in self.latches.iter().enumerate() {
            let next = resolve(&map, latch.next);
            let output = out.latches[i].output.lit();
            out.set_latch_next(output, next);
        }
        out
    }
}

impl fmt::Display for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aig '{}': {}", self.name, self.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_simplifications() {
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        assert_eq!(g.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(g.and(Lit::TRUE, b), b);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, !a), Lit::FALSE);
        assert_eq!(g.num_ands(), 0);
    }

    #[test]
    fn strash_dedup() {
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        assert_eq!(g.and(b, a), x);
        assert_eq!(g.or(!a, !b), !x); // !(a & b) shares the node
        assert_eq!(g.num_ands(), 1);
    }

    #[test]
    fn xor_uses_three_nodes() {
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let _ = g.xor(a, b);
        assert_eq!(g.num_ands(), 3);
    }

    #[test]
    fn mux_constant_folds() {
        let mut g = Aig::new("t");
        let s = g.input("s");
        let t = g.input("t");
        let m = g.mux(s, t, Lit::FALSE);
        // sel ? t : 0 == sel & t
        assert_eq!(m, g.and(s, t));
    }

    #[test]
    fn depth_and_levels() {
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.output("o", abc);
        assert_eq!(g.depth(), 2);
        let lv = g.levels();
        assert_eq!(lv[ab.node().index()], 1);
        assert_eq!(lv[abc.node().index()], 2);
    }

    #[test]
    fn latch_roundtrip() {
        let mut g = Aig::new("t");
        let d = g.input("d");
        let q = g.latch("q", true);
        let nq = g.and(d, q);
        g.set_latch_next(q, nq);
        g.output("o", q);
        assert_eq!(g.num_latches(), 1);
        assert!(g.latches()[0].init);
        assert_eq!(g.latches()[0].next, nq);
    }

    #[test]
    fn compact_drops_dangling() {
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let keep = g.and(a, b);
        let _dead = g.and(a, !b);
        g.output("o", !keep);
        let c = g.compact();
        assert_eq!(c.num_ands(), 1);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.outputs()[0].name, "o");
        assert!(c.outputs()[0].lit.is_complement());
    }

    #[test]
    fn compact_preserves_latch_interface() {
        let mut g = Aig::new("t");
        let d = g.input("d");
        let q = g.latch("q", false);
        let n = g.xor(d, q);
        g.set_latch_next(q, n);
        g.output("o", q);
        let c = g.compact();
        assert_eq!(c.num_latches(), 1);
        assert_eq!(c.num_ands(), 3);
    }

    fn small_graph() -> Aig {
        let mut g = Aig::new("v");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let x = g.and(a, b);
        let y = g.and(x, c);
        g.output("o", y);
        g
    }

    #[test]
    fn validate_passes_well_formed_graphs() {
        assert!(small_graph().validate().is_empty());
        let mut g = Aig::new("seq");
        let d = g.input("d");
        let q = g.latch("q", true);
        let n = g.xor(d, q);
        g.set_latch_next(q, n);
        g.output("o", q);
        assert!(g.validate().is_empty());
    }

    #[test]
    fn validate_catches_fanin_disorder() {
        let mut g = small_graph();
        // Corrupt the last AND: swap its fanins out of canonical order.
        let idx = g.nodes.len() - 1;
        let NodeKind::And { a, b } = g.nodes[idx] else {
            panic!("expected an AND");
        };
        g.nodes[idx] = NodeKind::And { a: b, b: a };
        let defects = g.validate();
        assert!(
            defects
                .iter()
                .any(|d| d.node == Some(idx) && d.detail.contains("canonical order")),
            "{defects:?}"
        );
    }

    #[test]
    fn validate_catches_strash_divergence() {
        let mut g = small_graph();
        // Rewire an AND fanin behind the strash table's back: the
        // re-lookup check must notice the table no longer agrees.
        let idx = g.nodes.len() - 1;
        let NodeKind::And { a, .. } = g.nodes[idx] else {
            panic!("expected an AND");
        };
        g.nodes[idx] = NodeKind::And { a: !a, b: a };
        let defects = g.validate();
        assert!(
            defects.iter().any(|d| d.detail.contains("strash")),
            "{defects:?}"
        );
    }

    #[test]
    fn validate_catches_dangling_output_and_bad_count() {
        let mut g = small_graph();
        g.outputs[0].lit = Lit::new(NodeId(999), false);
        g.and_count = 7;
        let defects = g.validate();
        assert!(
            defects.iter().any(|d| d.detail.contains("dangles")),
            "{defects:?}"
        );
        assert!(
            defects.iter().any(|d| d.detail.contains("and_count")),
            "{defects:?}"
        );
    }
}
