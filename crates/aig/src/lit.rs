//! Node identifiers and edge literals.
//!
//! An AIG edge is a [`Lit`]: a node index plus a complement flag packed into
//! one `u32`, following the AIGER convention (`lit = 2 * node + complement`).

use std::fmt;
use std::ops::Not;

/// Identifier of a node in an [`Aig`](crate::Aig).
///
/// Node `0` is always the constant-false node. Identifiers are dense and
/// topologically ordered: the fanins of an AND node always have smaller ids
/// (latch next-state literals are the only backward references, and those are
/// stored on the latch, not in the node table).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-false node, present in every AIG.
    pub const CONST0: NodeId = NodeId(0);

    /// Index of this node in the node table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct a node id from a raw table index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Positive-polarity literal pointing at this node.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An edge in the AIG: a node reference with an optional complement
/// ("inverter bubble").
///
/// `Lit` is `Copy` and packs into 4 bytes. The complement is the least
/// significant bit, so `Lit::FALSE` (constant node, no complement) is `0` and
/// `Lit::TRUE` is `1`, exactly as in the AIGER format.
///
/// ```
/// use xsfq_aig::{Aig, Lit};
/// let mut aig = Aig::new("t");
/// let a = aig.input("a");
/// assert_eq!(!(!a), a);
/// assert_ne!(!a, a);
/// assert_eq!(!Lit::FALSE, Lit::TRUE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Constant false (the positive literal of node 0).
    pub const FALSE: Lit = Lit(0);
    /// Constant true (the complemented literal of node 0).
    pub const TRUE: Lit = Lit(1);

    /// Build a literal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Self {
        Lit(node.0 << 1 | complement as u32)
    }

    /// The node this literal points at.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge carries an inverter bubble.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if this is `Lit::FALSE` or `Lit::TRUE`.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Literal with the same node and positive polarity.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 & !1)
    }

    /// Literal with the same node and the given complement flag.
    #[inline]
    pub fn with_complement(self, complement: bool) -> Lit {
        Lit(self.0 & !1 | complement as u32)
    }

    /// XOR the complement flag with `flip` (useful when pushing bubbles).
    #[inline]
    pub fn complement_if(self, flip: bool) -> Lit {
        Lit(self.0 ^ flip as u32)
    }

    /// Raw AIGER-style encoding (`2 * node + complement`).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from a raw AIGER-style encoding.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Lit(raw)
    }
}

impl Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.0 >> 1)
        } else {
            write!(f, "n{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<NodeId> for Lit {
    fn from(node: NodeId) -> Lit {
        Lit::new(node, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Lit::FALSE.node(), NodeId::CONST0);
        assert_eq!(Lit::TRUE.node(), NodeId::CONST0);
        assert!(!Lit::FALSE.is_complement());
        assert!(Lit::TRUE.is_complement());
        assert_eq!(!Lit::FALSE, Lit::TRUE);
        assert!(Lit::FALSE.is_const() && Lit::TRUE.is_const());
    }

    #[test]
    fn packing_roundtrip() {
        for idx in [0usize, 1, 2, 1000, 1 << 20] {
            let node = NodeId::from_index(idx);
            for c in [false, true] {
                let l = Lit::new(node, c);
                assert_eq!(l.node(), node);
                assert_eq!(l.is_complement(), c);
                assert_eq!(Lit::from_raw(l.raw()), l);
            }
        }
    }

    #[test]
    fn polarity_helpers() {
        let n = NodeId::from_index(5);
        let l = Lit::new(n, true);
        assert_eq!(l.positive(), Lit::new(n, false));
        assert_eq!(l.with_complement(false), Lit::new(n, false));
        assert_eq!(l.complement_if(true), Lit::new(n, false));
        assert_eq!(l.complement_if(false), l);
        assert_eq!(NodeId::from_index(5).lit(), Lit::new(n, false));
    }
}
