//! Property tests pinning the refactored hot-path data structures to naive
//! reference implementations:
//!
//! * inline signature-filtered cut enumeration vs. a `Vec`-based
//!   reimplementation of the original algorithm (exact list equality), and
//! * inline-`u64` truth tables vs. an explicit `Vec<bool>` bit model across
//!   all operators, straddling the 6 ↔ 7-variable representation boundary.

use proptest::prelude::*;

use xsfq_aig::cuts::{enumerate_cuts, Cut};
use xsfq_aig::tt::{apply_npn4, npn_canon4, TruthTable};
use xsfq_aig::{Aig, Lit, NodeId, NodeKind};

// ---------------------------------------------------------------- cut refs

/// Reference cut: a plain sorted vector of leaf indices.
type RefCut = Vec<usize>;

fn ref_merge(a: &RefCut, b: &RefCut, k: usize) -> Option<RefCut> {
    let mut out: RefCut = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    (out.len() <= k).then_some(out)
}

fn ref_dominates(a: &RefCut, b: &RefCut) -> bool {
    a.len() <= b.len() && a.iter().all(|l| b.contains(l))
}

/// The original (pre-refactor) enumeration algorithm, verbatim: quadratic
/// `any` + `retain` dominance filtering over heap cuts.
fn ref_enumerate(aig: &Aig, k: usize, max_cuts: usize) -> Vec<Vec<RefCut>> {
    let mut cuts: Vec<Vec<RefCut>> = vec![Vec::new(); aig.num_nodes()];
    for (i, kind) in aig.nodes().iter().enumerate() {
        match *kind {
            NodeKind::And { a, b } => {
                let mut list: Vec<RefCut> = Vec::new();
                let (ca, cb) = (
                    cuts[a.node().index()].clone(),
                    cuts[b.node().index()].clone(),
                );
                for cut_a in &ca {
                    for cut_b in &cb {
                        let Some(merged) = ref_merge(cut_a, cut_b, k) else {
                            continue;
                        };
                        if list.iter().any(|c| ref_dominates(c, &merged)) {
                            continue;
                        }
                        list.retain(|c| !ref_dominates(&merged, c));
                        list.push(merged);
                    }
                }
                list.sort_by_key(RefCut::len);
                list.truncate(max_cuts);
                list.push(vec![i]);
                cuts[i] = list;
            }
            _ => cuts[i] = vec![vec![i]],
        }
    }
    cuts
}

/// Random DAG from a recipe of (op, operand, operand) triples.
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    let o = *pool.last().unwrap();
    g.output("o", o);
    g
}

// ----------------------------------------------------------------- tt refs

/// Explicit bit-model of a truth table.
fn ref_bits(t: &TruthTable) -> Vec<bool> {
    (0..1usize << t.num_vars()).map(|p| t.bit(p)).collect()
}

fn table_from_bits(vars: usize, bits: &[bool]) -> TruthTable {
    let mut t = TruthTable::zeros(vars);
    for (p, &b) in bits.iter().enumerate() {
        t.set_bit(p, b);
    }
    t
}

/// Build a `vars`-variable table from a stream of seed words.
fn table_from_words(vars: usize, words: &[u64]) -> TruthTable {
    let mut t = TruthTable::zeros(vars);
    for p in 0..1usize << vars {
        let w = words[(p / 64) % words.len()];
        t.set_bit(p, w >> (p % 64) & 1 == 1);
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The inline signature-filtered enumeration produces exactly the same
    /// per-node cut lists as the naive reference, for every node, in order.
    #[test]
    fn cut_enumeration_matches_reference(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 4..40),
        inputs in 2usize..6,
        k in 2usize..6,
        max_cuts in 2usize..10,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let fast = enumerate_cuts(&g, k, max_cuts);
        let slow = ref_enumerate(&g, k, max_cuts);
        prop_assert_eq!(fast.num_nodes(), slow.len());
        for (node, (f, s)) in fast.iter().zip(&slow).enumerate() {
            prop_assert_eq!(f.len(), s.len(), "cut count differs at node {}", node);
            for (fc, sc) in f.iter().zip(s) {
                let fl: Vec<usize> = fc.leaves().iter().map(|l| l.index()).collect();
                prop_assert_eq!(&fl, sc, "cut leaves differ at node {}", node);
            }
        }
    }

    /// Pairwise merge/dominance agree with the reference on arbitrary leaf
    /// sets (ids spread past 64 so signatures collide).
    #[test]
    fn merge_and_dominance_match_reference(
        a in prop::collection::vec(0usize..200, 1..7),
        b in prop::collection::vec(0usize..200, 1..7),
        k in 2usize..9,
    ) {
        let mut a = a; a.sort_unstable(); a.dedup();
        let mut b = b; b.sort_unstable(); b.dedup();
        let ca = Cut::from_leaves(&a.iter().map(|&i| NodeId::from_index(i)).collect::<Vec<_>>());
        let cb = Cut::from_leaves(&b.iter().map(|&i| NodeId::from_index(i)).collect::<Vec<_>>());
        prop_assert_eq!(ca.dominates(&cb), ref_dominates(&a, &b));
        prop_assert_eq!(cb.dominates(&ca), ref_dominates(&b, &a));
        match (ca.merge(&cb, k), ref_merge(&a, &b, k)) {
            (Some(m), Some(r)) => {
                let ml: Vec<usize> = m.leaves().iter().map(|l| l.index()).collect();
                prop_assert_eq!(ml, r);
            }
            (None, None) => {}
            (fast, slow) => prop_assert!(
                false,
                "merge disagreement: fast={:?} slow={:?}",
                fast.is_some(),
                slow.is_some()
            ),
        }
    }

    /// All truth-table operators agree with the explicit bit model across
    /// the inline ↔ heap boundary (5..=8 variables).
    #[test]
    fn tt_ops_match_bit_model_across_boundary(
        words in prop::collection::vec(any::<u64>(), 4),
        other_words in prop::collection::vec(any::<u64>(), 4),
        vars in 5usize..9,
    ) {
        let t = table_from_words(vars, &words);
        let u = table_from_words(vars, &other_words);
        prop_assert_eq!(t.is_inline(), vars <= 6, "repr invariant");
        let bits_t = ref_bits(&t);
        let bits_u = ref_bits(&u);
        let n = 1usize << vars;

        let not = t.not();
        let and = t.and(&u);
        let or = t.or(&u);
        let xor = t.xor(&u);
        for p in 0..n {
            prop_assert_eq!(not.bit(p), !bits_t[p]);
            prop_assert_eq!(and.bit(p), bits_t[p] && bits_u[p]);
            prop_assert_eq!(or.bit(p), bits_t[p] || bits_u[p]);
            prop_assert_eq!(xor.bit(p), bits_t[p] ^ bits_u[p]);
        }
        prop_assert_eq!(t.count_ones(), bits_t.iter().filter(|&&b| b).count());
        prop_assert!(!t.is_zero() || bits_t.iter().all(|&b| !b));

        for var in 0..vars {
            let c0 = t.cofactor0(var);
            let c1 = t.cofactor1(var);
            let mut dep = false;
            for p in 0..n {
                let p0 = p & !(1 << var);
                let p1 = p | 1 << var;
                prop_assert_eq!(c0.bit(p), bits_t[p0], "cofactor0 var {} bit {}", var, p);
                prop_assert_eq!(c1.bit(p), bits_t[p1], "cofactor1 var {} bit {}", var, p);
                dep |= bits_t[p0] != bits_t[p1];
            }
            prop_assert_eq!(t.depends_on(var), dep);
            // In-place variants agree with the cloning ones.
            let mut ip = t.clone();
            ip.cofactor0_in_place(var);
            prop_assert_eq!(&ip, &c0);
            let mut ip = t.clone();
            ip.cofactor1_in_place(var);
            prop_assert_eq!(&ip, &c1);
        }
        prop_assert!(t.is_complement_of(&t.not()));
        prop_assert_eq!(t.is_subset_of(&u), bits_t.iter().zip(&bits_u).all(|(&x, &y)| !x || y));
    }

    /// Round-trip through the bit model at the boundary is lossless.
    #[test]
    fn tt_bit_roundtrip(words in prop::collection::vec(any::<u64>(), 2), vars in 5usize..9) {
        let t = table_from_words(vars, &words);
        let back = table_from_bits(vars, &ref_bits(&t));
        prop_assert_eq!(t, back);
    }

    /// NPN canonicalization stays invariant under arbitrary NPN transforms
    /// (exercises permute/flip over the packed 4-variable tables).
    #[test]
    fn npn_canon_invariant(bits in any::<u16>(), perm in 0u8..24, flips in 0u8..16, out_neg: bool) {
        let tf = xsfq_aig::tt::NpnTransform { perm_idx: perm, flips, out_neg };
        let transformed = apply_npn4(bits, tf);
        let (c1, _) = npn_canon4(bits);
        let (c2, _) = npn_canon4(transformed);
        prop_assert_eq!(c1, c2);
        let (canon, tf2) = npn_canon4(bits);
        prop_assert_eq!(apply_npn4(bits, tf2), canon);
    }
}
