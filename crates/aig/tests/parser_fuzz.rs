//! Parser totality: `read_blif` and `read_aiger` must be *total* — any byte
//! sequence either parses or returns a line-numbered error. They must never
//! panic, never abort on an oversized allocation, and never loop. Raw byte
//! soup exercises the lexing layer; token soup (random words from each
//! format's vocabulary) reaches much deeper into the grammar, where the
//! integer-parse and index-range bugs live.

use proptest::prelude::*;

use xsfq_aig::aiger::read_aiger;
use xsfq_aig::io::read_blif;

/// Render a token-soup case: words drawn from `vocab` by index, with
/// selector-driven separators (space or newline).
fn soup(vocab: &[&str], picks: &[(u8, bool)]) -> String {
    let mut out = String::new();
    for &(pick, newline) in picks {
        out.push_str(vocab[pick as usize % vocab.len()]);
        out.push(if newline { '\n' } else { ' ' });
    }
    out
}

const BLIF_VOCAB: &[&str] = &[
    ".model",
    ".inputs",
    ".outputs",
    ".names",
    ".latch",
    ".end",
    ".exdc",
    "a",
    "b",
    "n1",
    "0",
    "1",
    "-",
    "01",
    "10",
    "--",
    "2",
    "\\",
    "soup",
    "4294967296",
];

const AIGER_VOCAB: &[&str] = &[
    "aag",
    "aig",
    "0",
    "1",
    "2",
    "3",
    "4",
    "5",
    "6",
    "7",
    "8",
    "13",
    "64",
    "i0",
    "l0",
    "o0",
    "c",
    "name",
    "18446744073709551615",
    "-1",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn blif_reader_is_total_on_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Err(e) = read_blif(data.as_slice()) {
            prop_assert!(e.line() >= 1, "error lost its line number: {e}");
        }
    }

    #[test]
    fn aiger_reader_is_total_on_bytes(data in prop::collection::vec(any::<u8>(), 0..256)) {
        if let Err(e) = read_aiger(data.as_slice()) {
            prop_assert!(e.line() >= 1, "error lost its line number: {e}");
        }
    }

    #[test]
    fn blif_reader_is_total_on_token_soup(
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 0..64),
    ) {
        let text = soup(BLIF_VOCAB, &picks);
        if let Err(e) = read_blif(text.as_bytes()) {
            prop_assert!(e.line() >= 1, "error lost its line number: {e}");
        }
    }

    #[test]
    fn aiger_reader_is_total_on_token_soup(
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 0..64),
    ) {
        let text = soup(AIGER_VOCAB, &picks);
        if let Err(e) = read_aiger(text.as_bytes()) {
            prop_assert!(e.line() >= 1, "error lost its line number: {e}");
        }
    }

    /// Headed aiger soup: a plausible header (small counts) followed by
    /// random body tokens — reaches the definition and symbol sections that
    /// pure soup almost never enters.
    #[test]
    fn aiger_reader_is_total_past_the_header(
        binary: bool,
        m in 0u64..12,
        i in 0u64..6,
        l in 0u64..4,
        o in 0u64..4,
        a in 0u64..6,
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 0..48),
    ) {
        let fmt = if binary { "aig" } else { "aag" };
        let text = format!("{fmt} {m} {i} {l} {o} {a}\n{}", soup(AIGER_VOCAB, &picks));
        if let Err(e) = read_aiger(text.as_bytes()) {
            prop_assert!(e.line() >= 1, "error lost its line number: {e}");
        }
    }

    /// Headed blif soup, same idea: a valid model line then random body.
    #[test]
    fn blif_reader_is_total_past_the_model_line(
        picks in prop::collection::vec((any::<u8>(), any::<bool>()), 0..48),
    ) {
        let text = format!(".model soup\n{}", soup(BLIF_VOCAB, &picks));
        if let Err(e) = read_blif(text.as_bytes()) {
            prop_assert!(e.line() >= 1, "error lost its line number: {e}");
        }
    }
}
