//! Shared helpers for the determinism gates (`parallel_identity`,
//! `script_golden`): a random-DAG generator and the bit-identity check.
#![allow(dead_code)] // each test binary uses its own subset

use proptest::prelude::*;
use xsfq_aig::{Aig, Lit};

/// Random DAG from a recipe of (op, operand, operand) triples.
pub fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    // Several outputs so optimization sees shared logic, not one cone.
    let n = pool.len();
    g.output("o0", pool[n - 1]);
    g.output("o1", pool[n / 2]);
    g.output("o2", !pool[2 * n / 3]);
    g
}

/// Node-table + interface equality: node ids and fanin literals fix the
/// strash state, so this is bit-identity of the whole graph.
pub fn assert_identical(a: &Aig, b: &Aig) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.nodes(), b.nodes(), "node tables differ");
    prop_assert_eq!(a.inputs(), b.inputs());
    prop_assert_eq!(a.outputs(), b.outputs());
    prop_assert_eq!(a.latches(), b.latches());
    prop_assert_eq!(a.name(), b.name());
    Ok(())
}
