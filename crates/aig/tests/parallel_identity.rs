//! CI gate for the work-stealing executor: `optimize` must be
//! **bit-identical** across thread counts — same node table (ids, kinds and
//! fanin literals, which fixes the structural-hash state), same interface.
//!
//! This is the contract that makes the parallel evaluate phases safe: they
//! are pure functions of the input graph, and all replacements are
//! committed single-threaded in node-index order. Run in CI as a named
//! step, like `sweep_agreement`.

use proptest::prelude::*;

use xsfq_aig::opt::{self, Effort};
use xsfq_aig::pass::{PassCtx, PassRegistry, Script};
use xsfq_aig::Aig;
use xsfq_exec::ThreadPool;

mod common;
use common::{assert_identical, circuit_from_recipe};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `optimize(aig, effort)` with 1 thread vs. N threads: bit-identical
    /// output AIGs (same node order, same strash state).
    #[test]
    fn parallel_optimize_is_bit_identical(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..120),
        inputs in 2usize..8,
        effort_sel in 0u8..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let effort = match effort_sel {
            0 => Effort::Fast,
            1 => Effort::Standard,
            _ => Effort::High,
        };
        let sequential = ThreadPool::new(1);
        let parallel = ThreadPool::new(4);
        let a = opt::optimize_with(&g, effort, &sequential);
        let b = opt::optimize_with(&g, effort, &parallel);
        assert_identical(&a, &b)?;
        // And against the default-pool entry point the flow uses.
        let c = opt::optimize(&g, effort);
        assert_identical(&a, &c)?;
    }

    /// `balance` follows the same evaluate/commit mold: bit-identical
    /// output for every thread count.
    #[test]
    fn parallel_balance_is_bit_identical(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..120),
        inputs in 2usize..8,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let sequential = ThreadPool::new(1);
        let a = opt::balance_with(&g, &sequential);
        for threads in [2usize, 5] {
            let pool = ThreadPool::new(threads);
            let b = opt::balance_with(&g, &pool);
            assert_identical(&a, &b)?;
        }
        // The global-pool entry point agrees.
        assert_identical(&a, &opt::balance(&g))?;
    }

    /// Arbitrary scripted pass sequences (not just the presets) stay
    /// bit-identical across pool sizes — the pass manager inherits the
    /// evaluate/commit determinism of every pass it schedules.
    #[test]
    fn scripted_passes_are_bit_identical_across_pools(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..80),
        inputs in 2usize..8,
        picks in prop::collection::vec(0usize..6, 1..6),
    ) {
        const TOKENS: [&str; 6] = ["b", "rw", "rwz", "rf", "rf -K 5", "c"];
        let g = circuit_from_recipe(&recipe, inputs);
        let text = picks.iter().map(|&i| TOKENS[i]).collect::<Vec<_>>().join("; ");
        let compiled = Script::parse(&text)
            .unwrap()
            .compile(&PassRegistry::structural())
            .unwrap();
        let sequential = ThreadPool::new(1);
        let parallel = ThreadPool::new(4);
        let a = compiled.run(&g, &mut PassCtx::new(&sequential));
        let b = compiled.run(&g, &mut PassCtx::new(&parallel));
        assert_identical(&a, &b)?;
    }
}

/// Deterministic (non-proptest) smoke over a structured circuit big enough
/// to exercise multiple evaluate batches and steal traffic.
#[test]
fn parallel_optimize_identical_on_multiplier() {
    let mut g = Aig::new("mul8");
    let a = g.input_word("a", 8);
    let b = g.input_word("b", 8);
    let p = xsfq_aig::build::array_multiplier(&mut g, &a, &b);
    g.output_word("p", &p);
    let sequential = ThreadPool::new(1);
    let a1 = opt::optimize_with(&g, Effort::Standard, &sequential);
    for threads in [2, 4, 7] {
        let pool = ThreadPool::new(threads);
        let an = opt::optimize_with(&g, Effort::Standard, &pool);
        assert_eq!(a1.nodes(), an.nodes(), "threads = {threads}");
        assert_eq!(a1.outputs(), an.outputs(), "threads = {threads}");
    }
}
