//! CI gate for the work-stealing executor: `optimize` must be
//! **bit-identical** across thread counts — same node table (ids, kinds and
//! fanin literals, which fixes the structural-hash state), same interface.
//!
//! This is the contract that makes the parallel evaluate phases safe: they
//! are pure functions of the input graph, and all replacements are
//! committed single-threaded in node-index order. Run in CI as a named
//! step, like `sweep_agreement`.

use proptest::prelude::*;

use xsfq_aig::opt::{self, Effort};
use xsfq_aig::{Aig, Lit};
use xsfq_exec::ThreadPool;

/// Random DAG from a recipe of (op, operand, operand) triples.
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    // Several outputs so optimization sees shared logic, not one cone.
    let n = pool.len();
    g.output("o0", pool[n - 1]);
    g.output("o1", pool[n / 2]);
    g.output("o2", !pool[2 * n / 3]);
    g
}

/// Node-table + interface equality: node ids and fanin literals fix the
/// strash state, so this is bit-identity of the whole graph.
fn assert_identical(a: &Aig, b: &Aig) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.nodes(), b.nodes(), "node tables differ");
    prop_assert_eq!(a.inputs(), b.inputs());
    prop_assert_eq!(a.outputs(), b.outputs());
    prop_assert_eq!(a.latches(), b.latches());
    prop_assert_eq!(a.name(), b.name());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `optimize(aig, effort)` with 1 thread vs. N threads: bit-identical
    /// output AIGs (same node order, same strash state).
    #[test]
    fn parallel_optimize_is_bit_identical(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..120),
        inputs in 2usize..8,
        effort_sel in 0u8..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let effort = match effort_sel {
            0 => Effort::Fast,
            1 => Effort::Standard,
            _ => Effort::High,
        };
        let sequential = ThreadPool::new(1);
        let parallel = ThreadPool::new(4);
        let a = opt::optimize_with(&g, effort, &sequential);
        let b = opt::optimize_with(&g, effort, &parallel);
        assert_identical(&a, &b)?;
        // And against the default-pool entry point the flow uses.
        let c = opt::optimize(&g, effort);
        assert_identical(&a, &c)?;
    }
}

/// Deterministic (non-proptest) smoke over a structured circuit big enough
/// to exercise multiple evaluate batches and steal traffic.
#[test]
fn parallel_optimize_identical_on_multiplier() {
    let mut g = Aig::new("mul8");
    let a = g.input_word("a", 8);
    let b = g.input_word("b", 8);
    let p = xsfq_aig::build::array_multiplier(&mut g, &a, &b);
    g.output_word("p", &p);
    let sequential = ThreadPool::new(1);
    let a1 = opt::optimize_with(&g, Effort::Standard, &sequential);
    for threads in [2, 4, 7] {
        let pool = ThreadPool::new(threads);
        let an = opt::optimize_with(&g, Effort::Standard, &pool);
        assert_eq!(a1.nodes(), an.nodes(), "threads = {threads}");
        assert_eq!(a1.outputs(), an.outputs(), "threads = {threads}");
    }
}
