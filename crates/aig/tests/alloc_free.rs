//! Verifies the hot-path allocation guarantees with a counting global
//! allocator: `Cut::merge` + dominance filtering never allocate, and
//! ≤6-variable `TruthTable` operators never allocate.
//!
//! Single `#[test]` on purpose: the counter is process-global, so a second
//! concurrently running test would perturb it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the `System` allocator plus a relaxed
// counter bump — every GlobalAlloc contract obligation is discharged by
// `System` itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // Ordering: Relaxed — a pure event counter; the test reads it on
        // the same thread that allocates, so no edge is needed.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come straight from our caller, which got
        // `ptr` from `System.alloc` via the pass-through above.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Ordering: Relaxed — same single-thread counter as in alloc.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: as in `dealloc` — arguments are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count<R>(f: impl FnOnce() -> R) -> (usize, R) {
    // Ordering: Relaxed — reads its own thread's bumps; the test harness
    // may allocate on other threads concurrently, which is exactly why
    // counts are compared as before/after deltas on this thread's work.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

#[test]
fn hot_paths_do_not_allocate() {
    use xsfq_aig::cuts::Cut;
    use xsfq_aig::tt::TruthTable;
    use xsfq_aig::NodeId;

    // --- Cut merge + dominance, k ≤ 6 ---
    let ids: Vec<NodeId> = (1..=9).map(NodeId::from_index).collect();
    let a = Cut::from_leaves(&ids[0..3]);
    let b = Cut::from_leaves(&ids[2..6]);
    let c = Cut::from_leaves(&ids[4..9]);
    let (n, merged) = alloc_count(|| {
        let mut acc = 0usize;
        for _ in 0..100 {
            let m = a.merge(&b, 6);
            acc += m.map_or(0, |m| m.len());
            acc += a.dominates(&b) as usize;
            acc += b.dominates(&c) as usize;
            if let Some(m) = b.merge(&c, 6) {
                acc += m.dominates(&c) as usize;
            }
        }
        acc
    });
    assert!(merged > 0, "merges must actually run");
    assert_eq!(n, 0, "Cut::merge/dominates allocated {n} times");

    // --- TruthTable operators over ≤6 variables ---
    let t = TruthTable::from_word(6, 0x0123_4567_89AB_CDEF);
    let u = TruthTable::from_word(6, 0xFEDC_BA98_7654_3210);
    assert!(t.is_inline() && u.is_inline());
    let (n, checksum) = alloc_count(|| {
        let mut acc = 0usize;
        for var in 0..6 {
            let v = TruthTable::variable(6, var);
            let mut x = t.and(&u).or(&v).xor(&t.not());
            x.invert();
            x.and_with(&u);
            x.cofactor0_in_place(var);
            acc += x.count_ones();
            acc += t.cofactor1(var).count_ones();
            acc += t.depends_on(var) as usize;
            acc += t.is_subset_of(&u) as usize;
            acc += t.is_complement_of(&u) as usize;
            acc += x.is_zero() as usize + x.is_ones() as usize;
        }
        acc
    });
    assert!(checksum > 0, "table ops must actually run");
    assert_eq!(n, 0, "small-table TruthTable ops allocated {n} times");
}
