//! Golden gate for the pass-manager redesign: the `fast`/`standard`/`high`
//! preset scripts must produce **bit-identical** AIGs to the legacy
//! hard-coded `Effort` loop, for every thread count.
//!
//! The legacy loop is copied verbatim below (against the public pass
//! functions) so the pin survives refactors of `optimize_with` itself. Run
//! in CI as a named step under both `XSFQ_THREADS=1` and the default pool,
//! like `parallel_identity`.

use proptest::prelude::*;

use xsfq_aig::opt::{self, Effort};
use xsfq_aig::pass::{PassCtx, PassRegistry, Script};
use xsfq_aig::{build, Aig, Lit};
use xsfq_exec::ThreadPool;

mod common;
use common::circuit_from_recipe;

/// The pre-redesign `optimize_with` body, verbatim (modulo going through
/// the public per-pass entry points, which are pool-independent by the
/// `parallel_identity` gate).
fn legacy_optimize(aig: &Aig, effort: Effort) -> Aig {
    let (rounds, refactor_k) = match effort {
        Effort::Fast => (1, 8),
        Effort::Standard => (3, 8),
        Effort::High => (6, 10),
    };
    let mut best = aig.compact();
    for _ in 0..rounds {
        let before = best.num_ands();
        let mut cur = opt::balance(&best);
        cur = opt::rewrite(&cur);
        cur = opt::refactor_with_cut_size(&cur, refactor_k);
        cur = opt::balance(&cur);
        cur = opt::rewrite_zero(&cur);
        cur = opt::rewrite(&cur);
        if cur.num_ands() < best.num_ands()
            || (cur.num_ands() == best.num_ands() && cur.depth() < best.depth())
        {
            best = cur;
        }
        if best.num_ands() >= before {
            break;
        }
    }
    best
}

fn run_preset(aig: &Aig, effort: Effort, pool: &ThreadPool) -> Aig {
    Script::preset(effort)
        .compile(&PassRegistry::structural())
        .expect("presets compile")
        .run(aig, &mut PassCtx::new(pool))
}

fn assert_identical(a: &Aig, b: &Aig, label: &str) {
    common::assert_identical(a, b).unwrap_or_else(|e| panic!("{label}: {e}"));
}

#[test]
fn presets_match_legacy_effort_on_structured_circuits() {
    let mut mul = Aig::new("mul7");
    let a = mul.input_word("a", 7);
    let b = mul.input_word("b", 7);
    let p = build::array_multiplier(&mut mul, &a, &b);
    mul.output_word("p", &p);

    let mut alu = Aig::new("alu");
    let a = alu.input_word("a", 5);
    let b = alu.input_word("b", 5);
    let sel = alu.input("sel");
    let (sum, carry) = build::ripple_add(&mut alu, &a, &b, Lit::FALSE);
    let xors: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| alu.xor(x, y)).collect();
    let out = build::mux_word(&mut alu, sel, &sum, &xors);
    alu.output_word("o", &out);
    alu.output("c", carry);

    let single = ThreadPool::new(1);
    let quad = ThreadPool::new(4);
    for g in [&mul, &alu] {
        for effort in [Effort::Fast, Effort::Standard, Effort::High] {
            let golden = legacy_optimize(g, effort);
            let label = format!("{} {effort:?}", g.name());
            assert_identical(&golden, &run_preset(g, effort, &single), &label);
            assert_identical(&golden, &run_preset(g, effort, &quad), &label);
            // The facade entry point (global pool, whatever XSFQ_THREADS
            // says) must agree too.
            assert_identical(&golden, &opt::optimize(g, effort), &label);
        }
    }
}

#[test]
fn preset_scripts_parse_to_the_documented_text() {
    assert_eq!(
        Script::preset(Effort::Fast).to_string(),
        "c; repeat 1 { b; rw; rf; b; rwz; rw }"
    );
    assert_eq!(
        Script::preset(Effort::Standard).to_string(),
        "c; repeat 3 { b; rw; rf; b; rwz; rw }"
    );
    assert_eq!(
        Script::preset(Effort::High).to_string(),
        "c; repeat 6 { b; rw; rf -K 10; b; rwz; rw }"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Preset scripts == legacy Effort loop, node-for-node, on random DAGs
    /// and for sequential and parallel pools.
    #[test]
    fn presets_match_legacy_effort_on_random_circuits(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..100),
        inputs in 2usize..8,
        effort_sel in 0u8..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let effort = match effort_sel {
            0 => Effort::Fast,
            1 => Effort::Standard,
            _ => Effort::High,
        };
        let golden = legacy_optimize(&g, effort);
        for pool in [ThreadPool::new(1), ThreadPool::new(4)] {
            let scripted = run_preset(&g, effort, &pool);
            prop_assert_eq!(golden.nodes(), scripted.nodes(), "node tables differ");
            prop_assert_eq!(golden.outputs(), scripted.outputs());
            prop_assert_eq!(golden.inputs(), scripted.inputs());
        }
    }
}
