//! # xsfq-netlist — technology-level superconducting netlists
//!
//! Cell/net graphs over the `xsfq-cells` libraries, with the physical
//! concerns the paper's evaluation hinges on: splitter-tree insertion
//! (fanout materialization, Equation 1 of §3.1.2), Josephson-junction
//! accounting, logical depth and critical-delay reports, clock-tree sizing,
//! and Verilog/DOT export.
//!
//! ```
//! use xsfq_cells::{CellKind, CellLibrary};
//! use xsfq_netlist::Netlist;
//!
//! let mut n = Netlist::new("pair", CellLibrary::xsfq_abutted());
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! // A dual-rail AND: LA on the positive rails, FA on the negative ones.
//! let p = n.add_cell(CellKind::La, &[a, b])[0];
//! let q = n.add_cell(CellKind::Fa, &[a, b])[0];
//! n.add_output("and_p", p);
//! n.add_output("and_n", q);
//!
//! let physical = n.insert_splitters();
//! let stats = physical.stats();
//! assert_eq!(stats.la_fa, 2);
//! assert_eq!(stats.splitters, 2); // a and b each feed two cells
//! assert_eq!(stats.jj_total, 2 * 4 + 2 * 3);
//! ```

#![warn(missing_docs)]

mod netlist;
mod stats;

pub mod writers;

pub use netlist::{input_pins, output_pins, Cell, CellId, Driver, NetId, Netlist, PinVec, Port};
pub use stats::NetlistStats;
