//! Netlist reports: cell breakdown, JJ accounting, logical depth, critical
//! delay and clock-tree overhead — everything the paper's evaluation tables
//! are made of.

use std::collections::HashMap;
use std::fmt;

use xsfq_cells::CellKind;

use crate::netlist::{Driver, Netlist};

/// Summary report of a netlist.
#[derive(Clone, Debug, Default)]
pub struct NetlistStats {
    /// Instance count per cell kind.
    pub counts: Vec<(CellKind, usize)>,
    /// Number of LA + FA cells (the paper's "#LA/FA" column).
    pub la_fa: usize,
    /// Number of splitters (both families).
    pub splitters: usize,
    /// Number of DROC cells without preloading hardware.
    pub drocs_plain: usize,
    /// Number of DROC cells with preloading hardware.
    pub drocs_preload: usize,
    /// Total Josephson junction count of the instantiated cells.
    pub jj_total: u64,
    /// JJs in logic cells (LA/FA or clocked RSFQ gates).
    pub jj_logic: u64,
    /// JJs in splitters.
    pub jj_splitters: u64,
    /// JJs in storage cells (DROC / DFF), including preload hardware.
    pub jj_storage: u64,
    /// Number of clocked cells (drives clock-tree size).
    pub clocked_cells: usize,
    /// Logic depth counting LA/FA/RSFQ gates only.
    pub depth_logic: usize,
    /// Logic depth counting splitters as well (paper Table 5 "with
    /// splitters" variant).
    pub depth_with_splitters: usize,
    /// Critical combinational path delay (ps), storage-to-storage.
    pub critical_delay_ps: f64,
}

impl NetlistStats {
    /// JJ cost of the clock splitter tree: a binary tree reaching all
    /// clocked cells needs `n − 1` splitters. Clock-free designs cost 0.
    pub fn clock_tree_jj(&self, splitter_jj: u64) -> u64 {
        (self.clocked_cells as u64).saturating_sub(1) * splitter_jj
    }

    /// Total including the clock tree.
    pub fn jj_with_clock_tree(&self, splitter_jj: u64) -> u64 {
        self.jj_total + self.clock_tree_jj(splitter_jj)
    }

    /// Circuit clock frequency estimate in GHz (1 / critical delay). The
    /// architectural frequency of an xSFQ design is half of this, because a
    /// logical cycle spans an excite and a relax phase (§4.2.2).
    pub fn circuit_clock_ghz(&self) -> f64 {
        if self.critical_delay_ps <= 0.0 {
            f64::INFINITY
        } else {
            1000.0 / self.critical_delay_ps
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "JJ total {}  (logic {}, splitters {}, storage {})",
            self.jj_total, self.jj_logic, self.jj_splitters, self.jj_storage
        )?;
        writeln!(
            f,
            "LA/FA {}  splitters {}  DROC {}/{}  clocked {}",
            self.la_fa, self.splitters, self.drocs_plain, self.drocs_preload, self.clocked_cells
        )?;
        write!(
            f,
            "depth {} ({} with splitters)  critical {:.1} ps",
            self.depth_logic, self.depth_with_splitters, self.critical_delay_ps
        )
    }
}

impl Netlist {
    /// Compute the summary report. Works on both logical (multi-fanout) and
    /// physical (splitter-inserted) netlists; depth/delay are exact on the
    /// physical form.
    ///
    /// The report is cached on the netlist behind a dirty flag: repeated
    /// calls without an intervening mutation return a clone of the cached
    /// value instead of re-running the path analysis (report-heavy flows
    /// query the same netlist many times).
    pub fn stats(&self) -> NetlistStats {
        if let Some(cached) = self.cached_stats() {
            return cached;
        }
        let stats = self.compute_stats();
        self.store_stats(stats.clone());
        stats
    }

    /// Compute the report unconditionally, neither reading nor filling the
    /// cache. The honest cost yardstick for benchmarks that calibrate other
    /// linear netlist traversals (the `lint` group's DRC rows) against the
    /// stats pass — [`Netlist::stats`] would measure a cached clone.
    pub fn stats_uncached(&self) -> NetlistStats {
        self.compute_stats()
    }

    fn compute_stats(&self) -> NetlistStats {
        let mut counts: HashMap<CellKind, usize> = HashMap::new();
        let mut s = NetlistStats::default();
        let lib = self.library();
        for cell in self.cells() {
            *counts.entry(cell.kind).or_default() += 1;
            let jj = lib.jj(cell.kind) as u64;
            s.jj_total += jj;
            match cell.kind {
                CellKind::La | CellKind::Fa => {
                    s.la_fa += 1;
                    s.jj_logic += jj;
                }
                CellKind::RsfqAnd | CellKind::RsfqOr | CellKind::RsfqXor | CellKind::RsfqNot => {
                    s.jj_logic += jj;
                }
                CellKind::Splitter | CellKind::RsfqSplitter => {
                    s.splitters += 1;
                    s.jj_splitters += jj;
                }
                CellKind::Droc { preload } => {
                    if preload {
                        s.drocs_preload += 1;
                    } else {
                        s.drocs_plain += 1;
                    }
                    s.jj_storage += jj;
                }
                CellKind::RsfqDff => {
                    s.jj_storage += jj;
                }
                _ => {}
            }
            if cell.kind.is_clocked() {
                s.clocked_cells += 1;
            }
        }
        let mut counts: Vec<(CellKind, usize)> = counts.into_iter().collect();
        counts.sort_by_key(|(k, _)| k.name());
        s.counts = counts;

        let (depth_logic, depth_split, delay) = self.path_analysis();
        s.depth_logic = depth_logic;
        s.depth_with_splitters = depth_split;
        s.critical_delay_ps = delay;
        s
    }

    /// Longest-path analysis from sources (primary inputs + storage cell
    /// outputs) to sinks (primary outputs + storage cell data inputs).
    /// Returns (logic depth, depth incl. splitters, delay in ps).
    fn path_analysis(&self) -> (usize, usize, f64) {
        let lib = self.library();
        let num_nets = self.num_nets();
        let mut depth_logic = vec![0usize; num_nets];
        let mut depth_split = vec![0usize; num_nets];
        let mut delay = vec![0f64; num_nets];
        // Kahn-style traversal over combinational cells only.
        let mut pending: Vec<usize> = self
            .cells()
            .iter()
            .map(|c| {
                if c.kind.is_clocked() {
                    0
                } else {
                    c.inputs.len()
                }
            })
            .collect();
        // Net is "known" when its driver is an input, a clocked cell, or a
        // resolved combinational cell.
        let mut known = vec![false; num_nets];
        let mut queue: Vec<usize> = Vec::new();
        for (ni, d) in (0..num_nets).map(|i| (i, self.driver(crate::NetId(i as u32)))) {
            match d {
                Driver::Input(_) => known[ni] = true,
                Driver::Cell { cell, .. } => {
                    if self.cell(cell).kind.is_clocked() {
                        known[ni] = true;
                    }
                }
            }
        }
        // Dependents: cell indices listening on each net.
        let mut listeners: Vec<Vec<usize>> = vec![Vec::new(); num_nets];
        for (ci, cell) in self.cells().iter().enumerate() {
            if cell.kind.is_clocked() {
                continue;
            }
            for &n in &cell.inputs {
                listeners[n.index()].push(ci);
            }
            if cell.inputs.is_empty() {
                queue.push(ci);
            }
        }
        let initial: Vec<usize> = known
            .iter()
            .take(num_nets)
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(ni, _)| ni)
            .collect();
        let mut net_queue = initial;
        let mut max_sink = (0usize, 0usize, 0f64);
        while let Some(ni) = net_queue.pop() {
            for &ci in &listeners[ni] {
                pending[ci] -= 1;
                if pending[ci] == 0 {
                    queue.push(ci);
                }
            }
            while let Some(ci) = queue.pop() {
                let cell = &self.cells()[ci];
                let in_dl = cell
                    .inputs
                    .iter()
                    .map(|n| depth_logic[n.index()])
                    .max()
                    .unwrap_or(0);
                let in_ds = cell
                    .inputs
                    .iter()
                    .map(|n| depth_split[n.index()])
                    .max()
                    .unwrap_or(0);
                let in_dt = cell
                    .inputs
                    .iter()
                    .map(|n| delay[n.index()])
                    .fold(0.0f64, f64::max);
                let is_logic = matches!(
                    cell.kind,
                    CellKind::La
                        | CellKind::Fa
                        | CellKind::RsfqAnd
                        | CellKind::RsfqOr
                        | CellKind::RsfqXor
                        | CellKind::RsfqNot
                );
                let is_split = matches!(cell.kind, CellKind::Splitter | CellKind::RsfqSplitter);
                let dl = in_dl + is_logic as usize;
                let ds = in_ds + (is_logic || is_split) as usize;
                let dt = in_dt + lib.delay(cell.kind);
                for &o in &cell.outputs {
                    depth_logic[o.index()] = dl;
                    depth_split[o.index()] = ds;
                    delay[o.index()] = dt;
                    known[o.index()] = true;
                    net_queue.push(o.index());
                }
            }
        }
        // Sinks: primary outputs and clocked-cell data inputs.
        for port in self.outputs() {
            let i = port.net.index();
            max_sink.0 = max_sink.0.max(depth_logic[i]);
            max_sink.1 = max_sink.1.max(depth_split[i]);
            max_sink.2 = max_sink.2.max(delay[i]);
        }
        for cell in self.cells() {
            if !cell.kind.is_clocked() {
                continue;
            }
            for &n in &cell.inputs {
                let i = n.index();
                max_sink.0 = max_sink.0.max(depth_logic[i]);
                max_sink.1 = max_sink.1.max(depth_split[i]);
                max_sink.2 = max_sink.2.max(delay[i]);
            }
        }
        max_sink
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Netlist;
    use xsfq_cells::CellLibrary;

    #[test]
    fn jj_breakdown() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_cell(CellKind::La, &[a, b])[0];
        let y = n.add_cell(CellKind::Fa, &[a, b])[0];
        let s = n.add_cell(CellKind::Splitter, &[x]);
        n.add_output("s0", s[0]);
        n.add_output("s1", s[1]);
        n.add_output("y", y);
        let st = n.stats();
        assert_eq!(st.la_fa, 2);
        assert_eq!(st.splitters, 1);
        assert_eq!(st.jj_total, 4 + 4 + 3);
        assert_eq!(st.jj_logic, 8);
        assert_eq!(st.jj_splitters, 3);
        assert_eq!(st.clocked_cells, 0);
        assert_eq!(st.clock_tree_jj(3), 0, "clock-free designs need no tree");
    }

    #[test]
    fn depth_counts_gates_not_splitters() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_cell(CellKind::La, &[a, b])[0];
        let sp = n.add_cell(CellKind::Splitter, &[x]);
        let y = n.add_cell(CellKind::Fa, &[sp[0], sp[1]])[0];
        n.add_output("y", y);
        let st = n.stats();
        assert_eq!(st.depth_logic, 2);
        assert_eq!(st.depth_with_splitters, 3);
        // Delay = LA + splitter + FA.
        let expect = 7.2 + 5.1 + 9.5;
        assert!((st.critical_delay_ps - expect).abs() < 1e-9);
    }

    #[test]
    fn storage_breaks_paths() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_cell(CellKind::La, &[a, b])[0];
        let q = n.add_cell(CellKind::Droc { preload: false }, &[x]);
        let y = n.add_cell(CellKind::Fa, &[q[0], q[1]])[0];
        n.add_output("y", y);
        let st = n.stats();
        // Two stages of depth 1 each; critical path is max stage.
        assert_eq!(st.depth_logic, 1);
        assert_eq!(st.clocked_cells, 1);
        assert_eq!(st.jj_storage, 13);
    }

    #[test]
    fn feedback_through_storage_is_handled() {
        // q -> FA -> q (a 1-bit feedback loop).
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let (droc, qs) = n.add_cell_deferred(CellKind::Droc { preload: true });
        let f = n.add_cell(CellKind::Fa, &[a, qs[0]])[0];
        n.connect_input(droc, 0, f);
        n.assert_connected();
        n.add_output("q", qs[0]);
        let st = n.stats();
        assert_eq!(st.depth_logic, 1);
        assert_eq!(st.drocs_preload, 1);
        assert_eq!(st.jj_total, 22 + 4);
    }

    #[test]
    fn stats_cache_invalidates_on_mutation() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_cell(CellKind::La, &[a, b])[0];
        n.add_output("x", x);
        let before = n.stats();
        assert_eq!(before.la_fa, 1);
        // Cached: a second query matches without recomputation.
        assert_eq!(n.stats().jj_total, before.jj_total);
        // Mutation must drop the cache and show the new cell.
        let y = n.add_cell(CellKind::Fa, &[a, b])[0];
        n.add_output("y", y);
        let after = n.stats();
        assert_eq!(after.la_fa, 2);
        assert!(after.jj_total > before.jj_total);
    }

    #[test]
    fn clock_tree_scales_with_clocked_cells() {
        let mut n = Netlist::new("t", CellLibrary::rsfq());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let mut x = a;
        for _ in 0..5 {
            x = n.add_cell(CellKind::RsfqAnd, &[x, b])[0];
        }
        n.add_output("o", x);
        let st = n.stats();
        assert_eq!(st.clocked_cells, 5);
        assert_eq!(st.clock_tree_jj(3), 12); // (5-1) * 3
        assert_eq!(st.jj_with_clock_tree(3), st.jj_total + 12);
    }
}
