//! The technology-level netlist.
//!
//! A [`Netlist`] is a directed graph of standard cells ([`CellKind`]) and
//! single-driver nets. SFQ pulses cannot branch, so a *physical* netlist
//! must have at most one sink per net; [`Netlist::insert_splitters`]
//! materializes balanced splitter trees to get there, which is where the
//! paper's Equation 1 (`N_splt = N_gate + N_out − N_inp`) comes from.

use std::fmt;
use std::sync::OnceLock;

use xsfq_cells::{CellKind, CellLibrary};

use crate::stats::NetlistStats;

/// Identifier of a net (single-driver wire).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// Dense index of the net.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a dense index (must reference an existing net).
    pub fn from_index(index: usize) -> Self {
        NetId(index as u32)
    }
}

/// Identifier of a cell instance.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// Dense index of the cell.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuild from a dense index (must reference an existing cell).
    pub fn from_index(index: usize) -> Self {
        CellId(index as u32)
    }
}

/// What drives a net.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Driver {
    /// Primary input port (index into [`Netlist::inputs`]).
    Input(u32),
    /// Output pin `pin` of cell `cell`.
    Cell {
        /// Driving cell.
        cell: CellId,
        /// Output pin index (0 for single-output cells; DROC: 0 = Qp,
        /// 1 = Qn; splitter: 0/1).
        pin: u8,
    },
}

/// Inline pin list: every cell kind has at most [`PinVec::CAPACITY`] input
/// or output pins, so pin nets live inside the `Cell` — building a netlist
/// performs **zero heap allocations per cell**. Dereferences to `[NetId]`,
/// so it reads like the `Vec<NetId>` it replaced.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PinVec {
    pins: [NetId; PinVec::CAPACITY],
    len: u8,
}

impl PinVec {
    /// Maximum pins per cell side (splitters/DROCs have 2 outputs, logic
    /// cells 2 inputs).
    pub const CAPACITY: usize = 2;

    /// Empty pin list.
    #[inline]
    pub fn new() -> Self {
        PinVec {
            pins: [NetId(u32::MAX); Self::CAPACITY],
            len: 0,
        }
    }

    /// Pin list from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `pins` exceeds [`PinVec::CAPACITY`].
    pub fn from_slice(pins: &[NetId]) -> Self {
        assert!(pins.len() <= Self::CAPACITY, "too many pins for a cell");
        let mut v = Self::new();
        for &p in pins {
            v.push(p);
        }
        v
    }

    /// Append a pin.
    ///
    /// # Panics
    ///
    /// Panics if the list is full.
    #[inline]
    pub fn push(&mut self, net: NetId) {
        assert!((self.len as usize) < Self::CAPACITY, "cell pin list full");
        self.pins[self.len as usize] = net;
        self.len += 1;
    }
}

impl Default for PinVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for PinVec {
    type Target = [NetId];
    #[inline]
    fn deref(&self) -> &[NetId] {
        &self.pins[..self.len as usize]
    }
}

impl std::ops::DerefMut for PinVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [NetId] {
        &mut self.pins[..self.len as usize]
    }
}

impl IntoIterator for PinVec {
    type Item = NetId;
    type IntoIter = std::iter::Take<std::array::IntoIter<NetId, { PinVec::CAPACITY }>>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.pins.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a PinVec {
    type Item = &'a NetId;
    type IntoIter = std::slice::Iter<'a, NetId>;
    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A cell instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Cell {
    /// Cell kind (decides pin counts, JJ cost and delay).
    pub kind: CellKind,
    /// Input nets, in pin order.
    pub inputs: PinVec,
    /// Output nets, in pin order.
    pub outputs: PinVec,
}

/// Number of output pins a cell kind drives.
pub fn output_pins(kind: CellKind) -> usize {
    match kind {
        CellKind::Splitter | CellKind::RsfqSplitter => 2,
        CellKind::Droc { .. } => 2, // Qp, Qn
        _ => 1,
    }
}

/// Number of input pins a cell kind consumes (clock pins are implicit).
pub fn input_pins(kind: CellKind) -> usize {
    match kind {
        CellKind::La
        | CellKind::Fa
        | CellKind::Merger
        | CellKind::RsfqAnd
        | CellKind::RsfqOr
        | CellKind::RsfqXor
        | CellKind::RsfqMerger => 2,
        CellKind::DcToSfq => 0,
        _ => 1, // JTL, splitter, DROC (data), DFF, NOT
    }
}

/// A named port.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Port {
    /// Port name.
    pub name: String,
    /// Attached net.
    pub net: NetId,
}

/// Technology netlist over a [`CellLibrary`].
///
/// ```
/// use xsfq_cells::{CellKind, CellLibrary};
/// use xsfq_netlist::Netlist;
///
/// let mut n = Netlist::new("demo", CellLibrary::xsfq_abutted());
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let q = n.add_cell(CellKind::La, &[a, b])[0];
/// n.add_output("q", q);
/// assert_eq!(n.stats().jj_total, 4);
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    library: CellLibrary,
    cells: Vec<Cell>,
    drivers: Vec<Driver>,
    inputs: Vec<Port>,
    outputs: Vec<Port>,
    /// Cells whose (implicit) clock pin is tied to the one-shot trigger
    /// instead of the regular clock (paper §3.2 initialization strategy).
    trigger_clocked: Vec<CellId>,
    /// Memoized [`Netlist::stats`] report; every mutation marks it dirty
    /// (clears it), so report-heavy flows recompute at most once per edit.
    /// `OnceLock` (not `RefCell`) keeps `Netlist: Send + Sync` — mutation
    /// already requires `&mut self`, and the fill-once-on-read is
    /// thread-safe.
    stats_cache: OnceLock<NetlistStats>,
}

impl Netlist {
    /// New empty netlist.
    pub fn new(name: impl Into<String>, library: CellLibrary) -> Self {
        Netlist {
            name: name.into(),
            library,
            cells: Vec::new(),
            drivers: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            trigger_clocked: Vec::new(),
            stats_cache: OnceLock::new(),
        }
    }

    /// Invalidate the cached stats report. Every `&mut self` entry point
    /// that changes cells, nets or ports must call this.
    fn mark_stats_dirty(&mut self) {
        self.stats_cache.take();
    }

    pub(crate) fn cached_stats(&self) -> Option<NetlistStats> {
        self.stats_cache.get().cloned()
    }

    pub(crate) fn store_stats(&self, stats: NetlistStats) {
        // A concurrent reader may have filled it first; both computed the
        // same value, so losing the race is fine.
        let _ = self.stats_cache.set(stats);
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The library this netlist is mapped to.
    pub fn library(&self) -> &CellLibrary {
        &self.library
    }

    /// Cell instances.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// A specific cell.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Number of nets.
    pub fn num_nets(&self) -> usize {
        self.drivers.len()
    }

    /// Driver of a net.
    pub fn driver(&self, net: NetId) -> Driver {
        self.drivers[net.index()]
    }

    /// Primary input ports.
    pub fn inputs(&self) -> &[Port] {
        &self.inputs
    }

    /// Primary output ports.
    pub fn outputs(&self) -> &[Port] {
        &self.outputs
    }

    /// Cells clocked by the one-shot trigger (first-rank preloaded DROCs).
    pub fn trigger_clocked(&self) -> &[CellId] {
        &self.trigger_clocked
    }

    /// Mark a cell as trigger-clocked.
    ///
    /// # Panics
    ///
    /// Panics if the cell is not a clocked cell.
    pub fn set_trigger_clocked(&mut self, cell: CellId) {
        assert!(
            self.cells[cell.index()].kind.is_clocked(),
            "only clocked cells can be trigger-clocked"
        );
        self.trigger_clocked.push(cell);
    }

    /// Add a primary input; returns its net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        self.mark_stats_dirty();
        let net = NetId(self.drivers.len() as u32);
        self.drivers.push(Driver::Input(self.inputs.len() as u32));
        self.inputs.push(Port {
            name: name.into(),
            net,
        });
        net
    }

    /// Instantiate a cell; returns its freshly allocated output nets.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match the cell kind.
    pub fn add_cell(&mut self, kind: CellKind, inputs: &[NetId]) -> PinVec {
        self.mark_stats_dirty();
        assert_eq!(
            inputs.len(),
            input_pins(kind),
            "{kind} takes {} inputs",
            input_pins(kind)
        );
        let cell = CellId(self.cells.len() as u32);
        let mut outs = PinVec::new();
        for pin in 0..output_pins(kind) {
            let net = NetId(self.drivers.len() as u32);
            self.drivers.push(Driver::Cell {
                cell,
                pin: pin as u8,
            });
            outs.push(net);
        }
        self.cells.push(Cell {
            kind,
            inputs: PinVec::from_slice(inputs),
            outputs: outs,
        });
        outs
    }

    /// Declare a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, net: NetId) {
        self.mark_stats_dirty();
        self.outputs.push(Port {
            name: name.into(),
            net,
        });
    }

    /// Instantiate a cell whose inputs are wired later with
    /// [`Netlist::connect_input`] — needed for feedback loops through
    /// storage cells. Returns the cell id and its output nets.
    pub fn add_cell_deferred(&mut self, kind: CellKind) -> (CellId, PinVec) {
        self.mark_stats_dirty();
        let cell = CellId(self.cells.len() as u32);
        let mut outs = PinVec::new();
        for pin in 0..output_pins(kind) {
            let net = NetId(self.drivers.len() as u32);
            self.drivers.push(Driver::Cell {
                cell,
                pin: pin as u8,
            });
            outs.push(net);
        }
        let mut unconnected = PinVec::new();
        for _ in 0..input_pins(kind) {
            unconnected.push(NetId(u32::MAX));
        }
        self.cells.push(Cell {
            kind,
            inputs: unconnected,
            outputs: outs,
        });
        (cell, outs)
    }

    /// Connect input pin `pin` of a deferred cell to `net`.
    ///
    /// # Panics
    ///
    /// Panics if the pin index is out of range or the net does not exist.
    pub fn connect_input(&mut self, cell: CellId, pin: usize, net: NetId) {
        self.mark_stats_dirty();
        assert!(net.index() < self.drivers.len(), "net must exist");
        self.cells[cell.index()].inputs[pin] = net;
    }

    /// Every unconnected cell input pin as `(cell, pin)`, in cell order.
    ///
    /// A pin is unconnected when it still holds the deferred-wiring
    /// sentinel of [`Netlist::add_cell_deferred`] (or any net index past
    /// the driver table). This is the single source of truth for
    /// connectivity: both [`Netlist::assert_connected`] and the `X001`
    /// lint in `xsfq-lint` are wrappers over it, so the panicking API and
    /// the diagnostic API can never disagree.
    pub fn unconnected_pins(&self) -> Vec<(CellId, usize)> {
        let mut out = Vec::new();
        for (i, cell) in self.cells.iter().enumerate() {
            for (pin, &n) in cell.inputs.iter().enumerate() {
                if n.index() >= self.drivers.len() {
                    out.push((CellId(i as u32), pin));
                }
            }
        }
        out
    }

    /// Check that every cell input is connected.
    ///
    /// # Panics
    ///
    /// Panics with the offending cell if any input pin is unconnected.
    pub fn assert_connected(&self) {
        if let Some(&(cell, pin)) = self.unconnected_pins().first() {
            panic!(
                "cell {} ({}) input pin {pin} is unconnected",
                cell.index(),
                self.cells[cell.index()].kind
            );
        }
    }

    /// Raw mutable access to a cell, bypassing every pin-count and
    /// connectivity invariant the ordinary mutators enforce.
    ///
    /// This exists solely so the lint test suite can build deliberately
    /// corrupted netlists (pin-count mismatches, dangling nets) and assert
    /// the checker's diagnostics; it is not part of the supported API.
    #[doc(hidden)]
    pub fn corrupt_cell_for_tests(&mut self, id: CellId) -> &mut Cell {
        self.mark_stats_dirty();
        &mut self.cells[id.index()]
    }

    /// Number of sinks per net (cell input pins plus output ports).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.drivers.len()];
        for cell in &self.cells {
            for &n in &cell.inputs {
                counts[n.index()] += 1;
            }
        }
        for port in &self.outputs {
            counts[port.net.index()] += 1;
        }
        counts
    }

    /// Count cells of a given kind.
    pub fn count_kind(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }

    /// Total splitters a physical version of this netlist needs:
    /// `Σ max(0, fanout − 1)` over all nets. With every signal consumed at
    /// least once this equals the paper's Equation 1.
    pub fn required_splitters(&self) -> usize {
        self.fanout_counts()
            .iter()
            .map(|&f| (f as usize).saturating_sub(1))
            .sum()
    }

    /// Materialize balanced splitter trees so every net drives at most one
    /// sink. Uses the library's xSFQ or RSFQ splitter depending on what the
    /// driving side is (RSFQ cells get RSFQ splitters).
    ///
    /// Returns the physical netlist; cell/net ids are renumbered.
    pub fn insert_splitters(&self) -> Netlist {
        let mut out = Netlist::new(self.name.clone(), self.library.clone());
        // First pass: copy inputs and cells with placeholder nets, recording
        // the new id of every old net.
        let mut net_map: Vec<NetId> = vec![NetId(u32::MAX); self.drivers.len()];
        for port in &self.inputs {
            net_map[port.net.index()] = out.add_input(port.name.clone());
        }
        // Copy cells in topological order (cells are created in topo order,
        // except feedback through clocked cells, whose data inputs may lag).
        // Two-phase copy: create all cells first with dummy inputs, then fix.
        let mut cell_map: Vec<CellId> = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let dummy_inputs = [NetId(0); PinVec::CAPACITY];
            // Temporarily use net 0 (fixed below); net 0 always exists when
            // there is at least one input; otherwise create cells lazily.
            let new_outs = out.add_cell(cell.kind, &dummy_inputs[..cell.inputs.len()]);
            let new_cell = match out.drivers[new_outs[0].index()] {
                Driver::Cell { cell, .. } => cell,
                Driver::Input(_) => unreachable!(),
            };
            cell_map.push(new_cell);
            for (old, new) in cell.outputs.iter().zip(&new_outs) {
                net_map[old.index()] = *new;
            }
        }
        for &tc in &self.trigger_clocked {
            out.trigger_clocked.push(cell_map[tc.index()]);
        }

        // Build the sink lists of every old net (dense: net ids index the
        // driver table directly, and iteration order is deterministic —
        // the former hash map randomized splitter-tree numbering run to
        // run).
        #[derive(Clone, Copy)]
        enum Sink {
            CellPin { cell: usize, pin: usize },
            Output(usize),
        }
        let mut sinks: Vec<Vec<Sink>> = vec![Vec::new(); self.drivers.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            for (pi, &n) in cell.inputs.iter().enumerate() {
                sinks[n.index()].push(Sink::CellPin { cell: ci, pin: pi });
            }
        }
        for (oi, port) in self.outputs.iter().enumerate() {
            sinks[port.net.index()].push(Sink::Output(oi));
        }

        // Input-driven nets take the flavor of the rest of the design;
        // computed once instead of rescanning the cell list per net.
        let any_rsfq = self.cells.iter().any(|c| c.kind.is_rsfq());

        // For each old net, create a splitter tree delivering one leaf net
        // per sink, then wire the sinks.
        let mut output_nets: Vec<Option<NetId>> = vec![None; self.outputs.len()];
        for (old_net, net_sinks) in sinks.iter().enumerate() {
            if net_sinks.is_empty() {
                continue;
            }
            let src = net_map[old_net];
            let splitter_kind = self.splitter_kind_for(NetId(old_net as u32), any_rsfq);
            let leaves = out.grow_splitter_tree(src, net_sinks.len(), splitter_kind);
            for (leaf, sink) in leaves.into_iter().zip(net_sinks) {
                match *sink {
                    Sink::CellPin { cell, pin } => {
                        let target = cell_map[cell];
                        out.cells[target.index()].inputs[pin] = leaf;
                    }
                    Sink::Output(oi) => output_nets[oi] = Some(leaf),
                }
            }
        }
        for (oi, port) in self.outputs.iter().enumerate() {
            let net = output_nets[oi].unwrap_or(net_map[port.net.index()]);
            out.add_output(port.name.clone(), net);
        }
        debug_assert!(
            out.fanout_counts().iter().all(|&f| f <= 1),
            "splitter insertion must leave no multi-fanout nets"
        );
        out
    }

    fn splitter_kind_for(&self, net: NetId, any_rsfq: bool) -> CellKind {
        match self.drivers[net.index()] {
            Driver::Cell { cell, .. } => {
                if self.cells[cell.index()].kind.is_rsfq() {
                    CellKind::RsfqSplitter
                } else {
                    CellKind::Splitter
                }
            }
            // Input-driven nets match the flavor of the rest of the design;
            // xSFQ is the default for mixed or empty designs.
            Driver::Input(_) if any_rsfq => CellKind::RsfqSplitter,
            Driver::Input(_) => CellKind::Splitter,
        }
    }

    /// Grow a balanced splitter tree from `src` until it has `leaves` leaf
    /// nets; returns them. Zero or one sink needs no splitters.
    fn grow_splitter_tree(&mut self, src: NetId, leaves: usize, kind: CellKind) -> Vec<NetId> {
        let mut frontier = std::collections::VecDeque::with_capacity(leaves.max(1));
        frontier.push_back(src);
        while frontier.len() < leaves {
            // Split the shallowest frontier net (front of the queue).
            let net = frontier.pop_front().expect("frontier non-empty");
            let outs = self.add_cell(kind, &[net]);
            frontier.extend(outs);
        }
        frontier.into()
    }
}

/// Structural equality: same name, library, cells (kinds + pin wiring),
/// drivers, ports and trigger marks. The memoized stats report is ignored —
/// it is a pure function of the compared state. This is the relation the
/// `map_identity` thread-count bit-identity gate compares under.
impl PartialEq for Netlist {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.library == other.library
            && self.cells == other.cells
            && self.drivers == other.drivers
            && self.inputs == other.inputs
            && self.outputs == other.outputs
            && self.trigger_clocked == other.trigger_clocked
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "netlist '{}': {} cells, {} nets, {} inputs, {} outputs",
            self.name,
            self.cells.len(),
            self.num_nets(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> CellLibrary {
        CellLibrary::xsfq_abutted()
    }

    #[test]
    fn build_and_query() {
        let mut n = Netlist::new("t", lib());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let q = n.add_cell(CellKind::La, &[a, b])[0];
        n.add_output("q", q);
        assert_eq!(n.cells().len(), 1);
        assert_eq!(n.num_nets(), 3);
        assert_eq!(n.fanout_counts(), vec![1, 1, 1]);
        assert_eq!(n.required_splitters(), 0);
    }

    #[test]
    fn fanout_counting_and_eq1() {
        let mut n = Netlist::new("t", lib());
        let a = n.add_input("a");
        let b = n.add_input("b");
        // a feeds two LA cells and an output: fanout 3 → 2 splitters.
        let x = n.add_cell(CellKind::La, &[a, b])[0];
        let y = n.add_cell(CellKind::La, &[a, x])[0];
        n.add_output("y", y);
        n.add_output("a_copy", a);
        assert_eq!(n.required_splitters(), 2);
        // Equation 1: gates + outs − inps = 2 + 2 − 2 = 2.
        let eq1 = n.cells().len() + n.outputs().len() - n.inputs().len();
        assert_eq!(n.required_splitters(), eq1);
    }

    #[test]
    fn splitter_insertion_physicalizes() {
        let mut n = Netlist::new("t", lib());
        let a = n.add_input("a");
        let sinks = 5;
        for i in 0..sinks {
            let q = n.add_cell(CellKind::Jtl, &[a]);
            n.add_output(format!("o{i}"), q[0]);
        }
        let phys = n.insert_splitters();
        assert!(phys.fanout_counts().iter().all(|&f| f <= 1));
        assert_eq!(phys.count_kind(CellKind::Splitter), sinks - 1);
        assert_eq!(phys.count_kind(CellKind::Jtl), sinks);
    }

    #[test]
    fn splitter_tree_is_balanced() {
        let mut n = Netlist::new("t", lib());
        let a = n.add_input("a");
        for i in 0..8 {
            let q = n.add_cell(CellKind::Jtl, &[a]);
            n.add_output(format!("o{i}"), q[0]);
        }
        let phys = n.insert_splitters();
        // 8 leaves need 7 splitters in 3 levels; depth check via stats is in
        // stats.rs tests — here just the count.
        assert_eq!(phys.count_kind(CellKind::Splitter), 7);
    }

    #[test]
    fn rsfq_nets_get_rsfq_splitters() {
        let mut n = Netlist::new("t", CellLibrary::rsfq());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_cell(CellKind::RsfqAnd, &[a, b])[0];
        let y = n.add_cell(CellKind::RsfqNot, &[x])[0];
        let z = n.add_cell(CellKind::RsfqDff, &[x])[0];
        n.add_output("y", y);
        n.add_output("z", z);
        let phys = n.insert_splitters();
        assert_eq!(phys.count_kind(CellKind::RsfqSplitter), 1);
        assert_eq!(phys.count_kind(CellKind::Splitter), 0);
    }

    #[test]
    fn droc_has_complementary_outputs() {
        let mut n = Netlist::new("t", lib());
        let d = n.add_input("d");
        let outs = n.add_cell(CellKind::Droc { preload: true }, &[d]);
        assert_eq!(outs.len(), 2);
        n.add_output("qp", outs[0]);
        n.add_output("qn", outs[1]);
        let c = match n.driver(outs[1]) {
            Driver::Cell { cell, pin } => {
                assert_eq!(pin, 1);
                cell
            }
            _ => panic!("driven by cell"),
        };
        n.set_trigger_clocked(c);
        assert_eq!(n.trigger_clocked().len(), 1);
    }

    #[test]
    fn trigger_marking_survives_splitter_insertion() {
        let mut n = Netlist::new("t", lib());
        let d = n.add_input("d");
        let outs = n.add_cell(CellKind::Droc { preload: true }, &[d]);
        let Driver::Cell { cell, .. } = n.driver(outs[0]) else {
            panic!()
        };
        n.set_trigger_clocked(cell);
        n.add_output("qp", outs[0]);
        n.add_output("qp2", outs[0]);
        let phys = n.insert_splitters();
        assert_eq!(phys.trigger_clocked().len(), 1);
        let tc = phys.trigger_clocked()[0];
        assert!(matches!(
            phys.cell(tc).kind,
            CellKind::Droc { preload: true }
        ));
    }
}
