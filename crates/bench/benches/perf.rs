//! Criterion performance benchmarks; the bodies live in
//! [`xsfq_bench::perf`] so `cargo run -p xsfq-bench --bin perf_summary` can
//! execute the identical measurements and emit the `BENCH_*.json`
//! trajectory.

use criterion::{criterion_group, criterion_main};

use xsfq_bench::perf::{
    bench_cec, bench_flow, bench_lint, bench_mapping, bench_optimize, bench_pulse_sim, bench_serve,
    bench_spice, bench_timing,
};

criterion_group!(
    benches,
    bench_optimize,
    bench_mapping,
    bench_pulse_sim,
    bench_cec,
    bench_spice,
    bench_flow,
    bench_serve,
    bench_lint,
    bench_timing
);
criterion_main!(benches);
