//! Criterion benchmark bodies for the flow's building blocks: AIG
//! optimization, polarity assignment + mapping, the baseline mapper, pulse
//! simulation throughput, SAT-based equivalence checking and the analog
//! transient solver.
//!
//! These live in the library (rather than only under `benches/`) so both the
//! `cargo bench` harness and the `perf_summary` binary — which emits the
//! machine-readable `BENCH_*.json` perf trajectory — can run the same
//! measurements.

use criterion::Criterion;

use xsfq_aig::opt::{self, Effort};
use xsfq_aig::pass::{PassGuards, Script};
use xsfq_core::{map_xsfq, map_xsfq_with_pool, MapOptions, OutputPolarity, SynthesisFlow};
use xsfq_pulse::Harness;
use xsfq_serve::protocol::SubmitRequest;
use xsfq_serve::{Client, ServeConfig, Server};

/// `optimize` group: the ABC-style resynthesis script on ISCAS85/EPFL
/// blocks. `voter` is the largest EPFL circuit in the suite (≈7.5k ANDs);
/// it runs twice — on the default executor pool and pinned to one worker
/// thread — so each `BENCH_<n>.json` records the work-stealing speedup of
/// the machine it was measured on (the results are bit-identical).
pub fn bench_optimize(c: &mut Criterion) {
    let aig = xsfq_benchmarks::by_name("c880").unwrap();
    let mut g = c.benchmark_group("optimize");
    g.sample_size(10);
    g.bench_function("c880_fast", |b| {
        b.iter(|| opt::optimize(std::hint::black_box(&aig), Effort::Fast))
    });
    let int2float = xsfq_benchmarks::by_name("int2float").unwrap();
    g.bench_function("int2float_standard", |b| {
        b.iter(|| opt::optimize(std::hint::black_box(&int2float), Effort::Standard))
    });
    let voter = xsfq_benchmarks::by_name("voter").unwrap();
    g.bench_function("voter_fast", |b| {
        b.iter(|| opt::optimize(std::hint::black_box(&voter), Effort::Fast))
    });
    let single = xsfq_exec::ThreadPool::new(1);
    g.bench_function("voter_fast_t1", |b| {
        b.iter(|| opt::optimize_with(std::hint::black_box(&voter), Effort::Fast, &single))
    });
    g.finish();
}

/// `map` group: dual-rail xSFQ mapping and the clocked-RSFQ baseline
/// mapper. `voter` (the largest EPFL circuit in the suite, with the
/// heaviest polarity search) runs twice — on the default executor pool and
/// pinned to one worker thread — so each `BENCH_<n>.json` records the
/// speedup of the parallel requirements sweep + polarity costing on the
/// machine it was measured on (the mapped netlists are bit-identical; the
/// `map_identity` gate pins that).
pub fn bench_mapping(c: &mut Criterion) {
    let aig = xsfq_benchmarks::by_name("c880").unwrap();
    let optimized = opt::optimize(&aig, Effort::Fast);
    let mut g = c.benchmark_group("map");
    g.sample_size(10);
    g.bench_function("xsfq_c880", |b| {
        b.iter(|| map_xsfq(std::hint::black_box(&optimized), &MapOptions::default()))
    });
    g.bench_function("rsfq_baseline_c880", |b| {
        b.iter(|| xsfq_baselines::map_rsfq(std::hint::black_box(&optimized)))
    });
    let voter = opt::optimize(&xsfq_benchmarks::by_name("voter").unwrap(), Effort::Fast);
    g.bench_function("voter", |b| {
        b.iter(|| map_xsfq(std::hint::black_box(&voter), &MapOptions::default()))
    });
    let single = xsfq_exec::ThreadPool::new(1);
    g.bench_function("voter_t1", |b| {
        b.iter(|| {
            map_xsfq_with_pool(
                std::hint::black_box(&voter),
                &MapOptions::default(),
                &single,
            )
        })
    });
    g.finish();
}

/// `pulse` group: full adder under the alternating protocol, 8 logical cycles.
pub fn bench_pulse_sim(c: &mut Criterion) {
    let mut aig = xsfq_aig::Aig::new("fa");
    let a = aig.input("a");
    let b = aig.input("b");
    let cin = aig.input("cin");
    let (s, co) = xsfq_aig::build::full_adder(&mut aig, a, b, cin);
    aig.output("s", s);
    aig.output("cout", co);
    let r = SynthesisFlow::new().run(&aig).unwrap();
    let negs: Vec<bool> = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let vectors: Vec<Vec<bool>> = (0..8)
        .map(|p| (0..3).map(|i| p >> i & 1 == 1).collect())
        .collect();
    let mut g = c.benchmark_group("pulse");
    g.bench_function("full_adder_8_cycles", |b| {
        b.iter(|| Harness::new(r.netlist(), negs.clone()).run(std::hint::black_box(&vectors)))
    });
    g.finish();
}

/// `verify` group: SAT equivalence proof of an optimization — the default
/// (sweeping) engine and the classic monolithic-miter encoder it replaced.
pub fn bench_cec(c: &mut Criterion) {
    let aig = xsfq_benchmarks::by_name("int2float").unwrap();
    let optimized = opt::optimize(&aig, Effort::Fast);
    let mut g = c.benchmark_group("verify");
    g.sample_size(10);
    g.bench_function("cec_int2float", |b| {
        b.iter(|| {
            assert!(xsfq_core::verify::prove_equivalent(
                std::hint::black_box(&aig),
                std::hint::black_box(&optimized)
            ))
        })
    });
    g.bench_function("cec_int2float_monolithic", |b| {
        b.iter(|| {
            assert!(xsfq_sat::check_equivalence_monolithic(
                std::hint::black_box(&aig),
                std::hint::black_box(&optimized)
            )
            .is_equivalent())
        })
    });
    g.finish();
}

/// The EPFL designs the `flow` group batches (small enough for CI smoke,
/// heavy enough that each design dominates the dispatch cost).
const FLOW_BATCH: [&str; 4] = ["int2float", "dec", "priority", "cavlc"];

/// `flow` group: whole-design batching. `run_many_epfl4` schedules four
/// EPFL designs across the executor pool; `run_each_epfl4` runs the same
/// designs as sequential `run` calls. The reports are identical — the pair
/// exists so every `BENCH_<n>.json` records the flow-level speedup of its
/// machine (1.0× on a single-core container, like the `voter_fast` pair).
pub fn bench_flow(c: &mut Criterion) {
    let designs: Vec<xsfq_aig::Aig> = FLOW_BATCH
        .iter()
        .map(|n| xsfq_benchmarks::by_name(n).unwrap())
        .collect();
    let flow = SynthesisFlow::new().script(Script::named("fast").unwrap());
    let mut g = c.benchmark_group("flow");
    g.sample_size(10);
    g.bench_function("run_many_epfl4", |b| {
        b.iter(|| flow.run_many(std::hint::black_box(&designs)).unwrap())
    });
    g.bench_function("run_each_epfl4", |b| {
        b.iter(|| {
            std::hint::black_box(&designs)
                .iter()
                .map(|d| flow.run(d).unwrap())
                .collect::<Vec<_>>()
        })
    });
    // `guarded_run` / `unguarded_run` pair on `voter` (largest EPFL design
    // in the suite): the same flow with a cancellation token, a job
    // deadline and both pass guards installed but never firing. The pair
    // exists so every `BENCH_<n>.json` proves the robustness plumbing is
    // free when unused (token polls are relaxed atomic loads at pass and
    // evaluate-batch boundaries; guard checks are two compares per pass) —
    // the recorded ratio must stay within noise (<2%).
    let voter = xsfq_benchmarks::by_name("voter").unwrap();
    g.bench_function("unguarded_run", |b| {
        b.iter(|| flow.run(std::hint::black_box(&voter)).unwrap())
    });
    let guarded = flow
        .clone()
        .cancel_token(xsfq_exec::CancelToken::default())
        .job_deadline(std::time::Duration::from_secs(3600))
        .guards(PassGuards {
            max_growth: Some(8.0),
            wall_budget: Some(std::time::Duration::from_secs(3600)),
            degrade_to_fast: false,
        });
    g.bench_function("guarded_run", |b| {
        b.iter(|| guarded.run(std::hint::black_box(&voter)).unwrap())
    });
    g.finish();
}

/// One per-pass telemetry row for the machine-readable perf summary.
#[derive(Clone, Debug)]
pub struct FlowPassRow {
    /// Row key: `flowpass/<design>/<index>_<pass>` (index keeps repeated
    /// pass names unique and the execution order sortable).
    pub key: String,
    /// Wall time of the pass in nanoseconds.
    pub wall_ns: f64,
    /// AND nodes before/after the pass.
    pub nodes: (usize, usize),
    /// Depth before/after the pass.
    pub depth: (usize, usize),
    /// Pass commit counter.
    pub commits: u64,
}

/// Run the standard-preset flow on representative designs and export one
/// row per executed pass — the per-pass telemetry `BENCH_<n>.json` carries
/// alongside the criterion groups. Pass sequences are deterministic per
/// design (early exit depends only on the graph), so row keys are stable
/// across machines and PRs.
pub fn flow_pass_rows() -> Vec<FlowPassRow> {
    let mut rows = Vec::new();
    for name in ["c880", "int2float"] {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        let r = SynthesisFlow::new().run(&aig).expect("flow");
        for (i, p) in r.report.passes.iter().enumerate() {
            // Keys must stay single-token: "rf -K 10" → "rf-K10".
            let pass = p.name.replace(' ', "");
            rows.push(FlowPassRow {
                key: format!("flowpass/{name}/{i:02}_{pass}"),
                wall_ns: p.wall_ns as f64,
                nodes: (p.nodes_before, p.nodes_after),
                depth: (p.depth_before, p.depth_after),
                commits: p.commits,
            });
        }
    }
    rows
}

/// `serve` group: end-to-end daemon round-trips over a real loopback
/// socket. `throughput` runs with the result cache disabled, so every
/// round trip pays parse + full flow + netlist/report encoding — the
/// daemon's steady-state cost per job including journal fsyncs.
/// `cache_hit` warms the cache with one run and then resubmits the same
/// design, isolating the protocol + digest + cache-replay path; the gap
/// between the two rows is what the canonical-AIG cache buys a repeated
/// workload.
pub fn bench_serve(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("xsfq-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();
    let mut blif = Vec::new();
    xsfq_aig::io::write_blif(&aig, &mut blif).unwrap();
    let request = SubmitRequest {
        script: "fast".into(),
        name: "ctrl".into(),
        data: blif,
        fault: None,
    };

    let mut g = c.benchmark_group("serve");
    g.sample_size(10);
    {
        let mut cfg = ServeConfig::new(dir.join("nocache"));
        cfg.cache_budget = 0;
        let server = Server::start(cfg).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        g.bench_function("throughput", |b| {
            b.iter(|| client.submit(std::hint::black_box(&request)).unwrap())
        });
        server.shutdown();
    }
    {
        let server = Server::start(ServeConfig::new(dir.join("cache"))).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        client.submit(&request).unwrap();
        g.bench_function("cache_hit", |b| {
            b.iter(|| client.submit(std::hint::black_box(&request)).unwrap())
        });
        server.shutdown();
    }
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `lint` group: the static checker's cost envelope. `epfl_suite` DRCs the
/// physical netlists of every EPFL design (the full CheckLevel::Stage
/// netlist bill per suite run); `stats_epfl_suite` runs the `NetlistStats`
/// analysis pass over the same netlists — the yardstick the DRC is specced
/// against (same order of magnitude: both are linear traversals of the
/// cell/net tables). `flow_checked` / `flow_unchecked` pair a full `ctrl`
/// flow at `CheckLevel::Stage` against `CheckLevel::Off`, so every
/// `BENCH_<n>.json` records that `Off` costs exactly nothing and `Stage`
/// stays in the noise of a real synthesis run.
pub fn bench_lint(c: &mut Criterion) {
    use xsfq_lint::{lint_netlist, CheckLevel, NetlistProfile};
    let physicals: Vec<xsfq_netlist::Netlist> = xsfq_benchmarks::all()
        .iter()
        .filter(|b| b.suite == xsfq_benchmarks::Suite::Epfl)
        .map(|b| {
            SynthesisFlow::new()
                .script(Script::named("fast").unwrap())
                .run(&(b.build)())
                .unwrap()
                .mapped
                .physical
        })
        .collect();
    let mut g = c.benchmark_group("lint");
    g.sample_size(10);
    g.bench_function("epfl_suite", |b| {
        b.iter(|| {
            for n in std::hint::black_box(&physicals) {
                assert!(!xsfq_lint::has_errors(&lint_netlist(
                    n,
                    NetlistProfile::Physical
                )));
            }
        })
    });
    g.bench_function("stats_epfl_suite", |b| {
        b.iter(|| {
            std::hint::black_box(&physicals)
                .iter()
                .map(|n| n.stats_uncached().jj_total)
                .sum::<u64>()
        })
    });
    let ctrl = xsfq_benchmarks::by_name("ctrl").unwrap();
    let flow = SynthesisFlow::new().script(Script::named("fast").unwrap());
    g.bench_function("flow_unchecked", |b| {
        b.iter(|| flow.run(std::hint::black_box(&ctrl)).unwrap())
    });
    let checked = flow.clone().check(CheckLevel::Stage);
    g.bench_function("flow_checked", |b| {
        b.iter(|| checked.run(std::hint::black_box(&ctrl)).unwrap())
    });
    g.finish();
}

/// `timing` group: the static timing backend on `voter`, the largest EPFL
/// circuit in the suite. `analyse_voter` is the pure engine sweep (balance
/// off), `constrain_voter` adds the slack-matching plan + netlist rebuild,
/// and `flow_timed` / `flow_untimed` pair a full `ctrl` flow with the
/// Timing stage enabled against the default — so every `BENCH_<n>.json`
/// records that an unset `FlowOptions::timing` costs exactly nothing.
pub fn bench_timing(c: &mut Criterion) {
    use xsfq_timing::{balance_netlist, BalanceMode, TimingAnalysis, TimingOptions};
    let voter = SynthesisFlow::new()
        .script(Script::named("fast").unwrap())
        .run(&xsfq_benchmarks::by_name("voter").unwrap())
        .unwrap()
        .mapped
        .physical;
    let analyse = TimingOptions {
        balance: BalanceMode::Off,
        tolerance_ps: None,
    };
    let constrain = TimingOptions::default();
    let mut g = c.benchmark_group("timing");
    g.sample_size(10);
    g.bench_function("analyse_voter", |b| {
        b.iter(|| TimingAnalysis::analyze(std::hint::black_box(&voter), &analyse))
    });
    g.bench_function("constrain_voter", |b| {
        b.iter(|| {
            let outcome = balance_netlist(std::hint::black_box(&voter), &constrain, None);
            assert!(outcome.summary.worst_slack_ps >= 0.0);
            outcome
        })
    });
    let ctrl = xsfq_benchmarks::by_name("ctrl").unwrap();
    let flow = SynthesisFlow::new().script(Script::named("fast").unwrap());
    g.bench_function("flow_untimed", |b| {
        b.iter(|| flow.run(std::hint::black_box(&ctrl)).unwrap())
    });
    let timed = flow.clone().timing(TimingOptions::default());
    g.bench_function("flow_timed", |b| {
        b.iter(|| timed.run(std::hint::black_box(&ctrl)).unwrap())
    });
    g.finish();
}

/// `spice` group: RCSJ transient of a 4-stage JTL.
pub fn bench_spice(c: &mut Criterion) {
    let mut g = c.benchmark_group("spice");
    g.sample_size(10);
    g.bench_function("jtl4_transient_100ps", |b| {
        b.iter(|| {
            let mut fx = xsfq_spice::cells::jtl_chain(4);
            fx.circuit.pulse(fx.inputs[0], 10.0, 500e-6, 2.0);
            xsfq_spice::transient(
                &fx.circuit,
                &xsfq_spice::TransientOptions {
                    t_end_ps: 100.0,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}
