//! Regenerates every table and figure in one run (the source of
//! EXPERIMENTS.md's measured columns). Run with `--release`.

fn main() {
    println!("{}", xsfq_bench::table1());
    println!("{}", xsfq_bench::table2());
    println!("{}", xsfq_bench::fig2());
    println!("{}", xsfq_bench::fig3());
    println!("{}", xsfq_bench::fig4_5());
    println!("{}", xsfq_bench::table3_text());
    println!(
        "{}",
        xsfq_bench::render_eval(
            "Table 4 — ISCAS85 & EPFL combinational circuits vs PBMap-style RSFQ",
            &xsfq_bench::table4()
        )
    );
    println!("{}", xsfq_bench::table5_text());
    println!(
        "{}",
        xsfq_bench::render_eval(
            "Table 6 — ISCAS89 sequential circuits vs qSeq-style RSFQ",
            &xsfq_bench::table6()
        )
    );
    println!("{}", xsfq_bench::fig7());
    println!("{}", xsfq_bench::ablation_polarity());
    println!("{}", xsfq_bench::ablation_opt());
}
