//! Regenerates the paper's ablation polarity artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::ablation_polarity());
}
