//! Regenerates the paper's fig2 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::fig2());
}
