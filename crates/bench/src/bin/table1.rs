//! Regenerates the paper's table1 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::table1());
}
