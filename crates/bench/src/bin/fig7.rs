//! Regenerates the paper's fig7 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::fig7());
}
