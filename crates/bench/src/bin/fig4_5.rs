//! Regenerates the paper's fig4 5 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::fig4_5());
}
