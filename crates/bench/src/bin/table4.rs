//! Regenerates the paper's Table 4 (ISCAS85 + EPFL vs the PBMap-style
//! baseline). Run with `--release`.

fn main() {
    let rows = xsfq_bench::table4();
    print!(
        "{}",
        xsfq_bench::render_eval(
            "Table 4 — ISCAS85 & EPFL combinational circuits vs PBMap-style RSFQ",
            &rows
        )
    );
}
