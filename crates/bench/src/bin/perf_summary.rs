//! Machine-readable performance summary: runs the criterion groups and
//! emits `BENCH_<n>.json` mapping `group/name` → median ns per call.
//!
//! Usage (always build with `--release`; debug numbers are meaningless):
//!
//! ```text
//! cargo run --release -p xsfq-bench --bin perf_summary -- \
//!     [--out BENCH_1.json] [--baseline old.json] [--groups optimize,map,flow]
//! ```
//!
//! With `--baseline`, the old file's `current_ns` values are embedded as
//! `baseline_ns` and per-benchmark speedups are reported — that is how a PR
//! records before/after numbers measured on the same machine.
//!
//! The `flow` group additionally exports the pass manager's per-pass
//! telemetry: one `flowpass/<design>/<index>_<pass>` row per executed
//! script pass (wall time, node/depth deltas, commit count), so the perf
//! trajectory shows *which pass* moved when a flow regresses.

use std::collections::BTreeMap;

use criterion::Criterion;
use xsfq_bench::perf;

fn parse_args() -> (String, Option<String>, Vec<String>) {
    let mut out = "BENCH_1.json".to_string();
    let mut baseline = None;
    let mut groups: Vec<String> = [
        "optimize", "map", "pulse", "verify", "spice", "flow", "serve", "lint", "timing",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out = args.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--baseline" => {
                baseline = Some(args.get(i + 1).expect("--baseline needs a path").clone());
                i += 2;
            }
            "--groups" => {
                groups = args
                    .get(i + 1)
                    .expect("--groups needs a list")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
                i += 2;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    (out, baseline, groups)
}

/// Pull `"key":<number>` pairs out of a flat JSON object without a JSON
/// dependency (the files are produced by this binary, so the shape is known:
/// `"group/name": {"current_ns": X, ...}`).
fn read_baseline(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let mut map = BTreeMap::new();
    let mut rest = text.as_str();
    while let Some(start) = rest.find('"') {
        let tail = &rest[start + 1..];
        let Some(end) = tail.find('"') else { break };
        let key = &tail[..end];
        let after = &tail[end + 1..];
        if key.contains('/') {
            if let Some(cur) = after.find("\"current_ns\":") {
                let num = after[cur + 13..]
                    .trim_start()
                    .split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                    .next()
                    .and_then(|s| s.parse::<f64>().ok());
                if let Some(v) = num {
                    map.insert(key.to_string(), v);
                }
            }
        }
        rest = after;
    }
    map
}

fn main() {
    let (out, baseline_path, groups) = parse_args();
    let baseline = baseline_path.as_deref().map(read_baseline);

    let mut criterion = Criterion::new();
    for group in &groups {
        match group.as_str() {
            "optimize" => perf::bench_optimize(&mut criterion),
            "map" => perf::bench_mapping(&mut criterion),
            "pulse" => perf::bench_pulse_sim(&mut criterion),
            "verify" => perf::bench_cec(&mut criterion),
            "spice" => perf::bench_spice(&mut criterion),
            "flow" => perf::bench_flow(&mut criterion),
            "serve" => perf::bench_serve(&mut criterion),
            "lint" => perf::bench_lint(&mut criterion),
            "timing" => perf::bench_timing(&mut criterion),
            other => {
                panic!(
                    "unknown group {other} \
                     (expected optimize|map|pulse|verify|spice|flow|serve|lint|timing)"
                )
            }
        }
    }
    // The flow group carries the pass manager's per-pass telemetry rows
    // alongside its criterion timings.
    let pass_rows = if groups.iter().any(|g| g == "flow") {
        perf::flow_pass_rows()
    } else {
        Vec::new()
    };

    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(&format!(
        "  \"schema\": \"xsfq-perf-summary/1\",\n  \"groups\": \"{}\",\n",
        groups.join(",")
    ));
    let results = criterion.results();
    for (i, r) in results.iter().enumerate() {
        let key = format!("{}/{}", r.group, r.name);
        body.push_str(&format!(
            "  \"{key}\": {{\"current_ns\": {:.1}",
            r.median_ns
        ));
        if let Some(base) = baseline.as_ref().and_then(|b| b.get(&key)) {
            body.push_str(&format!(
                ", \"baseline_ns\": {base:.1}, \"speedup\": {:.2}",
                base / r.median_ns
            ));
        }
        body.push('}');
        let last = i + 1 == results.len() && pass_rows.is_empty();
        body.push_str(if last { "\n" } else { ",\n" });
    }
    for (i, row) in pass_rows.iter().enumerate() {
        body.push_str(&format!(
            "  \"{}\": {{\"current_ns\": {:.1}, \"nodes_in\": {}, \"nodes_out\": {}, \
             \"depth_in\": {}, \"depth_out\": {}, \"commits\": {}",
            row.key, row.wall_ns, row.nodes.0, row.nodes.1, row.depth.0, row.depth.1, row.commits
        ));
        if let Some(base) = baseline.as_ref().and_then(|b| b.get(&row.key)) {
            body.push_str(&format!(
                ", \"baseline_ns\": {base:.1}, \"speedup\": {:.2}",
                base / row.wall_ns
            ));
        }
        body.push('}');
        body.push_str(if i + 1 == pass_rows.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    body.push_str("}\n");
    std::fs::write(&out, &body).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");
    print!("{body}");
}
