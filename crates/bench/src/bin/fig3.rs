//! Regenerates the paper's fig3 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::fig3());
}
