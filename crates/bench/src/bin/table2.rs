//! Regenerates the paper's table2 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::table2());
}
