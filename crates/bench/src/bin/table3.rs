//! Regenerates the paper's table3 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::table3_text());
}
