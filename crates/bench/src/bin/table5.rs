//! Regenerates the paper's table5 artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::table5_text());
}
