//! Regenerates the paper's Table 6 (ISCAS89 vs the qSeq-style baseline).
//! Run with `--release`.

fn main() {
    let rows = xsfq_bench::table6();
    print!(
        "{}",
        xsfq_bench::render_eval(
            "Table 6 — ISCAS89 sequential circuits vs qSeq-style RSFQ",
            &rows
        )
    );
}
