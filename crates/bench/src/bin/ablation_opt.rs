//! Regenerates the paper's ablation opt artifact. Run with `--release`.

fn main() {
    print!("{}", xsfq_bench::ablation_opt());
}
