//! # xsfq-bench — reproduction harness
//!
//! One function per table/figure of the paper; each `src/bin/` target
//! prints its artifact, and `cargo run --release -p xsfq-bench --bin
//! all_experiments` regenerates every result (EXPERIMENTS.md is produced
//! from these). Criterion performance benches live under `benches/`.

#![warn(missing_docs)]

pub mod perf;

use std::fmt::Write as _;

use xsfq_aig::opt::Effort;
use xsfq_baselines::pbmap_with_effort;
use xsfq_cells::{CellKind, CellLibrary};
use xsfq_core::{OutputPolarity, PolarityMode, SynthesisFlow};
use xsfq_netlist::Netlist;
use xsfq_pulse::{wave, Harness, PulseSim};

/// Effort used across the evaluation (the paper runs stock `resyn2`-class
/// scripts; `Standard` mirrors that).
pub const EVAL_EFFORT: Effort = Effort::Standard;

/// Table 1: alternating input sequences for LA and FA, reproduced by the
/// pulse simulator.
pub fn table1() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 1 — LA/FA alternating sequences (pulse-level reproduction)"
    )
    .unwrap();
    writeln!(
        out,
        "{:>6} {:>6} | {:>8} {:>8} | {:>8} {:>8} | reinit",
        "a", "b", "FA(exc)", "LA(exc)", "FA(rel)", "LA(rel)"
    )
    .unwrap();
    for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut row: Vec<String> = vec![format!("{}", va as u8), format!("{}", vb as u8)];
        let mut cols = vec![String::new(); 4];
        let mut reinit_all = true;
        for (idx, kind) in [CellKind::Fa, CellKind::La].into_iter().enumerate() {
            let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
            let a = n.add_input("a");
            let b = n.add_input("b");
            let q = n.add_cell(kind, &[a, b])[0];
            n.add_output("q", q);
            let mut sim = PulseSim::new(&n);
            if va {
                sim.inject(a, 10.0);
            }
            if vb {
                sim.inject(b, 12.0);
            }
            sim.run_until(100.0);
            let exc = sim.pulses(q).len();
            if !va {
                sim.inject(a, 110.0);
            }
            if !vb {
                sim.inject(b, 112.0);
            }
            sim.run_until(200.0);
            let rel = sim.pulses(q).len() - exc;
            cols[idx] = format!("{exc}");
            cols[idx + 2] = format!("{rel}");
            reinit_all &= sim.all_logic_in_init_state();
        }
        row.extend(cols);
        writeln!(
            out,
            "{:>6} {:>6} | {:>8} {:>8} | {:>8} {:>8} | {}",
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5],
            if reinit_all { "Init" } else { "VIOLATION" }
        )
        .unwrap();
    }
    out
}

/// Table 2: cell delays and JJ counts for both interconnect styles, plus
/// the delays re-derived by the analog (RCSJ) substrate.
pub fn table2() -> String {
    let mut out = String::new();
    writeln!(out, "Table 2 — xSFQ cell library (paper values)").unwrap();
    writeln!(
        out,
        "{:<10} {:>12} {:>8} {:>12} {:>8}",
        "Cell", "delay (ps)", "#JJs", "PTL delay", "PTL #JJs"
    )
    .unwrap();
    let ab = CellLibrary::xsfq_abutted();
    let ptl = CellLibrary::xsfq_ptl();
    for kind in ab.cells() {
        let (pa, pp) = (ab.params(kind), ptl.params(kind));
        writeln!(
            out,
            "{:<10} {:>12.1} {:>8} {:>12.1} {:>8}",
            kind.name(),
            pa.delay_ps,
            pa.jj,
            pp.delay_ps,
            pp.jj
        )
        .unwrap();
    }
    writeln!(
        out,
        "{:<10} {:>12.1} {:>8} {:>12.1} {:>8}  (clock-to-Qn)",
        "DROC(Qn)",
        ab.droc_delay(true),
        ab.jj(CellKind::Droc { preload: false }),
        ptl.droc_delay(true),
        ptl.jj(CellKind::Droc { preload: false }),
    )
    .unwrap();
    writeln!(out).unwrap();
    writeln!(
        out,
        "Analog re-characterization (xsfq-spice RCSJ substrate; shapes, not PDK-calibrated):"
    )
    .unwrap();
    for cell in xsfq_spice::characterize::characterize_library() {
        writeln!(out, "  {:<8} {:>6.1} ps", cell.name, cell.delay_ps).unwrap();
    }
    out
}

/// One row of Tables 3/4/6.
#[derive(Clone, Debug)]
pub struct EvalRow {
    /// Circuit name.
    pub name: String,
    /// Baseline (PBMap/qSeq-style RSFQ) JJs, without clock tree.
    pub baseline_jj: u64,
    /// Baseline JJs including the exactly-sized clock tree.
    pub baseline_jj_clock: u64,
    /// xSFQ LA/FA cell count.
    pub la_fa: usize,
    /// Duplication penalty (%).
    pub dupl: f64,
    /// DROC cells (plain, preloaded).
    pub drocs: (usize, usize),
    /// xSFQ JJ total.
    pub xsfq_jj: u64,
}

impl EvalRow {
    /// JJ savings without / with clock-splitting overhead on the baseline.
    pub fn savings(&self) -> (f64, f64) {
        (
            self.baseline_jj as f64 / self.xsfq_jj as f64,
            self.baseline_jj_clock as f64 / self.xsfq_jj as f64,
        )
    }
}

/// Run one circuit through both flows.
pub fn evaluate(name: &str, effort: Effort) -> EvalRow {
    let aig = xsfq_benchmarks::by_name(name).unwrap_or_else(|| panic!("unknown circuit {name}"));
    let flow = SynthesisFlow::new().effort(effort);
    let r = flow.run(&aig).expect("flow");
    let b = pbmap_with_effort(&aig, effort);
    EvalRow {
        name: name.to_string(),
        baseline_jj: b.jj_total(),
        baseline_jj_clock: b.jj_with_clock_tree(),
        la_fa: r.report.la_fa,
        dupl: r.report.duplication_percent,
        drocs: (r.report.drocs_plain, r.report.drocs_preload),
        xsfq_jj: r.report.jj_total,
    }
}

/// Table 3: duplication penalty for the EPFL control circuits.
pub fn table3() -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for b in xsfq_benchmarks::table3_circuits() {
        let aig = (b.build)();
        let r = SynthesisFlow::new()
            .effort(EVAL_EFFORT)
            .run(&aig)
            .expect("flow");
        rows.push((b.name.to_string(), r.report.duplication_percent));
    }
    // The paper's remark: a monotone (SOP-form) voter has 0% duplication.
    let alt = xsfq_benchmarks::epfl::voter_monotone(63);
    let r = SynthesisFlow::new().run(&alt).expect("flow");
    rows.push(("voter(monotone)".into(), r.report.duplication_percent));
    rows
}

/// Render Table 3.
pub fn table3_text() -> String {
    let mut out = String::new();
    writeln!(out, "Table 3 — duplication penalty, EPFL control circuits").unwrap();
    for (name, d) in table3() {
        writeln!(out, "  {name:<16} {d:>5.0}%").unwrap();
    }
    out
}

/// Table 4: ISCAS85 + EPFL combinational comparison vs the PBMap-style
/// baseline.
pub fn table4() -> Vec<EvalRow> {
    xsfq_benchmarks::table4_circuits()
        .iter()
        .map(|b| evaluate(b.name, EVAL_EFFORT))
        .collect()
}

/// Table 6: ISCAS89 sequential comparison vs the qSeq-style baseline.
pub fn table6() -> Vec<EvalRow> {
    xsfq_benchmarks::table6_circuits()
        .iter()
        .map(|b| evaluate(b.name, EVAL_EFFORT))
        .collect()
}

/// Render Table 4/6 rows.
pub fn render_eval(title: &str, rows: &[EvalRow]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:>8} {:>6} {:>9} {:>8} {:>12}",
        "Circuit", "RSFQ #JJ", "#LA/FA", "Dupl", "#DROC", "#JJ", "JJ savings"
    )
    .unwrap();
    let mut geo = (0.0f64, 0.0f64, 0usize);
    for r in rows {
        let (s1, s2) = r.savings();
        writeln!(
            out,
            "{:<12} {:>10} {:>8} {:>5.0}% {:>4}/{:<4} {:>8} {:>5.1}/{:<5.1}x",
            r.name, r.baseline_jj, r.la_fa, r.dupl, r.drocs.0, r.drocs.1, r.xsfq_jj, s1, s2
        )
        .unwrap();
        geo.0 += s1.ln();
        geo.1 += s2.ln();
        geo.2 += 1;
    }
    if geo.2 > 0 {
        writeln!(
            out,
            "geomean savings: {:.1}x / {:.1}x (without/with clock splitting)",
            (geo.0 / geo.2 as f64).exp(),
            (geo.1 / geo.2 as f64).exp()
        )
        .unwrap();
    }
    out
}

/// One row of Table 5 (c6288 pipelining).
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Architectural / circuit pipeline stages.
    pub stages: (usize, usize),
    /// Total JJs.
    pub jj: u64,
    /// LA/FA cells.
    pub la_fa: usize,
    /// Duplication (%).
    pub dupl: f64,
    /// DROCs (plain, preloaded).
    pub drocs: (usize, usize),
    /// Logical depth without / with splitters.
    pub depth: (usize, usize),
    /// Circuit / architectural clock (GHz).
    pub clock_ghz: (f64, f64),
}

/// Table 5: pipelining c6288.
pub fn table5() -> Vec<Table5Row> {
    let aig = xsfq_benchmarks::by_name("c6288").unwrap();
    let mut rows = Vec::new();
    for stages in [0usize, 1, 2] {
        let r = SynthesisFlow::new()
            .effort(EVAL_EFFORT)
            .pipeline_stages(stages)
            .run(&aig)
            .expect("flow");
        rows.push(Table5Row {
            stages: (stages, 2 * stages),
            jj: r.report.jj_total,
            la_fa: r.report.la_fa,
            dupl: r.report.duplication_percent,
            drocs: (r.report.drocs_plain, r.report.drocs_preload),
            depth: (r.report.depth_logic, r.report.depth_with_splitters),
            clock_ghz: (r.report.circuit_ghz, r.report.arch_ghz),
        });
    }
    rows
}

/// Render Table 5.
pub fn table5_text() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 5 — post-synthesis results for c6288 (pipelining)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>6} {:>11} {:>12} {:>14}",
        "Stages", "#JJ", "#LA/FA", "Dupl", "#DROC", "Depth", "Clock (GHz)"
    )
    .unwrap();
    for r in table5() {
        writeln!(
            out,
            "{:>3}/{:<4} {:>8} {:>8} {:>5.0}% {:>5}/{:<5} {:>6}/{:<5} {:>6.1}/{:<6.1}",
            r.stages.0,
            r.stages.1,
            r.jj,
            r.la_fa,
            r.dupl,
            r.drocs.0,
            r.drocs.1,
            r.depth.0,
            r.depth.1,
            r.clock_ghz.0,
            r.clock_ghz.1
        )
        .unwrap();
    }
    out
}

/// Figure 2: LA and FA analog waveforms (pulse arrival/emission times from
/// the RCSJ substrate).
pub fn fig2() -> String {
    use xsfq_spice::transient::{transient, TransientOptions};
    let mut out = String::new();
    writeln!(
        out,
        "Figure 2 — LA/FA SPICE-level behaviour (RCSJ substrate)"
    )
    .unwrap();
    let opts = TransientOptions {
        t_end_ps: 160.0,
        ..Default::default()
    };
    // LA: inputs at 10 and 50 ps → one output after the last arrival.
    let mut la = xsfq_spice::cells::la_cell();
    la.circuit.pulse(la.inputs[0], 10.0, 500e-6, 2.0);
    la.circuit.pulse(la.inputs[1], 50.0, 500e-6, 2.0);
    let wf = transient(&la.circuit, &opts);
    writeln!(
        out,
        "  LA: a@10ps, b@50ps → output pulses at {:?} ps (last arrival + delay)",
        wf.pulse_times(&la.circuit, la.output_junctions[0])
    )
    .unwrap();
    // FA: inputs at 10 and 50 ps → one output from the first arrival.
    let mut fa = xsfq_spice::cells::fa_cell();
    fa.circuit.pulse(fa.inputs[0], 10.0, 500e-6, 2.0);
    fa.circuit.pulse(fa.inputs[1], 50.0, 500e-6, 2.0);
    let wf = transient(&fa.circuit, &opts);
    let fa_pulses = wf.pulse_times(&fa.circuit, fa.output_junctions[0]);
    writeln!(
        out,
        "  FA: a@10ps, b@50ps → output pulses at {fa_pulses:?} ps (first arrival + delay;"
    )
    .unwrap();
    writeln!(
        out,
        "      note: this analog FA passes well-separated second pulses — the discrete-cell"
    )
    .unwrap();
    writeln!(
        out,
        "      FSM in xsfq-pulse enforces the exact Table 1 swallow semantics)"
    )
    .unwrap();
    out
}

/// Figure 3: DROC preloading via the DC-to-SFQ line.
pub fn fig3() -> String {
    use xsfq_spice::transient::{transient, TransientOptions};
    let mut out = String::new();
    writeln!(out, "Figure 3 — DRO(C) preloading from a DC line").unwrap();
    let mut fx = xsfq_spice::cells::dro_cell();
    // The global DC line is energized during the initialization window
    // (5–45 ps), loading one fluxon into the storage loop.
    fx.circuit.pulse(fx.inputs[2], 5.0, 60e-6, 40.0);
    fx.circuit.pulse(fx.inputs[1], 80.0, 150e-6, 2.0);
    fx.circuit.pulse(fx.inputs[1], 140.0, 150e-6, 2.0);
    let wf = transient(
        &fx.circuit,
        &TransientOptions {
            t_end_ps: 200.0,
            ..Default::default()
        },
    );
    let pulses = wf.pulse_times(&fx.circuit, fx.output_junctions[0]);
    writeln!(out, "  DC preload window 5–45 ps; clocks at 80 and 140 ps").unwrap();
    writeln!(
        out,
        "  readout pulses at {pulses:?} ps — the preloaded 1 appears on the first clock only"
    )
    .unwrap();
    out
}

/// Figures 4 & 5: the full-adder mapping progression
/// (direct 18 → AIG 14 → positive-polarity 11 → heuristic 10 cells).
pub fn fig4_5() -> String {
    use xsfq_aig::{build, Aig};
    let mut out = String::new();
    writeln!(out, "Figures 4–5 — full-adder mapping progression").unwrap();
    // Direct mapping of the 9-NAND "typical CMOS" netlist (§3.1.1).
    let mut nand_fa = Aig::new("fa9");
    let a = nand_fa.input("a");
    let b = nand_fa.input("b");
    let c = nand_fa.input("cin");
    let x1 = nand_fa.nand(a, b);
    let x2 = nand_fa.nand(a, x1);
    let x3 = nand_fa.nand(b, x1);
    let s1 = nand_fa.nand(x2, x3);
    let x4 = nand_fa.nand(s1, c);
    let x5 = nand_fa.nand(s1, x4);
    let x6 = nand_fa.nand(c, x4);
    let s = nand_fa.nand(x5, x6);
    let cout = nand_fa.nand(x1, x4);
    nand_fa.output("s", s);
    nand_fa.output("cout", cout);
    let direct = xsfq_core::map_xsfq(
        &nand_fa,
        &xsfq_core::MapOptions {
            polarity: PolarityMode::DualRail,
            ..Default::default()
        },
    );
    let st = direct.physical.stats();
    writeln!(
        out,
        "  §3.1.1 direct (9 NAND → pairs): {} LA/FA, {} splitters, {} JJ",
        st.la_fa, st.splitters, st.jj_total
    )
    .unwrap();

    let mut fa = Aig::new("fa");
    let a = fa.input("a");
    let b = fa.input("b");
    let c = fa.input("cin");
    let (s, co) = build::full_adder(&mut fa, a, b, c);
    fa.output("s", s);
    fa.output("cout", co);
    for (label, mode) in [
        ("Fig 4  (minimal AIG, dual-rail)", PolarityMode::DualRail),
        ("Fig 5i (positive outputs)", PolarityMode::AllPositive),
        (
            "Fig 5ii (phase-assignment heuristic)",
            PolarityMode::Heuristic,
        ),
    ] {
        let m = xsfq_core::map_xsfq(
            &fa,
            &xsfq_core::MapOptions {
                polarity: mode,
                ..Default::default()
            },
        );
        let st = m.physical.stats();
        writeln!(
            out,
            "  {label}: {} LA/FA, {} splitters, {} JJ",
            st.la_fa, st.splitters, st.jj_total
        )
        .unwrap();
    }
    out
}

/// Figure 7: pulse-level simulation of the 2-bit xSFQ counter with the
/// trigger cycle, rendered as an ASCII waveform.
pub fn fig7() -> String {
    use xsfq_aig::Aig;
    let mut g = Aig::new("cnt2");
    let q0 = g.latch("q0", false);
    let q1 = g.latch("q1", false);
    g.set_latch_next(q0, !q0);
    let n1 = g.xor(q1, q0);
    g.set_latch_next(q1, n1);
    g.output("out0", q0);
    g.output("out1", q1);
    let r = SynthesisFlow::new().run(&g).expect("flow");

    let stats = r.netlist().stats();
    let t = stats.critical_delay_ps + 60.0;
    let mut sim = PulseSim::new(r.netlist());
    sim.trigger(0.0);
    let edges = 12;
    for e in 1..=edges {
        sim.clock(e as f64 * t);
    }
    let t_end = (edges + 1) as f64 * t;
    sim.run_until(t_end);

    let trg = wave::Track {
        label: "trg".into(),
        pulses: vec![0.0],
    };
    let clk = wave::Track {
        label: "clk".into(),
        pulses: (1..=edges).map(|e| e as f64 * t).collect(),
    };
    let out0 = wave::Track {
        label: "out[0]".into(),
        pulses: sim.pulses(r.netlist().outputs()[0].net).to_vec(),
    };
    let out1 = wave::Track {
        label: "out[1]".into(),
        pulses: sim.pulses(r.netlist().outputs()[1].net).to_vec(),
    };
    let mut out = String::new();
    out.push_str("Figure 7 — 2-bit xSFQ counter, pulse-level (trigger cycle then e/r phases)\n");
    out.push_str(&wave::render(&[trg, clk, out0, out1], t_end, t / 4.0, t));
    // Decode per logical cycle.
    let negs = r
        .mapped
        .assignment
        .outputs
        .iter()
        .map(|p| *p == OutputPolarity::Negative)
        .collect();
    let harness = Harness::new(r.netlist(), negs);
    let res = harness.run(&vec![vec![]; 6]);
    let counts: Vec<u8> = res
        .outputs
        .iter()
        .map(|o| (o[1] as u8) << 1 | o[0] as u8)
        .collect();
    out.push_str(&format!(
        "decoded logical cycles: {counts:?} (violations: {}, reinitialized: {})\n",
        res.violations, res.reinitialized
    ));
    out
}

/// Ablation: polarity strategies across the Table 3 suite.
pub fn ablation_polarity() -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Ablation — output phase assignment strategies (LA/FA cells)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>10}",
        "Circuit", "dual-rail", "positive", "heuristic"
    )
    .unwrap();
    for b in xsfq_benchmarks::table3_circuits() {
        let aig = (b.build)();
        let opt = xsfq_aig::opt::optimize(&aig, Effort::Fast);
        let mut cells = Vec::new();
        for mode in [
            PolarityMode::DualRail,
            PolarityMode::AllPositive,
            PolarityMode::Heuristic,
        ] {
            let m = xsfq_core::map_xsfq(
                &opt,
                &xsfq_core::MapOptions {
                    polarity: mode,
                    ..Default::default()
                },
            );
            cells.push(m.physical.stats().la_fa);
        }
        writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10}",
            b.name, cells[0], cells[1], cells[2]
        )
        .unwrap();
    }
    out
}

/// Ablation: optimization script depth vs mapped cost (c880).
pub fn ablation_opt() -> String {
    let mut out = String::new();
    writeln!(out, "Ablation — AIG optimization effort (c880)").unwrap();
    let aig = xsfq_benchmarks::by_name("c880").unwrap();
    for (label, effort) in [
        ("strash only", None),
        ("fast", Some(Effort::Fast)),
        ("standard", Some(Effort::Standard)),
        ("high", Some(Effort::High)),
    ] {
        let opt = match effort {
            None => aig.compact(),
            Some(e) => xsfq_aig::opt::optimize(&aig, e),
        };
        let m = xsfq_core::map_xsfq(&opt, &xsfq_core::MapOptions::default());
        writeln!(
            out,
            "  {:<12} nodes {:>5} → LA/FA {:>5}, JJ {:>6}",
            label,
            opt.num_ands(),
            m.physical.stats().la_fa,
            m.physical.stats().jj_total
        )
        .unwrap();
    }
    out
}
