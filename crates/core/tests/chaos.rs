//! Fault-isolation acceptance suite (CI-gated under the `chaos` feature,
//! run under both the default pool and `XSFQ_THREADS=1`).
//!
//! Deterministic faults — a panic, a stall past the job deadline, a forced
//! guard trip — are injected into specific (design, pass) coordinates of a
//! [`SynthesisFlow::run_many_isolated`] batch. The contract under test:
//!
//! * every faulted design yields a structured [`JobError`] naming the
//!   design, the failure kind, the pass in flight and the telemetry of the
//!   passes that completed before the fault;
//! * every healthy design completes **bit-identically** to a solo
//!   [`SynthesisFlow::run`] of the same options; and
//! * the executor pool survives: the same flow keeps working after the
//!   faulted batch.

#![cfg(feature = "chaos")]

use std::time::Duration;

use xsfq_aig::chaos::{FaultKind, FaultPlan};
use xsfq_aig::pass::{GuardKind, PassGuards};
use xsfq_aig::{build, sim, Aig, Lit};
use xsfq_core::{FlowError, FlowResult, JobErrorKind, SynthesisFlow};

/// A small batch with enough structural variety that "bit-identical"
/// actually constrains the optimizer and the mapper.
fn batch() -> Vec<Aig> {
    let mut adder = Aig::new("adder4");
    let a = adder.input_word("a", 4);
    let b = adder.input_word("b", 4);
    let (sum, carry) = build::ripple_add(&mut adder, &a, &b, Lit::FALSE);
    adder.output_word("sum", &sum);
    adder.output("carry", carry);

    let mut fa = Aig::new("fa");
    let a = fa.input("a");
    let b = fa.input("b");
    let c = fa.input("cin");
    let (s, co) = build::full_adder(&mut fa, a, b, c);
    fa.output("s", s);
    fa.output("cout", co);

    let mut mux = Aig::new("muxtree");
    let s0 = mux.input("s0");
    let s1 = mux.input("s1");
    let d: Vec<Lit> = (0..4).map(|i| mux.input(format!("d{i}"))).collect();
    let lo = mux.mux(s0, d[1], d[0]);
    let hi = mux.mux(s0, d[3], d[2]);
    let o = mux.mux(s1, hi, lo);
    mux.output("o", o);

    let mut chain = Aig::new("xorchain");
    let xs = chain.input_word("x", 6);
    let folded = xs[1..].iter().fold(xs[0], |acc, &x| chain.xor(acc, x));
    chain.output("parity", folded);

    vec![adder, fa, mux, chain]
}

fn assert_bit_identical(got: &FlowResult, solo: &FlowResult) {
    assert_eq!(
        got.optimized.nodes(),
        solo.optimized.nodes(),
        "optimized AIG diverged"
    );
    assert_eq!(
        got.optimized.outputs(),
        solo.optimized.outputs(),
        "optimized outputs diverged"
    );
    assert_eq!(
        got.mapped.physical, solo.mapped.physical,
        "physical netlist diverged"
    );
    assert_eq!(got.report.jj_total, solo.report.jj_total);
}

/// The ISSUE's acceptance scenario: one design panics at its first pass,
/// one stalls past its deadline, the rest must be untouched.
#[test]
fn batch_isolates_panic_and_deadline_faults() {
    let designs = batch();
    let flow = SynthesisFlow::new()
        .job_deadline(Duration::from_millis(750))
        .chaos_plan(
            FaultPlan::new()
                .fault(1, 0, FaultKind::Panic)
                .fault(2, 1, FaultKind::Stall),
        );
    let results = flow.run_many_isolated(&designs);
    assert_eq!(results.len(), designs.len());

    // Design 1 panicked inside pass 0: no pass completed, the in-flight
    // pass is attributed, and the panic message survives.
    let err = results[1].as_ref().expect_err("design 1 must panic");
    assert_eq!(err.design, 1);
    assert_eq!(err.name, "fa");
    let JobErrorKind::Panicked { message } = &err.kind else {
        panic!("expected a panic verdict, got {:?}", err.kind);
    };
    assert!(message.contains("chaos"), "payload lost: {message}");
    assert!(err.pass.is_some(), "panicking pass not attributed");
    assert!(err.passes.is_empty(), "no pass completed before the fault");

    // Design 2 stalled in pass 1 until its deadline fired: exactly one
    // completed pass of partial telemetry, and a deadline verdict (the
    // stall's safety-cap panic must *not* be misread as a crash).
    let err = results[2].as_ref().expect_err("design 2 must time out");
    assert_eq!(err.design, 2);
    assert!(
        matches!(err.kind, JobErrorKind::DeadlineExpired),
        "expected a deadline verdict, got {:?}",
        err.kind
    );
    assert_eq!(err.passes.len(), 1, "one pass completed before the stall");
    assert!(err.pass.is_some(), "stalled pass not attributed");
    assert!(err.elapsed >= Duration::from_millis(750));

    // Healthy designs are bit-identical to solo runs of the same flow.
    for &i in &[0usize, 3] {
        let got = results[i].as_ref().unwrap_or_else(|e| {
            panic!("healthy design {i} failed: {e}");
        });
        let solo = SynthesisFlow::new().run(&designs[i]).expect("solo run");
        assert_bit_identical(got, &solo);
    }

    // The pool is not poisoned: the same flow object keeps working.
    let after = flow.run(&designs[0]).expect("flow must survive the batch");
    assert_eq!(
        after.report.jj_total,
        SynthesisFlow::new()
            .run(&designs[0])
            .unwrap()
            .report
            .jj_total
    );
}

/// A forced guard trip with degradation off fails the job with the tripped
/// pass named, and the trip lands in the telemetry.
#[test]
fn injected_guard_trip_fails_the_job_when_degradation_is_off() {
    let designs = batch();
    let flow = SynthesisFlow::new().chaos_plan(FaultPlan::new().fault(0, 1, FaultKind::GuardTrip));
    let results = flow.run_many_isolated(&designs[..1]);
    let err = results[0].as_ref().expect_err("design 0 must trip");
    let JobErrorKind::Flow(FlowError::GuardTripped { pass, kind }) = &err.kind else {
        panic!("expected a guard-trip verdict, got {:?}", err.kind);
    };
    assert_eq!(*kind, GuardKind::Injected);
    assert!(!pass.is_empty());
    // The tripped pass recorded a rolled-back telemetry row.
    let tripped = err
        .passes
        .iter()
        .find(|p| p.tripped.is_some())
        .expect("trip must appear in telemetry");
    assert_eq!(&tripped.name, pass);
    assert_eq!(
        tripped.nodes_after, tripped.nodes_before,
        "tripped pass must be rolled back"
    );
}

/// The same forced trip with `degrade_to_fast` completes the job: the
/// remainder of the script is replaced by the `fast` preset, the report
/// says so, and the function is preserved.
#[test]
fn injected_guard_trip_degrades_to_the_fast_preset() {
    let designs = batch();
    let flow = SynthesisFlow::new()
        .guards(PassGuards {
            degrade_to_fast: true,
            ..PassGuards::none()
        })
        .chaos_plan(FaultPlan::new().fault(0, 1, FaultKind::GuardTrip));
    let results = flow.run_many_isolated(&designs[..1]);
    let res = results[0].as_ref().unwrap_or_else(|e| {
        panic!("degraded job must succeed: {e}");
    });
    assert!(res.report.degraded, "report must flag the degradation");
    let trip_at = res
        .report
        .passes
        .iter()
        .position(|p| p.tripped.is_some())
        .expect("trip must appear in telemetry");
    assert!(
        res.report.passes.len() > trip_at + 1,
        "fast-preset passes must run after the trip"
    );
    assert!(
        sim::random_equiv(&designs[0], &res.optimized, 16, 7),
        "degraded optimization broke the function"
    );
}

/// A guard trip under `degrade_to_fast` rolls the tripped pass back and
/// switches presets mid-script — exactly the path where a buggy rollback
/// would leave a corrupt graph behind. Paranoid checking validates the
/// graph after every pass (including the rolled-back one), so a clean
/// completion here pins the rollback's structural integrity.
#[test]
fn degraded_jobs_stay_lint_clean_under_paranoid_checking() {
    use xsfq_core::CheckLevel;
    let designs = batch();
    let flow = SynthesisFlow::new()
        .check(CheckLevel::Paranoid)
        .guards(PassGuards {
            degrade_to_fast: true,
            ..PassGuards::none()
        })
        .chaos_plan(FaultPlan::new().fault(0, 1, FaultKind::GuardTrip));
    let results = flow.run_many_isolated(&designs[..1]);
    let res = results[0].as_ref().unwrap_or_else(|e| {
        panic!("degraded job must stay lint-clean: {e}");
    });
    assert!(res.report.degraded, "report must flag the degradation");
    assert!(
        sim::random_equiv(&designs[0], &res.optimized, 16, 7),
        "degraded optimization broke the function"
    );
}

/// `run_many` (the all-or-nothing wrapper) maps an isolated deadline fault
/// to `FlowError::Cancelled(Deadline)` instead of a panic.
#[test]
fn run_many_surfaces_deadlines_as_cancellation() {
    let designs = batch();
    let flow = SynthesisFlow::new()
        .job_deadline(Duration::from_millis(400))
        .chaos_plan(FaultPlan::new().fault(2, 0, FaultKind::Stall));
    let err = flow.run_many(&designs).expect_err("the stall must surface");
    assert!(
        matches!(err, FlowError::Cancelled(xsfq_exec::CancelCause::Deadline)),
        "expected a deadline cancellation, got {err:?}"
    );
}
