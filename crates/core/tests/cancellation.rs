//! Cancellation-latency contract (CI-gated under the default pool and
//! `XSFQ_THREADS=1`): a cancelled flow aborts at the **next pass
//! boundary** — no further pass starts, the partial telemetry is exactly
//! the passes that completed, and the verdict names the cause. The matrix
//! covers a private 1-thread pool, a private 4-thread pool and the
//! process-wide executor, because the token is polled inside the parallel
//! evaluate loops too and the pool must come back healthy.

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use xsfq_aig::pass::PassStat;
use xsfq_aig::{build, Aig, Lit};
use xsfq_core::{FlowError, FlowObserver, JobErrorKind, SynthesisFlow};
use xsfq_exec::{CancelCause, CancelToken};

fn adder() -> Aig {
    let mut g = Aig::new("adder4");
    let a = g.input_word("a", 4);
    let b = g.input_word("b", 4);
    let (sum, carry) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
    g.output_word("sum", &sum);
    g.output("carry", carry);
    g
}

/// The pool matrix every scenario runs under. `XSFQ_THREADS=1` in CI
/// additionally pins the *global* row to a sequential pool.
fn flows() -> Vec<(&'static str, SynthesisFlow)> {
    vec![
        ("threads(1)", SynthesisFlow::new().threads(1)),
        ("threads(4)", SynthesisFlow::new().threads(4)),
        ("global", SynthesisFlow::new()),
    ]
}

/// Observer that cancels the token after the first completed pass.
struct CancelAfterFirstPass {
    token: CancelToken,
    seen: Arc<Mutex<Vec<PassStat>>>,
}

impl FlowObserver for CancelAfterFirstPass {
    fn on_pass(&mut self, stat: &PassStat) {
        let mut seen = self.seen.lock().unwrap();
        seen.push(stat.clone());
        if seen.len() == 1 {
            self.token.cancel();
        }
    }
}

/// A token cancelled before the run starts must abort before pass 0.
#[test]
fn pre_cancelled_token_runs_zero_passes() {
    let g = adder();
    for (label, flow) in flows() {
        let token = CancelToken::default();
        token.cancel();
        let flow = flow.cancel_token(token);
        let err = flow.run(&g).expect_err(label);
        assert!(
            matches!(err, FlowError::Cancelled(CancelCause::Explicit)),
            "{label}: expected explicit cancellation, got {err:?}"
        );
        // The isolated runner reports the same verdict with empty telemetry.
        let results = flow.run_many_isolated(std::slice::from_ref(&g));
        let job = results[0].as_ref().expect_err(label);
        assert!(
            matches!(job.kind, JobErrorKind::Cancelled),
            "{label}: {:?}",
            job.kind
        );
        assert!(job.passes.is_empty(), "{label}: no pass may run");
    }
}

/// Cancelling mid-run stops the script at the next pass boundary: exactly
/// one pass completes, and the flow returns promptly (the latency bound is
/// generous — the contract is "no further pass", not a wall-clock SLA).
#[test]
fn cancel_after_first_pass_stops_at_the_boundary() {
    let g = adder();
    // A long keep-best loop: without cancellation this runs 64 rounds.
    let script = "repeat 64 { b; rw; rf; rwz }";
    for (label, flow) in flows() {
        let token = CancelToken::default();
        let flow = flow.cancel_token(token.clone()).script_str(script).unwrap();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let mut observer = CancelAfterFirstPass {
            token: token.clone(),
            seen: seen.clone(),
        };
        let cancelled_at = Instant::now();
        let err = flow.run_observed(&g, &mut observer).expect_err(label);
        let latency = cancelled_at.elapsed();
        assert!(
            matches!(err, FlowError::Cancelled(CancelCause::Explicit)),
            "{label}: {err:?}"
        );
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen.len(),
            1,
            "{label}: the pass after the cancel must not run"
        );
        assert!(
            latency < Duration::from_secs(30),
            "{label}: flow took {latency:?} to honor the cancellation"
        );
    }
}

/// A zero deadline expires before pass 0 and is reported as a deadline —
/// not an explicit cancel — through both entry points.
#[test]
fn expired_deadline_reports_deadline_cause() {
    let g = adder();
    for (label, flow) in flows() {
        let flow = flow.job_deadline(Duration::ZERO);
        let err = flow.run(&g).expect_err(label);
        assert!(
            matches!(err, FlowError::Cancelled(CancelCause::Deadline)),
            "{label}: {err:?}"
        );
        let results = flow.run_many_isolated(std::slice::from_ref(&g));
        let job = results[0].as_ref().expect_err(label);
        assert!(
            matches!(job.kind, JobErrorKind::DeadlineExpired),
            "{label}: {:?}",
            job.kind
        );
        assert!(job.passes.is_empty(), "{label}");
    }
}

/// Cancellation must not poison the executor: after a cancelled batch,
/// the same flow configuration (and, on the `global` row, the same
/// process-wide pool) completes a healthy run identical to a fresh
/// flow's.
#[test]
fn cancellation_leaves_the_pool_healthy() {
    let g = adder();
    for (label, flow) in flows() {
        let token = CancelToken::default();
        token.cancel();
        let cancelled = flow.clone().cancel_token(token);
        assert!(
            cancelled.run_many(std::slice::from_ref(&g)).is_err(),
            "{label}"
        );
        let after = flow.run(&g).unwrap_or_else(|e| {
            panic!("{label}: pool unusable after cancellation: {e}");
        });
        let fresh = SynthesisFlow::new().run(&g).unwrap();
        assert_eq!(
            after.report.jj_total, fresh.report.jj_total,
            "{label}: results diverged after cancellation"
        );
    }
}
