//! CI gate for the static checker: everything the pipeline emits must be
//! lint-clean, and turning checking on must not perturb the result.
//!
//! * the full EPFL suite synthesizes successfully at [`CheckLevel::Stage`]
//!   (which DRCs both mapped netlists and validates the optimized AIG) and
//!   the outputs are bit-identical to an unchecked run;
//! * [`CheckLevel::Paranoid`] (per-pass validation + cut-arena audit) is
//!   clean on representative designs;
//! * a proptest sweeps random DAGs across scripts, polarity modes,
//!   interconnect styles and pipelining, asserting every combination maps
//!   lint-clean under `Stage`.
//!
//! Run in CI under both the default pool and `XSFQ_THREADS=1`, like
//! `map_identity`.

use proptest::prelude::*;

use xsfq_aig::opt::Effort;
use xsfq_aig::{Aig, Lit};
use xsfq_cells::InterconnectStyle;
use xsfq_core::{CheckLevel, PolarityMode, SynthesisFlow};
use xsfq_lint::{lint_netlist, NetlistProfile};
use xsfq_netlist::writers::write_verilog;

fn verilog(flow_result: &xsfq_core::FlowResult) -> Vec<u8> {
    let mut buf = Vec::new();
    write_verilog(flow_result.netlist(), &mut buf).unwrap();
    buf
}

/// Every EPFL design maps lint-clean at `Stage`, and the checked run's
/// netlist is byte-identical to the unchecked run's (checking observes, it
/// never rewrites).
#[test]
fn epfl_suite_is_lint_clean_at_stage_and_identical_to_unchecked() {
    let checked = SynthesisFlow::new()
        .effort(Effort::Fast)
        .check(CheckLevel::Stage);
    let unchecked = SynthesisFlow::new().effort(Effort::Fast);
    for b in xsfq_benchmarks::all()
        .iter()
        .filter(|b| b.suite == xsfq_benchmarks::Suite::Epfl)
    {
        let aig = (b.build)();
        let got = checked
            .run(&aig)
            .unwrap_or_else(|e| panic!("{}: stage-checked flow failed: {e}", b.name));
        let base = unchecked.run(&aig).unwrap();
        assert_eq!(
            verilog(&got),
            verilog(&base),
            "{}: checking changed the output",
            b.name
        );
        // Belt and braces: the physical netlist also passes a direct DRC
        // under the physical profile (single-sink nets, splitter trees).
        let diags = lint_netlist(&got.mapped.physical, NetlistProfile::Physical);
        assert!(
            !xsfq_lint::has_errors(&diags),
            "{}: physical netlist has lint errors: {}",
            b.name,
            xsfq_lint::render_text(&diags)
        );
    }
}

/// Paranoid mode — per-pass AIG validation plus the cut-arena audit — is
/// clean on designs exercising every stage (combinational, sequential,
/// pipelined, both styles).
#[test]
fn paranoid_checking_is_clean_on_representative_designs() {
    for name in ["int2float", "ctrl", "s298"] {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        SynthesisFlow::new()
            .check(CheckLevel::Paranoid)
            .run(&aig)
            .unwrap_or_else(|e| panic!("{name}: paranoid flow failed: {e}"));
    }
    let aig = xsfq_benchmarks::by_name("cavlc").unwrap();
    SynthesisFlow::new()
        .check(CheckLevel::Paranoid)
        .pipeline_stages(2)
        .style(InterconnectStyle::Ptl)
        .run(&aig)
        .expect("paranoid pipelined PTL flow");
}

/// `Off` is the default, and an explicit `Off` is the same flow object
/// configuration as the default — the zero-overhead contract is a no-op
/// code path, not a separate mode.
#[test]
fn off_is_the_default_check_level() {
    assert_eq!(
        SynthesisFlow::new().options().check,
        CheckLevel::Off,
        "default flow must not pay for checking"
    );
    let explicit = SynthesisFlow::new().check(CheckLevel::Off);
    assert_eq!(explicit.options().check, CheckLevel::Off);
    let aig = xsfq_benchmarks::by_name("ctrl").unwrap();
    let a = SynthesisFlow::new().run(&aig).unwrap();
    let b = explicit.run(&aig).unwrap();
    assert_eq!(verilog(&a), verilog(&b));
}

/// Random DAG from a recipe of (op, operand, operand) triples — the same
/// generator shape as `map_identity`, so coverage composes.
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    let n = pool.len();
    g.output("o0", pool[n - 1]);
    g.output("o1", !pool[n - 2]);
    g.output("o2", pool[n / 2]);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every pipeline output is lint-clean: random AIGs × effort × polarity
    /// mode × interconnect style × pipelining, all at `Stage` (which fails
    /// the flow on any error-severity finding).
    #[test]
    fn every_pipeline_output_is_lint_clean(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..80),
        inputs in 2usize..8,
        effort_sel in 0u8..3,
        mode_sel in 0u8..4,
        ptl in any::<bool>(),
        stages in 0usize..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let effort = match effort_sel {
            0 => Effort::Fast,
            1 => Effort::Standard,
            _ => Effort::High,
        };
        let mode = match mode_sel {
            0 => PolarityMode::DualRail,
            1 => PolarityMode::AllPositive,
            2 => PolarityMode::Heuristic,
            _ => PolarityMode::Exhaustive,
        };
        let style = if ptl {
            InterconnectStyle::Ptl
        } else {
            InterconnectStyle::Abutted
        };
        let result = SynthesisFlow::new()
            .effort(effort)
            .polarity(mode)
            .style(style)
            .pipeline_stages(stages)
            .check(CheckLevel::Stage)
            .run(&g);
        let result = match result {
            Ok(r) => r,
            Err(e) => return Err(TestCaseError::fail(format!(
                "flow failed under Stage checking: {e}"
            ))),
        };
        // The physical netlist is also clean under a direct DRC, warnings
        // included for the splitter-tree balance check.
        let diags = lint_netlist(&result.mapped.physical, NetlistProfile::Physical);
        prop_assert!(
            !xsfq_lint::has_errors(&diags),
            "physical netlist lint errors: {}",
            xsfq_lint::render_text(&diags)
        );
    }
}
