//! CI gate for the parallel mapping pipeline: the mapped physical netlist
//! must be **bit-identical** across thread counts — same cell table (kinds
//! and pin wiring, which fixes `CellId`/`NetId` numbering), same ports,
//! same trigger marks, same polarity assignment and rail requirements.
//!
//! This is the contract that makes the parallel requirements sweep and the
//! parallel polarity search safe: both evaluate pure functions of the input
//! graph and commit in a fixed order (node-index emission; candidate-order
//! flip acceptance), so scheduling cannot leak into the result. Run in CI
//! as a named step under the default pool and `XSFQ_THREADS=1`, like
//! `parallel_identity` and `script_golden`.

use proptest::prelude::*;

use xsfq_aig::{Aig, Lit};
use xsfq_core::pipeline::choose_rank_levels;
use xsfq_core::{
    map_with_assignment_pool, map_xsfq_with_pool, MapOptions, MappedDesign, PolarityAssignment,
    PolarityMode,
};
use xsfq_exec::ThreadPool;

/// Random DAG from a recipe of (op, operand, operand) triples.
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    // Several outputs so the polarity search has real choices to make.
    let n = pool.len();
    g.output("o0", pool[n - 1]);
    g.output("o1", !pool[n - 2]);
    g.output("o2", pool[n / 2]);
    g
}

fn assert_mapped_identical(a: &MappedDesign, b: &MappedDesign) -> Result<(), TestCaseError> {
    prop_assert_eq!(&a.assignment, &b.assignment, "polarity assignment");
    prop_assert_eq!(&a.requirements, &b.requirements, "rail requirements");
    prop_assert_eq!(&a.logical, &b.logical, "logical netlist");
    prop_assert_eq!(&a.physical, &b.physical, "physical netlist");
    prop_assert_eq!(a.used_nodes, b.used_nodes);
    prop_assert_eq!(a.trigger_merger_jj, b.trigger_merger_jj);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `map_xsfq` (polarity search + requirements sweep + emission) with
    /// 1 thread vs. 4 threads vs. the global pool: bit-identical mapped
    /// designs in every polarity mode.
    #[test]
    fn mapping_is_bit_identical_across_pools(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..100),
        inputs in 2usize..8,
        mode_sel in 0u8..4,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let mode = match mode_sel {
            0 => PolarityMode::DualRail,
            1 => PolarityMode::AllPositive,
            2 => PolarityMode::Heuristic,
            _ => PolarityMode::Exhaustive,
        };
        let options = MapOptions {
            polarity: mode,
            ..Default::default()
        };
        let sequential = ThreadPool::new(1);
        let parallel = ThreadPool::new(4);
        let a = map_xsfq_with_pool(&g, &options, &sequential);
        let b = map_xsfq_with_pool(&g, &options, &parallel);
        assert_mapped_identical(&a, &b)?;
        // And against the global-pool entry point the flow uses.
        let c = map_xsfq_with_pool(&g, &options, ThreadPool::global());
        assert_mapped_identical(&a, &c)?;
    }

    /// Pipelined mapping (rank-aware sweep, DROC chain creation) stays
    /// bit-identical across pools.
    #[test]
    fn pipelined_mapping_is_bit_identical_across_pools(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..80),
        inputs in 2usize..8,
        stages in 1usize..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let options = MapOptions {
            rank_levels: choose_rank_levels(&g, stages, 2),
            ..Default::default()
        };
        let sequential = ThreadPool::new(1);
        let a = map_xsfq_with_pool(&g, &options, &sequential);
        for threads in [2usize, 5] {
            let pool = ThreadPool::new(threads);
            let b = map_xsfq_with_pool(&g, &options, &pool);
            assert_mapped_identical(&a, &b)?;
        }
    }
}

/// Deterministic smoke over a structured sequential design (latch seeding
/// takes the §3.2 init-value path) plus an explicit-assignment mapping.
#[test]
fn sequential_and_explicit_assignment_identical() {
    let mut g = Aig::new("seq");
    let d = g.input("d");
    let q0 = g.latch("q0", false);
    let q1 = g.latch("q1", true);
    let x = g.xor(d, q0);
    let y = g.and(x, q1);
    g.set_latch_next(q0, y);
    g.set_latch_next(q1, !x);
    g.output("o", y);
    let options = MapOptions::default();
    let sequential = ThreadPool::new(1);
    let a = map_xsfq_with_pool(&g, &options, &sequential);
    for threads in [2, 4, 7] {
        let pool = ThreadPool::new(threads);
        let b = map_xsfq_with_pool(&g, &options, &pool);
        assert_eq!(a.physical, b.physical, "threads = {threads}");
        assert_eq!(a.logical, b.logical, "threads = {threads}");
    }
    // Explicit assignment path (ablation entry point).
    let assignment = PolarityAssignment::all_positive(&g);
    let a = map_with_assignment_pool(&g, &options, assignment.clone(), &sequential);
    let b = map_with_assignment_pool(&g, &options, assignment, &ThreadPool::new(4));
    assert_eq!(a.physical, b.physical);
}
