//! CI gate for the timing backend: slack-matching buffer insertion must be
//! invisible to the function and the untimed flow must be invisible to the
//! bytes.
//!
//! * the full EPFL suite balances under `BalanceMode::Full` with every
//!   balanced netlist sweep-CEC-equivalent to its unbalanced input,
//!   non-negative worst slack, an unchanged critical path, and a clean
//!   `X011` audit;
//! * a flow with timing unset is byte-identical — Verilog and report JSON —
//!   to the pre-timing flow (no `timing` key, no stage entry);
//! * the timing stage is bit-identical across thread counts (sequential,
//!   1-thread, 4-thread and the global pool);
//! * a proptest sweeps random DAGs across polarity modes and balance modes,
//!   asserting function, ports and non-JTL structure survive balancing;
//! * golden `analyse` numbers for three EPFL designs pin the engine's
//!   arithmetic (the values the CSV/SDC artifacts print).
//!
//! Run in CI under both the default pool and `XSFQ_THREADS=1`, like
//! `map_identity` and `lint_gate`.

use proptest::prelude::*;

use xsfq_aig::opt::Effort;
use xsfq_aig::{Aig, Lit};
use xsfq_cells::CellKind;
use xsfq_core::verify::{netlist_to_comb_aig, prove_equivalent};
use xsfq_core::{BalanceMode, CheckLevel, PolarityMode, SynthesisFlow, TimingOptions};
use xsfq_exec::ThreadPool;
use xsfq_netlist::writers::write_verilog;
use xsfq_netlist::Netlist;
use xsfq_timing::{balance_netlist, TimingAnalysis};

fn verilog(netlist: &Netlist) -> Vec<u8> {
    let mut buf = Vec::new();
    write_verilog(netlist, &mut buf).unwrap();
    buf
}

/// Balanced output must compute the same function as its input — JTLs are
/// identities in the sweep model — and keep everything except JTL count.
fn assert_balancing_invariants(name: &str, before: &Netlist, after: &Netlist) {
    assert!(
        prove_equivalent(
            &netlist_to_comb_aig(before).unwrap(),
            &netlist_to_comb_aig(after).unwrap(),
        ),
        "{name}: balancing changed the function"
    );
    for kind in [
        CellKind::La,
        CellKind::Fa,
        CellKind::Splitter,
        CellKind::Merger,
        CellKind::DcToSfq,
    ] {
        assert_eq!(
            before.count_kind(kind),
            after.count_kind(kind),
            "{name}: balancing changed the {kind:?} count"
        );
    }
    assert!(
        after.count_kind(CellKind::Jtl) >= before.count_kind(CellKind::Jtl),
        "{name}: balancing removed JTLs"
    );
    assert_eq!(before.inputs(), after.inputs(), "{name}: inputs changed");
    assert_eq!(
        before.outputs().len(),
        after.outputs().len(),
        "{name}: output count changed"
    );
    for (a, b) in before.outputs().iter().zip(after.outputs()) {
        assert_eq!(a.name, b.name, "{name}: output names changed");
    }
    after.assert_connected();
}

/// Every EPFL design balances fully: function preserved, worst slack ≥ 0,
/// critical path untouched (floor quantization never overshoots), and the
/// X011 audit comes back clean.
#[test]
fn epfl_suite_balances_clean_under_full() {
    let flow = SynthesisFlow::new().effort(Effort::Fast);
    let opts = TimingOptions::default();
    for b in xsfq_benchmarks::all()
        .iter()
        .filter(|b| b.suite == xsfq_benchmarks::Suite::Epfl)
    {
        let aig = (b.build)();
        let result = flow
            .run(&aig)
            .unwrap_or_else(|e| panic!("{}: flow failed: {e}", b.name));
        let before = &result.mapped.physical;
        let outcome = balance_netlist(before, &opts, None);
        assert!(
            outcome.summary.worst_slack_ps >= 0.0,
            "{}: negative worst slack {} after full balancing",
            b.name,
            outcome.summary.worst_slack_ps
        );
        // Floor quantization never overshoots, so the critical path is
        // preserved — up to float associativity: padded paths accumulate
        // their JTL delays one addition at a time.
        let pre = TimingAnalysis::analyze(before, &opts);
        assert!(
            (outcome.summary.critical_path_ps - pre.critical_path_ps).abs() < 1e-6,
            "{}: balancing moved the critical path ({} -> {})",
            b.name,
            pre.critical_path_ps,
            outcome.summary.critical_path_ps
        );
        let after = outcome.netlist.as_ref().unwrap_or(before);
        assert_balancing_invariants(b.name, before, after);
        let allowed = opts.allowed_skew_for(after);
        let diags = xsfq_lint::lint_timing(after, allowed);
        assert!(
            diags.is_empty(),
            "{}: residual skew after full balancing: {}",
            b.name,
            xsfq_lint::render_text(&diags)
        );
    }
}

/// Timing off is the default, adds no stage, no report key, and produces
/// bytes identical to a flow that never heard of timing.
#[test]
fn untimed_flow_is_byte_identical_and_stage_free() {
    assert!(
        SynthesisFlow::new().options().timing.is_none(),
        "default flow must not pay for timing"
    );
    let aig = xsfq_benchmarks::by_name("int2float").unwrap();
    let untimed = SynthesisFlow::new().effort(Effort::Fast).run(&aig).unwrap();
    assert!(untimed.report.timing.is_none());
    let json = untimed.report.to_json();
    assert!(
        !json.contains("\"timing\""),
        "untimed report JSON must not carry a timing key: {json}"
    );
    assert!(
        !json.contains("\"stage\":\"timing\""),
        "untimed report must not record a timing stage: {json}"
    );

    // The timed flow differs from the untimed one only by inserted JTLs and
    // the extra report fields.
    let timed = SynthesisFlow::new()
        .effort(Effort::Fast)
        .check(CheckLevel::Stage)
        .timing(TimingOptions::default())
        .run(&aig)
        .unwrap();
    let summary = timed.report.timing.as_ref().expect("timed report summary");
    assert!(summary.worst_slack_ps >= 0.0);
    assert!(timed.report.to_json().contains("\"timing\":{"));
    assert!(timed
        .report
        .stages
        .iter()
        .any(|s| s.stage.name() == "timing"));
    assert_balancing_invariants("int2float", untimed.netlist(), timed.netlist());
    assert_eq!(
        timed.netlist().count_kind(CellKind::Jtl),
        untimed.netlist().count_kind(CellKind::Jtl) + summary.buffers_inserted,
        "report buffer count disagrees with the netlist"
    );
}

/// The timing stage is deterministic across executors: sequential, a
/// 1-thread pool, a 4-thread pool and the global pool all produce the same
/// balanced netlist and the same summary floats, bit for bit.
#[test]
fn balancing_is_identical_across_pools() {
    let opts = TimingOptions::default();
    for name in ["ctrl", "int2float", "dec", "router"] {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        let result = SynthesisFlow::new().effort(Effort::Fast).run(&aig).unwrap();
        let physical = &result.mapped.physical;
        let seq = balance_netlist(physical, &opts, None);
        let one = ThreadPool::new(1);
        let four = ThreadPool::new(4);
        for (label, pool) in [
            ("1-thread", &one),
            ("4-thread", &four),
            ("global", ThreadPool::global()),
        ] {
            let got = balance_netlist(physical, &opts, Some(pool));
            assert_eq!(
                got.summary, seq.summary,
                "{name}: {label} summary diverged from sequential"
            );
            assert_eq!(
                got.netlist, seq.netlist,
                "{name}: {label} netlist diverged from sequential"
            );
        }
    }
}

/// Golden `analyse` numbers for three EPFL designs: the critical path and
/// skew the engine reports (balance off — pure analysis) and the padding
/// full balancing then spends. Pinned so a library or engine change that
/// silently shifts the artifacts fails loudly here.
#[test]
fn golden_epfl_analyse_reports() {
    // (design, critical_path_ps, worst_skew_ps, endpoints, joins, buffers)
    let golden = [
        ("ctrl", 56.6, 34.1, 26, 64, 93),
        ("int2float", 452.5, 360.2, 8, 240, 3157),
        ("dec", 57.3, 0.0, 256, 304, 0),
    ];
    let analyse = TimingOptions {
        balance: BalanceMode::Off,
        tolerance_ps: None,
    };
    for (name, critical, skew, endpoints, joins, buffers) in golden {
        let aig = xsfq_benchmarks::by_name(name).unwrap();
        let result = SynthesisFlow::new().effort(Effort::Fast).run(&aig).unwrap();
        let analysis = TimingAnalysis::analyze(&result.mapped.physical, &analyse);
        let round = |v: f64| (v * 10.0).round() / 10.0;
        assert_eq!(
            round(analysis.critical_path_ps),
            critical,
            "{name}: critical path drifted"
        );
        assert_eq!(
            round(analysis.worst_skew_ps),
            skew,
            "{name}: worst skew drifted"
        );
        assert_eq!(
            analysis.endpoints.len(),
            endpoints,
            "{name}: endpoint count drifted"
        );
        assert_eq!(analysis.joins.len(), joins, "{name}: join count drifted");
        let outcome = balance_netlist(&result.mapped.physical, &TimingOptions::default(), None);
        assert_eq!(
            outcome.summary.buffers_inserted, buffers,
            "{name}: full-balance buffer count drifted"
        );
    }
}

/// Random DAG from a recipe of (op, operand, operand) triples — the same
/// generator as `lint_gate`, so coverage composes.
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    let n = pool.len();
    g.output("o0", pool[n - 1]);
    g.output("o1", !pool[n - 2]);
    g.output("o2", pool[n / 2]);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Balancing preserves the function, the ports and the non-JTL
    /// structure of every mapped netlist, whatever the polarity mode and
    /// balance mode, and full balancing always reaches worst slack ≥ 0.
    #[test]
    fn balancing_preserves_function_and_structure(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 8..64),
        inputs in 2usize..8,
        mode_sel in 0u8..4,
        balance_sel in 0u8..3,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let mode = match mode_sel {
            0 => PolarityMode::DualRail,
            1 => PolarityMode::AllPositive,
            2 => PolarityMode::Heuristic,
            _ => PolarityMode::Exhaustive,
        };
        let balance = match balance_sel {
            0 => BalanceMode::Full,
            1 => BalanceMode::Budget(7.0),
            _ => BalanceMode::Off,
        };
        let result = SynthesisFlow::new()
            .effort(Effort::Fast)
            .polarity(mode)
            .run(&g)
            .unwrap();
        let before = &result.mapped.physical;
        let opts = TimingOptions { balance, tolerance_ps: None };
        let outcome = balance_netlist(before, &opts, None);
        if balance == BalanceMode::Off {
            prop_assert!(outcome.netlist.is_none(), "Off mode must not insert");
        }
        let after = outcome.netlist.as_ref().unwrap_or(before);
        assert_balancing_invariants("rand", before, after);
        if balance == BalanceMode::Full {
            prop_assert!(
                outcome.summary.worst_slack_ps >= 0.0,
                "full balancing left negative slack {}",
                outcome.summary.worst_slack_ps
            );
        }
        // Verilog still renders (the writer walks every cell and port).
        let _ = verilog(after);
    }
}
