//! # xsfq-core — clock-free alternating-logic synthesis
//!
//! The paper's primary contribution, reimplemented as a library:
//!
//! * [`polarity`] — backward bubble pushing and the domino-logic output
//!   phase assignment heuristic (§3.1.4–3.1.5) that collapse LA-FA pairs to
//!   single cells,
//! * [`map`] — dual-rail technology mapping onto the xSFQ cell library,
//!   sequential DROC pairs with the preload + trigger initialization
//!   strategy (§3.2), and pipeline DROC ranks (§4.2.2),
//! * [`pipeline`] — min-width rank placement (the ABC-retiming substitute),
//! * [`verify`] — reconstruction + SAT proof that mapping preserved the
//!   function,
//! * [`flow`] — the one-call driver producing the reports behind the
//!   paper's Tables 3–6.
//!
//! ```
//! use xsfq_aig::{Aig, build};
//! use xsfq_core::SynthesisFlow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let cin = aig.input("cin");
//! let (s, c) = build::full_adder(&mut aig, a, b, cin);
//! aig.output("sum", s);
//! aig.output("cout", c);
//!
//! let result = SynthesisFlow::new().verify(true).run(&aig)?;
//! assert_eq!(result.report.jj_total, 58); // paper Figure 5ii
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod flow;
pub mod map;
pub mod pipeline;
pub mod polarity;
pub mod verify;

pub use flow::{
    flow_registry, FlowError, FlowObserver, FlowOptions, FlowReport, FlowResult, FlowStage,
    JobError, JobErrorKind, StageStat, SynthesisFlow,
};
pub use map::{
    map_with_assignment, map_with_assignment_pool, map_xsfq, map_xsfq_with_pool, MapOptions,
    MappedDesign,
};
pub use polarity::{
    assign_polarities, assign_polarities_with_pool, OutputPolarity, PolarityAssignment,
    PolarityMode, RailRequirements,
};
pub use xsfq_lint::CheckLevel;
pub use xsfq_timing::{BalanceMode, TimingOptions, TimingSummary};
