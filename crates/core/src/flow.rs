//! The end-to-end synthesis flow (the paper's §3 + §4 methodology) as a
//! staged pipeline over the composable pass manager: run a pass script on
//! the AIG, choose output polarities, map to clock-free dual-rail xSFQ
//! cells, insert pipeline ranks and splitters, and report the numbers the
//! evaluation tables are built from.
//!
//! Every stage is observable ([`FlowObserver`]), the optimization recipe is
//! a first-class [`Script`] (the legacy [`Effort`] knob is a facade over
//! the `fast`/`standard`/`high` presets), and whole designs batch across
//! the executor with [`SynthesisFlow::run_many`].

use std::error::Error;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

use xsfq_aig::opt::Effort;
use xsfq_aig::pass::{
    CompiledScript, GuardKind, PassArenas, PassCtx, PassGuards, PassObserver, PassRegistry,
    PassStat, Script, ScriptError,
};
use xsfq_aig::Aig;
use xsfq_cells::{CellKind, InterconnectStyle};
use xsfq_exec::{panic_message, CancelCause, CancelToken, ThreadPool};
use xsfq_lint::{CheckLevel, Diag, NetlistProfile};
use xsfq_netlist::Netlist;

use crate::map::{map_with_assignment_pool, MapOptions, MappedDesign};
use crate::pipeline::choose_rank_levels;
use crate::polarity::{assign_polarities_with_pool, PolarityMode};
use crate::verify::verify_mapping;
use xsfq_timing::{BalanceMode, TimingOptions, TimingSummary};

/// The pass registry the synthesis flow compiles scripts against: the
/// structural AIG passes plus `f`/`fraig` from `xsfq-sat`.
pub fn flow_registry() -> PassRegistry {
    let mut registry = PassRegistry::structural();
    xsfq_sat::pass::register(&mut registry);
    registry
}

/// Flow configuration (builder-style).
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// AIG optimization pass script (see [`xsfq_aig::pass`] for the
    /// grammar). Defaults to the `standard` preset; the legacy
    /// [`SynthesisFlow::effort`] builder swaps in the matching preset.
    pub script: Script,
    /// Output polarity strategy.
    pub polarity: PolarityMode,
    /// Interconnect style / library variant.
    pub style: InterconnectStyle,
    /// Architectural pipeline stages to insert (combinational designs only).
    pub pipeline_stages: usize,
    /// Window (in levels) for the min-width rank placement search.
    pub rank_window: u32,
    /// Append a SAT-sweeping pass ([`xsfq_sat::pass::FraigPass`]) after the
    /// script, merging functionally equivalent nodes the rewriting passes
    /// cannot see. (Compatibility knob — scripts can simply end in `f`.)
    pub fraig: bool,
    /// Prove the mapped netlist equivalent to the source (combinational
    /// designs; sequential designs are validated by the pulse simulator).
    pub verify: bool,
    /// Worker threads for the parallel optimization passes. `None` uses the
    /// process-wide executor pool (sized by `XSFQ_THREADS`, defaulting to
    /// `available_parallelism`); `Some(n)` runs this flow on a private
    /// `n`-thread pool. The optimized AIG is bit-identical either way.
    pub threads: Option<usize>,
    /// Cooperative cancellation token. Cancelling it aborts every job of a
    /// running batch at the next pass or evaluate-batch boundary; `None`
    /// means "never cancelled externally".
    pub cancel: Option<CancelToken>,
    /// Wall-clock deadline per job, measured from that job's start. A job
    /// exceeding it is cancelled (its [`JobError`] reports
    /// [`JobErrorKind::DeadlineExpired`]); other jobs are unaffected.
    pub job_deadline: Option<Duration>,
    /// Per-pass resource budgets for the optimization script (node growth,
    /// wall time, and whether a trip degrades the remainder of the script
    /// to the `fast` preset instead of failing the job). Defaults to no
    /// budgets. See [`PassGuards`].
    pub guards: PassGuards,
    /// Static checking level (see [`CheckLevel`]): `Off` is byte-for-byte
    /// the unchecked flow, `Stage` validates the AIG after the optimize
    /// stage and DRCs both mapped netlists after the map stage, `Paranoid`
    /// additionally validates after every optimization pass and audits the
    /// cut arena. Error-severity findings fail the job with
    /// [`FlowError::LintFailed`].
    pub check: CheckLevel,
    /// Optional post-Map timing stage (see [`xsfq_timing`]): static
    /// arrival/slack analysis of the physical netlist plus slack-matching
    /// JTL insertion per [`TimingOptions::balance`]. `None` (the default)
    /// skips the stage entirely — the flow's outputs are byte-identical
    /// to a build without the timing subsystem.
    pub timing: Option<TimingOptions>,
    /// Deterministic fault-injection plan, applied per batch design index
    /// by [`SynthesisFlow::run_many_isolated`] (solo [`SynthesisFlow::run`]
    /// ignores it). Test-only; see [`xsfq_aig::chaos`].
    #[cfg(feature = "chaos")]
    pub chaos: Option<xsfq_aig::chaos::FaultPlan>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            script: Script::preset(Effort::Standard),
            polarity: PolarityMode::Heuristic,
            style: InterconnectStyle::Abutted,
            pipeline_stages: 0,
            rank_window: 3,
            fraig: false,
            verify: false,
            threads: None,
            cancel: None,
            job_deadline: None,
            guards: PassGuards::none(),
            check: CheckLevel::Off,
            timing: None,
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }
}

/// Error raised by [`SynthesisFlow::run`].
#[derive(Debug)]
pub enum FlowError {
    /// The optimization script failed to parse or compile.
    Script(ScriptError),
    /// Pipelining was requested for a sequential design.
    PipelineOnSequential,
    /// Post-mapping verification failed.
    Verification(crate::verify::VerifyMappingError),
    /// The job was cancelled (explicitly, or by a deadline — see the
    /// [`CancelCause`]) before the flow completed.
    Cancelled(CancelCause),
    /// A pass tripped its resource guard and degradation was off
    /// ([`PassGuards::degrade_to_fast`] false): the job stopped at the
    /// trip, rolled back to the pre-pass graph.
    GuardTripped {
        /// The pass whose budget was violated.
        pass: String,
        /// Which budget.
        kind: GuardKind,
    },
    /// A static check ([`FlowOptions::check`]) found error-severity
    /// diagnostics; the job stopped at the stage that produced the
    /// ill-formed structure.
    LintFailed(Vec<Diag>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Script(e) => write!(f, "{e}"),
            FlowError::PipelineOnSequential => {
                write!(f, "pipeline stages require a combinational design")
            }
            FlowError::Verification(e) => write!(f, "{e}"),
            FlowError::Cancelled(CancelCause::Explicit) => write!(f, "job cancelled"),
            FlowError::Cancelled(CancelCause::Deadline) => write!(f, "job deadline expired"),
            FlowError::GuardTripped { pass, kind } => {
                write!(f, "pass `{pass}` tripped its {kind} guard")
            }
            FlowError::LintFailed(diags) => {
                write!(f, "lint failed with {} finding(s)", diags.len())?;
                for d in diags.iter().take(3) {
                    write!(f, "; {d}")?;
                }
                if diags.len() > 3 {
                    write!(f, "; …")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Script(e) => Some(e),
            FlowError::Verification(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScriptError> for FlowError {
    fn from(e: ScriptError) -> Self {
        FlowError::Script(e)
    }
}

/// Structured failure of one job of a [`SynthesisFlow::run_many_isolated`]
/// batch: which design, what went wrong, which pass was in flight, how long
/// the job ran, and the per-pass telemetry accumulated before the fault.
#[derive(Debug)]
pub struct JobError {
    /// Index of the design in the batch slice.
    pub design: usize,
    /// Design name.
    pub name: String,
    /// What went wrong.
    pub kind: JobErrorKind,
    /// The pass in flight when the fault hit, if it hit inside the
    /// optimization script (`None` for config errors and faults in the
    /// later flow stages).
    pub pass: Option<String>,
    /// Wall-clock time the job ran before failing.
    pub elapsed: Duration,
    /// Per-pass telemetry of the passes that completed before the fault.
    pub passes: Vec<PassStat>,
}

/// The failure taxonomy of a [`JobError`].
#[derive(Debug)]
pub enum JobErrorKind {
    /// The job panicked; the panic payload's message, with the worker
    /// attribution preserved when the panic crossed a parallel section
    /// ([`xsfq_exec::WorkerPanic`]).
    Panicked {
        /// The panic payload rendered as a string.
        message: String,
    },
    /// The batch's [`CancelToken`] was cancelled explicitly.
    Cancelled,
    /// The job overran [`FlowOptions::job_deadline`].
    DeadlineExpired,
    /// The flow failed with an ordinary error (script, pipelining,
    /// verification, or an undegraded guard trip).
    Flow(FlowError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} (`{}`)", self.design, self.name)?;
        match &self.kind {
            JobErrorKind::Panicked { message } => write!(f, " panicked: {message}")?,
            JobErrorKind::Cancelled => write!(f, " cancelled")?,
            JobErrorKind::DeadlineExpired => write!(f, " exceeded its deadline")?,
            JobErrorKind::Flow(e) => write!(f, " failed: {e}")?,
        }
        if let Some(pass) = &self.pass {
            write!(f, " (in pass `{pass}`)")?;
        }
        write!(
            f,
            " after {:.2} ms, {} passes completed",
            self.elapsed.as_secs_f64() * 1e3,
            self.passes.len()
        )
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            JobErrorKind::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl JobErrorKind {
    /// Stable lowercase name of the failure class (wire protocols,
    /// telemetry keys).
    pub fn name(&self) -> &'static str {
        match self {
            JobErrorKind::Panicked { .. } => "panicked",
            JobErrorKind::Cancelled => "cancelled",
            JobErrorKind::DeadlineExpired => "deadline",
            JobErrorKind::Flow(_) => "flow",
        }
    }

    /// Whether a retry could plausibly succeed: panics (a poisoned arena,
    /// a transient resource spike) and guard trips (budgets may pass on a
    /// quieter machine) are transient; cancellations, deadline overruns
    /// and deterministic flow errors are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            JobErrorKind::Panicked { .. } | JobErrorKind::Flow(FlowError::GuardTripped { .. })
        )
    }
}

/// The flow's pipeline segments, in execution order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlowStage {
    /// Pass-script optimization of the AIG.
    Optimize,
    /// Rank-level selection for architectural pipelining.
    Pipeline,
    /// Output polarity assignment (§3.1.4–3.1.5).
    Polarity,
    /// Dual-rail technology mapping + splitter insertion.
    Map,
    /// Static timing analysis + slack-matching buffer insertion
    /// (only present when [`FlowOptions::timing`] is set).
    Timing,
    /// SAT proof that mapping preserved the function.
    Verify,
}

impl FlowStage {
    /// Stable lowercase name (telemetry keys).
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Optimize => "optimize",
            FlowStage::Pipeline => "pipeline",
            FlowStage::Polarity => "polarity",
            FlowStage::Map => "map",
            FlowStage::Timing => "timing",
            FlowStage::Verify => "verify",
        }
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock telemetry for one executed flow stage.
#[derive(Copy, Clone, Debug)]
pub struct StageStat {
    /// Which stage ran.
    pub stage: FlowStage,
    /// Wall-clock time in nanoseconds.
    pub wall_ns: u64,
}

/// Observer over a flow run: stage completions plus the per-pass telemetry
/// of the optimization script.
///
/// All methods default to no-ops so implementors subscribe only to what
/// they need. [`SynthesisFlow::run_observed`] drives it; plain
/// [`SynthesisFlow::run`] records the same telemetry into
/// [`FlowReport::passes`] / [`FlowReport::stages`] without callbacks.
pub trait FlowObserver {
    /// Called after every stage, in execution order.
    fn on_stage(&mut self, _stat: &StageStat) {}
    /// Called before every optimization pass starts. Fault isolation uses
    /// this to attribute a panic or stall to the pass that was in flight.
    fn on_pass_start(&mut self, _name: &str) {}
    /// Called after every optimization pass, in execution order.
    fn on_pass(&mut self, _stat: &PassStat) {}
}

/// Owns the optional [`FlowObserver`] for one flow run: forwards
/// script-engine pass telemetry (as a [`PassObserver`]) and stage
/// completions to it. Under [`CheckLevel::Paranoid`] it also validates
/// the graph after every pass (via [`PassObserver::on_graph`], which
/// sees the post-rollback graph) and accumulates any findings.
struct ObserverProxy<'o> {
    obs: Option<&'o mut dyn FlowObserver>,
    check: CheckLevel,
    lint: Vec<Diag>,
}

impl ObserverProxy<'_> {
    fn on_stage(&mut self, stat: &StageStat) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_stage(stat);
        }
    }
}

impl PassObserver for ObserverProxy<'_> {
    fn on_pass_start(&mut self, name: &str) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_pass_start(name);
        }
    }
    fn on_pass(&mut self, stat: &PassStat) {
        if let Some(obs) = self.obs.as_deref_mut() {
            obs.on_pass(stat);
        }
    }
    fn on_graph(&mut self, aig: &Aig) {
        if self.check >= CheckLevel::Paranoid {
            self.lint.extend(xsfq_lint::lint_aig(aig));
        }
    }
}

/// Per-design report — the row format of the paper's Tables 3–6, plus the
/// stage/pass telemetry of the run that produced it.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Design name.
    pub name: String,
    /// AND nodes after optimization.
    pub aig_nodes: usize,
    /// AIG depth after optimization.
    pub aig_depth: usize,
    /// LA/FA cell count.
    pub la_fa: usize,
    /// Duplication penalty in percent.
    pub duplication_percent: f64,
    /// Splitter count.
    pub splitters: usize,
    /// DROC cells without preloading hardware.
    pub drocs_plain: usize,
    /// DROC cells with preloading hardware.
    pub drocs_preload: usize,
    /// Total JJ count (cells + trigger merger; no clock tree).
    pub jj_total: u64,
    /// JJ cost of the DROC clock tree (zero for combinational designs).
    pub jj_clock_tree: u64,
    /// Logic depth (LA/FA on the critical path).
    pub depth_logic: usize,
    /// Logic depth including splitters.
    pub depth_with_splitters: usize,
    /// Critical path delay in ps (storage-to-storage).
    pub critical_delay_ps: f64,
    /// Circuit clock frequency (GHz).
    pub circuit_ghz: f64,
    /// Architectural clock frequency (GHz) — half the circuit clock, since
    /// a logical cycle spans the excite and relax phases (§4.2.2).
    pub arch_ghz: f64,
    /// Per-pass telemetry of the optimization script, in execution order.
    pub passes: Vec<PassStat>,
    /// Wall-clock telemetry per flow stage, in execution order.
    pub stages: Vec<StageStat>,
    /// Whether a guard trip degraded the optimization script to the `fast`
    /// preset ([`PassGuards::degrade_to_fast`]); the tripping pass carries
    /// [`PassStat::tripped`] in [`FlowReport::passes`].
    pub degraded: bool,
    /// Result of the optional Timing stage: engine-measured critical path,
    /// worst slack/skew, and the buffer/JJ cost of balancing. `None` when
    /// [`FlowOptions::timing`] was unset (and then absent from the JSON,
    /// keeping untimed reports byte-identical to earlier releases).
    pub timing: Option<TimingSummary>,
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A JSON number token: finite floats print as-is, non-finite as `null`
/// (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

impl FlowReport {
    /// Serialize the report as a single JSON object — the wire format of
    /// the serving daemon's result payload. Hand-rolled (std-only
    /// workspace); keys are stable, schema tagged `xsfq-flow-report/1`.
    pub fn to_json(&self) -> String {
        let mut passes = String::from("[");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                passes.push(',');
            }
            passes.push_str(&format!(
                "{{\"name\":\"{}\",\"wall_ns\":{},\"nodes_before\":{},\"nodes_after\":{},\
                 \"depth_before\":{},\"depth_after\":{},\"commits\":{},\"tripped\":{}}}",
                json_escape(&p.name),
                p.wall_ns,
                p.nodes_before,
                p.nodes_after,
                p.depth_before,
                p.depth_after,
                p.commits,
                match p.tripped {
                    Some(kind) => format!("\"{}\"", kind.name()),
                    None => "null".to_string(),
                },
            ));
        }
        passes.push(']');
        let mut stages = String::from("[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                stages.push(',');
            }
            stages.push_str(&format!(
                "{{\"stage\":\"{}\",\"wall_ns\":{}}}",
                s.stage.name(),
                s.wall_ns
            ));
        }
        stages.push(']');
        // The `timing` key only exists when the stage ran: untimed reports
        // stay byte-identical to the pre-timing schema.
        let timing = match &self.timing {
            Some(t) => format!(",\"timing\":{}", t.to_json()),
            None => String::new(),
        };
        format!(
            "{{\"schema\":\"xsfq-flow-report/1\",\"name\":\"{}\",\"aig_nodes\":{},\
             \"aig_depth\":{},\"la_fa\":{},\"duplication_percent\":{},\"splitters\":{},\
             \"drocs_plain\":{},\"drocs_preload\":{},\"jj_total\":{},\"jj_clock_tree\":{},\
             \"depth_logic\":{},\"depth_with_splitters\":{},\"critical_delay_ps\":{},\
             \"circuit_ghz\":{},\"arch_ghz\":{},\"degraded\":{},\"passes\":{passes},\
             \"stages\":{stages}{timing}}}",
            json_escape(&self.name),
            self.aig_nodes,
            self.aig_depth,
            self.la_fa,
            json_f64(self.duplication_percent),
            self.splitters,
            self.drocs_plain,
            self.drocs_preload,
            self.jj_total,
            self.jj_clock_tree,
            self.depth_logic,
            self.depth_with_splitters,
            json_f64(self.critical_delay_ps),
            json_f64(self.circuit_ghz),
            json_f64(self.arch_ghz),
            self.degraded,
        )
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LA/FA ({:.0}% dupl), {} splitters, {}/{} DROC, {} JJ, depth {}/{}, {:.1}/{:.1} GHz",
            self.name,
            self.la_fa,
            self.duplication_percent,
            self.splitters,
            self.drocs_plain,
            self.drocs_preload,
            self.jj_total,
            self.depth_logic,
            self.depth_with_splitters,
            self.circuit_ghz,
            self.arch_ghz,
        )
    }
}

/// Result of a flow run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The optimized AIG the mapping consumed.
    pub optimized: Aig,
    /// Full mapping artifacts (logical + physical netlists, polarity data).
    pub mapped: MappedDesign,
    /// The table-row report.
    pub report: FlowReport,
}

impl FlowResult {
    /// The physical (splitter-inserted) netlist — borrows
    /// `mapped.physical` instead of cloning it per run.
    pub fn netlist(&self) -> &Netlist {
        &self.mapped.physical
    }
}

/// Per-job runtime setup threaded into [`SynthesisFlow::run_compiled`]:
/// the job's cancellation token and (under the `chaos` feature) its fault
/// injector.
struct JobSetup {
    token: CancelToken,
    #[cfg(feature = "chaos")]
    chaos: Option<xsfq_aig::chaos::Injector>,
}

/// External telemetry recorder for fault-isolated jobs: unlike the
/// [`PassCtx`]'s internal sink, it lives *outside* the `catch_unwind`
/// boundary, so the completed-pass stats and the name of the in-flight
/// pass survive a panic and land in the [`JobError`].
#[derive(Default)]
struct JobTrace {
    passes: Vec<PassStat>,
    current_pass: Option<String>,
}

impl FlowObserver for JobTrace {
    fn on_pass_start(&mut self, name: &str) {
        self.current_pass = Some(name.to_string());
    }
    fn on_pass(&mut self, stat: &PassStat) {
        self.passes.push(stat.clone());
        self.current_pass = None;
    }
}

/// The pool a flow runs on: private when `threads(n)` was set, otherwise
/// the process-wide executor.
enum FlowPool {
    Private(ThreadPool),
    Global,
}

impl FlowPool {
    fn get(&self) -> &ThreadPool {
        match self {
            FlowPool::Private(pool) => pool,
            FlowPool::Global => ThreadPool::global(),
        }
    }
}

/// The xSFQ synthesis flow.
///
/// The optimization recipe is a pass script: either a preset via
/// [`SynthesisFlow::effort`] or any ABC-style script via
/// [`SynthesisFlow::script_str`] (grammar in [`xsfq_aig::pass`]). Batches
/// of designs run concurrently through [`SynthesisFlow::run_many`].
///
/// ```
/// use xsfq_aig::{Aig, build};
/// use xsfq_core::SynthesisFlow;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut aig = Aig::new("fa");
/// let a = aig.input("a");
/// let b = aig.input("b");
/// let cin = aig.input("cin");
/// let (s, c) = build::full_adder(&mut aig, a, b, cin);
/// aig.output("sum", s);
/// aig.output("cout", c);
///
/// let result = SynthesisFlow::new().verify(true).run(&aig)?;
/// // Figure 5ii: the flow lands on 10 LA/FA cells and 58 JJs.
/// assert_eq!(result.report.la_fa, 10);
/// assert_eq!(result.report.jj_total, 58);
/// // Every optimization pass left a telemetry row.
/// assert!(!result.report.passes.is_empty());
///
/// // The same flow, scripted explicitly:
/// let scripted = SynthesisFlow::new().script_str("standard")?.run(&aig)?;
/// assert_eq!(scripted.report.jj_total, result.report.jj_total);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SynthesisFlow {
    options: FlowOptions,
}

impl SynthesisFlow {
    /// Flow with default options (standard-preset script, heuristic
    /// polarity, abutted interconnect, no pipelining, no verification).
    pub fn new() -> Self {
        Self::default()
    }

    /// Flow with explicit options.
    pub fn with_options(options: FlowOptions) -> Self {
        SynthesisFlow { options }
    }

    /// Set the optimization effort — a compatibility facade that installs
    /// the matching preset script ([`Script::preset`]).
    #[must_use]
    pub fn effort(mut self, effort: Effort) -> Self {
        self.options.script = Script::preset(effort);
        self
    }

    /// Set the optimization pass script.
    #[must_use]
    pub fn script(mut self, script: Script) -> Self {
        self.options.script = script;
        self
    }

    /// Parse and set the optimization pass script (ABC-style, e.g.
    /// `"b; rw; rf; b; rwz; rw"` or `"standard; f"`).
    ///
    /// # Errors
    ///
    /// [`ScriptError`] when the text does not match the script grammar.
    pub fn script_str(self, text: &str) -> Result<Self, ScriptError> {
        Ok(self.script(Script::parse(text)?))
    }

    /// Set the polarity mode.
    #[must_use]
    pub fn polarity(mut self, mode: PolarityMode) -> Self {
        self.options.polarity = mode;
        self
    }

    /// Set the interconnect style.
    #[must_use]
    pub fn style(mut self, style: InterconnectStyle) -> Self {
        self.options.style = style;
        self
    }

    /// Set the number of architectural pipeline stages.
    #[must_use]
    pub fn pipeline_stages(mut self, stages: usize) -> Self {
        self.options.pipeline_stages = stages;
        self
    }

    /// Enable or disable the post-script SAT-sweeping (fraig) pass.
    #[must_use]
    pub fn fraig(mut self, fraig: bool) -> Self {
        self.options.fraig = fraig;
        self
    }

    /// Enable or disable post-mapping verification.
    #[must_use]
    pub fn verify(mut self, verify: bool) -> Self {
        self.options.verify = verify;
        self
    }

    /// Run the optimization passes on a private pool of `threads` worker
    /// threads (clamped to ≥ 1) instead of the process-wide executor. The
    /// result is bit-identical for every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = Some(threads.max(1));
        self
    }

    /// Install a cancellation token. Cancelling it aborts the flow (every
    /// job of a batch) at the next pass or evaluate-batch boundary; the
    /// abort surfaces as [`FlowError::Cancelled`] /
    /// [`JobErrorKind::Cancelled`]. Completed jobs are unaffected and
    /// bit-identical to uncancelled runs.
    #[must_use]
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.options.cancel = Some(token);
        self
    }

    /// Set a per-job wall-clock deadline, measured from each job's start.
    /// A job overrunning it is cancelled cooperatively and reports
    /// [`JobErrorKind::DeadlineExpired`]; other jobs keep running.
    #[must_use]
    pub fn job_deadline(mut self, deadline: Duration) -> Self {
        self.options.job_deadline = Some(deadline);
        self
    }

    /// Install per-pass resource budgets (see [`PassGuards`]): node-growth
    /// and wall-time limits, with optional degradation to the `fast`
    /// preset instead of failing the job on a trip.
    #[must_use]
    pub fn guards(mut self, guards: PassGuards) -> Self {
        self.options.guards = guards;
        self
    }

    /// Set the static checking level (see [`FlowOptions::check`]). The
    /// default `Off` adds exactly zero work to the flow.
    #[must_use]
    pub fn check(mut self, level: CheckLevel) -> Self {
        self.options.check = level;
        self
    }

    /// Enable the post-Map timing stage (see [`FlowOptions::timing`]):
    /// static arrival/slack analysis plus slack-matching JTL insertion
    /// per [`TimingOptions::balance`]. Not setting it skips the stage
    /// entirely, leaving every output byte-identical to an untimed flow.
    #[must_use]
    pub fn timing(mut self, options: TimingOptions) -> Self {
        self.options.timing = Some(options);
        self
    }

    /// Install a deterministic fault-injection plan for
    /// [`SynthesisFlow::run_many_isolated`] (see [`xsfq_aig::chaos`]).
    /// Solo [`SynthesisFlow::run`] ignores the plan.
    #[cfg(feature = "chaos")]
    #[must_use]
    pub fn chaos_plan(mut self, plan: xsfq_aig::chaos::FaultPlan) -> Self {
        self.options.chaos = Some(plan);
        self
    }

    /// Current options.
    pub fn options(&self) -> &FlowOptions {
        &self.options
    }

    /// The effective script (options script plus the compatibility `fraig`
    /// suffix), compiled against [`flow_registry`].
    fn compiled_script(&self) -> Result<CompiledScript, FlowError> {
        let mut script = self.options.script.clone();
        if self.options.fraig {
            script = script.then(Script::single("f"));
        }
        Ok(script.compile(&flow_registry())?)
    }

    /// The cancellation token one job polls: the configured batch token
    /// (or a never-cancelled default), tightened by the per-job deadline
    /// measured from now — so this must be called at job start.
    fn job_token(&self) -> CancelToken {
        let base = self.options.cancel.clone().unwrap_or_default();
        match self.options.job_deadline {
            Some(deadline) => base.with_timeout(deadline),
            None => base,
        }
    }

    fn flow_pool(&self) -> FlowPool {
        match self.options.threads {
            Some(n) => FlowPool::Private(ThreadPool::new(n)),
            None => FlowPool::Global,
        }
    }

    /// Run the flow on a design.
    ///
    /// # Errors
    ///
    /// [`FlowError::Script`] when the configured script does not compile
    /// against [`flow_registry`]; [`FlowError::PipelineOnSequential`] when
    /// pipeline stages are requested for a design with latches;
    /// [`FlowError::Verification`] when the mapped netlist fails the
    /// equivalence proof.
    pub fn run(&self, aig: &Aig) -> Result<FlowResult, FlowError> {
        let compiled = self.compiled_script()?;
        let pool = self.flow_pool();
        self.run_compiled(aig, &compiled, pool.get(), None, None, self.solo_setup())
    }

    /// [`SynthesisFlow::run`] with an observer receiving stage and
    /// per-pass telemetry as the flow executes.
    pub fn run_observed(
        &self,
        aig: &Aig,
        observer: &mut dyn FlowObserver,
    ) -> Result<FlowResult, FlowError> {
        let compiled = self.compiled_script()?;
        let pool = self.flow_pool();
        self.run_compiled(
            aig,
            &compiled,
            pool.get(),
            Some(observer),
            None,
            self.solo_setup(),
        )
    }

    /// Run the flow over a batch of designs, scheduling **whole designs**
    /// across the executor pool (flow-level parallelism for benchmark
    /// sweeps and serving workloads).
    ///
    /// Results come back in input order and are identical to running
    /// [`SynthesisFlow::run`] per design: each design's passes execute on a
    /// sequential inner pool (the executor forbids nested parallel
    /// sections), and the optimization output is bit-identical for every
    /// thread count by construction. Each worker keeps one warm
    /// [`PassArenas`] set (cut arena, scratch, synthesis memos) across all
    /// the designs it handles — reuse cannot change results, everything the
    /// arenas cache is a pure function of its inputs.
    ///
    /// # Errors
    ///
    /// All-or-nothing wrapper over [`SynthesisFlow::run_many_isolated`]:
    /// the first error in design order, if any design fails. A job that
    /// panicked re-raises its panic (message preserved); a cancelled or
    /// deadline-expired job surfaces as [`FlowError::Cancelled`].
    pub fn run_many(&self, designs: &[Aig]) -> Result<Vec<FlowResult>, FlowError> {
        let mut out = Vec::with_capacity(designs.len());
        for result in self.run_many_isolated(designs) {
            match result {
                Ok(res) => out.push(res),
                Err(job) => {
                    return Err(match job.kind {
                        JobErrorKind::Panicked { .. } => panic::panic_any(job.to_string()),
                        JobErrorKind::Cancelled => FlowError::Cancelled(CancelCause::Explicit),
                        JobErrorKind::DeadlineExpired => {
                            FlowError::Cancelled(CancelCause::Deadline)
                        }
                        JobErrorKind::Flow(e) => e,
                    })
                }
            }
        }
        Ok(out)
    }

    /// Fault-isolated batch runner: like [`SynthesisFlow::run_many`], but
    /// every design gets an independent verdict. A design that panics,
    /// overruns its [deadline](SynthesisFlow::job_deadline), is
    /// [cancelled](SynthesisFlow::cancel_token), or fails any flow stage
    /// yields a structured [`JobError`] — which pass was in flight, how
    /// long the job ran, the telemetry of the passes that completed — while
    /// every healthy design completes normally, bit-identical to a solo
    /// [`SynthesisFlow::run`] (the CI-gated `chaos` suite pins exactly
    /// this).
    ///
    /// Results come back in input order. Worker panics are contained to
    /// their job: the pool is not poisoned, and the worker continues with
    /// the next design (its warm arenas are rebuilt from scratch — a
    /// performance detail, never a correctness one).
    // `JobError` carries the partial telemetry by value; the `Ok` side
    // (`FlowResult`) is larger still, so boxing the error buys nothing.
    #[allow(clippy::result_large_err)]
    pub fn run_many_isolated(&self, designs: &[Aig]) -> Vec<Result<FlowResult, JobError>> {
        let compiled = match self.compiled_script() {
            Ok(c) => c,
            Err(FlowError::Script(e)) => {
                // Config error: no job can run; report it per design so the
                // caller still gets one verdict per input.
                return designs
                    .iter()
                    .enumerate()
                    .map(|(i, aig)| {
                        Err(JobError {
                            design: i,
                            name: aig.name().to_string(),
                            kind: JobErrorKind::Flow(FlowError::Script(e.clone())),
                            pass: None,
                            elapsed: Duration::ZERO,
                            passes: Vec::new(),
                        })
                    })
                    .collect();
            }
            Err(_) => unreachable!("compiled_script only fails with Script errors"),
        };
        let pool = self.flow_pool();
        pool.get().map_init_coarse(
            designs,
            || (ThreadPool::new(1), PassArenas::default()),
            |(inner, arenas), design, aig| {
                self.run_one_isolated(aig, design, &compiled, inner, arenas)
            },
        )
    }

    /// One fault-isolated job on a caller-owned pool: the serving daemon's
    /// entry point. Unlike [`SynthesisFlow::run_many_isolated`] — which
    /// owns its scheduling and gives every job a 1-thread inner pool — this
    /// runs a single design with the optimization passes fanned out over
    /// `pool` (cap it per job with
    /// [`xsfq_exec::ThreadPool::scoped_budget`]), reusing the caller's warm
    /// [`PassArenas`] across jobs. Every failure mode surfaces as a
    /// structured [`JobError`] with `design == 0`; a chaos plan installed
    /// via [`SynthesisFlow::chaos_plan`] addresses this job as design 0.
    ///
    /// Must not be called from inside a parallel section of `pool` (the
    /// executor forbids nested sections).
    #[allow(clippy::result_large_err)]
    pub fn run_job(
        &self,
        aig: &Aig,
        pool: &ThreadPool,
        arenas: &mut PassArenas,
    ) -> Result<FlowResult, JobError> {
        let compiled = match self.compiled_script() {
            Ok(c) => c,
            Err(e) => {
                return Err(JobError {
                    design: 0,
                    name: aig.name().to_string(),
                    kind: JobErrorKind::Flow(e),
                    pass: None,
                    elapsed: Duration::ZERO,
                    passes: Vec::new(),
                })
            }
        };
        self.run_one_isolated(aig, 0, &compiled, pool, arenas)
    }

    /// One fault-isolated job: run the compiled flow under `catch_unwind`
    /// with an external telemetry recorder, so pass stats and the in-flight
    /// pass name survive a panic, and map every failure mode to a
    /// [`JobError`].
    #[allow(clippy::result_large_err)]
    fn run_one_isolated(
        &self,
        aig: &Aig,
        design: usize,
        compiled: &CompiledScript,
        inner: &ThreadPool,
        arenas: &mut PassArenas,
    ) -> Result<FlowResult, JobError> {
        // The deadline starts counting at job start, not batch start.
        let setup = self.batch_setup(design);
        let token = setup.token.clone();
        let started = Instant::now();
        let mut trace = JobTrace::default();
        // The recorder and arenas stay valid across an unwind: the trace
        // only ever holds completed records, and a poisoned arena set is
        // discarded with the job (the worker rebuilds cold arenas).
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            self.run_compiled(aig, compiled, inner, Some(&mut trace), Some(arenas), setup)
        }));
        let elapsed = started.elapsed();
        let job_error = |kind, trace: JobTrace| JobError {
            design,
            name: aig.name().to_string(),
            kind,
            pass: trace.current_pass,
            elapsed,
            passes: trace.passes,
        };
        match outcome {
            Ok(Ok(result)) => Ok(result),
            Ok(Err(e)) => {
                // `current_pass` is still `Some` only when a pass was
                // announced but never ran — a cancellation that hit inside
                // the pass boundary; keep the attribution.
                let kind = match e {
                    FlowError::Cancelled(CancelCause::Explicit) => JobErrorKind::Cancelled,
                    FlowError::Cancelled(CancelCause::Deadline) => JobErrorKind::DeadlineExpired,
                    other => JobErrorKind::Flow(other),
                };
                Err(job_error(kind, trace))
            }
            Err(payload) => {
                // A stalled-then-cancelled pass can also panic (safety
                // caps); cancellation verdicts take precedence when the
                // token fired.
                let kind = match token.cause() {
                    Some(CancelCause::Deadline) => JobErrorKind::DeadlineExpired,
                    Some(CancelCause::Explicit) => JobErrorKind::Cancelled,
                    None => JobErrorKind::Panicked {
                        message: panic_message(payload.as_ref()).to_string(),
                    },
                };
                Err(job_error(kind, trace))
            }
        }
    }

    /// Per-job runtime setup: the cancellation token (batch token tightened
    /// by the job deadline) plus the design's chaos injector, if any.
    fn solo_setup(&self) -> JobSetup {
        JobSetup {
            token: self.job_token(),
            #[cfg(feature = "chaos")]
            chaos: None,
        }
    }

    /// [`SynthesisFlow::solo_setup`] plus the chaos plan slice for batch
    /// design `design`.
    #[allow(unused_variables)]
    fn batch_setup(&self, design: usize) -> JobSetup {
        JobSetup {
            token: self.job_token(),
            #[cfg(feature = "chaos")]
            chaos: self
                .options
                .chaos
                .as_ref()
                .and_then(|plan| plan.for_design(design)),
        }
    }

    /// The staged pipeline body: Optimize → Pipeline → Polarity → Map →
    /// [Timing] → Verify (Timing only when configured), with per-stage
    /// timing, (optional) observer callbacks, and cancellation checks at
    /// every stage boundary.
    fn run_compiled(
        &self,
        aig: &Aig,
        compiled: &CompiledScript,
        pool: &ThreadPool,
        observer: Option<&mut dyn FlowObserver>,
        arenas: Option<&mut PassArenas>,
        setup: JobSetup,
    ) -> Result<FlowResult, FlowError> {
        let o = &self.options;
        if o.pipeline_stages > 0 && aig.num_latches() > 0 {
            return Err(FlowError::PipelineOnSequential);
        }
        let token = setup.token;
        let cancelled = |token: &CancelToken| {
            FlowError::Cancelled(token.cause().unwrap_or(CancelCause::Explicit))
        };
        let mut proxy = ObserverProxy {
            obs: observer,
            check: o.check,
            lint: Vec::new(),
        };
        let mut stages: Vec<StageStat> = Vec::new();
        let note = |stage: FlowStage,
                    start: Instant,
                    stages: &mut Vec<StageStat>,
                    proxy: &mut ObserverProxy<'_>| {
            let stat = StageStat {
                stage,
                wall_ns: start.elapsed().as_nanos() as u64,
            };
            proxy.on_stage(&stat);
            stages.push(stat);
        };

        // -- Optimize: the pass script, with per-pass telemetry. A batch
        // driver hands in its worker's warm arena set; it is returned after
        // the script so the next design reuses it.
        let start = Instant::now();
        let (optimized, passes, degraded, guard_trip, arena_lint) = {
            let mut ctx = PassCtx::with_observer(pool, &mut proxy);
            ctx.set_token(token.clone());
            ctx.set_guards(o.guards.clone());
            #[cfg(feature = "chaos")]
            if let Some(injector) = setup.chaos {
                ctx.set_chaos(injector);
            }
            let mut arenas = arenas;
            if let Some(store) = &mut arenas {
                ctx.reuse_arenas(std::mem::take(*store));
            }
            let optimized = compiled.run(aig, &mut ctx);
            let passes = ctx.take_telemetry();
            // Audit the cut arena while the ctx still owns it — the CSR
            // ranges and signatures are scratch state the next pass would
            // silently trust.
            let arena_lint = if o.check >= CheckLevel::Paranoid {
                xsfq_lint::lint_cut_arena(ctx.cut_arena())
            } else {
                Vec::new()
            };
            if let Some(store) = arenas {
                *store = ctx.take_arenas();
            }
            let guard_trip = ctx
                .guard_trip()
                .map(|(pass, kind)| (pass.to_string(), kind));
            (optimized, passes, ctx.degraded(), guard_trip, arena_lint)
        };
        note(FlowStage::Optimize, start, &mut stages, &mut proxy);
        if token.is_cancelled() {
            return Err(cancelled(&token));
        }
        if let Some((pass, kind)) = guard_trip {
            return Err(FlowError::GuardTripped { pass, kind });
        }
        if o.check >= CheckLevel::Stage {
            let mut diags = std::mem::take(&mut proxy.lint);
            diags.extend(arena_lint);
            diags.extend(xsfq_lint::lint_aig(&optimized));
            if xsfq_lint::has_errors(&diags) {
                return Err(FlowError::LintFailed(diags));
            }
        }

        // -- Pipeline: rank-level selection (no-op for 0 stages).
        let start = Instant::now();
        let rank_levels = choose_rank_levels(&optimized, o.pipeline_stages, o.rank_window);
        note(FlowStage::Pipeline, start, &mut stages, &mut proxy);

        // -- Polarity: output phase assignment (parallel candidate costing).
        let start = Instant::now();
        let (assignment, _requirements) = assign_polarities_with_pool(&optimized, o.polarity, pool);
        note(FlowStage::Polarity, start, &mut stages, &mut proxy);
        if token.is_cancelled() {
            return Err(cancelled(&token));
        }

        // -- Map: dual-rail mapping (parallel requirements sweep, sequential
        // emission commit) + splitter insertion.
        let start = Instant::now();
        let mut mapped = map_with_assignment_pool(
            &optimized,
            &MapOptions {
                polarity: o.polarity,
                style: o.style,
                rank_levels,
            },
            assignment,
            pool,
        );
        note(FlowStage::Map, start, &mut stages, &mut proxy);
        if token.is_cancelled() {
            return Err(cancelled(&token));
        }
        if o.check >= CheckLevel::Stage {
            let mut diags = xsfq_lint::lint_netlist(&mapped.logical, NetlistProfile::Logical);
            diags.extend(xsfq_lint::lint_netlist(
                &mapped.physical,
                NetlistProfile::Physical,
            ));
            if xsfq_lint::has_errors(&diags) {
                return Err(FlowError::LintFailed(diags));
            }
        }

        // -- Timing (optional): static arrival/slack analysis of the
        // physical netlist plus slack-matching JTL insertion. The balanced
        // netlist replaces `mapped.physical`, so the report's area numbers
        // include the buffers; reconstruction treats JTLs as wires, so the
        // Verify proof below covers the balanced netlist's function too.
        let mut timing_summary = None;
        if let Some(topts) = &o.timing {
            let start = Instant::now();
            let outcome = xsfq_timing::balance_netlist(&mapped.physical, topts, Some(pool));
            if let Some(balanced) = outcome.netlist {
                mapped.physical = balanced;
            }
            note(FlowStage::Timing, start, &mut stages, &mut proxy);
            if token.is_cancelled() {
                return Err(cancelled(&token));
            }
            // Full balancing promises sub-tolerance residual skew; hold it
            // to that promise at Stage level (Budget/Off residue is the
            // requested trade-off, not a defect).
            if o.check >= CheckLevel::Stage && topts.balance == BalanceMode::Full {
                let diags = xsfq_lint::lint_timing(
                    &mapped.physical,
                    topts.allowed_skew_for(&mapped.physical),
                );
                if xsfq_lint::has_errors(&diags) {
                    return Err(FlowError::LintFailed(diags));
                }
            }
            timing_summary = Some(outcome.summary);
        }

        // -- Verify: SAT proof the mapping preserved the function.
        if o.verify && aig.num_latches() == 0 {
            let start = Instant::now();
            let verdict = verify_mapping(&optimized, &mapped, o.polarity);
            note(FlowStage::Verify, start, &mut stages, &mut proxy);
            verdict.map_err(FlowError::Verification)?;
        }

        let stats = mapped.physical.stats();
        let splitter_jj = u64::from(mapped.physical.library().jj(CellKind::Splitter));
        let circuit_ghz = stats.circuit_clock_ghz();
        let report = FlowReport {
            name: aig.name().to_string(),
            aig_nodes: optimized.num_ands(),
            aig_depth: optimized.depth(),
            la_fa: stats.la_fa,
            duplication_percent: mapped.duplication_percent(),
            splitters: stats.splitters,
            drocs_plain: stats.drocs_plain,
            drocs_preload: stats.drocs_preload,
            jj_total: stats.jj_total + mapped.trigger_merger_jj,
            jj_clock_tree: stats.clock_tree_jj(splitter_jj),
            depth_logic: stats.depth_logic,
            depth_with_splitters: stats.depth_with_splitters,
            critical_delay_ps: stats.critical_delay_ps,
            circuit_ghz,
            arch_ghz: circuit_ghz / 2.0,
            passes,
            stages,
            degraded,
            timing: timing_summary,
        };
        Ok(FlowResult {
            optimized,
            mapped,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::{build, Lit};

    #[test]
    fn flow_on_full_adder_hits_paper_numbers() {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let r = SynthesisFlow::new().verify(true).run(&g).unwrap();
        assert_eq!(r.report.la_fa, 10);
        assert_eq!(r.report.splitters, 6);
        assert_eq!(r.report.jj_total, 58);
        assert_eq!(r.report.jj_clock_tree, 0);
        assert_eq!(r.report.drocs_plain + r.report.drocs_preload, 0);
    }

    #[test]
    fn pipelined_flow_reduces_depth_and_adds_drocs() {
        let mut g = Aig::new("mul6");
        let a = g.input_word("a", 6);
        let b = g.input_word("b", 6);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let base = SynthesisFlow::new().run(&g).unwrap();
        let piped = SynthesisFlow::new()
            .pipeline_stages(1)
            .verify(true)
            .run(&g)
            .unwrap();
        assert_eq!(base.report.drocs_plain + base.report.drocs_preload, 0);
        assert!(piped.report.drocs_preload > 0);
        assert!(
            piped.report.depth_logic < base.report.depth_logic,
            "pipelining must shorten stages: {} vs {}",
            piped.report.depth_logic,
            base.report.depth_logic
        );
        assert!(piped.report.circuit_ghz > base.report.circuit_ghz);
        assert!(piped.report.jj_clock_tree > 0, "DROCs need a clock tree");
    }

    #[test]
    fn fraig_flow_verifies_and_does_not_grow() {
        // Duplicated mux/xor cones the structural passes may miss; the
        // fraig-enabled flow must still verify and never end up larger.
        let mut g = Aig::new("dup");
        let a = g.input_word("a", 3);
        let b = g.input_word("b", 3);
        let mut outs = Vec::new();
        for i in 0..3 {
            let x = g.xor(a[i], b[i]);
            let m = g.mux(a[i], !b[i], b[i]);
            let both = g.and(x, m);
            outs.push(both);
        }
        g.output_word("o", &outs);
        let base = SynthesisFlow::new().verify(true).run(&g).unwrap();
        let swept = SynthesisFlow::new()
            .fraig(true)
            .verify(true)
            .run(&g)
            .unwrap();
        assert!(swept.report.aig_nodes <= base.report.aig_nodes);
        // The compatibility knob appends `f` to the script: its telemetry
        // row must be there.
        assert_eq!(swept.report.passes.last().unwrap().name, "f");
        // And `script_str("standard; f")` is the same flow.
        let scripted = SynthesisFlow::new()
            .script_str("standard; f")
            .unwrap()
            .verify(true)
            .run(&g)
            .unwrap();
        assert_eq!(scripted.optimized.nodes(), swept.optimized.nodes());
        assert_eq!(scripted.report.jj_total, swept.report.jj_total);
    }

    #[test]
    fn threads_knob_gives_bit_identical_flows() {
        let mut g = Aig::new("mul6");
        let a = g.input_word("a", 6);
        let b = g.input_word("b", 6);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let one = SynthesisFlow::new().threads(1).run(&g).unwrap();
        let four = SynthesisFlow::new().threads(4).run(&g).unwrap();
        assert_eq!(one.optimized.nodes(), four.optimized.nodes());
        assert_eq!(one.optimized.outputs(), four.optimized.outputs());
        assert_eq!(one.report.jj_total, four.report.jj_total);
        assert_eq!(one.report.la_fa, four.report.la_fa);
    }

    #[test]
    fn pipeline_on_sequential_is_rejected() {
        let mut g = Aig::new("seq");
        let q = g.latch("q", false);
        g.set_latch_next(q, !q);
        g.output("o", q);
        let err = SynthesisFlow::new().pipeline_stages(1).run(&g).unwrap_err();
        assert!(matches!(err, FlowError::PipelineOnSequential));
    }

    #[test]
    fn bad_scripts_are_rejected() {
        assert!(SynthesisFlow::new().script_str("repeat {").is_err());
        // Unknown passes surface at run time (compile against the flow
        // registry).
        let flow = SynthesisFlow::new().script_str("b; nosuch").unwrap();
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let o = g.and(a, b);
        g.output("o", o);
        assert!(matches!(
            flow.run(&g),
            Err(FlowError::Script(ScriptError::UnknownPass(_)))
        ));
    }

    #[test]
    fn sequential_flow_reports_drocs_and_trigger() {
        let mut g = Aig::new("cnt2");
        let q0 = g.latch("q0", false);
        let q1 = g.latch("q1", false);
        g.set_latch_next(q0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_latch_next(q1, n1);
        g.output("o0", q0);
        g.output("o1", q1);
        let r = SynthesisFlow::new().run(&g).unwrap();
        assert_eq!(r.report.drocs_plain + r.report.drocs_preload, 4);
        assert!(r.report.jj_total > 0);
        assert!(r.report.jj_clock_tree > 0);
        // Trigger merger is counted once (5 JJ).
        let stats = r.netlist().stats();
        assert_eq!(r.report.jj_total, stats.jj_total + 5);
    }

    #[test]
    fn verification_catches_nothing_on_good_flow() {
        let mut g = Aig::new("alu");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let sel = g.input("sel");
        let (sum, _) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        let ands: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| g.and(x, y)).collect();
        let out = build::mux_word(&mut g, sel, &sum, &ands);
        g.output_word("o", &out);
        for mode in [
            PolarityMode::DualRail,
            PolarityMode::AllPositive,
            PolarityMode::Heuristic,
        ] {
            let r = SynthesisFlow::new()
                .polarity(mode)
                .verify(true)
                .run(&g)
                .unwrap();
            assert!(r.report.jj_total > 0);
        }
    }

    #[test]
    fn observer_sees_stages_and_passes() {
        #[derive(Default)]
        struct Recorder {
            stages: Vec<FlowStage>,
            passes: usize,
        }
        impl FlowObserver for Recorder {
            fn on_stage(&mut self, stat: &StageStat) {
                self.stages.push(stat.stage);
            }
            fn on_pass(&mut self, _stat: &PassStat) {
                self.passes += 1;
            }
        }
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let mut rec = Recorder::default();
        let r = SynthesisFlow::new()
            .verify(true)
            .run_observed(&g, &mut rec)
            .unwrap();
        assert_eq!(
            rec.stages,
            vec![
                FlowStage::Optimize,
                FlowStage::Pipeline,
                FlowStage::Polarity,
                FlowStage::Map,
                FlowStage::Verify
            ]
        );
        assert_eq!(rec.passes, r.report.passes.len());
        assert!(rec.passes > 0);
        // Report telemetry matches the observed stage sequence.
        let reported: Vec<FlowStage> = r.report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(reported, rec.stages);
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let mut designs = Vec::new();
        for bits in [3usize, 4, 5, 6] {
            let mut g = Aig::new(format!("mul{bits}"));
            let a = g.input_word("a", bits);
            let b = g.input_word("b", bits);
            let p = build::array_multiplier(&mut g, &a, &b);
            g.output_word("p", &p);
            designs.push(g);
        }
        let flow = SynthesisFlow::new().effort(Effort::Fast);
        let batch = flow.run_many(&designs).unwrap();
        assert_eq!(batch.len(), designs.len());
        for (g, r) in designs.iter().zip(&batch) {
            let single = flow.run(g).unwrap();
            assert_eq!(r.report.name, single.report.name);
            assert_eq!(r.optimized.nodes(), single.optimized.nodes());
            assert_eq!(r.report.jj_total, single.report.jj_total);
            assert_eq!(r.report.la_fa, single.report.la_fa);
            assert_eq!(r.report.passes.len(), single.report.passes.len());
        }
    }

    #[test]
    fn run_many_propagates_the_first_error() {
        let mut comb = Aig::new("comb");
        let a = comb.input("a");
        let b = comb.input("b");
        let o = comb.and(a, b);
        comb.output("o", o);
        let mut seq = Aig::new("seq");
        let q = seq.latch("q", false);
        seq.set_latch_next(q, !q);
        seq.output("o", q);
        let err = SynthesisFlow::new()
            .pipeline_stages(1)
            .run_many(&[comb, seq])
            .unwrap_err();
        assert!(matches!(err, FlowError::PipelineOnSequential));
    }
}
