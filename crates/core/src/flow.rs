//! The end-to-end synthesis flow (the paper's §3 + §4 methodology):
//! optimize the AIG with stock passes, choose output polarities, map to
//! clock-free dual-rail xSFQ cells, insert pipeline ranks and splitters,
//! and report the numbers the evaluation tables are built from.

use std::error::Error;
use std::fmt;

use xsfq_aig::opt::{self, Effort};
use xsfq_aig::Aig;
use xsfq_cells::{CellKind, InterconnectStyle};
use xsfq_exec::ThreadPool;
use xsfq_netlist::Netlist;

use crate::map::{map_xsfq, MapOptions, MappedDesign};
use crate::pipeline::choose_rank_levels;
use crate::polarity::PolarityMode;
use crate::verify::verify_mapping;

/// Flow configuration (builder-style).
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// AIG optimization effort.
    pub effort: Effort,
    /// Output polarity strategy.
    pub polarity: PolarityMode,
    /// Interconnect style / library variant.
    pub style: InterconnectStyle,
    /// Architectural pipeline stages to insert (combinational designs only).
    pub pipeline_stages: usize,
    /// Window (in levels) for the min-width rank placement search.
    pub rank_window: u32,
    /// Run SAT sweeping ([`xsfq_sat::sweep::fraig`]) after the structural
    /// optimization script, merging functionally equivalent nodes the
    /// rewriting passes cannot see.
    pub fraig: bool,
    /// Prove the mapped netlist equivalent to the source (combinational
    /// designs; sequential designs are validated by the pulse simulator).
    pub verify: bool,
    /// Worker threads for the parallel optimization passes. `None` uses the
    /// process-wide executor pool (sized by `XSFQ_THREADS`, defaulting to
    /// `available_parallelism`); `Some(n)` runs this flow on a private
    /// `n`-thread pool. The optimized AIG is bit-identical either way.
    pub threads: Option<usize>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            effort: Effort::Standard,
            polarity: PolarityMode::Heuristic,
            style: InterconnectStyle::Abutted,
            pipeline_stages: 0,
            rank_window: 3,
            fraig: false,
            verify: false,
            threads: None,
        }
    }
}

/// Error raised by [`SynthesisFlow::run`].
#[derive(Debug)]
pub enum FlowError {
    /// Pipelining was requested for a sequential design.
    PipelineOnSequential,
    /// Post-mapping verification failed.
    Verification(crate::verify::VerifyMappingError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::PipelineOnSequential => {
                write!(f, "pipeline stages require a combinational design")
            }
            FlowError::Verification(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FlowError {}

/// Per-design report — the row format of the paper's Tables 3–6.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Design name.
    pub name: String,
    /// AND nodes after optimization.
    pub aig_nodes: usize,
    /// AIG depth after optimization.
    pub aig_depth: usize,
    /// LA/FA cell count.
    pub la_fa: usize,
    /// Duplication penalty in percent.
    pub duplication_percent: f64,
    /// Splitter count.
    pub splitters: usize,
    /// DROC cells without preloading hardware.
    pub drocs_plain: usize,
    /// DROC cells with preloading hardware.
    pub drocs_preload: usize,
    /// Total JJ count (cells + trigger merger; no clock tree).
    pub jj_total: u64,
    /// JJ cost of the DROC clock tree (zero for combinational designs).
    pub jj_clock_tree: u64,
    /// Logic depth (LA/FA on the critical path).
    pub depth_logic: usize,
    /// Logic depth including splitters.
    pub depth_with_splitters: usize,
    /// Critical path delay in ps (storage-to-storage).
    pub critical_delay_ps: f64,
    /// Circuit clock frequency (GHz).
    pub circuit_ghz: f64,
    /// Architectural clock frequency (GHz) — half the circuit clock, since
    /// a logical cycle spans the excite and relax phases (§4.2.2).
    pub arch_ghz: f64,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LA/FA ({:.0}% dupl), {} splitters, {}/{} DROC, {} JJ, depth {}/{}, {:.1}/{:.1} GHz",
            self.name,
            self.la_fa,
            self.duplication_percent,
            self.splitters,
            self.drocs_plain,
            self.drocs_preload,
            self.jj_total,
            self.depth_logic,
            self.depth_with_splitters,
            self.circuit_ghz,
            self.arch_ghz,
        )
    }
}

/// Result of a flow run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The optimized AIG the mapping consumed.
    pub optimized: Aig,
    /// Full mapping artifacts (logical + physical netlists, polarity data).
    pub mapped: MappedDesign,
    /// Convenience alias of `mapped.physical`.
    pub netlist: Netlist,
    /// The table-row report.
    pub report: FlowReport,
}

/// The xSFQ synthesis flow.
///
/// ```
/// use xsfq_aig::{Aig, build};
/// use xsfq_core::SynthesisFlow;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut aig = Aig::new("fa");
/// let a = aig.input("a");
/// let b = aig.input("b");
/// let cin = aig.input("cin");
/// let (s, c) = build::full_adder(&mut aig, a, b, cin);
/// aig.output("sum", s);
/// aig.output("cout", c);
///
/// let result = SynthesisFlow::new().verify(true).run(&aig)?;
/// // Figure 5ii: the flow lands on 10 LA/FA cells and 58 JJs.
/// assert_eq!(result.report.la_fa, 10);
/// assert_eq!(result.report.jj_total, 58);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SynthesisFlow {
    options: FlowOptions,
}

impl SynthesisFlow {
    /// Flow with default options (standard effort, heuristic polarity,
    /// abutted interconnect, no pipelining, no verification).
    pub fn new() -> Self {
        Self::default()
    }

    /// Flow with explicit options.
    pub fn with_options(options: FlowOptions) -> Self {
        SynthesisFlow { options }
    }

    /// Set the optimization effort.
    #[must_use]
    pub fn effort(mut self, effort: Effort) -> Self {
        self.options.effort = effort;
        self
    }

    /// Set the polarity mode.
    #[must_use]
    pub fn polarity(mut self, mode: PolarityMode) -> Self {
        self.options.polarity = mode;
        self
    }

    /// Set the interconnect style.
    #[must_use]
    pub fn style(mut self, style: InterconnectStyle) -> Self {
        self.options.style = style;
        self
    }

    /// Set the number of architectural pipeline stages.
    #[must_use]
    pub fn pipeline_stages(mut self, stages: usize) -> Self {
        self.options.pipeline_stages = stages;
        self
    }

    /// Enable or disable the post-optimization SAT-sweeping (fraig) pass.
    #[must_use]
    pub fn fraig(mut self, fraig: bool) -> Self {
        self.options.fraig = fraig;
        self
    }

    /// Enable or disable post-mapping verification.
    #[must_use]
    pub fn verify(mut self, verify: bool) -> Self {
        self.options.verify = verify;
        self
    }

    /// Run the optimization passes on a private pool of `threads` worker
    /// threads (clamped to ≥ 1) instead of the process-wide executor. The
    /// result is bit-identical for every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = Some(threads.max(1));
        self
    }

    /// Current options.
    pub fn options(&self) -> &FlowOptions {
        &self.options
    }

    /// Run the flow on a design.
    ///
    /// # Errors
    ///
    /// [`FlowError::PipelineOnSequential`] when pipeline stages are
    /// requested for a design with latches; [`FlowError::Verification`]
    /// when the mapped netlist fails the equivalence proof.
    pub fn run(&self, aig: &Aig) -> Result<FlowResult, FlowError> {
        let o = &self.options;
        if o.pipeline_stages > 0 && aig.num_latches() > 0 {
            return Err(FlowError::PipelineOnSequential);
        }
        let private_pool;
        let pool = match o.threads {
            Some(n) => {
                private_pool = ThreadPool::new(n);
                &private_pool
            }
            None => ThreadPool::global(),
        };
        let mut optimized = opt::optimize_with(aig, o.effort, pool);
        if o.fraig {
            let swept = xsfq_sat::fraig(&optimized);
            if swept.num_ands() < optimized.num_ands() {
                optimized = swept;
            }
        }
        let rank_levels = choose_rank_levels(&optimized, o.pipeline_stages, o.rank_window);
        let mapped = map_xsfq(
            &optimized,
            &MapOptions {
                polarity: o.polarity,
                style: o.style,
                rank_levels,
            },
        );
        if o.verify && aig.num_latches() == 0 {
            verify_mapping(&optimized, &mapped, o.polarity).map_err(FlowError::Verification)?;
        }
        let stats = mapped.physical.stats();
        let splitter_jj = u64::from(mapped.physical.library().jj(CellKind::Splitter));
        let circuit_ghz = stats.circuit_clock_ghz();
        let report = FlowReport {
            name: aig.name().to_string(),
            aig_nodes: optimized.num_ands(),
            aig_depth: optimized.depth(),
            la_fa: stats.la_fa,
            duplication_percent: mapped.duplication_percent(),
            splitters: stats.splitters,
            drocs_plain: stats.drocs_plain,
            drocs_preload: stats.drocs_preload,
            jj_total: stats.jj_total + mapped.trigger_merger_jj,
            jj_clock_tree: stats.clock_tree_jj(splitter_jj),
            depth_logic: stats.depth_logic,
            depth_with_splitters: stats.depth_with_splitters,
            critical_delay_ps: stats.critical_delay_ps,
            circuit_ghz,
            arch_ghz: circuit_ghz / 2.0,
        };
        let netlist = mapped.physical.clone();
        Ok(FlowResult {
            optimized,
            mapped,
            netlist,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::{build, Lit};

    #[test]
    fn flow_on_full_adder_hits_paper_numbers() {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let r = SynthesisFlow::new().verify(true).run(&g).unwrap();
        assert_eq!(r.report.la_fa, 10);
        assert_eq!(r.report.splitters, 6);
        assert_eq!(r.report.jj_total, 58);
        assert_eq!(r.report.jj_clock_tree, 0);
        assert_eq!(r.report.drocs_plain + r.report.drocs_preload, 0);
    }

    #[test]
    fn pipelined_flow_reduces_depth_and_adds_drocs() {
        let mut g = Aig::new("mul6");
        let a = g.input_word("a", 6);
        let b = g.input_word("b", 6);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let base = SynthesisFlow::new().run(&g).unwrap();
        let piped = SynthesisFlow::new()
            .pipeline_stages(1)
            .verify(true)
            .run(&g)
            .unwrap();
        assert_eq!(base.report.drocs_plain + base.report.drocs_preload, 0);
        assert!(piped.report.drocs_preload > 0);
        assert!(
            piped.report.depth_logic < base.report.depth_logic,
            "pipelining must shorten stages: {} vs {}",
            piped.report.depth_logic,
            base.report.depth_logic
        );
        assert!(piped.report.circuit_ghz > base.report.circuit_ghz);
        assert!(piped.report.jj_clock_tree > 0, "DROCs need a clock tree");
    }

    #[test]
    fn fraig_flow_verifies_and_does_not_grow() {
        // Duplicated mux/xor cones the structural passes may miss; the
        // fraig-enabled flow must still verify and never end up larger.
        let mut g = Aig::new("dup");
        let a = g.input_word("a", 3);
        let b = g.input_word("b", 3);
        let mut outs = Vec::new();
        for i in 0..3 {
            let x = g.xor(a[i], b[i]);
            let m = g.mux(a[i], !b[i], b[i]);
            let both = g.and(x, m);
            outs.push(both);
        }
        g.output_word("o", &outs);
        let base = SynthesisFlow::new().verify(true).run(&g).unwrap();
        let swept = SynthesisFlow::new()
            .fraig(true)
            .verify(true)
            .run(&g)
            .unwrap();
        assert!(swept.report.aig_nodes <= base.report.aig_nodes);
    }

    #[test]
    fn threads_knob_gives_bit_identical_flows() {
        let mut g = Aig::new("mul6");
        let a = g.input_word("a", 6);
        let b = g.input_word("b", 6);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let one = SynthesisFlow::new().threads(1).run(&g).unwrap();
        let four = SynthesisFlow::new().threads(4).run(&g).unwrap();
        assert_eq!(one.optimized.nodes(), four.optimized.nodes());
        assert_eq!(one.optimized.outputs(), four.optimized.outputs());
        assert_eq!(one.report.jj_total, four.report.jj_total);
        assert_eq!(one.report.la_fa, four.report.la_fa);
    }

    #[test]
    fn pipeline_on_sequential_is_rejected() {
        let mut g = Aig::new("seq");
        let q = g.latch("q", false);
        g.set_latch_next(q, !q);
        g.output("o", q);
        let err = SynthesisFlow::new().pipeline_stages(1).run(&g).unwrap_err();
        assert!(matches!(err, FlowError::PipelineOnSequential));
    }

    #[test]
    fn sequential_flow_reports_drocs_and_trigger() {
        let mut g = Aig::new("cnt2");
        let q0 = g.latch("q0", false);
        let q1 = g.latch("q1", false);
        g.set_latch_next(q0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_latch_next(q1, n1);
        g.output("o0", q0);
        g.output("o1", q1);
        let r = SynthesisFlow::new().run(&g).unwrap();
        assert_eq!(r.report.drocs_plain + r.report.drocs_preload, 4);
        assert!(r.report.jj_total > 0);
        assert!(r.report.jj_clock_tree > 0);
        // Trigger merger is counted once (5 JJ).
        let stats = r.netlist.stats();
        assert_eq!(r.report.jj_total, stats.jj_total + 5);
    }

    #[test]
    fn verification_catches_nothing_on_good_flow() {
        let mut g = Aig::new("alu");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let sel = g.input("sel");
        let (sum, _) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        let ands: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| g.and(x, y)).collect();
        let out = build::mux_word(&mut g, sel, &sum, &ands);
        g.output_word("o", &out);
        for mode in [
            PolarityMode::DualRail,
            PolarityMode::AllPositive,
            PolarityMode::Heuristic,
        ] {
            let r = SynthesisFlow::new()
                .polarity(mode)
                .verify(true)
                .run(&g)
                .unwrap();
            assert!(r.report.jj_total > 0);
        }
    }
}
