//! The end-to-end synthesis flow (the paper's §3 + §4 methodology) as a
//! staged pipeline over the composable pass manager: run a pass script on
//! the AIG, choose output polarities, map to clock-free dual-rail xSFQ
//! cells, insert pipeline ranks and splitters, and report the numbers the
//! evaluation tables are built from.
//!
//! Every stage is observable ([`FlowObserver`]), the optimization recipe is
//! a first-class [`Script`] (the legacy [`Effort`] knob is a facade over
//! the `fast`/`standard`/`high` presets), and whole designs batch across
//! the executor with [`SynthesisFlow::run_many`].

use std::error::Error;
use std::fmt;
use std::time::Instant;

use xsfq_aig::opt::Effort;
use xsfq_aig::pass::{
    CompiledScript, PassArenas, PassCtx, PassObserver, PassRegistry, PassStat, Script, ScriptError,
};
use xsfq_aig::Aig;
use xsfq_cells::{CellKind, InterconnectStyle};
use xsfq_exec::ThreadPool;
use xsfq_netlist::Netlist;

use crate::map::{map_with_assignment_pool, MapOptions, MappedDesign};
use crate::pipeline::choose_rank_levels;
use crate::polarity::{assign_polarities_with_pool, PolarityMode};
use crate::verify::verify_mapping;

/// The pass registry the synthesis flow compiles scripts against: the
/// structural AIG passes plus `f`/`fraig` from `xsfq-sat`.
pub fn flow_registry() -> PassRegistry {
    let mut registry = PassRegistry::structural();
    xsfq_sat::pass::register(&mut registry);
    registry
}

/// Flow configuration (builder-style).
#[derive(Clone, Debug)]
pub struct FlowOptions {
    /// AIG optimization pass script (see [`xsfq_aig::pass`] for the
    /// grammar). Defaults to the `standard` preset; the legacy
    /// [`SynthesisFlow::effort`] builder swaps in the matching preset.
    pub script: Script,
    /// Output polarity strategy.
    pub polarity: PolarityMode,
    /// Interconnect style / library variant.
    pub style: InterconnectStyle,
    /// Architectural pipeline stages to insert (combinational designs only).
    pub pipeline_stages: usize,
    /// Window (in levels) for the min-width rank placement search.
    pub rank_window: u32,
    /// Append a SAT-sweeping pass ([`xsfq_sat::pass::FraigPass`]) after the
    /// script, merging functionally equivalent nodes the rewriting passes
    /// cannot see. (Compatibility knob — scripts can simply end in `f`.)
    pub fraig: bool,
    /// Prove the mapped netlist equivalent to the source (combinational
    /// designs; sequential designs are validated by the pulse simulator).
    pub verify: bool,
    /// Worker threads for the parallel optimization passes. `None` uses the
    /// process-wide executor pool (sized by `XSFQ_THREADS`, defaulting to
    /// `available_parallelism`); `Some(n)` runs this flow on a private
    /// `n`-thread pool. The optimized AIG is bit-identical either way.
    pub threads: Option<usize>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            script: Script::preset(Effort::Standard),
            polarity: PolarityMode::Heuristic,
            style: InterconnectStyle::Abutted,
            pipeline_stages: 0,
            rank_window: 3,
            fraig: false,
            verify: false,
            threads: None,
        }
    }
}

/// Error raised by [`SynthesisFlow::run`].
#[derive(Debug)]
pub enum FlowError {
    /// The optimization script failed to parse or compile.
    Script(ScriptError),
    /// Pipelining was requested for a sequential design.
    PipelineOnSequential,
    /// Post-mapping verification failed.
    Verification(crate::verify::VerifyMappingError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Script(e) => write!(f, "{e}"),
            FlowError::PipelineOnSequential => {
                write!(f, "pipeline stages require a combinational design")
            }
            FlowError::Verification(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FlowError {}

impl From<ScriptError> for FlowError {
    fn from(e: ScriptError) -> Self {
        FlowError::Script(e)
    }
}

/// The flow's pipeline segments, in execution order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlowStage {
    /// Pass-script optimization of the AIG.
    Optimize,
    /// Rank-level selection for architectural pipelining.
    Pipeline,
    /// Output polarity assignment (§3.1.4–3.1.5).
    Polarity,
    /// Dual-rail technology mapping + splitter insertion.
    Map,
    /// SAT proof that mapping preserved the function.
    Verify,
}

impl FlowStage {
    /// Stable lowercase name (telemetry keys).
    pub fn name(self) -> &'static str {
        match self {
            FlowStage::Optimize => "optimize",
            FlowStage::Pipeline => "pipeline",
            FlowStage::Polarity => "polarity",
            FlowStage::Map => "map",
            FlowStage::Verify => "verify",
        }
    }
}

impl fmt::Display for FlowStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Wall-clock telemetry for one executed flow stage.
#[derive(Copy, Clone, Debug)]
pub struct StageStat {
    /// Which stage ran.
    pub stage: FlowStage,
    /// Wall-clock time in nanoseconds.
    pub wall_ns: u64,
}

/// Observer over a flow run: stage completions plus the per-pass telemetry
/// of the optimization script.
///
/// All methods default to no-ops so implementors subscribe only to what
/// they need. [`SynthesisFlow::run_observed`] drives it; plain
/// [`SynthesisFlow::run`] records the same telemetry into
/// [`FlowReport::passes`] / [`FlowReport::stages`] without callbacks.
pub trait FlowObserver {
    /// Called after every stage, in execution order.
    fn on_stage(&mut self, _stat: &StageStat) {}
    /// Called after every optimization pass, in execution order.
    fn on_pass(&mut self, _stat: &PassStat) {}
}

/// Owns the optional [`FlowObserver`] for one flow run: forwards
/// script-engine pass telemetry (as a [`PassObserver`]) and stage
/// completions to it.
struct ObserverProxy<'o>(Option<&'o mut dyn FlowObserver>);

impl ObserverProxy<'_> {
    fn on_stage(&mut self, stat: &StageStat) {
        if let Some(obs) = self.0.as_deref_mut() {
            obs.on_stage(stat);
        }
    }
}

impl PassObserver for ObserverProxy<'_> {
    fn on_pass(&mut self, stat: &PassStat) {
        if let Some(obs) = self.0.as_deref_mut() {
            obs.on_pass(stat);
        }
    }
}

/// Per-design report — the row format of the paper's Tables 3–6, plus the
/// stage/pass telemetry of the run that produced it.
#[derive(Clone, Debug)]
pub struct FlowReport {
    /// Design name.
    pub name: String,
    /// AND nodes after optimization.
    pub aig_nodes: usize,
    /// AIG depth after optimization.
    pub aig_depth: usize,
    /// LA/FA cell count.
    pub la_fa: usize,
    /// Duplication penalty in percent.
    pub duplication_percent: f64,
    /// Splitter count.
    pub splitters: usize,
    /// DROC cells without preloading hardware.
    pub drocs_plain: usize,
    /// DROC cells with preloading hardware.
    pub drocs_preload: usize,
    /// Total JJ count (cells + trigger merger; no clock tree).
    pub jj_total: u64,
    /// JJ cost of the DROC clock tree (zero for combinational designs).
    pub jj_clock_tree: u64,
    /// Logic depth (LA/FA on the critical path).
    pub depth_logic: usize,
    /// Logic depth including splitters.
    pub depth_with_splitters: usize,
    /// Critical path delay in ps (storage-to-storage).
    pub critical_delay_ps: f64,
    /// Circuit clock frequency (GHz).
    pub circuit_ghz: f64,
    /// Architectural clock frequency (GHz) — half the circuit clock, since
    /// a logical cycle spans the excite and relax phases (§4.2.2).
    pub arch_ghz: f64,
    /// Per-pass telemetry of the optimization script, in execution order.
    pub passes: Vec<PassStat>,
    /// Wall-clock telemetry per flow stage, in execution order.
    pub stages: Vec<StageStat>,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LA/FA ({:.0}% dupl), {} splitters, {}/{} DROC, {} JJ, depth {}/{}, {:.1}/{:.1} GHz",
            self.name,
            self.la_fa,
            self.duplication_percent,
            self.splitters,
            self.drocs_plain,
            self.drocs_preload,
            self.jj_total,
            self.depth_logic,
            self.depth_with_splitters,
            self.circuit_ghz,
            self.arch_ghz,
        )
    }
}

/// Result of a flow run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The optimized AIG the mapping consumed.
    pub optimized: Aig,
    /// Full mapping artifacts (logical + physical netlists, polarity data).
    pub mapped: MappedDesign,
    /// The table-row report.
    pub report: FlowReport,
}

impl FlowResult {
    /// The physical (splitter-inserted) netlist — borrows
    /// `mapped.physical` instead of cloning it per run.
    pub fn netlist(&self) -> &Netlist {
        &self.mapped.physical
    }
}

/// The pool a flow runs on: private when `threads(n)` was set, otherwise
/// the process-wide executor.
enum FlowPool {
    Private(ThreadPool),
    Global,
}

impl FlowPool {
    fn get(&self) -> &ThreadPool {
        match self {
            FlowPool::Private(pool) => pool,
            FlowPool::Global => ThreadPool::global(),
        }
    }
}

/// The xSFQ synthesis flow.
///
/// The optimization recipe is a pass script: either a preset via
/// [`SynthesisFlow::effort`] or any ABC-style script via
/// [`SynthesisFlow::script_str`] (grammar in [`xsfq_aig::pass`]). Batches
/// of designs run concurrently through [`SynthesisFlow::run_many`].
///
/// ```
/// use xsfq_aig::{Aig, build};
/// use xsfq_core::SynthesisFlow;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut aig = Aig::new("fa");
/// let a = aig.input("a");
/// let b = aig.input("b");
/// let cin = aig.input("cin");
/// let (s, c) = build::full_adder(&mut aig, a, b, cin);
/// aig.output("sum", s);
/// aig.output("cout", c);
///
/// let result = SynthesisFlow::new().verify(true).run(&aig)?;
/// // Figure 5ii: the flow lands on 10 LA/FA cells and 58 JJs.
/// assert_eq!(result.report.la_fa, 10);
/// assert_eq!(result.report.jj_total, 58);
/// // Every optimization pass left a telemetry row.
/// assert!(!result.report.passes.is_empty());
///
/// // The same flow, scripted explicitly:
/// let scripted = SynthesisFlow::new().script_str("standard")?.run(&aig)?;
/// assert_eq!(scripted.report.jj_total, result.report.jj_total);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct SynthesisFlow {
    options: FlowOptions,
}

impl SynthesisFlow {
    /// Flow with default options (standard-preset script, heuristic
    /// polarity, abutted interconnect, no pipelining, no verification).
    pub fn new() -> Self {
        Self::default()
    }

    /// Flow with explicit options.
    pub fn with_options(options: FlowOptions) -> Self {
        SynthesisFlow { options }
    }

    /// Set the optimization effort — a compatibility facade that installs
    /// the matching preset script ([`Script::preset`]).
    #[must_use]
    pub fn effort(mut self, effort: Effort) -> Self {
        self.options.script = Script::preset(effort);
        self
    }

    /// Set the optimization pass script.
    #[must_use]
    pub fn script(mut self, script: Script) -> Self {
        self.options.script = script;
        self
    }

    /// Parse and set the optimization pass script (ABC-style, e.g.
    /// `"b; rw; rf; b; rwz; rw"` or `"standard; f"`).
    ///
    /// # Errors
    ///
    /// [`ScriptError`] when the text does not match the script grammar.
    pub fn script_str(self, text: &str) -> Result<Self, ScriptError> {
        Ok(self.script(Script::parse(text)?))
    }

    /// Set the polarity mode.
    #[must_use]
    pub fn polarity(mut self, mode: PolarityMode) -> Self {
        self.options.polarity = mode;
        self
    }

    /// Set the interconnect style.
    #[must_use]
    pub fn style(mut self, style: InterconnectStyle) -> Self {
        self.options.style = style;
        self
    }

    /// Set the number of architectural pipeline stages.
    #[must_use]
    pub fn pipeline_stages(mut self, stages: usize) -> Self {
        self.options.pipeline_stages = stages;
        self
    }

    /// Enable or disable the post-script SAT-sweeping (fraig) pass.
    #[must_use]
    pub fn fraig(mut self, fraig: bool) -> Self {
        self.options.fraig = fraig;
        self
    }

    /// Enable or disable post-mapping verification.
    #[must_use]
    pub fn verify(mut self, verify: bool) -> Self {
        self.options.verify = verify;
        self
    }

    /// Run the optimization passes on a private pool of `threads` worker
    /// threads (clamped to ≥ 1) instead of the process-wide executor. The
    /// result is bit-identical for every thread count.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = Some(threads.max(1));
        self
    }

    /// Current options.
    pub fn options(&self) -> &FlowOptions {
        &self.options
    }

    /// The effective script (options script plus the compatibility `fraig`
    /// suffix), compiled against [`flow_registry`].
    fn compiled_script(&self) -> Result<CompiledScript, FlowError> {
        let mut script = self.options.script.clone();
        if self.options.fraig {
            script = script.then(Script::parse("f").expect("`f` parses"));
        }
        Ok(script.compile(&flow_registry())?)
    }

    fn flow_pool(&self) -> FlowPool {
        match self.options.threads {
            Some(n) => FlowPool::Private(ThreadPool::new(n)),
            None => FlowPool::Global,
        }
    }

    /// Run the flow on a design.
    ///
    /// # Errors
    ///
    /// [`FlowError::Script`] when the configured script does not compile
    /// against [`flow_registry`]; [`FlowError::PipelineOnSequential`] when
    /// pipeline stages are requested for a design with latches;
    /// [`FlowError::Verification`] when the mapped netlist fails the
    /// equivalence proof.
    pub fn run(&self, aig: &Aig) -> Result<FlowResult, FlowError> {
        let compiled = self.compiled_script()?;
        let pool = self.flow_pool();
        self.run_compiled(aig, &compiled, pool.get(), None, None)
    }

    /// [`SynthesisFlow::run`] with an observer receiving stage and
    /// per-pass telemetry as the flow executes.
    pub fn run_observed(
        &self,
        aig: &Aig,
        observer: &mut dyn FlowObserver,
    ) -> Result<FlowResult, FlowError> {
        let compiled = self.compiled_script()?;
        let pool = self.flow_pool();
        self.run_compiled(aig, &compiled, pool.get(), Some(observer), None)
    }

    /// Run the flow over a batch of designs, scheduling **whole designs**
    /// across the executor pool (flow-level parallelism for benchmark
    /// sweeps and serving workloads).
    ///
    /// Results come back in input order and are identical to running
    /// [`SynthesisFlow::run`] per design: each design's passes execute on a
    /// sequential inner pool (the executor forbids nested parallel
    /// sections), and the optimization output is bit-identical for every
    /// thread count by construction. Each worker keeps one warm
    /// [`PassArenas`] set (cut arena, scratch, synthesis memos) across all
    /// the designs it handles — reuse cannot change results, everything the
    /// arenas cache is a pure function of its inputs.
    ///
    /// # Errors
    ///
    /// The first error in design order, if any design fails.
    pub fn run_many(&self, designs: &[Aig]) -> Result<Vec<FlowResult>, FlowError> {
        let compiled = self.compiled_script()?;
        let pool = self.flow_pool();
        let results = pool.get().map_init_coarse(
            designs,
            || (ThreadPool::new(1), PassArenas::default()),
            |(inner, arenas), _, aig| self.run_compiled(aig, &compiled, inner, None, Some(arenas)),
        );
        results.into_iter().collect()
    }

    /// The staged pipeline body: Optimize → Pipeline → Polarity → Map →
    /// Verify, with per-stage timing and (optional) observer callbacks.
    fn run_compiled(
        &self,
        aig: &Aig,
        compiled: &CompiledScript,
        pool: &ThreadPool,
        observer: Option<&mut dyn FlowObserver>,
        arenas: Option<&mut PassArenas>,
    ) -> Result<FlowResult, FlowError> {
        let o = &self.options;
        if o.pipeline_stages > 0 && aig.num_latches() > 0 {
            return Err(FlowError::PipelineOnSequential);
        }
        let mut proxy = ObserverProxy(observer);
        let mut stages: Vec<StageStat> = Vec::new();
        let note = |stage: FlowStage,
                    start: Instant,
                    stages: &mut Vec<StageStat>,
                    proxy: &mut ObserverProxy<'_>| {
            let stat = StageStat {
                stage,
                wall_ns: start.elapsed().as_nanos() as u64,
            };
            proxy.on_stage(&stat);
            stages.push(stat);
        };

        // -- Optimize: the pass script, with per-pass telemetry. A batch
        // driver hands in its worker's warm arena set; it is returned after
        // the script so the next design reuses it.
        let start = Instant::now();
        let (optimized, passes) = {
            let mut ctx = PassCtx::with_observer(pool, &mut proxy);
            let mut arenas = arenas;
            if let Some(store) = &mut arenas {
                ctx.reuse_arenas(std::mem::take(*store));
            }
            let optimized = compiled.run(aig, &mut ctx);
            let passes = ctx.take_telemetry();
            if let Some(store) = arenas {
                *store = ctx.take_arenas();
            }
            (optimized, passes)
        };
        note(FlowStage::Optimize, start, &mut stages, &mut proxy);

        // -- Pipeline: rank-level selection (no-op for 0 stages).
        let start = Instant::now();
        let rank_levels = choose_rank_levels(&optimized, o.pipeline_stages, o.rank_window);
        note(FlowStage::Pipeline, start, &mut stages, &mut proxy);

        // -- Polarity: output phase assignment (parallel candidate costing).
        let start = Instant::now();
        let (assignment, _requirements) = assign_polarities_with_pool(&optimized, o.polarity, pool);
        note(FlowStage::Polarity, start, &mut stages, &mut proxy);

        // -- Map: dual-rail mapping (parallel requirements sweep, sequential
        // emission commit) + splitter insertion.
        let start = Instant::now();
        let mapped = map_with_assignment_pool(
            &optimized,
            &MapOptions {
                polarity: o.polarity,
                style: o.style,
                rank_levels,
            },
            assignment,
            pool,
        );
        note(FlowStage::Map, start, &mut stages, &mut proxy);

        // -- Verify: SAT proof the mapping preserved the function.
        if o.verify && aig.num_latches() == 0 {
            let start = Instant::now();
            let verdict = verify_mapping(&optimized, &mapped, o.polarity);
            note(FlowStage::Verify, start, &mut stages, &mut proxy);
            verdict.map_err(FlowError::Verification)?;
        }

        let stats = mapped.physical.stats();
        let splitter_jj = u64::from(mapped.physical.library().jj(CellKind::Splitter));
        let circuit_ghz = stats.circuit_clock_ghz();
        let report = FlowReport {
            name: aig.name().to_string(),
            aig_nodes: optimized.num_ands(),
            aig_depth: optimized.depth(),
            la_fa: stats.la_fa,
            duplication_percent: mapped.duplication_percent(),
            splitters: stats.splitters,
            drocs_plain: stats.drocs_plain,
            drocs_preload: stats.drocs_preload,
            jj_total: stats.jj_total + mapped.trigger_merger_jj,
            jj_clock_tree: stats.clock_tree_jj(splitter_jj),
            depth_logic: stats.depth_logic,
            depth_with_splitters: stats.depth_with_splitters,
            critical_delay_ps: stats.critical_delay_ps,
            circuit_ghz,
            arch_ghz: circuit_ghz / 2.0,
            passes,
            stages,
        };
        Ok(FlowResult {
            optimized,
            mapped,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::{build, Lit};

    #[test]
    fn flow_on_full_adder_hits_paper_numbers() {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let r = SynthesisFlow::new().verify(true).run(&g).unwrap();
        assert_eq!(r.report.la_fa, 10);
        assert_eq!(r.report.splitters, 6);
        assert_eq!(r.report.jj_total, 58);
        assert_eq!(r.report.jj_clock_tree, 0);
        assert_eq!(r.report.drocs_plain + r.report.drocs_preload, 0);
    }

    #[test]
    fn pipelined_flow_reduces_depth_and_adds_drocs() {
        let mut g = Aig::new("mul6");
        let a = g.input_word("a", 6);
        let b = g.input_word("b", 6);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let base = SynthesisFlow::new().run(&g).unwrap();
        let piped = SynthesisFlow::new()
            .pipeline_stages(1)
            .verify(true)
            .run(&g)
            .unwrap();
        assert_eq!(base.report.drocs_plain + base.report.drocs_preload, 0);
        assert!(piped.report.drocs_preload > 0);
        assert!(
            piped.report.depth_logic < base.report.depth_logic,
            "pipelining must shorten stages: {} vs {}",
            piped.report.depth_logic,
            base.report.depth_logic
        );
        assert!(piped.report.circuit_ghz > base.report.circuit_ghz);
        assert!(piped.report.jj_clock_tree > 0, "DROCs need a clock tree");
    }

    #[test]
    fn fraig_flow_verifies_and_does_not_grow() {
        // Duplicated mux/xor cones the structural passes may miss; the
        // fraig-enabled flow must still verify and never end up larger.
        let mut g = Aig::new("dup");
        let a = g.input_word("a", 3);
        let b = g.input_word("b", 3);
        let mut outs = Vec::new();
        for i in 0..3 {
            let x = g.xor(a[i], b[i]);
            let m = g.mux(a[i], !b[i], b[i]);
            let both = g.and(x, m);
            outs.push(both);
        }
        g.output_word("o", &outs);
        let base = SynthesisFlow::new().verify(true).run(&g).unwrap();
        let swept = SynthesisFlow::new()
            .fraig(true)
            .verify(true)
            .run(&g)
            .unwrap();
        assert!(swept.report.aig_nodes <= base.report.aig_nodes);
        // The compatibility knob appends `f` to the script: its telemetry
        // row must be there.
        assert_eq!(swept.report.passes.last().unwrap().name, "f");
        // And `script_str("standard; f")` is the same flow.
        let scripted = SynthesisFlow::new()
            .script_str("standard; f")
            .unwrap()
            .verify(true)
            .run(&g)
            .unwrap();
        assert_eq!(scripted.optimized.nodes(), swept.optimized.nodes());
        assert_eq!(scripted.report.jj_total, swept.report.jj_total);
    }

    #[test]
    fn threads_knob_gives_bit_identical_flows() {
        let mut g = Aig::new("mul6");
        let a = g.input_word("a", 6);
        let b = g.input_word("b", 6);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let one = SynthesisFlow::new().threads(1).run(&g).unwrap();
        let four = SynthesisFlow::new().threads(4).run(&g).unwrap();
        assert_eq!(one.optimized.nodes(), four.optimized.nodes());
        assert_eq!(one.optimized.outputs(), four.optimized.outputs());
        assert_eq!(one.report.jj_total, four.report.jj_total);
        assert_eq!(one.report.la_fa, four.report.la_fa);
    }

    #[test]
    fn pipeline_on_sequential_is_rejected() {
        let mut g = Aig::new("seq");
        let q = g.latch("q", false);
        g.set_latch_next(q, !q);
        g.output("o", q);
        let err = SynthesisFlow::new().pipeline_stages(1).run(&g).unwrap_err();
        assert!(matches!(err, FlowError::PipelineOnSequential));
    }

    #[test]
    fn bad_scripts_are_rejected() {
        assert!(SynthesisFlow::new().script_str("repeat {").is_err());
        // Unknown passes surface at run time (compile against the flow
        // registry).
        let flow = SynthesisFlow::new().script_str("b; nosuch").unwrap();
        let mut g = Aig::new("t");
        let a = g.input("a");
        let b = g.input("b");
        let o = g.and(a, b);
        g.output("o", o);
        assert!(matches!(
            flow.run(&g),
            Err(FlowError::Script(ScriptError::UnknownPass(_)))
        ));
    }

    #[test]
    fn sequential_flow_reports_drocs_and_trigger() {
        let mut g = Aig::new("cnt2");
        let q0 = g.latch("q0", false);
        let q1 = g.latch("q1", false);
        g.set_latch_next(q0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_latch_next(q1, n1);
        g.output("o0", q0);
        g.output("o1", q1);
        let r = SynthesisFlow::new().run(&g).unwrap();
        assert_eq!(r.report.drocs_plain + r.report.drocs_preload, 4);
        assert!(r.report.jj_total > 0);
        assert!(r.report.jj_clock_tree > 0);
        // Trigger merger is counted once (5 JJ).
        let stats = r.netlist().stats();
        assert_eq!(r.report.jj_total, stats.jj_total + 5);
    }

    #[test]
    fn verification_catches_nothing_on_good_flow() {
        let mut g = Aig::new("alu");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let sel = g.input("sel");
        let (sum, _) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        let ands: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| g.and(x, y)).collect();
        let out = build::mux_word(&mut g, sel, &sum, &ands);
        g.output_word("o", &out);
        for mode in [
            PolarityMode::DualRail,
            PolarityMode::AllPositive,
            PolarityMode::Heuristic,
        ] {
            let r = SynthesisFlow::new()
                .polarity(mode)
                .verify(true)
                .run(&g)
                .unwrap();
            assert!(r.report.jj_total > 0);
        }
    }

    #[test]
    fn observer_sees_stages_and_passes() {
        #[derive(Default)]
        struct Recorder {
            stages: Vec<FlowStage>,
            passes: usize,
        }
        impl FlowObserver for Recorder {
            fn on_stage(&mut self, stat: &StageStat) {
                self.stages.push(stat.stage);
            }
            fn on_pass(&mut self, _stat: &PassStat) {
                self.passes += 1;
            }
        }
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        let mut rec = Recorder::default();
        let r = SynthesisFlow::new()
            .verify(true)
            .run_observed(&g, &mut rec)
            .unwrap();
        assert_eq!(
            rec.stages,
            vec![
                FlowStage::Optimize,
                FlowStage::Pipeline,
                FlowStage::Polarity,
                FlowStage::Map,
                FlowStage::Verify
            ]
        );
        assert_eq!(rec.passes, r.report.passes.len());
        assert!(rec.passes > 0);
        // Report telemetry matches the observed stage sequence.
        let reported: Vec<FlowStage> = r.report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(reported, rec.stages);
    }

    #[test]
    fn run_many_matches_sequential_runs() {
        let mut designs = Vec::new();
        for bits in [3usize, 4, 5, 6] {
            let mut g = Aig::new(format!("mul{bits}"));
            let a = g.input_word("a", bits);
            let b = g.input_word("b", bits);
            let p = build::array_multiplier(&mut g, &a, &b);
            g.output_word("p", &p);
            designs.push(g);
        }
        let flow = SynthesisFlow::new().effort(Effort::Fast);
        let batch = flow.run_many(&designs).unwrap();
        assert_eq!(batch.len(), designs.len());
        for (g, r) in designs.iter().zip(&batch) {
            let single = flow.run(g).unwrap();
            assert_eq!(r.report.name, single.report.name);
            assert_eq!(r.optimized.nodes(), single.optimized.nodes());
            assert_eq!(r.report.jj_total, single.report.jj_total);
            assert_eq!(r.report.la_fa, single.report.la_fa);
            assert_eq!(r.report.passes.len(), single.report.passes.len());
        }
    }

    #[test]
    fn run_many_propagates_the_first_error() {
        let mut comb = Aig::new("comb");
        let a = comb.input("a");
        let b = comb.input("b");
        let o = comb.and(a, b);
        comb.output("o", o);
        let mut seq = Aig::new("seq");
        let q = seq.latch("q", false);
        seq.set_latch_next(q, !q);
        seq.output("o", q);
        let err = SynthesisFlow::new()
            .pipeline_stages(1)
            .run_many(&[comb, seq])
            .unwrap_err();
        assert!(matches!(err, FlowError::PipelineOnSequential));
    }
}
