//! `xsfq-time` — static timing analysis and slack-matching constraint
//! generation from the command line.
//!
//! ```text
//! xsfq-time analyse   [options] FILE     # timing report, no insertion
//! xsfq-time constrain [options] FILE     # balance, then report + artifacts
//! ```
//!
//! `FILE` is BLIF, ASCII AIGER or binary AIGER (format-sniffed, like every
//! other tool here). The design is synthesized with the standard flow
//! first — script, interconnect style and pipeline depth are the usual
//! knobs — and the mapped physical netlist is what gets timed. `analyse`
//! reports arrival windows, skew and slack as-is; `constrain` runs the
//! slack-matching balancer (`--balance full|budget <ps>|off`) and reports
//! the balanced netlist, optionally writing it out as Verilog plus SDC /
//! CSV / JSON artifacts (formats documented in `xsfq_timing`).
//!
//! Exit status: 0 when the (post-balance) worst slack is non-negative, 1
//! when it is negative, 2 on usage, parse or flow errors.

use std::process::ExitCode;

use xsfq_aig::io::read_netlist_auto;
use xsfq_cells::InterconnectStyle;
use xsfq_core::{BalanceMode, SynthesisFlow, TimingOptions};
use xsfq_netlist::writers::write_verilog;
use xsfq_timing::{artifacts, balance_netlist};

const USAGE: &str = "\
usage: xsfq-time <analyse|constrain> [options] FILE

Synthesize FILE (BLIF/AIGER) with the standard flow, then run static
timing on the mapped physical netlist. `analyse` only reports;
`constrain` also inserts slack-matching JTL buffers.

options:
  --script S       optimization pass script (default: the flow's standard)
  --style STYLE    interconnect style: abutted | ptl (default abutted)
  --pipeline N     architectural pipeline stages (default 0)
  --tolerance PS   allowed arrival skew in ps (default: one JTL delay)
  --balance MODE   constrain only: full | budget PS | off (default full)
  --csv PATH       write the per-endpoint CSV
  --sdc PATH       write SDC constraints
  --json PATH      write the JSON report
  --out PATH       constrain only: write the (balanced) netlist as Verilog
  --quiet          suppress the text report on stdout

exit status: 0 ok, 1 negative worst slack, 2 usage/parse/flow error";

struct Cli {
    constrain: bool,
    file: String,
    script: Option<String>,
    style: InterconnectStyle,
    pipeline: usize,
    tolerance_ps: Option<f64>,
    balance: BalanceMode,
    csv: Option<String>,
    sdc: Option<String>,
    json: Option<String>,
    out: Option<String>,
    quiet: bool,
}

fn usage_err(msg: &str) -> String {
    format!("xsfq-time: {msg} (try --help)")
}

fn parse_args(args: &[String]) -> Result<Option<Cli>, String> {
    let mut it = args.iter();
    let Some(sub) = it.next() else {
        return Err(usage_err("missing subcommand"));
    };
    let constrain = match sub.as_str() {
        "analyse" | "analyze" => false,
        "constrain" => true,
        "--help" | "-h" => return Ok(None),
        other => return Err(usage_err(&format!("unknown subcommand `{other}`"))),
    };
    let mut cli = Cli {
        constrain,
        file: String::new(),
        script: None,
        style: InterconnectStyle::Abutted,
        pipeline: 0,
        tolerance_ps: None,
        balance: BalanceMode::Full,
        csv: None,
        sdc: None,
        json: None,
        out: None,
        quiet: false,
    };
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| usage_err(&format!("`{flag}` needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--quiet" => cli.quiet = true,
            "--script" => cli.script = Some(value("--script", &mut it)?),
            "--style" => {
                cli.style = match value("--style", &mut it)?.as_str() {
                    "abutted" => InterconnectStyle::Abutted,
                    "ptl" => InterconnectStyle::Ptl,
                    other => return Err(usage_err(&format!("unknown style `{other}`"))),
                }
            }
            "--pipeline" => {
                let v = value("--pipeline", &mut it)?;
                cli.pipeline = v
                    .parse()
                    .map_err(|_| usage_err(&format!("bad pipeline depth `{v}`")))?;
            }
            "--tolerance" => {
                let v = value("--tolerance", &mut it)?;
                let ps: f64 = v
                    .parse()
                    .map_err(|_| usage_err(&format!("bad tolerance `{v}`")))?;
                if !ps.is_finite() || ps < 0.0 {
                    return Err(usage_err(&format!("bad tolerance `{v}`")));
                }
                cli.tolerance_ps = Some(ps);
            }
            "--balance" => {
                if !cli.constrain {
                    return Err(usage_err("`--balance` only applies to `constrain`"));
                }
                cli.balance = match value("--balance", &mut it)?.as_str() {
                    "full" => BalanceMode::Full,
                    "off" => BalanceMode::Off,
                    "budget" => {
                        let v = value("--balance budget", &mut it)?;
                        let ps: f64 = v
                            .parse()
                            .map_err(|_| usage_err(&format!("bad budget `{v}`")))?;
                        if !ps.is_finite() || ps < 0.0 {
                            return Err(usage_err(&format!("bad budget `{v}`")));
                        }
                        BalanceMode::Budget(ps)
                    }
                    other => return Err(usage_err(&format!("unknown balance mode `{other}`"))),
                };
            }
            "--csv" => cli.csv = Some(value("--csv", &mut it)?),
            "--sdc" => cli.sdc = Some(value("--sdc", &mut it)?),
            "--json" => cli.json = Some(value("--json", &mut it)?),
            "--out" => {
                if !cli.constrain {
                    return Err(usage_err("`--out` only applies to `constrain`"));
                }
                cli.out = Some(value("--out", &mut it)?);
            }
            _ if arg.starts_with('-') => {
                return Err(usage_err(&format!("unknown flag `{arg}`")));
            }
            _ if cli.file.is_empty() => cli.file = arg.clone(),
            _ => return Err(usage_err("more than one input file")),
        }
    }
    if cli.file.is_empty() {
        return Err(usage_err("missing input file"));
    }
    Ok(Some(cli))
}

fn run(cli: &Cli) -> Result<ExitCode, String> {
    let bytes = std::fs::read(&cli.file).map_err(|e| format!("xsfq-time: {}: {e}", cli.file))?;
    let aig = read_netlist_auto(&bytes)
        .map_err(|e| format!("xsfq-time: {}: parse error: {e}", cli.file))?;

    let mut flow = SynthesisFlow::new()
        .style(cli.style)
        .pipeline_stages(cli.pipeline);
    if let Some(script) = &cli.script {
        flow = flow
            .script_str(script)
            .map_err(|e| format!("xsfq-time: bad script: {e}"))?;
    }
    let result = flow
        .run(&aig)
        .map_err(|e| format!("xsfq-time: {}: flow error: {e}", cli.file))?;

    let opts = TimingOptions {
        balance: if cli.constrain {
            cli.balance
        } else {
            BalanceMode::Off
        },
        tolerance_ps: cli.tolerance_ps,
    };
    let outcome = balance_netlist(&result.mapped.physical, &opts, None);
    let netlist = outcome.netlist.as_ref().unwrap_or(&result.mapped.physical);
    let analysis = &outcome.analysis;
    let summary = &outcome.summary;

    if !cli.quiet {
        print!("{}", artifacts::render_report(netlist, analysis, summary));
    }
    let write_artifact = |path: &Option<String>, what: &str, text: String| match path {
        Some(path) => std::fs::write(path, text)
            .map_err(|e| format!("xsfq-time: writing {what} `{path}`: {e}")),
        None => Ok(()),
    };
    write_artifact(&cli.csv, "CSV", artifacts::render_endpoint_csv(analysis))?;
    write_artifact(
        &cli.sdc,
        "SDC",
        artifacts::render_sdc(netlist, analysis, summary),
    )?;
    write_artifact(
        &cli.json,
        "JSON report",
        artifacts::render_json_report(netlist, analysis, summary),
    )?;
    if let Some(path) = &cli.out {
        let mut buf = Vec::new();
        write_verilog(netlist, &mut buf)
            .map_err(|e| format!("xsfq-time: rendering Verilog: {e}"))?;
        std::fs::write(path, buf)
            .map_err(|e| format!("xsfq-time: writing netlist `{path}`: {e}"))?;
    }

    if summary.worst_slack_ps < 0.0 {
        eprintln!(
            "xsfq-time: {}: negative worst slack ({:.2} ps)",
            cli.file, summary.worst_slack_ps
        );
        return Ok(ExitCode::from(1));
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(cli)) => run(&cli).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            ExitCode::from(2)
        }),
        Ok(None) => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
