//! Polarity optimization (paper §3.1.4–3.1.5).
//!
//! A dual-rail xSFQ node costs an LA-FA *pair* only when both of its rails
//! (the function and its complement) are consumed. Because primary outputs
//! feed DROC cells or dual-to-single-rail converters, each output may retain
//! either polarity — so inverters can be pushed backwards from the outputs
//! (bubble pushing), and the choice of output polarities becomes the domino
//! logic *output phase assignment* problem (Puri et al., ICCAD'96), solved
//! here with the same greedy-improvement heuristic.

use xsfq_aig::{Aig, Lit, NodeKind};
use xsfq_exec::ThreadPool;

/// Polarity retained for a primary output.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum OutputPolarity {
    /// Keep the positive rail (the signal itself), as in Figure 5i.
    #[default]
    Positive,
    /// Keep the negative rail (its complement), as in Figure 5ii.
    Negative,
}

impl OutputPolarity {
    /// Flip the polarity.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            OutputPolarity::Positive => OutputPolarity::Negative,
            OutputPolarity::Negative => OutputPolarity::Positive,
        }
    }
}

/// How output polarities are chosen.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PolarityMode {
    /// No relaxation: every node and every output keeps both rails
    /// (§3.1.1/§3.1.3 mapping; 100% duplication).
    DualRail,
    /// All outputs keep the positive rail only (§3.1.4, Figure 5i).
    AllPositive,
    /// Greedy output-phase assignment heuristic (§3.1.5, Figure 5ii) — the
    /// paper's default.
    #[default]
    Heuristic,
    /// Try all `2^(outputs+latches)` assignments (only for tiny designs /
    /// ablation studies).
    Exhaustive,
}

/// A chosen polarity per primary output.
///
/// Latch data rails are *not* free choices: the initialization strategy of
/// §3.2 dictates that a latch with power-on value 0 samples the negative
/// rail of its next-state function (with the DROC output pins swapped), so
/// the trigger-cycle dummy pulse emerges as the correct initial value. The
/// mapper derives that from [`xsfq_aig::Latch::init`] directly.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PolarityAssignment {
    /// One entry per primary output.
    pub outputs: Vec<OutputPolarity>,
}

impl PolarityAssignment {
    /// All-positive assignment for a design.
    pub fn all_positive(aig: &Aig) -> Self {
        PolarityAssignment {
            outputs: vec![OutputPolarity::Positive; aig.num_outputs()],
        }
    }
}

/// Which rails every node must produce.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RailRequirements {
    /// Node needs its positive rail (an LA cell for AND nodes).
    pub needs_pos: Vec<bool>,
    /// Node needs its negative rail (an FA cell for AND nodes).
    pub needs_neg: Vec<bool>,
}

impl RailRequirements {
    /// Number of LA/FA cells implied (pairs count twice). Only AND nodes
    /// cost cells; inputs, latches and constants provide rails for free.
    pub fn cell_count(&self, aig: &Aig) -> usize {
        aig.and_ids()
            .map(|id| self.needs_pos[id.index()] as usize + self.needs_neg[id.index()] as usize)
            .sum()
    }

    /// Number of AND nodes contributing at least one cell.
    pub fn used_nodes(&self, aig: &Aig) -> usize {
        aig.and_ids()
            .filter(|id| self.needs_pos[id.index()] || self.needs_neg[id.index()])
            .count()
    }

    /// The paper's duplication penalty: `cells / nodes − 1`, in percent.
    /// 0% means every used node maps to a single LA or FA cell; 100% means
    /// every node needs the full pair (Tables 3–6 "Dupl." column).
    pub fn duplication_percent(&self, aig: &Aig) -> f64 {
        let nodes = self.used_nodes(aig);
        if nodes == 0 {
            return 0.0;
        }
        let cells = self.cell_count(aig);
        (cells as f64 / nodes as f64 - 1.0) * 100.0
    }
}

/// Compute rail requirements for a given assignment (backward bubble
/// pushing). `dual_rail` forces both rails everywhere (the §3.1.1/§3.1.3
/// mappings).
pub fn rail_requirements(
    aig: &Aig,
    assignment: &PolarityAssignment,
    dual_rail: bool,
) -> RailRequirements {
    let mut req = RailRequirements::default();
    rail_requirements_into(aig, assignment, dual_rail, None, &mut req);
    req
}

/// [`rail_requirements`] into caller-owned buffers, optionally evaluating a
/// **speculative single-output flip** (`flip = Some(o)` costs the
/// assignment with output `o`'s polarity flipped, without cloning the
/// assignment). This is the evaluate-phase kernel the parallel polarity
/// search fans out per candidate; reusing the buffers keeps the inner loop
/// allocation-free.
fn rail_requirements_into(
    aig: &Aig,
    assignment: &PolarityAssignment,
    dual_rail: bool,
    flip: Option<usize>,
    req: &mut RailRequirements,
) {
    let n = aig.num_nodes();
    req.needs_pos.clear();
    req.needs_pos.resize(n, false);
    req.needs_neg.clear();
    req.needs_neg.resize(n, false);
    if dual_rail {
        // Every node reachable from a root needs both rails.
        let mut live = vec![false; n];
        let mut stack: Vec<usize> = aig
            .combinational_roots()
            .map(|l| l.node().index())
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            if let NodeKind::And { a, b } = aig.nodes()[i] {
                stack.push(a.node().index());
                stack.push(b.node().index());
            }
        }
        for (i, &is_live) in live.iter().enumerate().take(n) {
            if is_live {
                req.needs_pos[i] = true;
                req.needs_neg[i] = true;
            }
        }
        return;
    }

    // Seed from the outputs and latch data inputs. A latch samples the
    // positive rail of its next-state function when init = 1, the negative
    // rail when init = 0 (§3.2 initialization strategy).
    for (o, (out, pol)) in aig.outputs().iter().zip(&assignment.outputs).enumerate() {
        let mut positive = *pol == OutputPolarity::Positive;
        if flip == Some(o) {
            positive = !positive;
        }
        mark(req, out.lit, positive);
    }
    for latch in aig.latches() {
        mark(req, latch.next, latch.init);
    }
    // One reverse-topological sweep: fanins have smaller ids than the node.
    for i in (1..n).rev() {
        let NodeKind::And { a, b } = aig.nodes()[i] else {
            continue;
        };
        if req.needs_pos[i] {
            // LA consumes the positive sense of each fanin edge.
            mark(req, a, true);
            mark(req, b, true);
        }
        if req.needs_neg[i] {
            // FA consumes the negative sense of each fanin edge
            // (De Morgan: !(a & b) = !a | !b).
            mark(req, a, false);
            mark(req, b, false);
        }
    }
}

/// Request the rail carrying `lit`'s value (`positive_sense`) or its
/// complement.
fn mark(req: &mut RailRequirements, lit: Lit, positive_sense: bool) {
    let want_pos = positive_sense ^ lit.is_complement();
    if want_pos {
        req.needs_pos[lit.node().index()] = true;
    } else {
        req.needs_neg[lit.node().index()] = true;
    }
}

/// Choose output polarities according to `mode` and return the assignment
/// with its rail requirements, on the global executor pool.
pub fn assign_polarities(aig: &Aig, mode: PolarityMode) -> (PolarityAssignment, RailRequirements) {
    assign_polarities_with_pool(aig, mode, ThreadPool::global())
}

/// [`assign_polarities`] on an explicit executor pool.
///
/// The heuristic and exhaustive searches fan their per-candidate
/// [`rail_requirements`] costing across the pool; the accept/reduce step is
/// committed in candidate order, so the chosen assignment is **identical**
/// to the sequential search for every pool size.
pub fn assign_polarities_with_pool(
    aig: &Aig,
    mode: PolarityMode,
    pool: &ThreadPool,
) -> (PolarityAssignment, RailRequirements) {
    match mode {
        PolarityMode::DualRail => {
            let a = PolarityAssignment::all_positive(aig);
            let r = rail_requirements(aig, &a, true);
            (a, r)
        }
        PolarityMode::AllPositive => {
            let a = PolarityAssignment::all_positive(aig);
            let r = rail_requirements(aig, &a, false);
            (a, r)
        }
        PolarityMode::Heuristic => heuristic_assignment(aig, pool),
        PolarityMode::Exhaustive => exhaustive_assignment(aig, pool),
    }
}

/// Candidate flips evaluated per speculative batch: enough per participant
/// to amortize dispatch, bounded so an accepted flip does not throw away
/// much speculation (a sequential pool speculates barely past the accept
/// point the sequential greedy would stop at).
fn flip_batch(pool: &ThreadPool) -> usize {
    (pool.num_threads() * 32).clamp(32, 1024)
}

/// Greedy improvement: starting all-positive, repeatedly flip the single
/// output (or latch rail) that reduces the LA/FA cell count the most, until
/// no flip helps (the Puri–Bjorksten–Rosser heuristic adapted to AIGs).
///
/// Parallel evaluate, ordered commit: candidate flips are costed
/// speculatively in batches across the pool (each candidate assumes no
/// earlier candidate was accepted), then the batch is scanned **in output
/// order** and the first improving flip is accepted; later speculative
/// results are stale at that point and are discarded, and the scan resumes
/// right after the accepted flip. That reproduces the sequential
/// first-improvement walk decision for decision, so the chosen assignment
/// is identical for every thread count.
fn heuristic_assignment(aig: &Aig, pool: &ThreadPool) -> (PolarityAssignment, RailRequirements) {
    let mut assignment = PolarityAssignment::all_positive(aig);
    let mut best_cost = rail_requirements(aig, &assignment, false).cell_count(aig);
    let outputs = assignment.outputs.len();
    let mut states: Vec<RailRequirements> = (0..pool.num_threads())
        .map(|_| RailRequirements::default())
        .collect();
    // A one-participant pool *is* the sequential greedy; skip the
    // speculative batching (and its wasted evaluations past each accepted
    // flip) entirely. The parallel path below reproduces these decisions
    // exactly — the `map_identity` gate compares the two.
    if pool.num_threads() == 1 {
        let req = &mut states[0];
        for _pass in 0..8 {
            let mut improved = false;
            for o in 0..outputs {
                rail_requirements_into(aig, &assignment, false, Some(o), req);
                let cost = req.cell_count(aig);
                if cost < best_cost {
                    assignment.outputs[o] = assignment.outputs[o].flipped();
                    best_cost = cost;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        let best_req = rail_requirements(aig, &assignment, false);
        debug_assert_eq!(best_req.cell_count(aig), best_cost);
        return (assignment, best_req);
    }
    // Bounded number of improvement passes.
    for _pass in 0..8 {
        let mut improved = false;
        let mut o = 0;
        while o < outputs {
            let batch: Vec<usize> = (o..(o + flip_batch(pool)).min(outputs)).collect();
            // Evaluate: cost every candidate flip against the current
            // assignment (pure; per-worker requirement buffers).
            let costs = {
                let assignment = &assignment;
                pool.map_reuse(&batch, &mut states, |req, _, &cand| {
                    rail_requirements_into(aig, assignment, false, Some(cand), req);
                    req.cell_count(aig)
                })
            };
            // Commit in candidate order: accept the first improving flip,
            // discard the (stale) speculation behind it.
            let mut next = *batch.last().unwrap() + 1;
            for (&cand, &cost) in batch.iter().zip(&costs) {
                if cost < best_cost {
                    assignment.outputs[cand] = assignment.outputs[cand].flipped();
                    best_cost = cost;
                    improved = true;
                    next = cand + 1;
                    break;
                }
            }
            o = next;
        }
        if !improved {
            break;
        }
    }
    let best_req = rail_requirements(aig, &assignment, false);
    debug_assert_eq!(best_req.cell_count(aig), best_cost);
    (assignment, best_req)
}

/// Exhaustive search over all output polarity assignments (≤ 20 outputs).
///
/// Candidate codes are costed in parallel; the reduction keeps the
/// lowest-cost code with the **lowest code value** on ties (the order the
/// sequential scan accepted), so the winner is pool-size independent.
///
/// # Panics
///
/// Panics if the design has more than 20 outputs.
fn exhaustive_assignment(aig: &Aig, pool: &ThreadPool) -> (PolarityAssignment, RailRequirements) {
    let bits = aig.num_outputs();
    assert!(
        bits <= 20,
        "exhaustive polarity search limited to 20 outputs"
    );
    let assignment_for = |code: u32| PolarityAssignment {
        outputs: (0..bits)
            .map(|i| {
                if code >> i & 1 == 1 {
                    OutputPolarity::Negative
                } else {
                    OutputPolarity::Positive
                }
            })
            .collect(),
    };
    let codes: Vec<u32> = (0..(1u32 << bits)).collect();
    let mut states: Vec<RailRequirements> = (0..pool.num_threads())
        .map(|_| RailRequirements::default())
        .collect();
    let costs = pool.map_reuse(&codes, &mut states, |req, _, &code| {
        rail_requirements_into(aig, &assignment_for(code), false, None, req);
        req.cell_count(aig)
    });
    // Order-fixed reduction: strict `<` keeps the earliest minimal code.
    let mut best = 0usize;
    for (i, &cost) in costs.iter().enumerate() {
        if cost < costs[best] {
            best = i;
        }
    }
    let assignment = assignment_for(codes[best]);
    let req = rail_requirements(aig, &assignment, false);
    (assignment, req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::build;

    fn full_adder() -> Aig {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        g
    }

    #[test]
    fn dual_rail_doubles_everything() {
        let g = full_adder();
        let (_, req) = assign_polarities(&g, PolarityMode::DualRail);
        // Figure 4: 7-node AIG → 14 LA/FA cells.
        assert_eq!(req.cell_count(&g), 14);
        assert!((req.duplication_percent(&g) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn positive_outputs_give_eleven_cells() {
        let g = full_adder();
        let (_, req) = assign_polarities(&g, PolarityMode::AllPositive);
        // Figure 5i: retaining sp and coutp needs 11 LA/FA cells.
        assert_eq!(req.cell_count(&g), 11);
    }

    #[test]
    fn heuristic_finds_ten_cells() {
        let g = full_adder();
        let (assignment, req) = assign_polarities(&g, PolarityMode::Heuristic);
        // Figure 5ii: flipping one output's polarity gives 10 cells (the
        // paper keeps coutn; flipping s instead is an equal-cost optimum).
        assert_eq!(req.cell_count(&g), 10);
        let flipped = assignment
            .outputs
            .iter()
            .filter(|p| **p == OutputPolarity::Negative)
            .count();
        assert_eq!(flipped, 1, "exactly one output flips");
    }

    #[test]
    fn heuristic_matches_exhaustive_on_full_adder() {
        let g = full_adder();
        let (_, heur) = assign_polarities(&g, PolarityMode::Heuristic);
        let (_, exact) = assign_polarities(&g, PolarityMode::Exhaustive);
        assert_eq!(heur.cell_count(&g), exact.cell_count(&g));
    }

    #[test]
    fn single_gate_needs_one_cell() {
        let mut g = Aig::new("and");
        let a = g.input("a");
        let b = g.input("b");
        let x = g.and(a, b);
        g.output("o", x);
        let (_, req) = assign_polarities(&g, PolarityMode::Heuristic);
        assert_eq!(req.cell_count(&g), 1);
        assert!((req.duplication_percent(&g) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_output_prefers_negative_rail() {
        // o = !(a & b): positive polarity needs the FA cell only.
        let mut g = Aig::new("nand");
        let a = g.input("a");
        let b = g.input("b");
        let x = g.nand(a, b);
        g.output("o", x);
        let (_, req) = assign_polarities(&g, PolarityMode::AllPositive);
        assert_eq!(req.cell_count(&g), 1);
        let idx = x.node().index();
        assert!(!req.needs_pos[idx]);
        assert!(req.needs_neg[idx]);
    }

    #[test]
    fn latch_rail_follows_init_value() {
        // init = 0 demands the negative rail of the next-state function;
        // init = 1 the positive rail (§3.2).
        for init in [false, true] {
            let mut g = Aig::new("seq");
            let d = g.input("d");
            let q = g.latch("q", init);
            let x = g.and(q, d);
            g.set_latch_next(q, x);
            let (_, req) = assign_polarities(&g, PolarityMode::AllPositive);
            let idx = x.node().index();
            assert_eq!(req.needs_pos[idx], init, "init={init}");
            assert_eq!(req.needs_neg[idx], !init, "init={init}");
        }
    }

    #[test]
    fn xor_dominated_design_has_high_duplication() {
        // A parity tree forces both rails through most of the circuit —
        // the xSFQ analog of the paper's `sin`/`voter` observation.
        let mut g = Aig::new("parity");
        let xs = g.input_word("x", 8);
        let p = g.xor_many(&xs);
        g.output("p", p);
        let (_, req) = assign_polarities(&g, PolarityMode::Heuristic);
        assert!(
            req.duplication_percent(&g) > 50.0,
            "parity should stay heavily duplicated, got {:.0}%",
            req.duplication_percent(&g)
        );
    }
}
