//! Mapping verification: reconstruct single-rail logic from a mapped xSFQ
//! netlist and prove it equivalent to the source AIG.
//!
//! The dual-rail interpretation is mechanical — LA is AND, FA is OR over
//! complement rails, DROC is a transparent polarity pair in feedforward
//! designs — so the reconstruction plus a strash-sharing miter gives an
//! end-to-end functional proof of the flow (what the paper establishes with
//! simulation, §4.1).

use std::error::Error;
use std::fmt;
use xsfq_aig::hash::FxHashMap;

use xsfq_aig::{Aig, Lit, NodeKind};
use xsfq_cells::CellKind;
use xsfq_netlist::Netlist;

use crate::map::MappedDesign;
use crate::polarity::{OutputPolarity, PolarityMode};

/// Error returned when a mapped netlist fails verification.
#[derive(Debug)]
pub struct VerifyMappingError {
    message: String,
}

impl fmt::Display for VerifyMappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mapping verification failed: {}", self.message)
    }
}

impl Error for VerifyMappingError {}

/// Interpret a feedforward xSFQ netlist back as single-rail logic.
///
/// Input ports must come in `name_p`/`name_n` pairs (as produced by
/// [`crate::map::map_xsfq`]); `const0_p`/`const0_n` ports map to constants.
/// DROC cells are treated as transparent (latency-insensitive
/// interpretation), so the result is the combinational function of the
/// pipeline.
///
/// # Errors
///
/// Returns an error for netlists with feedback or unsupported cells.
pub fn netlist_to_comb_aig(netlist: &Netlist) -> Result<Aig, VerifyMappingError> {
    let mut aig = Aig::new(format!("{}_recon", netlist.name()));
    let mut net_lit: FxHashMap<usize, Lit> = FxHashMap::default();

    // Inputs: consecutive _p/_n pairs share an AIG input.
    let mut i = 0;
    let ports = netlist.inputs();
    while i < ports.len() {
        let p = &ports[i];
        if p.name == "const0_p" {
            net_lit.insert(p.net.index(), Lit::FALSE);
            i += 1;
            continue;
        }
        if p.name == "const0_n" {
            net_lit.insert(p.net.index(), Lit::TRUE);
            i += 1;
            continue;
        }
        let Some(base) = p.name.strip_suffix("_p") else {
            return Err(VerifyMappingError {
                message: format!("input port '{}' is not a _p rail", p.name),
            });
        };
        let Some(q) = ports.get(i + 1).filter(|q| q.name == format!("{base}_n")) else {
            return Err(VerifyMappingError {
                message: format!("missing _n rail after '{}'", p.name),
            });
        };
        let lit = aig.input(base.to_string());
        net_lit.insert(p.net.index(), lit);
        net_lit.insert(q.net.index(), !lit);
        i += 2;
    }

    // Cells may not be in topological order after splitter insertion, so
    // resolve them with a worklist: a cell is ready when all its input
    // nets are known. Leftover cells mean combinational feedback.
    let mut remaining: Vec<usize> = (0..netlist.cells().len()).collect();
    loop {
        let before = remaining.len();
        remaining.retain(|&ci| {
            let cell = &netlist.cells()[ci];
            if !cell.inputs.iter().all(|n| net_lit.contains_key(&n.index())) {
                return true; // not ready yet
            }
            let get = |net: xsfq_netlist::NetId| net_lit[&net.index()];
            match cell.kind {
                CellKind::La => {
                    let q = {
                        let (a, b) = (get(cell.inputs[0]), get(cell.inputs[1]));
                        aig.and(a, b)
                    };
                    net_lit.insert(cell.outputs[0].index(), q);
                }
                CellKind::Fa => {
                    // FA carries the negative rail: OR of complement rails.
                    let q = {
                        let (a, b) = (get(cell.inputs[0]), get(cell.inputs[1]));
                        aig.or(a, b)
                    };
                    net_lit.insert(cell.outputs[0].index(), q);
                }
                CellKind::Jtl => {
                    let a = get(cell.inputs[0]);
                    net_lit.insert(cell.outputs[0].index(), a);
                }
                CellKind::Splitter => {
                    let a = get(cell.inputs[0]);
                    net_lit.insert(cell.outputs[0].index(), a);
                    net_lit.insert(cell.outputs[1].index(), a);
                }
                CellKind::Droc { .. } => {
                    let d = get(cell.inputs[0]);
                    net_lit.insert(cell.outputs[0].index(), d);
                    net_lit.insert(cell.outputs[1].index(), !d);
                }
                _ => {}
            }
            false
        });
        // Unsupported cells are detected before the worklist stalls.
        if let Some(&ci) = remaining
            .iter()
            .find(|&&ci| !supported_kind(netlist.cells()[ci].kind))
        {
            return Err(VerifyMappingError {
                message: format!(
                    "unsupported cell {} in reconstruction",
                    netlist.cells()[ci].kind
                ),
            });
        }
        if remaining.is_empty() {
            break;
        }
        if remaining.len() == before {
            return Err(VerifyMappingError {
                message: "netlist is not feedforward (combinational cycle)".into(),
            });
        }
    }

    for port in netlist.outputs() {
        let lit = net_lit
            .get(&port.net.index())
            .copied()
            .ok_or(VerifyMappingError {
                message: format!("output '{}' is undriven", port.name),
            })?;
        aig.output(port.name.clone(), lit);
    }
    Ok(aig)
}

fn supported_kind(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::La | CellKind::Fa | CellKind::Jtl | CellKind::Splitter | CellKind::Droc { .. }
    )
}

/// Prove two combinational AIGs equivalent by simulation-guided SAT
/// sweeping ([`xsfq_sat::sweep`]): both designs are imported into one
/// structurally hashed miter (identical structures collapse during
/// construction), internal equivalences are merged with small incremental
/// queries, and only the surviving output pairs are decided by SAT.
///
/// # Panics
///
/// Panics if the interfaces differ or the designs have latches.
pub fn prove_equivalent(a: &Aig, b: &Aig) -> bool {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    assert_eq!(a.num_latches() + b.num_latches(), 0, "combinational only");
    xsfq_sat::equivalent(a, b)
}

fn import(src: &Aig, dst: &mut Aig, inputs: &[Lit]) -> Vec<Lit> {
    let mut map: Vec<Lit> = vec![Lit::FALSE; src.num_nodes()];
    for (i, kind) in src.nodes().iter().enumerate() {
        map[i] = match *kind {
            NodeKind::Const0 => Lit::FALSE,
            NodeKind::Input { index } => inputs[index as usize],
            NodeKind::Latch { .. } => unreachable!("combinational only"),
            NodeKind::And { a, b } => {
                let fa = map[a.node().index()].complement_if(a.is_complement());
                let fb = map[b.node().index()].complement_if(b.is_complement());
                dst.and(fa, fb)
            }
        };
    }
    src.outputs()
        .iter()
        .map(|o| map[o.lit.node().index()].complement_if(o.lit.is_complement()))
        .collect()
}

/// Verify that a mapped design implements its source AIG: reconstruct the
/// netlist's logic and prove it equivalent to the source with output
/// polarities applied.
///
/// # Errors
///
/// Returns [`VerifyMappingError`] when reconstruction fails or the proof
/// finds a mismatch.
pub fn verify_mapping(
    source: &Aig,
    mapped: &MappedDesign,
    mode: PolarityMode,
) -> Result<(), VerifyMappingError> {
    if source.num_latches() > 0 {
        return Err(VerifyMappingError {
            message: "sequential mappings are verified with the pulse simulator".into(),
        });
    }
    let recon = netlist_to_comb_aig(&mapped.logical)?;
    // Expected: the source with polarities applied (and doubled rails in
    // dual-rail mode).
    let mut expected = Aig::new("expected");
    let inputs: Vec<Lit> = (0..source.num_inputs())
        .map(|i| expected.input(source.input_name(i).to_string()))
        .collect();
    let outs = import(source, &mut expected, &inputs);
    for ((o, lit), pol) in source
        .outputs()
        .iter()
        .zip(outs)
        .zip(&mapped.assignment.outputs)
    {
        if mode == PolarityMode::DualRail {
            expected.output(format!("{}_p", o.name), lit);
            expected.output(format!("{}_n", o.name), !lit);
        } else {
            let keep_positive = *pol == OutputPolarity::Positive;
            expected.output(o.name.clone(), lit.complement_if(!keep_positive));
        }
    }
    if recon.num_outputs() != expected.num_outputs() {
        return Err(VerifyMappingError {
            message: format!(
                "output count mismatch: reconstructed {}, expected {}",
                recon.num_outputs(),
                expected.num_outputs()
            ),
        });
    }
    if prove_equivalent(&recon, &expected) {
        Ok(())
    } else {
        Err(VerifyMappingError {
            message: "reconstructed netlist differs from the source function".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::{map_xsfq, MapOptions};
    use xsfq_aig::build;

    fn full_adder() -> Aig {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        g
    }

    #[test]
    fn all_polarity_modes_verify_on_full_adder() {
        let g = full_adder();
        for mode in [
            PolarityMode::DualRail,
            PolarityMode::AllPositive,
            PolarityMode::Heuristic,
            PolarityMode::Exhaustive,
        ] {
            let m = map_xsfq(
                &g,
                &MapOptions {
                    polarity: mode,
                    ..Default::default()
                },
            );
            verify_mapping(&g, &m, mode).unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    #[test]
    fn pipelined_mapping_verifies_combinationally() {
        let mut g = Aig::new("add4");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let (s, c) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        let ranks = crate::pipeline::choose_rank_levels(&g, 1, 2);
        let m = map_xsfq(
            &g,
            &MapOptions {
                rank_levels: ranks,
                ..Default::default()
            },
        );
        verify_mapping(&g, &m, PolarityMode::Heuristic).unwrap();
    }

    #[test]
    fn prove_equivalent_detects_difference() {
        let mut g1 = Aig::new("g1");
        let a = g1.input("a");
        let b = g1.input("b");
        let x = g1.and(a, b);
        g1.output("o", x);
        let mut g2 = Aig::new("g2");
        let a = g2.input("a");
        let b = g2.input("b");
        let x = g2.or(a, b);
        g2.output("o", x);
        assert!(!prove_equivalent(&g1, &g2));
        assert!(prove_equivalent(&g1, &g1.clone()));
    }

    #[test]
    fn reconstruction_handles_physical_netlist() {
        // Splitter-inserted netlists reconstruct identically.
        let g = full_adder();
        let m = map_xsfq(&g, &MapOptions::default());
        let from_logical = netlist_to_comb_aig(&m.logical).unwrap();
        let from_physical = netlist_to_comb_aig(&m.physical).unwrap();
        assert!(prove_equivalent(&from_logical, &from_physical));
    }
}
