//! Pipeline rank placement (paper §4.2.2, Table 5).
//!
//! Every architectural pipeline stage needs *two* DROC ranks because of
//! xSFQ's alternating encoding (excite + relax phases per logical cycle).
//! Rather than leaving both DROCs of a pair adjacent — which wastes a
//! synchronous stage with no logic in it — the ranks are spread through the
//! combinational fabric, which is what the paper achieves with ABC's
//! retiming. Placement searches a window around the equal-depth positions
//! for the cut with the fewest crossing signals (fewest DROCs).

use xsfq_aig::{Aig, NodeKind};

/// Choose the rank levels for `arch_stages` architectural pipeline stages.
///
/// Returns `2 × stages` cut levels in **strictly increasing** order, where
/// `stages = min(arch_stages, ⌈depth / 2⌉)` — a fabric of depth `d` can
/// host at most `⌈d / 2⌉` architectural stages, because the `2·stages − 1`
/// interior ranks need distinct levels in `1..=depth`. Requesting more
/// stages than the fabric can hold saturates (rather than emitting the
/// duplicate or out-of-range ranks that would silently corrupt the stage
/// balance). The final rank sits past every node (`depth + 1`), registering
/// the primary outputs; the interior ranks divide the logic into
/// equal-delay segments, nudged within `window` levels to minimize the
/// number of crossing signals, and always satisfy `1 ≤ rank ≤ depth`.
///
/// Returns an empty vector for `arch_stages == 0` or a depth-0 (wire-only)
/// design.
pub fn choose_rank_levels(aig: &Aig, arch_stages: usize, window: u32) -> Vec<u32> {
    let depth = aig.depth() as u32;
    // Saturate the stage count to what the fabric can hold: the 2s − 1
    // interior cuts need distinct levels in 1..=depth, so 2s − 1 ≤ depth.
    let arch_stages = arch_stages.min((depth as usize).div_ceil(2));
    if arch_stages == 0 {
        return Vec::new();
    }
    let ranks = 2 * arch_stages as u32;
    let mut levels = Vec::with_capacity(ranks as usize);
    let widths = crossing_widths(aig);
    // Cap the search window to a quarter of a segment so the min-width
    // search cannot destroy the stage balance the cuts exist for.
    let window = window.min(depth / ranks / 4);
    for i in 1..ranks {
        let ideal = (depth * i).div_ceil(ranks).max(1);
        let lo = ideal.saturating_sub(window).max(1);
        let hi = (ideal + window).min(depth);
        let mut best = ideal;
        let mut best_width = usize::MAX;
        for cut in lo..=hi {
            let w = widths.get(cut as usize).copied().unwrap_or(usize::MAX);
            if w < best_width {
                best_width = w;
                best = cut;
            }
        }
        // Keep cuts strictly increasing.
        if let Some(&prev) = levels.last() {
            if best <= prev {
                best = prev + 1;
            }
        }
        levels.push(best);
    }
    // The monotonicity bump can overshoot `depth` on shallow fabrics;
    // saturation guarantees a feasible assignment exists, so repair from
    // the top down (each cut capped one below its successor). This keeps
    // strict monotonicity and clamps every interior cut into 1..=depth.
    let n = levels.len();
    levels[n - 1] = levels[n - 1].min(depth);
    for j in (0..n - 1).rev() {
        levels[j] = levels[j].min(levels[j + 1] - 1);
    }
    debug_assert!(levels[0] >= 1 && levels[n - 1] <= depth);
    debug_assert!(levels.windows(2).all(|w| w[0] < w[1]));
    levels.push(depth + 1); // output rank
    levels
}

/// Number of signals crossing a cut placed just below each level:
/// `widths[l]` counts nodes with `level < l` that feed a consumer with
/// `level ≥ l` (primary outputs count as consumers at `depth + 1`).
pub fn crossing_widths(aig: &Aig) -> Vec<usize> {
    let levels = aig.levels();
    let depth = aig.depth() as u32;
    // For each node: the maximum consumer level.
    let mut max_consumer = vec![0u32; aig.num_nodes()];
    for (i, kind) in aig.nodes().iter().enumerate() {
        if let NodeKind::And { a, b } = kind {
            let lvl = levels[i];
            for f in [a.node().index(), b.node().index()] {
                max_consumer[f] = max_consumer[f].max(lvl);
            }
        }
    }
    for root in aig.combinational_roots() {
        max_consumer[root.node().index()] = depth + 1;
    }
    // widths[l] = #nodes with level < l <= max_consumer.
    let mut widths = vec![0usize; depth as usize + 2];
    for i in 0..aig.num_nodes() {
        if max_consumer[i] == 0 {
            continue; // dangling
        }
        let lo = levels[i] + 1;
        let hi = max_consumer[i];
        for l in lo..=hi.min(depth + 1) {
            widths[l as usize] += 1;
        }
    }
    widths
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::build;
    use xsfq_aig::Lit;

    fn adder(width: usize) -> Aig {
        let mut g = Aig::new("adder");
        let a = g.input_word("a", width);
        let b = g.input_word("b", width);
        let (s, c) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        g
    }

    #[test]
    fn zero_stages_means_no_ranks() {
        let g = adder(4);
        assert!(choose_rank_levels(&g, 0, 2).is_empty());
    }

    #[test]
    fn levels_are_strictly_increasing_and_end_past_depth() {
        let g = adder(8);
        for stages in 1..=3 {
            let ranks = choose_rank_levels(&g, stages, 3);
            assert_eq!(ranks.len(), 2 * stages);
            for w in ranks.windows(2) {
                assert!(w[0] < w[1], "ranks must increase: {ranks:?}");
            }
            assert_eq!(
                *ranks.last().unwrap(),
                g.depth() as u32 + 1,
                "final rank registers the outputs"
            );
        }
    }

    /// Regression: with `depth < 2 × arch_stages` the old monotonicity bump
    /// (`best = prev + 1`) produced duplicate and out-of-range ranks — e.g.
    /// a depth-2 adder at 2 stages emitted `[1, 2, 3, 3]`, colliding with
    /// the output rank and silently corrupting the stage balance. The stage
    /// count must saturate and every invariant must hold on shallow fabrics.
    #[test]
    fn shallow_fabric_saturates_stages_and_keeps_invariants() {
        for width in 1..=4 {
            let g = adder(width);
            let depth = g.depth() as u32;
            for stages in 1..=4usize {
                for window in 0..=3 {
                    let ranks = choose_rank_levels(&g, stages, window);
                    let effective = stages.min((depth as usize).div_ceil(2));
                    assert_eq!(
                        ranks.len(),
                        2 * effective,
                        "width {width} stages {stages}: {ranks:?}"
                    );
                    for w in ranks.windows(2) {
                        assert!(w[0] < w[1], "must strictly increase: {ranks:?}");
                    }
                    let (&last, interior) = ranks.split_last().unwrap();
                    assert_eq!(last, depth + 1, "final rank registers outputs");
                    for &r in interior {
                        assert!((1..=depth).contains(&r), "interior in range: {ranks:?}");
                    }
                }
            }
        }
        // A wire-only design has no fabric to cut: no ranks at all.
        let mut g = Aig::new("wire");
        let a = g.input("a");
        g.output("o", a);
        assert!(choose_rank_levels(&g, 2, 3).is_empty());
    }

    #[test]
    fn crossing_width_of_chain_is_one_plus_inputs() {
        // AND chain: at any interior cut, exactly the accumulator and the
        // not-yet-consumed inputs cross.
        let mut g = Aig::new("chain");
        let xs = g.input_word("x", 4);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = g.and(acc, x);
        }
        g.output("o", acc);
        let w = crossing_widths(&g);
        // Cut below level 1: acc(x0 input) + x1..x3 inputs... = x0,x1 used
        // at level 1, later inputs used later.
        // At cut 2: node level1 + x2, x3.
        assert_eq!(w[2], 3);
        // At the output boundary only the final node crosses.
        assert_eq!(w[g.depth() + 1], 1);
    }

    #[test]
    fn window_picks_narrow_cut() {
        // Funnel: wide at level 1, narrow at level 2+.
        let mut g = Aig::new("funnel");
        let xs = g.input_word("x", 8);
        let pairs: Vec<_> = xs.chunks(2).map(|p| g.and(p[0], p[1])).collect();
        let quads: Vec<_> = pairs.chunks(2).map(|p| g.and(p[0], p[1])).collect();
        let top = g.and(quads[0], quads[1]);
        g.output("o", top);
        // depth 3; crossing widths: cut1: 4, cut2: 2, cut3: 1.
        let w = crossing_widths(&g);
        assert!(w[2] < w[1]);
        let ranks = choose_rank_levels(&g, 1, 1);
        // The interior rank's ideal is ceil(3*1/2)=2 and width(2) < width(1),
        // so it must stay at 2.
        assert_eq!(ranks[0], 2);
    }
}
