//! Pipeline rank placement (paper §4.2.2, Table 5).
//!
//! Every architectural pipeline stage needs *two* DROC ranks because of
//! xSFQ's alternating encoding (excite + relax phases per logical cycle).
//! Rather than leaving both DROCs of a pair adjacent — which wastes a
//! synchronous stage with no logic in it — the ranks are spread through the
//! combinational fabric, which is what the paper achieves with ABC's
//! retiming. Placement searches a window around the equal-depth positions
//! for the cut with the fewest crossing signals (fewest DROCs).

use xsfq_aig::{Aig, NodeKind};

/// Choose the rank levels for `arch_stages` architectural pipeline stages.
///
/// Returns `2 × stages` cut levels in **strictly increasing** order, where
/// `stages = min(arch_stages, ⌈depth / 2⌉)` — a fabric of depth `d` can
/// host at most `⌈d / 2⌉` architectural stages, because the `2·stages − 1`
/// interior ranks need distinct levels in `1..=depth`. Requesting more
/// stages than the fabric can hold saturates (rather than emitting the
/// duplicate or out-of-range ranks that would silently corrupt the stage
/// balance). The final rank sits past every node (`depth + 1`), registering
/// the primary outputs; the interior ranks divide the logic into
/// equal-delay segments, nudged within `window` levels to minimize the
/// number of crossing signals, and always satisfy `1 ≤ rank ≤ depth`.
///
/// Returns an empty vector for `arch_stages == 0` or a depth-0 (wire-only)
/// design.
pub fn choose_rank_levels(aig: &Aig, arch_stages: usize, window: u32) -> Vec<u32> {
    let depth = aig.depth() as u32;
    // Saturate the stage count to what the fabric can hold: the 2s − 1
    // interior cuts need distinct levels in 1..=depth, so 2s − 1 ≤ depth.
    let arch_stages = arch_stages.min((depth as usize).div_ceil(2));
    if arch_stages == 0 {
        return Vec::new();
    }
    let ranks = 2 * arch_stages as u32;
    let mut levels = Vec::with_capacity(ranks as usize);
    let widths = crossing_widths(aig);
    // Cap the search window to a quarter of a segment so the min-width
    // search cannot destroy the stage balance the cuts exist for — but
    // never below one level: `depth / ranks / 4` rounds to 0 whenever
    // `depth < 4 × ranks`, which used to silently disable the search on
    // every shallow fabric even though a ±1 nudge cannot hurt the balance
    // (the monotonicity repair below keeps all invariants regardless).
    let window = window.min((depth / ranks / 4).max(1));
    for i in 1..ranks {
        let ideal = (depth * i).div_ceil(ranks).max(1);
        let lo = ideal.saturating_sub(window).max(1);
        let hi = (ideal + window).min(depth);
        let mut best = ideal;
        let mut best_width = usize::MAX;
        for cut in lo..=hi {
            let w = widths.get(cut as usize).copied().unwrap_or(usize::MAX);
            if w < best_width {
                best_width = w;
                best = cut;
            }
        }
        // Keep cuts strictly increasing.
        if let Some(&prev) = levels.last() {
            if best <= prev {
                best = prev + 1;
            }
        }
        levels.push(best);
    }
    // The monotonicity bump can overshoot `depth` on shallow fabrics;
    // saturation guarantees a feasible assignment exists, so repair from
    // the top down (each cut capped one below its successor). This keeps
    // strict monotonicity and clamps every interior cut into 1..=depth.
    let n = levels.len();
    levels[n - 1] = levels[n - 1].min(depth);
    for j in (0..n - 1).rev() {
        levels[j] = levels[j].min(levels[j + 1] - 1);
    }
    debug_assert!(levels[0] >= 1 && levels[n - 1] <= depth);
    debug_assert!(levels.windows(2).all(|w| w[0] < w[1]));
    levels.push(depth + 1); // output rank
    levels
}

/// Number of signals crossing a cut placed just below each level:
/// `widths[l]` counts nodes with `level < l` that feed a consumer with
/// `level ≥ l` (primary outputs count as consumers at `depth + 1`).
///
/// Implemented as a difference array — `+1` where a node's live range
/// starts, `−1` just past where it ends, one prefix-sum pass — so the cost
/// is O(nodes + depth). The old per-level increment loop was
/// O(depth × nodes): every long-lived signal (an input consumed near the
/// outputs, say) paid its whole live range, a real blowup on deep EPFL
/// designs like `div` and `hyp`. The `crossing_widths_matches_reference`
/// proptest pins this against the naive loop.
pub fn crossing_widths(aig: &Aig) -> Vec<usize> {
    let levels = aig.levels();
    let depth = aig.depth() as u32;
    // For each node: the maximum consumer level.
    let mut max_consumer = vec![0u32; aig.num_nodes()];
    for (i, kind) in aig.nodes().iter().enumerate() {
        if let NodeKind::And { a, b } = kind {
            let lvl = levels[i];
            for f in [a.node().index(), b.node().index()] {
                max_consumer[f] = max_consumer[f].max(lvl);
            }
        }
    }
    for root in aig.combinational_roots() {
        max_consumer[root.node().index()] = depth + 1;
    }
    // A node with level `lv` and maximum consumer level `hi` crosses every
    // cut `l` with `lv < l ≤ hi`: mark `+1` at `lv + 1`, `−1` past `hi`.
    let mut delta = vec![0isize; depth as usize + 3];
    for i in 0..aig.num_nodes() {
        if max_consumer[i] == 0 {
            continue; // dangling
        }
        let lo = levels[i] + 1;
        let hi = max_consumer[i].min(depth + 1);
        if lo > hi {
            continue;
        }
        delta[lo as usize] += 1;
        delta[hi as usize + 1] -= 1;
    }
    let mut widths = vec![0usize; depth as usize + 2];
    let mut running = 0isize;
    for (l, w) in widths.iter_mut().enumerate() {
        running += delta[l];
        debug_assert!(running >= 0, "live ranges cannot go negative");
        *w = running as usize;
    }
    widths
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::build;
    use xsfq_aig::Lit;

    fn adder(width: usize) -> Aig {
        let mut g = Aig::new("adder");
        let a = g.input_word("a", width);
        let b = g.input_word("b", width);
        let (s, c) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        g
    }

    #[test]
    fn zero_stages_means_no_ranks() {
        let g = adder(4);
        assert!(choose_rank_levels(&g, 0, 2).is_empty());
    }

    #[test]
    fn levels_are_strictly_increasing_and_end_past_depth() {
        let g = adder(8);
        for stages in 1..=3 {
            let ranks = choose_rank_levels(&g, stages, 3);
            assert_eq!(ranks.len(), 2 * stages);
            for w in ranks.windows(2) {
                assert!(w[0] < w[1], "ranks must increase: {ranks:?}");
            }
            assert_eq!(
                *ranks.last().unwrap(),
                g.depth() as u32 + 1,
                "final rank registers the outputs"
            );
        }
    }

    /// Regression: with `depth < 2 × arch_stages` the old monotonicity bump
    /// (`best = prev + 1`) produced duplicate and out-of-range ranks — e.g.
    /// a depth-2 adder at 2 stages emitted `[1, 2, 3, 3]`, colliding with
    /// the output rank and silently corrupting the stage balance. The stage
    /// count must saturate and every invariant must hold on shallow fabrics.
    #[test]
    fn shallow_fabric_saturates_stages_and_keeps_invariants() {
        for width in 1..=4 {
            let g = adder(width);
            let depth = g.depth() as u32;
            for stages in 1..=4usize {
                for window in 0..=3 {
                    let ranks = choose_rank_levels(&g, stages, window);
                    let effective = stages.min((depth as usize).div_ceil(2));
                    assert_eq!(
                        ranks.len(),
                        2 * effective,
                        "width {width} stages {stages}: {ranks:?}"
                    );
                    for w in ranks.windows(2) {
                        assert!(w[0] < w[1], "must strictly increase: {ranks:?}");
                    }
                    let (&last, interior) = ranks.split_last().unwrap();
                    assert_eq!(last, depth + 1, "final rank registers outputs");
                    for &r in interior {
                        assert!((1..=depth).contains(&r), "interior in range: {ranks:?}");
                    }
                }
            }
        }
        // A wire-only design has no fabric to cut: no ranks at all.
        let mut g = Aig::new("wire");
        let a = g.input("a");
        g.output("o", a);
        assert!(choose_rank_levels(&g, 2, 3).is_empty());
    }

    #[test]
    fn crossing_width_of_chain_is_one_plus_inputs() {
        // AND chain: at any interior cut, exactly the accumulator and the
        // not-yet-consumed inputs cross.
        let mut g = Aig::new("chain");
        let xs = g.input_word("x", 4);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = g.and(acc, x);
        }
        g.output("o", acc);
        let w = crossing_widths(&g);
        // Cut below level 1: acc(x0 input) + x1..x3 inputs... = x0,x1 used
        // at level 1, later inputs used later.
        // At cut 2: node level1 + x2, x3.
        assert_eq!(w[2], 3);
        // At the output boundary only the final node crosses.
        assert_eq!(w[g.depth() + 1], 1);
    }

    /// The old per-level increment loop, kept as the reference the
    /// difference-array rewrite is pinned against.
    fn crossing_widths_reference(aig: &Aig) -> Vec<usize> {
        let levels = aig.levels();
        let depth = aig.depth() as u32;
        let mut max_consumer = vec![0u32; aig.num_nodes()];
        for (i, kind) in aig.nodes().iter().enumerate() {
            if let NodeKind::And { a, b } = kind {
                let lvl = levels[i];
                for f in [a.node().index(), b.node().index()] {
                    max_consumer[f] = max_consumer[f].max(lvl);
                }
            }
        }
        for root in aig.combinational_roots() {
            max_consumer[root.node().index()] = depth + 1;
        }
        let mut widths = vec![0usize; depth as usize + 2];
        for i in 0..aig.num_nodes() {
            if max_consumer[i] == 0 {
                continue;
            }
            let lo = levels[i] + 1;
            let hi = max_consumer[i];
            for l in lo..=hi.min(depth + 1) {
                widths[l as usize] += 1;
            }
        }
        widths
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;
        use xsfq_aig::Lit;

        /// Random DAG from a recipe of (op, operand, operand) triples.
        fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
            let mut g = Aig::new("rand");
            let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
            for &(op, i, j) in recipe {
                let a = pool[i % pool.len()];
                let b = pool[j % pool.len()];
                let lit = match op % 6 {
                    0 => g.and(a, b),
                    1 => g.or(a, b),
                    2 => g.xor(a, b),
                    3 => g.nand(a, b),
                    4 => g.mux(a, b, !a),
                    _ => g.xnor(a, b),
                };
                pool.push(lit);
            }
            let o = *pool.last().unwrap();
            g.output("o", o);
            g
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// The O(nodes + depth) difference-array sweep equals the old
            /// O(depth × nodes) loop on random AIGs, level for level.
            #[test]
            fn crossing_widths_matches_reference(
                recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 1..120),
                inputs in 2usize..8,
            ) {
                let g = circuit_from_recipe(&recipe, inputs);
                prop_assert_eq!(crossing_widths(&g), crossing_widths_reference(&g));
            }
        }
    }

    /// Regression: the window cap `depth / ranks / 4` rounds to 0 whenever
    /// `depth < 4 × ranks`, silently disabling the min-width search on
    /// shallow fabrics even though a ±1 nudge cannot break stage balance.
    /// On this depth-3 fabric (1 stage ⇒ 2 ranks, old cap `3/2/4 = 0`) the
    /// interior rank's ideal position crosses 5 signals while one level up
    /// crosses 4 — the floored window must take the narrower cut.
    #[test]
    fn shallow_fabric_window_engages() {
        // x = a & b fans out to four level-2 ANDs; two of those feed a
        // level-3 AND, the others are outputs.
        let mut g = Aig::new("shallow");
        let a = g.input("a");
        let b = g.input("b");
        let ins = g.input_word("i", 4);
        let x = g.and(a, b);
        let cs: Vec<Lit> = ins.iter().map(|&i| g.and(x, i)).collect();
        let d = g.and(cs[0], cs[1]);
        g.output("d", d);
        g.output("c2", cs[2]);
        g.output("c3", cs[3]);
        assert_eq!(g.depth(), 3);
        let w = crossing_widths(&g);
        assert!(
            w[3] < w[2],
            "fixture must have a narrower cut one level up: {w:?}"
        );
        let ranks = choose_rank_levels(&g, 1, 3);
        assert_eq!(ranks[0], 3, "the ±1 nudge must engage on shallow fabrics");
        // All placement invariants hold.
        assert_eq!(*ranks.last().unwrap(), g.depth() as u32 + 1);
        assert!(ranks.windows(2).all(|p| p[0] < p[1]));
        // An explicit zero window still means "no nudge".
        let fixed = choose_rank_levels(&g, 1, 0);
        assert_eq!(fixed[0], 2, "window 0 keeps the equal-depth position");
    }

    #[test]
    fn window_picks_narrow_cut() {
        // Funnel: wide at level 1, narrow at level 2+.
        let mut g = Aig::new("funnel");
        let xs = g.input_word("x", 8);
        let pairs: Vec<_> = xs.chunks(2).map(|p| g.and(p[0], p[1])).collect();
        let quads: Vec<_> = pairs.chunks(2).map(|p| g.and(p[0], p[1])).collect();
        let top = g.and(quads[0], quads[1]);
        g.output("o", top);
        // depth 3; crossing widths: cut1: 4, cut2: 2, cut3: 1.
        let w = crossing_widths(&g);
        assert!(w[2] < w[1]);
        assert!(w[3] < w[2]);
        // The interior rank's ideal is ceil(3*1/2) = 2; the requested ±1
        // window reaches the even narrower cut at 3. (Before the window
        // floor fix, `depth / ranks / 4 = 0` silently pinned it to 2.)
        let ranks = choose_rank_levels(&g, 1, 1);
        assert_eq!(ranks[0], 3);
        // With no window the ideal equal-depth position stands.
        let fixed = choose_rank_levels(&g, 1, 0);
        assert_eq!(fixed[0], 2);
    }
}
