//! Dual-rail technology mapping: AIG → clock-free xSFQ netlist.
//!
//! The mapper exploits the paper's central isomorphism (§3.1.3): an AIG node
//! maps to an LA cell (its positive rail, an AND) and/or an FA cell (its
//! negative rail, an OR of complements — De Morgan). Inversions are wire
//! twists. Which rails exist is decided by the polarity analysis
//! ([`crate::polarity`]); pipeline DROC ranks (§4.2.2) and sequential DROC
//! pairs with the preload/trigger initialization strategy (§3.2) are
//! inserted here as well.
//!
//! # Parallel evaluate, sequential commit
//!
//! Mapping follows the same mold as the resynthesis passes (see
//! `xsfq_exec`'s module docs):
//!
//! * **evaluate** — the backward rail-requirements sweep
//!   (`needs_pos`/`needs_neg`/`needs_any` per node). A node's requirements
//!   are fixed once every consumer (always at a strictly higher logic
//!   level) has propagated its demands, so the sweep walks the levels top
//!   down and fans each level's nodes across the executor pool; each node
//!   computes its own promoted flags plus the demands it pushes onto its
//!   two fanins, all pure functions of already-finalized state. The
//!   per-level demands are then committed in node-index order — and since
//!   they only OR monotone flags, the final requirement vectors are
//!   **bit-identical** to the sequential reverse-id sweep for every thread
//!   count.
//! * **commit** — netlist emission. Cell instantiation order determines
//!   `NetId`/`CellId` numbering, so cells are emitted single-threaded in
//!   ascending node-index order (DROC chains created on first demand),
//!   which pins the mapped netlist bit-identical for every thread count.
//!   The `map_identity` proptest gates this in CI.

use xsfq_aig::{Aig, Lit, NodeId, NodeKind};
use xsfq_cells::{CellKind, CellLibrary, InterconnectStyle};
use xsfq_exec::ThreadPool;
use xsfq_netlist::{NetId, Netlist};

use crate::polarity::{OutputPolarity, PolarityAssignment, PolarityMode, RailRequirements};

/// Mapping options.
#[derive(Clone, Debug)]
pub struct MapOptions {
    /// Output polarity strategy (paper §3.1.4–3.1.5).
    pub polarity: PolarityMode,
    /// Interconnect style selecting the cell library variant.
    pub style: InterconnectStyle,
    /// Levels at which pipeline DROC ranks are inserted, ascending. Rank
    /// `i` (1-based) is preloaded + trigger-clocked when odd — the first
    /// DROC of each logical pair (§3.2). Empty for purely combinational
    /// mapping. Primary outputs register past all ranks.
    pub rank_levels: Vec<u32>,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            polarity: PolarityMode::Heuristic,
            style: InterconnectStyle::Abutted,
            rank_levels: Vec::new(),
        }
    }
}

/// Result of mapping an AIG to xSFQ cells.
#[derive(Clone, Debug)]
pub struct MappedDesign {
    /// The logical netlist (multi-fanout nets, no splitters).
    pub logical: Netlist,
    /// The physical netlist (balanced splitter trees inserted).
    pub physical: Netlist,
    /// Chosen output polarities.
    pub assignment: PolarityAssignment,
    /// Rail requirements used for emission (after `needs-any` promotion).
    pub requirements: RailRequirements,
    /// AND nodes contributing at least one cell.
    pub used_nodes: usize,
    /// JJ cost of the trigger merger (5 when the §3.2 trigger is needed,
    /// else 0; the paper counts exactly one merger per design).
    pub trigger_merger_jj: u64,
}

impl MappedDesign {
    /// Duplication penalty in percent (paper Tables 3–6).
    pub fn duplication_percent(&self) -> f64 {
        if self.used_nodes == 0 {
            return 0.0;
        }
        let cells = self.physical.stats().la_fa;
        (cells as f64 / self.used_nodes as f64 - 1.0) * 100.0
    }
}

#[derive(Clone, Copy, Default)]
struct RailSet {
    pos: Option<NetId>,
    neg: Option<NetId>,
}

/// Tiny rank → [`RailSet`] map. A node touches at most a handful of
/// pipeline ranks (usually exactly one), so an inline linear vector beats a
/// per-node `HashMap` in both allocation count and lookup time.
#[derive(Clone, Default)]
struct RankRails(Vec<(usize, RailSet)>);

impl RankRails {
    #[inline]
    fn get(&self, rank: usize) -> Option<&RailSet> {
        self.0.iter().find(|(r, _)| *r == rank).map(|(_, s)| s)
    }

    #[inline]
    fn insert(&mut self, rank: usize, set: RailSet) {
        if let Some(slot) = self.0.iter_mut().find(|(r, _)| *r == rank) {
            slot.1 = set;
        } else {
            self.0.push((rank, set));
        }
    }
}

/// Map an optimized AIG to an xSFQ netlist, on the global executor pool.
///
/// # Panics
///
/// Panics if `rank_levels` is non-empty on a sequential design (pipelining
/// and feedback latches are composed at the flow level, not here).
pub fn map_xsfq(aig: &Aig, options: &MapOptions) -> MappedDesign {
    map_xsfq_with_pool(aig, options, ThreadPool::global())
}

/// [`map_xsfq`] on an explicit executor pool. The mapped netlist is
/// bit-identical for every pool size.
///
/// # Panics
///
/// Panics if `rank_levels` is non-empty on a sequential design.
pub fn map_xsfq_with_pool(aig: &Aig, options: &MapOptions, pool: &ThreadPool) -> MappedDesign {
    assert!(
        options.rank_levels.is_empty() || aig.num_latches() == 0,
        "pipeline ranks apply to combinational designs only"
    );
    let (assignment, _) = crate::polarity::assign_polarities_with_pool(aig, options.polarity, pool);
    map_with_assignment_pool(aig, options, assignment, pool)
}

/// Map with an explicit polarity assignment (for ablation studies), on the
/// global executor pool.
pub fn map_with_assignment(
    aig: &Aig,
    options: &MapOptions,
    assignment: PolarityAssignment,
) -> MappedDesign {
    map_with_assignment_pool(aig, options, assignment, ThreadPool::global())
}

/// Demands one node pushes onto its fanins, plus its own promoted flags —
/// the evaluate-phase output of the requirements sweep. Pure in the
/// already-finalized requirement state, so the parallel fan-out cannot
/// change it.
#[derive(Copy, Clone, Default)]
struct NodeDemand {
    pos: bool,
    neg: bool,
    /// Fanin demands: (node index, rail) with rail 0 = pos, 1 = neg,
    /// 2 = any (cross-rank reference). At most 2 senses × 2 edges.
    edges: [(u32, u8); 4],
    n_edges: u8,
}

/// [`map_with_assignment`] on an explicit executor pool.
pub fn map_with_assignment_pool(
    aig: &Aig,
    options: &MapOptions,
    assignment: PolarityAssignment,
    pool: &ThreadPool,
) -> MappedDesign {
    let n = aig.num_nodes();
    let levels = aig.levels();
    let nranks = options.rank_levels.len();
    let rank_of = |node: NodeId| -> usize {
        let lvl = levels[node.index()];
        options.rank_levels.iter().filter(|&&c| c <= lvl).count()
    };
    let out_rank = nranks;
    let dual_rail = options.polarity == PolarityMode::DualRail;

    // ---- Requirements analysis (rank-aware backward sweep) ----
    //
    // Evaluate phase of the mapper: levelized top-down over the executor.
    // A node's requirements are final once every consumer — all at strictly
    // higher levels — has been committed, so the nodes of one level fan out
    // in parallel and their fanin demands are committed in node-index order
    // before the next (lower) level starts. Demands are monotone flag ORs,
    // making the result bit-identical to a sequential reverse-id sweep.
    let mut needs_pos = vec![false; n];
    let mut needs_neg = vec![false; n];
    let mut needs_any = vec![false; n];
    let base_rank: Vec<usize> = (0..n).map(|i| rank_of(NodeId::from_index(i))).collect();

    let mut seed = |lit: Lit, positive_sense: bool, consumer_rank: usize| {
        let node = lit.node().index();
        if consumer_rank > base_rank[node] {
            needs_any[node] = true;
        } else if positive_sense ^ lit.is_complement() {
            needs_pos[node] = true;
        } else {
            needs_neg[node] = true;
        }
    };
    for (o, pol) in aig.outputs().iter().zip(&assignment.outputs) {
        if dual_rail {
            seed(o.lit, true, out_rank);
            seed(o.lit, false, out_rank);
        } else {
            seed(o.lit, *pol == OutputPolarity::Positive, out_rank);
        }
    }
    for latch in aig.latches() {
        // §3.2 initialization: the first DROC samples the positive rail of
        // the next-state function when init = 1, the negative rail when
        // init = 0 (so the trigger-cycle dummy emerges as the init value).
        seed(latch.next, latch.init, 0);
    }

    // A one-participant pool runs the plain reverse-id sweep — no level
    // bucketing, no demand buffers. The levelized parallel path below
    // computes exactly the same flags (demands are monotone ORs over
    // consumers, which all sit at strictly higher levels); `map_identity`
    // compares the two paths in CI.
    if pool.num_threads() == 1 {
        for i in (1..n).rev() {
            let NodeKind::And { a, b } = aig.nodes()[i] else {
                continue;
            };
            if dual_rail && (needs_pos[i] || needs_neg[i] || needs_any[i]) {
                needs_pos[i] = true;
                needs_neg[i] = true;
            }
            // Promote a registered-only requirement to a single rail.
            if needs_any[i] && !needs_pos[i] && !needs_neg[i] {
                needs_pos[i] = true;
            }
            let nr = base_rank[i];
            for (sense, active) in [(true, needs_pos[i]), (false, needs_neg[i])] {
                if !active {
                    continue;
                }
                for edge in [a, b] {
                    let c = edge.node().index();
                    if nr > base_rank[c] {
                        needs_any[c] = true;
                    } else if sense ^ edge.is_complement() {
                        needs_pos[c] = true;
                    } else {
                        needs_neg[c] = true;
                    }
                }
            }
        }
        return emit_mapping(
            aig, options, assignment, needs_pos, needs_neg, base_rank, out_rank, dual_rail,
        );
    }

    // AND nodes bucketed by level, descending; ids ascending within a level
    // (stable sort), which fixes the commit order.
    let mut order: Vec<u32> = (0..n as u32)
        .filter(|&i| aig.nodes()[i as usize].is_and())
        .collect();
    order.sort_by_key(|&i| std::cmp::Reverse(levels[i as usize]));
    let mut start = 0;
    while start < order.len() {
        let level = levels[order[start] as usize];
        let mut end = start + 1;
        while end < order.len() && levels[order[end] as usize] == level {
            end += 1;
        }
        let group = &order[start..end];
        let demands = {
            let (np, nn, na) = (&needs_pos, &needs_neg, &needs_any);
            let base = &base_rank;
            pool.map_init(
                group,
                || (),
                |(), _, &i| {
                    let i = i as usize;
                    let NodeKind::And { a, b } = aig.nodes()[i] else {
                        unreachable!("only AND nodes are swept per level");
                    };
                    let (mut pos, mut neg) = (np[i], nn[i]);
                    if dual_rail && (pos || neg || na[i]) {
                        pos = true;
                        neg = true;
                    }
                    // Promote a registered-only requirement to a single
                    // (positive) rail.
                    if na[i] && !pos && !neg {
                        pos = true;
                    }
                    let nr = base[i];
                    let mut d = NodeDemand {
                        pos,
                        neg,
                        ..Default::default()
                    };
                    for (sense, active) in [(true, pos), (false, neg)] {
                        if !active {
                            continue;
                        }
                        for edge in [a, b] {
                            let c = edge.node().index();
                            let rail = if nr > base[c] {
                                2
                            } else if sense ^ edge.is_complement() {
                                0
                            } else {
                                1
                            };
                            d.edges[d.n_edges as usize] = (c as u32, rail);
                            d.n_edges += 1;
                        }
                    }
                    d
                },
            )
        };
        for (&i, d) in group.iter().zip(&demands) {
            needs_pos[i as usize] = d.pos;
            needs_neg[i as usize] = d.neg;
            for &(c, rail) in &d.edges[..d.n_edges as usize] {
                match rail {
                    0 => needs_pos[c as usize] = true,
                    1 => needs_neg[c as usize] = true,
                    _ => needs_any[c as usize] = true,
                }
            }
        }
        start = end;
    }
    // Inputs/constants referenced only across ranks also need promotion so
    // the DROC chain has a source rail (input rails exist anyway).
    emit_mapping(
        aig, options, assignment, needs_pos, needs_neg, base_rank, out_rank, dual_rail,
    )
}

/// Emission — the mapper's sequential commit phase. Cell instantiation
/// order determines `CellId`/`NetId` numbering, so this always runs
/// single-threaded in ascending node-index order (DROC rank chains created
/// on first demand), which is what makes the mapped netlist bit-identical
/// for every thread count.
#[allow(clippy::too_many_arguments)]
fn emit_mapping(
    aig: &Aig,
    options: &MapOptions,
    assignment: PolarityAssignment,
    needs_pos: Vec<bool>,
    needs_neg: Vec<bool>,
    base_rank: Vec<usize>,
    out_rank: usize,
    dual_rail: bool,
) -> MappedDesign {
    let n = aig.num_nodes();
    let mut netlist = Netlist::new(aig.name().to_string(), CellLibrary::xsfq(options.style));
    // rails[node] maps rank → RailSet.
    let mut rails: Vec<RankRails> = vec![RankRails::default(); n];

    // Constant rails, created on demand (constant outputs are represented
    // as alternating sources at the interface, modeled as input ports).
    let mut const_rails: Option<RailSet> = None;

    // Primary inputs: both rails as ports (Eq. 1's N_inp = 2 × |PI|).
    for (i, &id) in aig.inputs().iter().enumerate() {
        let p = netlist.add_input(format!("{}_p", aig.input_name(i)));
        let q = netlist.add_input(format!("{}_n", aig.input_name(i)));
        rails[id.index()].insert(
            0,
            RailSet {
                pos: Some(p),
                neg: Some(q),
            },
        );
    }

    // Latches: DROC pairs implementing the §3.2 protocol — the first DROC
    // is preloaded and trigger-clocked, the second is plain. The data rail
    // and output-pin assignment follow the init value: init = 0 samples the
    // negative rail and swaps Qp/Qn (so the trigger-cycle dummy pulse
    // emerges on the negative rail, i.e. as logical 0).
    let mut latch_first_droc = Vec::with_capacity(aig.num_latches());
    for latch in aig.latches() {
        let flip = !latch.init;
        let (d1, d1_outs) = netlist.add_cell_deferred(CellKind::Droc { preload: true });
        netlist.set_trigger_clocked(d1);
        let d2_outs = netlist.add_cell(CellKind::Droc { preload: false }, &[d1_outs[0]]);
        let (pos, neg) = if flip {
            (d2_outs[1], d2_outs[0])
        } else {
            (d2_outs[0], d2_outs[1])
        };
        rails[latch.output.index()].insert(
            0,
            RailSet {
                pos: Some(pos),
                neg: Some(neg),
            },
        );
        latch_first_droc.push(d1);
    }

    // Helper: fetch (creating DROC chains as needed) the rail of `node`
    // carrying `want_pos` at `rank`.
    fn get_rail(
        netlist: &mut Netlist,
        rails: &mut Vec<RankRails>,
        const_rails: &mut Option<RailSet>,
        base_rank: &[usize],
        node: usize,
        want_pos: bool,
        rank: usize,
    ) -> NetId {
        if node == 0 {
            // Constant-zero node: alternating constant sources at the
            // interface (modeled as dedicated input ports).
            let set = const_rails.get_or_insert_with(|| RailSet {
                pos: Some(netlist.add_input("const0_p")),
                neg: Some(netlist.add_input("const0_n")),
            });
            return if want_pos {
                set.pos.expect("const rail")
            } else {
                set.neg.expect("const rail")
            };
        }
        if let Some(set) = rails[node].get(rank) {
            if let Some(net) = if want_pos { set.pos } else { set.neg } {
                return net;
            }
        }
        assert!(
            rank > base_rank[node],
            "rail {} of node {node} missing at its base rank — requirements analysis bug",
            if want_pos { "pos" } else { "neg" }
        );
        // Register the previous rank's rail through a DROC. Prefer the
        // positive rail as the data sense when available.
        let prev = rank - 1;
        let prev_set = rails[node].get(prev).copied().unwrap_or_default();
        let (src, src_pos) = if let Some(p) = prev_set.pos {
            (p, true)
        } else if let Some(ng) = prev_set.neg {
            (ng, false)
        } else {
            // Ensure the previous rank exists first (recursive chain).
            let p = get_rail(netlist, rails, const_rails, base_rank, node, true, prev);
            (p, true)
        };
        // Boundary index == rank (1-based); odd boundaries are the
        // preloaded, trigger-clocked first halves of the logical pairs.
        let preload = rank % 2 == 1;
        let (cell, outs) = {
            let outs = netlist.add_cell(CellKind::Droc { preload }, &[src]);
            let cell = match netlist.driver(outs[0]) {
                xsfq_netlist::Driver::Cell { cell, .. } => cell,
                xsfq_netlist::Driver::Input(_) => unreachable!(),
            };
            (cell, outs)
        };
        if preload {
            netlist.set_trigger_clocked(cell);
        }
        let (pos, neg) = if src_pos {
            (outs[0], outs[1])
        } else {
            (outs[1], outs[0])
        };
        rails[node].insert(
            rank,
            RailSet {
                pos: Some(pos),
                neg: Some(neg),
            },
        );
        if want_pos {
            pos
        } else {
            neg
        }
    }

    // Logic cells, topological order.
    for i in 1..n {
        let NodeKind::And { a, b } = aig.nodes()[i] else {
            continue;
        };
        let nr = base_rank[i];
        let mut set = RailSet::default();
        if needs_pos[i] {
            // LA on the positive senses of the fanin edges.
            let ia = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                a,
                true,
                nr,
            );
            let ib = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                b,
                true,
                nr,
            );
            set.pos = Some(netlist.add_cell(CellKind::La, &[ia, ib])[0]);
        }
        if needs_neg[i] {
            // FA on the negative senses (De Morgan).
            let ia = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                a,
                false,
                nr,
            );
            let ib = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                b,
                false,
                nr,
            );
            set.neg = Some(netlist.add_cell(CellKind::Fa, &[ia, ib])[0]);
        }
        if set.pos.is_some() || set.neg.is_some() {
            rails[i].insert(nr, set);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn fanin_rail(
        netlist: &mut Netlist,
        rails: &mut Vec<RankRails>,
        const_rails: &mut Option<RailSet>,
        base_rank: &[usize],
        edge: Lit,
        sense_pos: bool,
        consumer_rank: usize,
    ) -> NetId {
        let want_pos = sense_pos ^ edge.is_complement();
        get_rail(
            netlist,
            rails,
            const_rails,
            base_rank,
            edge.node().index(),
            want_pos,
            consumer_rank,
        )
    }

    // Wire the latch data inputs (positive rail for init = 1, negative
    // rail for init = 0 — matching the requirement seeding above).
    for (latch, &d1) in aig.latches().iter().zip(&latch_first_droc) {
        let net = fanin_rail(
            &mut netlist,
            &mut rails,
            &mut const_rails,
            &base_rank,
            latch.next,
            latch.init,
            0,
        );
        netlist.connect_input(d1, 0, net);
    }

    // Primary outputs.
    for (o, pol) in aig.outputs().iter().zip(&assignment.outputs) {
        if dual_rail {
            let p = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                o.lit,
                true,
                out_rank,
            );
            let q = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                o.lit,
                false,
                out_rank,
            );
            netlist.add_output(format!("{}_p", o.name), p);
            netlist.add_output(format!("{}_n", o.name), q);
        } else {
            let positive = *pol == OutputPolarity::Positive;
            let net = fanin_rail(
                &mut netlist,
                &mut rails,
                &mut const_rails,
                &base_rank,
                o.lit,
                positive,
                out_rank,
            );
            netlist.add_output(o.name.clone(), net);
        }
    }

    netlist.assert_connected();
    let physical = netlist.insert_splitters();
    let trigger_merger_jj = if netlist.trigger_clocked().is_empty() {
        0
    } else {
        u64::from(netlist.library().jj(CellKind::Merger))
    };
    let used_nodes = (1..n)
        .filter(|&i| aig.nodes()[i].is_and() && (needs_pos[i] || needs_neg[i]))
        .count();
    MappedDesign {
        logical: netlist,
        physical,
        assignment,
        requirements: RailRequirements {
            needs_pos,
            needs_neg,
        },
        used_nodes,
        trigger_merger_jj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::build;

    fn full_adder() -> Aig {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        g
    }

    #[test]
    fn dual_rail_full_adder_matches_figure4() {
        let g = full_adder();
        let m = map_xsfq(
            &g,
            &MapOptions {
                polarity: PolarityMode::DualRail,
                ..Default::default()
            },
        );
        let st = m.physical.stats();
        assert_eq!(st.la_fa, 14, "Figure 4: 14 LA/FA cells");
        assert_eq!(st.splitters, 12, "Figure 4: 12 splitters");
        // 14×4 + 12×3 = 92 JJ (§3.1.3: saves 28 of the 120 direct JJs).
        assert_eq!(st.jj_total, 92);
    }

    #[test]
    fn positive_polarity_full_adder_matches_figure5i() {
        let g = full_adder();
        let m = map_xsfq(
            &g,
            &MapOptions {
                polarity: PolarityMode::AllPositive,
                ..Default::default()
            },
        );
        let st = m.physical.stats();
        assert_eq!(st.la_fa, 11, "Figure 5i: 11 LA/FA cells");
        assert_eq!(st.splitters, 7, "Figure 5i: 7 splitters");
        assert_eq!(st.jj_total, 65);
    }

    #[test]
    fn heuristic_full_adder_matches_figure5ii() {
        let g = full_adder();
        let m = map_xsfq(&g, &MapOptions::default());
        let st = m.physical.stats();
        assert_eq!(st.la_fa, 10, "Figure 5ii: 10 LA/FA cells");
        assert_eq!(st.splitters, 6, "Figure 5ii: 6 splitters");
        assert_eq!(st.jj_total, 58, "Figure 5ii: 58 JJs without PTLs");
    }

    #[test]
    fn ptl_library_full_adder_jjs() {
        let g = full_adder();
        let m = map_xsfq(
            &g,
            &MapOptions {
                style: InterconnectStyle::Ptl,
                ..Default::default()
            },
        );
        // Figure 5ii with PTLs: 10×12 + 6×3 = 138 JJs.
        assert_eq!(m.physical.stats().jj_total, 138);
    }

    #[test]
    fn equation1_holds_on_full_adder() {
        let g = full_adder();
        for mode in [
            PolarityMode::DualRail,
            PolarityMode::AllPositive,
            PolarityMode::Heuristic,
        ] {
            let m = map_xsfq(
                &g,
                &MapOptions {
                    polarity: mode,
                    ..Default::default()
                },
            );
            let st = m.physical.stats();
            let n_gate = st.la_fa;
            let n_out = m.logical.outputs().len();
            let n_inp = m.logical.inputs().len();
            assert_eq!(
                st.splitters,
                n_gate + n_out - n_inp,
                "Equation 1 violated for {mode:?}"
            );
        }
    }

    #[test]
    fn combinational_designs_have_no_clock() {
        let g = full_adder();
        let m = map_xsfq(&g, &MapOptions::default());
        let st = m.physical.stats();
        assert_eq!(st.clocked_cells, 0);
        assert_eq!(st.clock_tree_jj(3), 0);
        assert_eq!(m.trigger_merger_jj, 0);
    }

    #[test]
    fn sequential_latch_becomes_droc_pair() {
        // 1-bit toggle: q' = !q.
        let mut g = Aig::new("toggle");
        let q = g.latch("q", false);
        g.set_latch_next(q, !q);
        g.output("o", q);
        let m = map_xsfq(&g, &MapOptions::default());
        let st = m.physical.stats();
        assert_eq!(st.drocs_preload + st.drocs_plain, 2, "one DROC pair");
        assert!(st.drocs_preload >= 1, "first DROC is preloaded");
        assert_eq!(m.physical.trigger_clocked().len(), 1);
        assert_eq!(m.trigger_merger_jj, 5);
    }

    #[test]
    fn every_latch_pair_has_one_preloaded_droc() {
        // §3.2: the first DROC of each pair carries the preloading
        // hardware, the second never does — regardless of the init value.
        for init in [false, true] {
            let mut g = Aig::new("t");
            let d = g.input("d");
            let q = g.latch("q", init);
            g.set_latch_next(q, d);
            g.output("o", q);
            let m = map_xsfq(
                &g,
                &MapOptions {
                    polarity: PolarityMode::AllPositive,
                    ..Default::default()
                },
            );
            let st = m.physical.stats();
            assert_eq!(st.drocs_preload, 1, "init={init}");
            assert_eq!(st.drocs_plain, 1, "init={init}");
        }
    }

    #[test]
    fn pipeline_ranks_insert_drocs() {
        // An AND chain of depth 4 with a rank cut at level 2 and one past
        // the end (outputs registered): 2 ranks = 1 architectural stage.
        let mut g = Aig::new("chain");
        let xs = g.input_word("x", 5);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = g.and(acc, x);
        }
        g.output("o", acc);
        assert_eq!(g.depth(), 4);
        let m = map_xsfq(
            &g,
            &MapOptions {
                polarity: PolarityMode::AllPositive,
                rank_levels: vec![3, 5],
                ..Default::default()
            },
        );
        let st = m.physical.stats();
        assert!(st.drocs_preload >= 1, "odd rank is preloaded");
        assert!(st.drocs_plain >= 1, "even rank is plain");
        // The deepest combinational segment shrank.
        assert!(
            st.depth_logic <= 3,
            "depth {} not pipelined",
            st.depth_logic
        );
        assert!(!m.physical.trigger_clocked().is_empty());
    }

    #[test]
    fn pipeline_registers_inputs_used_late() {
        // x feeds the last gate directly: it must be registered through
        // rank 1 so both operands arrive in the same phase.
        let mut g = Aig::new("skew");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("c");
        let ab = g.and(a, b);
        let abc = g.and(ab, c);
        g.output("o", abc);
        let m = map_xsfq(
            &g,
            &MapOptions {
                polarity: PolarityMode::AllPositive,
                rank_levels: vec![2],
                ..Default::default()
            },
        );
        // c (level 0) is consumed at rank 1 → needs one DROC; ab likewise.
        let st = m.physical.stats();
        assert!(
            st.drocs_preload + st.drocs_plain >= 2,
            "late-used inputs must be registered, got {}/{}",
            st.drocs_preload,
            st.drocs_plain
        );
    }
}
