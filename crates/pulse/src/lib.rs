//! # xsfq-pulse — event-driven pulse simulation of xSFQ netlists
//!
//! The workspace's substitute for PyLSE (Christensen et al., PLDI'22),
//! which the paper uses for pulse-level validation (§4, Figure 7). Cells
//! are finite state machines with the Table 1 semantics; the [`Harness`]
//! drives mapped netlists through the alternating dual-rail protocol with
//! the trigger/clock schedule of §3.2 and decodes logical values back out.
//!
//! ```
//! use xsfq_cells::{CellKind, CellLibrary};
//! use xsfq_netlist::Netlist;
//! use xsfq_pulse::{Harness, PulseSim};
//!
//! // Dual-rail AND gate (an LA-FA pair) under the alternating protocol.
//! let mut n = Netlist::new("and", CellLibrary::xsfq_abutted());
//! let ap = n.add_input("a_p");
//! let an = n.add_input("a_n");
//! let bp = n.add_input("b_p");
//! let bn = n.add_input("b_n");
//! let q = n.add_cell(CellKind::La, &[ap, bp])[0];
//! n.add_output("q", q);
//! let result = Harness::new(&n, vec![false]).run(&[vec![true, true]]);
//! assert_eq!(result.outputs[0], vec![true]);
//! ```

#![warn(missing_docs)]

mod harness;
mod sim;

pub mod wave;

pub use harness::{Harness, HarnessResult};
pub use sim::{PulseSim, Violation};
