//! ASCII waveform rendering for pulse traces (used to regenerate the
//! paper's Figure 7).

/// One labeled pulse train.
#[derive(Clone, Debug)]
pub struct Track {
    /// Signal label.
    pub label: String,
    /// Pulse times in ps.
    pub pulses: Vec<f64>,
}

/// Render labeled pulse trains as ASCII art, one character per `step_ps`.
/// Pulses render as `|`, idle time as `.`, with a header marking phase
/// boundaries every `phase_ps` (e/r alternation, Figure 7 style).
pub fn render(tracks: &[Track], t_end: f64, step_ps: f64, phase_ps: f64) -> String {
    let columns = (t_end / step_ps).ceil() as usize + 1;
    let label_width = tracks
        .iter()
        .map(|t| t.label.len())
        .max()
        .unwrap_or(0)
        .max(5);
    let mut out = String::new();
    // Phase ruler: e / r alternation starting at the first phase.
    let mut ruler = vec![b' '; columns];
    let mut phase = 0usize;
    loop {
        let t = phase as f64 * phase_ps;
        if t > t_end {
            break;
        }
        let col = (t / step_ps).round() as usize;
        if col < columns {
            ruler[col] = if phase == 0 {
                b'T' // trigger cycle
            } else if phase % 2 == 1 {
                b'e'
            } else {
                b'r'
            };
        }
        phase += 1;
    }
    out.push_str(&format!(
        "{:width$} {}\n",
        "phase",
        String::from_utf8_lossy(&ruler),
        width = label_width
    ));
    for track in tracks {
        let mut row = vec![b'.'; columns];
        for &p in &track.pulses {
            let col = (p / step_ps).round() as usize;
            if col < columns {
                row[col] = b'|';
            }
        }
        out.push_str(&format!(
            "{:width$} {}\n",
            track.label,
            String::from_utf8_lossy(&row),
            width = label_width
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_pulses_and_ruler() {
        let tracks = vec![
            Track {
                label: "clk".into(),
                pulses: vec![10.0, 20.0, 30.0],
            },
            Track {
                label: "out".into(),
                pulses: vec![15.0],
            },
        ];
        let s = render(&tracks, 40.0, 5.0, 10.0);
        assert!(s.contains("clk"));
        assert!(s.contains("out"));
        // clk pulses at columns 2, 4, 6.
        let clk_line = s.lines().find(|l| l.starts_with("clk")).unwrap();
        assert_eq!(clk_line.matches('|').count(), 3);
        let out_line = s.lines().find(|l| l.starts_with("out")).unwrap();
        assert_eq!(out_line.matches('|').count(), 1);
        // Ruler marks trigger + phases.
        let ruler = s.lines().next().unwrap();
        assert!(ruler.contains('T'));
        assert!(ruler.contains('e'));
        assert!(ruler.contains('r'));
    }
}
