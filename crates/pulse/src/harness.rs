//! Alternating dual-rail test harness.
//!
//! Encodes logical input vectors into the xSFQ alternating protocol
//! (Figure 1: the value pulses during the excite phase, its complement
//! during relax), drives the pulse simulator, and decodes output pulses
//! back to logical values — including clock/trigger scheduling for
//! sequential and pipelined designs (§3.2).

use xsfq_netlist::{NetId, Netlist};

use crate::sim::PulseSim;

/// Result of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessResult {
    /// Decoded output values, one vector per logical cycle (after latency).
    pub outputs: Vec<Vec<bool>>,
    /// Protocol violations recorded by the simulator.
    pub violations: usize,
    /// Whether every LA/FA cell was back in `Init` after the final cycle.
    pub reinitialized: bool,
}

/// Harness configuration.
#[derive(Clone, Debug)]
pub struct Harness<'a> {
    netlist: &'a Netlist,
    /// Per-output: `true` when the port carries the negative rail (decode
    /// inverts). Dual-rail netlists list each output's `_p` port.
    output_negative: Vec<bool>,
    /// Phase length in ps (must exceed the critical path delay).
    phase_ps: f64,
    /// Pipeline latency in logical cycles (number of DROC rank pairs).
    latency_cycles: usize,
}

impl<'a> Harness<'a> {
    /// Harness over a mapped netlist. `output_negative[i]` says output `i`
    /// retains the negative rail (from the flow's polarity assignment).
    pub fn new(netlist: &'a Netlist, output_negative: Vec<bool>) -> Self {
        assert_eq!(netlist.outputs().len(), output_negative.len());
        let phase_ps = netlist.stats().critical_delay_ps + 60.0;
        Harness {
            netlist,
            output_negative,
            phase_ps,
            latency_cycles: 0,
        }
    }

    /// Override the phase length.
    #[must_use]
    pub fn phase_ps(mut self, phase_ps: f64) -> Self {
        self.phase_ps = phase_ps;
        self
    }

    /// Set the pipeline latency in logical cycles (= architectural stages).
    #[must_use]
    pub fn latency_cycles(mut self, cycles: usize) -> Self {
        self.latency_cycles = cycles;
        self
    }

    /// Nets of the dual-rail input ports, as `(pos, neg)` pairs in AIG
    /// input order. Ports are `name_p`/`name_n` pairs by construction.
    fn input_pairs(&self) -> Vec<(NetId, NetId)> {
        let ports = self.netlist.inputs();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < ports.len() {
            let name = &ports[i].name;
            if name == "const0_p" || name == "const0_n" {
                i += 1;
                continue;
            }
            assert!(
                name.ends_with("_p"),
                "expected a _p rail port, found '{name}'"
            );
            pairs.push((ports[i].net, ports[i + 1].net));
            i += 2;
        }
        pairs
    }

    fn const_ports(&self) -> (Option<NetId>, Option<NetId>) {
        let mut p = None;
        let mut n = None;
        for port in self.netlist.inputs() {
            if port.name == "const0_p" {
                p = Some(port.net);
            }
            if port.name == "const0_n" {
                n = Some(port.net);
            }
        }
        (p, n)
    }

    /// Drive `vectors` (one per logical cycle) through the design and
    /// decode the outputs.
    ///
    /// Clocked designs get the §3.2 schedule: trigger at the start of the
    /// warm-up cycle, then one clock edge per phase. Purely combinational
    /// designs run clock-free.
    ///
    /// # Panics
    ///
    /// Panics if a vector's width differs from the input count.
    pub fn run(&self, vectors: &[Vec<bool>]) -> HarnessResult {
        let mut sim = PulseSim::new(self.netlist);
        let pairs = self.input_pairs();
        let (const_p, const_n) = self.const_ports();
        let t = self.phase_ps;
        let clocked = self.netlist.cells().iter().any(|c| c.kind.is_clocked());
        // Schedule: trigger at 0; clock edges at T, 2T, 3T, …
        // Logical cycle k (0-based) occupies excite [T(2k+1), T(2k+2)) and
        // relax [T(2k+2), T(2k+3)).
        if clocked {
            sim.trigger(0.0);
            // Exactly one edge per phase, ending at the final cycle's relax
            // edge — a further edge would start an excite phase with no
            // input pulses and leave LA/FA cells half-armed.
            let total_edges = 2 * (vectors.len() + self.latency_cycles);
            for e in 1..=total_edges {
                sim.clock(e as f64 * t);
            }
        }
        let cycle_start = |k: usize| -> f64 {
            if clocked {
                (2 * k + 1) as f64 * t
            } else {
                (2 * k) as f64 * t
            }
        };
        // The alternating protocol never goes silent: a logical 0 still
        // pulses the negative rail every cycle. Keep the input converters
        // running with idle (all-zero) vectors while the pipeline drains,
        // exactly as hardware dual-to-single-rail converters would.
        let idle = vec![false; pairs.len()];
        for k in 0..vectors.len() + self.latency_cycles {
            let vector = vectors.get(k).unwrap_or(&idle);
            assert_eq!(vector.len(), pairs.len(), "vector width");
            let te = cycle_start(k) + 8.0; // margin after the clock edge
            let tr = te + t;
            for (&v, &(p, n)) in vector.iter().zip(&pairs) {
                let (excite_rail, relax_rail) = if v { (p, n) } else { (n, p) };
                sim.inject(excite_rail, te);
                sim.inject(relax_rail, tr);
            }
            if let Some(cp) = const_p {
                sim.inject(cp, tr); // value 0: pos rail pulses in relax
            }
            if let Some(cn) = const_n {
                sim.inject(cn, te);
            }
        }
        let end = cycle_start(vectors.len() + self.latency_cycles) + 2.0 * t;
        sim.run_until(end + t);

        // Decode: output cycle k corresponds to input cycle k - latency.
        let mut outputs = Vec::with_capacity(vectors.len());
        for k in 0..vectors.len() {
            let kk = k + self.latency_cycles;
            let te = cycle_start(kk);
            let tm = te + t;
            let tr = tm + t;
            let mut values = Vec::with_capacity(self.netlist.outputs().len());
            for (oi, port) in self.netlist.outputs().iter().enumerate() {
                let pulses = sim.pulses(port.net);
                let in_excite = pulses.iter().any(|&p| p >= te && p < tm);
                let in_relax = pulses.iter().any(|&p| p >= tm && p < tr);
                // Exactly one pulse per logical cycle on every live rail.
                let raw = match (in_excite, in_relax) {
                    (true, false) => true,
                    (false, true) => false,
                    (true, true) | (false, false) => {
                        // Protocol break: count it and decode pessimistically.
                        false
                    }
                };
                values.push(raw ^ self.output_negative[oi]);
            }
            outputs.push(values);
        }
        HarnessResult {
            outputs,
            violations: sim.violations().len(),
            reinitialized: sim.all_logic_in_init_state(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_cells::{CellKind, CellLibrary};

    /// Hand-built dual-rail AND (LA + FA pair) exercised through the
    /// alternating protocol.
    #[test]
    fn dual_rail_and_gate() {
        let mut n = Netlist::new("and", CellLibrary::xsfq_abutted());
        let ap = n.add_input("a_p");
        let an = n.add_input("a_n");
        let bp = n.add_input("b_p");
        let bn = n.add_input("b_n");
        let q = n.add_cell(CellKind::La, &[ap, bp])[0];
        let qn = n.add_cell(CellKind::Fa, &[an, bn])[0];
        n.add_output("q", q);
        n.add_output("qn", qn);
        let h = Harness::new(&n, vec![false, true]);
        let vectors: Vec<Vec<bool>> = vec![
            vec![false, false],
            vec![false, true],
            vec![true, false],
            vec![true, true],
        ];
        let r = h.run(&vectors);
        assert_eq!(r.violations, 0);
        assert!(r.reinitialized);
        for (v, out) in vectors.iter().zip(&r.outputs) {
            let expect = v[0] && v[1];
            assert_eq!(out[0], expect, "LA rail for {v:?}");
            assert_eq!(out[1], expect, "FA rail (decoded) for {v:?}");
        }
    }

    /// A single-rail output driven by an FA (negative polarity output).
    #[test]
    fn negative_polarity_output_decodes() {
        let mut n = Netlist::new("nand", CellLibrary::xsfq_abutted());
        let _ap = n.add_input("a_p");
        let an = n.add_input("a_n");
        let _bp = n.add_input("b_p");
        let bn = n.add_input("b_n");
        let qn = n.add_cell(CellKind::Fa, &[an, bn])[0];
        n.add_output("q", qn);
        let h = Harness::new(&n, vec![true]);
        let r = h.run(&[vec![true, true], vec![true, false]]);
        assert!(r.outputs[0][0], "1&1 = 1 via negative rail");
        assert!(!r.outputs[1][0], "1&0 = 0 via negative rail");
        assert_eq!(r.violations, 0);
    }
}
