//! Event-driven pulse simulation of xSFQ netlists.
//!
//! Each SFQ pulse is a discrete event. Cells are finite state machines with
//! exactly the semantics of the paper's Table 1: the LA (Muller C element)
//! fires on the *last* arrival and returns to `Init`; the FA (inverse C
//! element) fires on the *first* arrival and swallows the second; DRO/DROC
//! cells capture a pulse and report it (or its absence) at the next clock.
//!
//! The simulator also checks the protocol invariants the paper's
//! correctness argument rests on: no cell may receive a second pulse on an
//! already-armed input, and after every logical cycle all LA/FA cells must
//! be back in their initial state.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use xsfq_cells::CellKind;
use xsfq_netlist::{CellId, Driver, NetId, Netlist};

/// Min-heap entry: (time, sequence, net, is-clock, target cell), wrapped in
/// `Reverse` for earliest-first ordering.
type PulseEvent = Reverse<(Time, u64, NetId, bool, CellId)>;

/// Simulation time in picoseconds (totally ordered wrapper).
#[derive(Copy, Clone, PartialEq, Debug)]
struct Time(f64);

impl Eq for Time {}

impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Event {
    /// A pulse lands on a net.
    Pulse(NetId),
    /// A clock edge reaches a cell's (implicit) clock pin.
    Clock(CellId),
}

/// A detected protocol violation.
#[derive(Clone, PartialEq, Debug)]
pub enum Violation {
    /// An LA/FA input saw a second pulse before the cell reset.
    DoubleArrival {
        /// Offending cell.
        cell: usize,
        /// Time of the second pulse.
        time_ps: f64,
    },
    /// A storage cell captured a second data pulse before being clocked.
    StorageOverrun {
        /// Offending cell.
        cell: usize,
        /// Time of the second pulse.
        time_ps: f64,
    },
}

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum CellState {
    /// LA/FA: which inputs have arrived since the last firing.
    Arrivals { a: bool, b: bool },
    /// DRO/DROC: whether a data pulse is captured.
    Loaded(bool),
    /// Stateless cells (JTL, splitter, merger, DC-to-SFQ).
    None,
}

/// Event-driven pulse simulator over a physical xSFQ netlist.
///
/// ```
/// use xsfq_cells::{CellKind, CellLibrary};
/// use xsfq_netlist::Netlist;
/// use xsfq_pulse::PulseSim;
///
/// // A single LA cell: fires only after both inputs pulse (Table 1).
/// let mut n = Netlist::new("la", CellLibrary::xsfq_abutted());
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let q = n.add_cell(CellKind::La, &[a, b])[0];
/// n.add_output("q", q);
///
/// let mut sim = PulseSim::new(&n);
/// sim.inject(a, 10.0);
/// sim.run_until(100.0);
/// assert!(sim.pulses(q).is_empty(), "one arrival must not fire");
/// sim.inject(b, 110.0);
/// sim.run_until(200.0);
/// assert_eq!(sim.pulses(q).len(), 1, "last arrival fires");
/// assert!(sim.all_logic_in_init_state());
/// ```
#[derive(Debug)]
pub struct PulseSim<'a> {
    netlist: &'a Netlist,
    queue: BinaryHeap<PulseEvent>,
    seq: u64,
    now: f64,
    states: Vec<CellState>,
    sinks: Vec<Vec<(CellId, usize)>>,
    traces: Vec<Vec<f64>>,
    violations: Vec<Violation>,
}

impl<'a> PulseSim<'a> {
    /// Build a simulator for a netlist (with splitters already inserted —
    /// multi-fanout nets broadcast instantaneously otherwise).
    pub fn new(netlist: &'a Netlist) -> Self {
        let states = netlist
            .cells()
            .iter()
            .map(|c| match c.kind {
                CellKind::La | CellKind::Fa => CellState::Arrivals { a: false, b: false },
                CellKind::Droc { preload } => CellState::Loaded(preload),
                CellKind::RsfqDff => CellState::Loaded(false),
                _ => CellState::None,
            })
            .collect();
        let mut sinks = vec![Vec::new(); netlist.num_nets()];
        for (ci, cell) in netlist.cells().iter().enumerate() {
            for (pin, &net) in cell.inputs.iter().enumerate() {
                sinks[net.index()].push((CellId::from_index(ci), pin));
            }
        }
        PulseSim {
            netlist,
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
            states,
            sinks,
            traces: vec![Vec::new(); netlist.num_nets()],
            violations: Vec::new(),
        }
    }

    /// Current simulation time (ps).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Recorded pulse times on a net.
    pub fn pulses(&self, net: NetId) -> &[f64] {
        &self.traces[net.index()]
    }

    /// Protocol violations observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True when every LA/FA cell is back in its `Init` state — the
    /// end-of-logical-cycle invariant of Table 1.
    pub fn all_logic_in_init_state(&self) -> bool {
        self.states.iter().all(|s| {
            !matches!(
                s,
                CellState::Arrivals { a: true, .. } | CellState::Arrivals { b: true, .. }
            )
        })
    }

    /// Inject an external pulse on a net at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time_ps` is in the simulator's past.
    pub fn inject(&mut self, net: NetId, time_ps: f64) {
        assert!(time_ps >= self.now, "cannot inject into the past");
        self.push_pulse(net, time_ps);
    }

    /// Schedule a clock edge for every regularly clocked cell (storage
    /// cells not marked trigger-clocked receive it; trigger-clocked cells
    /// receive regular clocks too, matching the merged trigger/clock line).
    pub fn clock(&mut self, time_ps: f64) {
        assert!(time_ps >= self.now, "cannot clock in the past");
        for (ci, cell) in self.netlist.cells().iter().enumerate() {
            if cell.kind.is_clocked() {
                self.push_clock(CellId::from_index(ci), time_ps);
            }
        }
    }

    /// Fire the one-shot trigger (§3.2): a clock edge delivered only to the
    /// trigger-clocked (first-rank, preloaded) storage cells.
    pub fn trigger(&mut self, time_ps: f64) {
        assert!(time_ps >= self.now, "cannot trigger in the past");
        for &cell in self.netlist.trigger_clocked() {
            self.push_clock(cell, time_ps);
        }
    }

    fn push_pulse(&mut self, net: NetId, t: f64) {
        self.seq += 1;
        self.queue.push(Reverse((
            Time(t),
            self.seq,
            net,
            false,
            CellId::from_index(0),
        )));
    }

    fn push_clock(&mut self, cell: CellId, t: f64) {
        self.seq += 1;
        self.queue.push(Reverse((
            Time(t),
            self.seq,
            NetId::from_index(0),
            true,
            cell,
        )));
    }

    /// Run until the queue is exhausted or `deadline` is reached.
    pub fn run_until(&mut self, deadline: f64) {
        while let Some(&Reverse((Time(t), _, net, is_clock, cell))) = self.queue.peek() {
            if t > deadline {
                break;
            }
            self.queue.pop();
            self.now = t;
            let event = if is_clock {
                Event::Clock(cell)
            } else {
                Event::Pulse(net)
            };
            self.dispatch(event, t);
        }
        self.now = self.now.max(deadline);
    }

    fn dispatch(&mut self, event: Event, t: f64) {
        match event {
            Event::Pulse(net) => {
                self.traces[net.index()].push(t);
                let sinks = self.sinks[net.index()].clone();
                for (cell, pin) in sinks {
                    self.deliver(cell, pin, t);
                }
            }
            Event::Clock(cell) => self.clock_cell(cell, t),
        }
    }

    fn deliver(&mut self, cell_id: CellId, pin: usize, t: f64) {
        let cell = self.netlist.cell(cell_id);
        let lib = self.netlist.library();
        let ci = cell_id.index();
        match cell.kind {
            CellKind::La => {
                let CellState::Arrivals { mut a, mut b } = self.states[ci] else {
                    unreachable!()
                };
                let slot = if pin == 0 { &mut a } else { &mut b };
                if *slot {
                    self.violations.push(Violation::DoubleArrival {
                        cell: ci,
                        time_ps: t,
                    });
                }
                *slot = true;
                if a && b {
                    // Last arrival: fire and reset.
                    self.states[ci] = CellState::Arrivals { a: false, b: false };
                    let out = cell.outputs[0];
                    self.push_pulse(out, t + lib.delay(CellKind::La));
                } else {
                    self.states[ci] = CellState::Arrivals { a, b };
                }
            }
            CellKind::Fa => {
                let CellState::Arrivals { a, b } = self.states[ci] else {
                    unreachable!()
                };
                let armed = a || b;
                if (pin == 0 && a) || (pin == 1 && b) {
                    self.violations.push(Violation::DoubleArrival {
                        cell: ci,
                        time_ps: t,
                    });
                }
                if !armed {
                    // First arrival: fire immediately, remember the arming.
                    let out = cell.outputs[0];
                    self.push_pulse(out, t + lib.delay(CellKind::Fa));
                    self.states[ci] = CellState::Arrivals {
                        a: pin == 0,
                        b: pin == 1,
                    };
                } else {
                    // Second arrival: swallow and reset.
                    self.states[ci] = CellState::Arrivals { a: false, b: false };
                }
            }
            CellKind::Jtl => {
                let out = cell.outputs[0];
                self.push_pulse(out, t + lib.delay(CellKind::Jtl));
            }
            CellKind::Splitter | CellKind::RsfqSplitter => {
                let d = lib.delay(cell.kind);
                let (o0, o1) = (cell.outputs[0], cell.outputs[1]);
                self.push_pulse(o0, t + d);
                self.push_pulse(o1, t + d);
            }
            CellKind::Merger | CellKind::RsfqMerger => {
                let out = cell.outputs[0];
                self.push_pulse(out, t + lib.delay(cell.kind));
            }
            CellKind::Droc { .. } | CellKind::RsfqDff => {
                let CellState::Loaded(loaded) = self.states[ci] else {
                    unreachable!()
                };
                if loaded {
                    self.violations.push(Violation::StorageOverrun {
                        cell: ci,
                        time_ps: t,
                    });
                }
                self.states[ci] = CellState::Loaded(true);
            }
            CellKind::DcToSfq => { /* no pulse inputs */ }
            // Clocked RSFQ logic is outside the pulse model exercised here
            // (the baselines are evaluated structurally, not simulated).
            CellKind::RsfqAnd | CellKind::RsfqOr | CellKind::RsfqXor | CellKind::RsfqNot => {}
        }
    }

    fn clock_cell(&mut self, cell_id: CellId, t: f64) {
        let cell = self.netlist.cell(cell_id);
        let lib = self.netlist.library();
        let ci = cell_id.index();
        match cell.kind {
            CellKind::Droc { .. } => {
                let CellState::Loaded(loaded) = self.states[ci] else {
                    unreachable!()
                };
                self.states[ci] = CellState::Loaded(false);
                let (qp, qn) = (cell.outputs[0], cell.outputs[1]);
                if loaded {
                    self.push_pulse(qp, t + lib.droc_delay(false));
                } else {
                    self.push_pulse(qn, t + lib.droc_delay(true));
                }
            }
            CellKind::RsfqDff => {
                let CellState::Loaded(loaded) = self.states[ci] else {
                    unreachable!()
                };
                self.states[ci] = CellState::Loaded(false);
                if loaded {
                    let out = cell.outputs[0];
                    self.push_pulse(out, t + lib.delay(CellKind::RsfqDff));
                }
            }
            _ => {}
        }
    }

    /// The net attached to a named input port.
    ///
    /// # Panics
    ///
    /// Panics if no such port exists.
    pub fn input_net(&self, name: &str) -> NetId {
        self.netlist
            .inputs()
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("no input port '{name}'"))
            .net
    }

    /// The net attached to output port `index`.
    pub fn output_net(&self, index: usize) -> NetId {
        self.netlist.outputs()[index].net
    }

    /// Driver kind of a net (exposed for the waveform renderer).
    pub fn driver(&self, net: NetId) -> Driver {
        self.netlist.driver(net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_cells::CellLibrary;

    fn single_cell(kind: CellKind) -> (Netlist, NetId, NetId, NetId) {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let q = n.add_cell(kind, &[a, b])[0];
        n.add_output("q", q);
        (n, a, b, q)
    }

    /// Paper Table 1: drive every excite/relax input pair and check the
    /// LA and FA outputs plus reinitialization.
    #[test]
    fn table1_alternating_sequences() {
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            // LA = AND of the excite values; FA = OR.
            for kind in [CellKind::La, CellKind::Fa] {
                let (n, a, b, q) = single_cell(kind);
                let mut sim = PulseSim::new(&n);
                // Excite phase at t=0..100: pulse iff value is 1.
                if va {
                    sim.inject(a, 10.0);
                }
                if vb {
                    sim.inject(b, 12.0);
                }
                sim.run_until(100.0);
                let excite_pulses = sim.pulses(q).len();
                // Relax phase at t=100..200: complement pulses.
                if !va {
                    sim.inject(a, 110.0);
                }
                if !vb {
                    sim.inject(b, 112.0);
                }
                sim.run_until(200.0);
                let total = sim.pulses(q).len();
                let relax_pulses = total - excite_pulses;
                let value = if kind == CellKind::La {
                    va && vb
                } else {
                    va || vb
                };
                assert_eq!(excite_pulses, value as usize, "{kind} excite {va}{vb}");
                assert_eq!(relax_pulses, !value as usize, "{kind} relax {va}{vb}");
                assert!(sim.all_logic_in_init_state(), "{kind} must reinit");
                assert!(sim.violations().is_empty());
            }
        }
    }

    #[test]
    fn la_timing_is_last_arrival() {
        let (n, a, b, q) = single_cell(CellKind::La);
        let mut sim = PulseSim::new(&n);
        sim.inject(a, 10.0);
        sim.inject(b, 50.0);
        sim.run_until(100.0);
        let t = sim.pulses(q)[0];
        assert!(
            (t - (50.0 + 7.2)).abs() < 1e-9,
            "fires at last arrival + delay, got {t}"
        );
    }

    #[test]
    fn fa_timing_is_first_arrival() {
        let (n, a, b, q) = single_cell(CellKind::Fa);
        let mut sim = PulseSim::new(&n);
        sim.inject(a, 10.0);
        sim.inject(b, 50.0);
        sim.run_until(100.0);
        assert_eq!(sim.pulses(q).len(), 1, "second arrival swallowed");
        let t = sim.pulses(q)[0];
        assert!(
            (t - (10.0 + 9.5)).abs() < 1e-9,
            "fires at first arrival + delay, got {t}"
        );
    }

    #[test]
    fn double_arrival_is_flagged() {
        let (n, a, _b, _q) = single_cell(CellKind::La);
        let mut sim = PulseSim::new(&n);
        sim.inject(a, 10.0);
        sim.inject(a, 20.0);
        sim.run_until(100.0);
        assert_eq!(sim.violations().len(), 1);
    }

    #[test]
    fn droc_emits_complementary_outputs() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let d = n.add_input("d");
        let outs = n.add_cell(CellKind::Droc { preload: false }, &[d]);
        n.add_output("qp", outs[0]);
        n.add_output("qn", outs[1]);
        let mut sim = PulseSim::new(&n);
        // No data → clock → Qn.
        sim.clock(50.0);
        sim.run_until(100.0);
        assert_eq!(sim.pulses(outs[0]).len(), 0);
        assert_eq!(sim.pulses(outs[1]).len(), 1);
        // Data then clock → Qp.
        sim.inject(d, 120.0);
        sim.clock(150.0);
        sim.run_until(200.0);
        assert_eq!(sim.pulses(outs[0]).len(), 1);
        assert_eq!(sim.pulses(outs[1]).len(), 1);
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn preloaded_droc_fires_qp_on_trigger() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let d = n.add_input("d");
        let (c, outs) = n.add_cell_deferred(CellKind::Droc { preload: true });
        n.connect_input(c, 0, d);
        n.set_trigger_clocked(c);
        n.add_output("qp", outs[0]);
        let mut sim = PulseSim::new(&n);
        sim.trigger(10.0);
        sim.run_until(50.0);
        assert_eq!(sim.pulses(outs[0]).len(), 1, "preload emitted on trigger");
    }

    #[test]
    fn splitter_fans_out() {
        let mut n = Netlist::new("t", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let outs = n.add_cell(CellKind::Splitter, &[a]);
        n.add_output("q0", outs[0]);
        n.add_output("q1", outs[1]);
        let mut sim = PulseSim::new(&n);
        sim.inject(a, 5.0);
        sim.run_until(50.0);
        assert_eq!(sim.pulses(outs[0]).len(), 1);
        assert_eq!(sim.pulses(outs[1]).len(), 1);
    }
}
