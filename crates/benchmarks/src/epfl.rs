//! EPFL combinational benchmark equivalents (the control suite used in the
//! paper's Table 3 plus `sin` and `int2float` from Table 4).
//!
//! Each generator rebuilds the documented function of the original (Amarù
//! et al., "The EPFL combinational benchmark suite", IWLS'15) — exactly
//! where the function is fully specified (`dec`, `priority`, `voter`,
//! `int2float`), and as a faithful structural analogue for the
//! controller-extraction circuits (`ctrl`, `i2c`, `mem_ctrl`, `router`,
//! `cavlc`, `arbiter`). The observable that matters for the paper is the
//! *duplication profile*: control logic is unate-dominated (low
//! duplication), arithmetic is XOR-dominated (≈100%).

use xsfq_aig::{build, Aig, Lit};

/// `arbiter`: hierarchical priority arbiter over 64 requesters with a
/// 2-level grant tree, grant outputs and an encoded index.
pub fn arbiter() -> Aig {
    let mut g = Aig::new("arbiter");
    let req = g.input_word("req", 64);
    let mask = g.input_word("mask", 64);
    let masked: Vec<Lit> = req.iter().zip(&mask).map(|(&r, &m)| g.and(r, m)).collect();
    // Two-level arbitration: groups of 8, then among groups.
    let mut group_any = Vec::new();
    let mut group_grants: Vec<Vec<Lit>> = Vec::new();
    for chunk in masked.chunks(8) {
        let (grants, any) = build::priority_encoder(&mut g, chunk);
        group_grants.push(grants);
        group_any.push(any);
    }
    let (group_sel, valid) = build::priority_encoder(&mut g, &group_any);
    let mut grants = Vec::with_capacity(64);
    for (gi, gg) in group_grants.iter().enumerate() {
        for &l in gg {
            grants.push(g.and(l, group_sel[gi]));
        }
    }
    g.output_word("grant", &grants);
    g.output("valid", valid);
    let idx = build::onehot_to_binary(&mut g, &grants);
    g.output_word("idx", &idx);
    g
}

/// `cavlc`: coefficient-token length decoder. 10 inputs (4-bit context +
/// 6-bit code prefix), 11 outputs (coeff count, trailing ones, length) via
/// leading-zero analysis of the code — a faithful dataflow analogue of the
/// H.264 CAVLC coeff_token tables.
pub fn cavlc() -> Aig {
    let mut g = Aig::new("cavlc");
    let ctx = g.input_word("ctx", 4);
    let code = g.input_word("code", 6);
    let (lz, all_zero) = build::leading_zeros(&mut g, &code);
    // total_coeff = clz + ctx (saturating in 5 bits).
    let mut lz5 = lz.clone();
    while lz5.len() < 5 {
        lz5.push(Lit::FALSE);
    }
    let mut ctx5: Vec<Lit> = ctx.to_vec();
    ctx5.push(Lit::FALSE);
    let (total, _) = build::ripple_add(&mut g, &lz5, &ctx5, Lit::FALSE);
    g.output_word("total_coeff", &total);
    // trailing_ones = min(3, code[1:0] pattern after the prefix).
    let t0 = g.and(code[0], !all_zero);
    let t1 = g.and(code[1], t0);
    g.output("t1", t0);
    g.output("t2", t1);
    // length = clz + suffix length (2 or 3 depending on context).
    let long_suffix = g.or(ctx[3], ctx[2]);
    let suffix_len: Vec<Lit> = vec![long_suffix, !long_suffix, Lit::FALSE];
    let mut lz3 = lz.clone();
    lz3.push(Lit::FALSE);
    let (len, _) = build::ripple_add(&mut g, &lz3[..3], &suffix_len, Lit::FALSE);
    g.output_word("len", &len);
    g.output("escape", all_zero);
    g
}

/// `ctrl`: a 7-input, 26-output controller decode block (opcode class
/// detection and one-hot control line generation).
pub fn ctrl() -> Aig {
    let mut g = Aig::new("ctrl");
    let op = g.input_word("op", 7);
    // Major opcode classes from the top 3 bits.
    let classes = build::decoder(&mut g, &op[4..7], None);
    for (i, &c) in classes.iter().enumerate() {
        g.output(format!("class[{i}]"), c);
    }
    // Control lines: class gated by minor-field comparisons.
    let minors = build::decoder(&mut g, &op[0..3], None);
    for i in 0..8 {
        let line = g.and(classes[i % 8], minors[(i * 3 + 1) % 8]);
        g.output(format!("en[{i}]"), line);
    }
    for i in 0..8 {
        let a = g.or(classes[(i + 2) % 8], minors[i]);
        let line = g.and(a, op[3]);
        g.output(format!("sel[{i}]"), line);
    }
    let parity = g.xor_many(&op[0..4]);
    g.output("chk", parity);
    let any = g.or_many(&classes[1..4]);
    g.output("stall", any);
    g
}

/// `dec`: 8-to-256 binary decoder (exact function of the EPFL original).
pub fn dec() -> Aig {
    let mut g = Aig::new("dec");
    let sel = g.input_word("a", 8);
    let outs = build::decoder(&mut g, &sel, None);
    g.output_word("q", &outs);
    g
}

/// `i2c`: bus-controller control extraction: shift/count datapath control,
/// address compare, state decode.
pub fn i2c() -> Aig {
    let mut g = Aig::new("i2c");
    let state = g.input_word("state", 5);
    let bitcnt = g.input_word("cnt", 4);
    let shift = g.input_word("sr", 8);
    let addr = g.input_word("addr", 7);
    let flags = g.input_word("flag", 6);
    let st = build::decoder(&mut g, &state, None);
    // Address match: shift register top 7 bits vs our address.
    let hit = build::equals(&mut g, &shift[1..8], &addr);
    g.output("addr_hit", hit);
    // Bit counter terminal detection.
    let term = build::equals(&mut g, &bitcnt, &build::constant(7, 4));
    g.output("cnt_done", term);
    // Next-state control lines: state one-hot gated by conditions.
    let rw = shift[0];
    for i in 0..16 {
        let cond = match i % 4 {
            0 => hit,
            1 => term,
            2 => rw,
            _ => flags[i % 6],
        };
        let line = g.and(st[i], cond);
        g.output(format!("ns[{i}]"), line);
    }
    // Counter increment (exposes an adder's worth of logic).
    let (inc, _) = build::increment(&mut g, &bitcnt);
    g.output_word("cnt_next", &inc);
    let sda_out = g.mux(rw, shift[7], st[3]);
    g.output("sda", sda_out);
    let scl_en = g.or(st[1], st[2]);
    g.output("scl_en", scl_en);
    g
}

/// `int2float`: 11-bit signed integer to an 8-bit minifloat
/// (sign / 4-bit exponent / 3-bit mantissa), via absolute value,
/// leading-zero detection, normalization shift and truncation — the exact
/// dataflow of the EPFL original (11 in / 7 out uses a 3-bit exponent; we
/// keep the full 4-bit exponent and drop the redundant MSB at the output).
pub fn int2float() -> Aig {
    let mut g = Aig::new("int2float");
    let x = g.input_word("x", 11);
    let sign = x[10];
    // Absolute value: conditional invert plus carry-in (two's complement).
    let inverted: Vec<Lit> = x[..10].iter().map(|&b| g.xor(b, sign)).collect();
    let mut carry = sign;
    let mut magnitude = Vec::with_capacity(10);
    for &b in &inverted {
        magnitude.push(g.xor(b, carry));
        carry = g.and(b, carry);
    }
    let (lz, is_zero) = build::leading_zeros(&mut g, &magnitude);
    // exponent = 10 - lz (0 when the value is zero).
    let ten = build::constant(10, 4);
    let (exp_raw, _) = build::ripple_sub(&mut g, &ten, &lz);
    let exp: Vec<Lit> = exp_raw.iter().map(|&e| g.and(e, !is_zero)).collect();
    // Normalize: shift left by lz, take the top 3 fraction bits.
    let shifted = build::barrel_shift_left(&mut g, &magnitude, &lz);
    let mantissa = &shifted[6..9]; // bits below the implicit leading 1
    g.output("sign", sign);
    g.output_word("exp", &exp);
    g.output_word("man", mantissa);
    g
}

/// `mem_ctrl`-class: a memory-controller control slice — bank request
/// arbitration, command decode, refresh counter comparison.
pub fn mem_ctrl() -> Aig {
    let mut g = Aig::new("mem_ctrl");
    let req = g.input_word("req", 16);
    let bank_state = g.input_word("bs", 16);
    let cmd = g.input_word("cmd", 3);
    let refresh_cnt = g.input_word("ref", 10);
    let addr = g.input_word("addr", 12);
    // Only requests to ready banks arbitrate.
    let eligible: Vec<Lit> = req
        .iter()
        .zip(&bank_state)
        .map(|(&r, &s)| g.and(r, s))
        .collect();
    let (grant, any) = build::priority_encoder(&mut g, &eligible);
    g.output_word("grant", &grant);
    g.output("busy", any);
    // Command decode enables.
    let cmds = build::decoder(&mut g, &cmd, Some(any));
    g.output_word("cmd_en", &cmds);
    // Refresh due: counter ≥ threshold.
    let threshold = build::constant(781, 10);
    let due = build::less_than(&mut g, &threshold, &refresh_cnt);
    g.output("refresh_due", due);
    // Row/bank address split with open-row comparison.
    let open_row = g.input_word("open", 12);
    let row_hit = build::equals(&mut g, &addr, &open_row);
    g.output("row_hit", row_hit);
    let precharge = g.and(!row_hit, any);
    g.output("precharge", precharge);
    g
}

/// `priority`: 128-bit priority encoder with valid flag (exact function of
/// the EPFL original).
pub fn priority() -> Aig {
    let mut g = Aig::new("priority");
    let req = g.input_word("req", 128);
    let (onehot, valid) = build::priority_encoder(&mut g, &req);
    let idx = build::onehot_to_binary(&mut g, &onehot);
    g.output_word("idx", &idx);
    g.output("valid", valid);
    g
}

/// `router`-class: destination lookup and port grant logic.
pub fn router() -> Aig {
    let mut g = Aig::new("router");
    let dest = g.input_word("dest", 8);
    let local = g.input_word("local", 8);
    let credits = g.input_word("credit", 5);
    let vc_req = g.input_word("vc", 5);
    // Dimension-order routing decision.
    let x_eq = build::equals(&mut g, &dest[0..4], &local[0..4]);
    let y_eq = build::equals(&mut g, &dest[4..8], &local[4..8]);
    let x_lt = build::less_than(&mut g, &dest[0..4], &local[0..4]);
    let y_lt = build::less_than(&mut g, &dest[4..8], &local[4..8]);
    let eject = g.and(x_eq, y_eq);
    let go_west = g.and(!x_eq, x_lt);
    let go_east = g.and(!x_eq, !x_lt);
    let gy = g.and(x_eq, !y_eq);
    let go_south = g.and(gy, y_lt);
    let go_north = g.and(gy, !y_lt);
    let ports = [eject, go_west, go_east, go_south, go_north];
    for (i, (&p, (&c, &v))) in ports.iter().zip(credits.iter().zip(&vc_req)).enumerate() {
        let granted = g.and_many(&[p, c, v]);
        g.output(format!("grant[{i}]"), granted);
    }
    let (vc_grant, _) = build::priority_encoder(&mut g, &vc_req);
    g.output_word("vc_grant", &vc_grant);
    g
}

/// `voter`: majority of 1001 inputs via a full-adder popcount tree and a
/// final comparator — the given EPFL implementation whose output
/// comparator forces both polarities (≈99% duplication in Table 3).
pub fn voter() -> Aig {
    let mut g = Aig::new("voter");
    let bits = g.input_word("x", 1001);
    let m = build::majority(&mut g, &bits);
    g.output("maj", m);
    g
}

/// The paper's alternative voter in monotone (sum-of-products-style) form:
/// a comparator-network median over a reduced input count. Being inverter-
/// free, it maps with 0% duplication — demonstrating the §3.1.5 remark.
/// `n` must be odd and ≤ 63 (the network is O(n²) comparators).
pub fn voter_monotone(n: usize) -> Aig {
    assert!(n % 2 == 1 && n <= 63, "odd n up to 63");
    let mut g = Aig::new("voter_monotone");
    let mut wires = g.input_word("x", n);
    // Odd-even transposition sort with AND/OR comparators (monotone).
    for round in 0..n {
        let start = round % 2;
        let mut i = start;
        while i + 1 < n {
            let hi = g.or(wires[i], wires[i + 1]);
            let lo = g.and(wires[i], wires[i + 1]);
            wires[i] = hi;
            wires[i + 1] = lo;
            i += 2;
        }
    }
    g.output("maj", wires[n / 2]);
    g
}

/// `sin`-class: fixed-point sine via a degree-7 odd polynomial with
/// constant-coefficient multipliers — the same multiplier-dominated profile
/// as the EPFL original (24-bit in the original; 12-bit argument here).
pub fn sin() -> Aig {
    let mut g = Aig::new("sin");
    let x = g.input_word("x", 12);
    // x2 = x*x (top 12 bits of the 24-bit product).
    let xx = build::array_multiplier(&mut g, &x, &x);
    let x2: Vec<Lit> = xx[12..24].to_vec();
    // Horner evaluation: p = c5 − x²·c7; p = c3 − x²·p; r = x·(c1 − x²·p)
    // with positive Q11 coefficients of sin(π/2 · t), every subtraction
    // staying non-negative on [0, 1).
    let c1 = build::constant(3217, 12); // π/2 in Q11
    let c3 = build::constant(1323, 12); // (π/2)³/3! in Q11
    let c5 = build::constant(163, 12); // (π/2)⁵/5! in Q11
    let c7 = build::constant(10, 12); // (π/2)⁷/7! in Q11
    let t1 = build::array_multiplier(&mut g, &x2, &c7);
    let t1_hi: Vec<Lit> = t1[12..24].to_vec();
    let (p1, _) = build::ripple_sub(&mut g, &c5, &t1_hi);
    let t2 = build::array_multiplier(&mut g, &x2, &p1);
    let t2_hi: Vec<Lit> = t2[12..24].to_vec();
    let (p2, _) = build::ripple_sub(&mut g, &c3, &t2_hi);
    let t3 = build::array_multiplier(&mut g, &x2, &p2);
    let t3_hi: Vec<Lit> = t3[12..24].to_vec();
    let (p3, _) = build::ripple_sub(&mut g, &c1, &t3_hi);
    let r = build::array_multiplier(&mut g, &x, &p3);
    // x (Q12) × p3 (Q11) >> 11 → Q12 result.
    let out: Vec<Lit> = r[11..24].to_vec();
    g.output_word("sin", &out);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::sim;

    #[test]
    fn dec_is_exact() {
        let g = dec();
        assert_eq!(g.num_outputs(), 256);
        let inputs: Vec<bool> = (0..8).map(|i| 0xA5u32 >> i & 1 == 1).collect();
        let out = sim::eval_outputs(&g, &inputs);
        for (i, &bit) in out.iter().enumerate() {
            assert_eq!(bit, i == 0xA5);
        }
    }

    #[test]
    fn priority_is_exact() {
        let g = priority();
        let mut inputs = vec![false; 128];
        inputs[5] = true;
        inputs[77] = true;
        let out = sim::eval_outputs(&g, &inputs);
        let mut idx = 0usize;
        for (i, &bit) in out.iter().enumerate().take(7) {
            if bit {
                idx |= 1 << i;
            }
        }
        assert_eq!(idx, 5, "bit 5 outranks bit 77");
        assert!(out[7], "valid");
    }

    #[test]
    fn voter_majority_small_cases() {
        // Use the monotone variant for an exhaustive check.
        let g = voter_monotone(7);
        for pattern in 0..128u32 {
            let inputs: Vec<bool> = (0..7).map(|i| pattern >> i & 1 == 1).collect();
            let out = sim::eval_outputs(&g, &inputs);
            assert_eq!(out[0], pattern.count_ones() >= 4, "pattern {pattern:b}");
        }
    }

    #[test]
    fn voter_spot_checks() {
        let g = voter();
        let mut inputs = vec![false; 1001];
        for slot in inputs.iter_mut().take(500) {
            *slot = true;
        }
        assert!(
            !sim::eval_outputs(&g, &inputs)[0],
            "500 of 1001 is minority"
        );
        inputs[800] = true;
        assert!(sim::eval_outputs(&g, &inputs)[0], "501 of 1001 is majority");
    }

    #[test]
    fn int2float_normalizes() {
        let g = int2float();
        // x = 40 = 0b101000: magnitude 40, lz(10-bit) = 4, exp = 6.
        let x: i64 = 40;
        let inputs: Vec<bool> = (0..11).map(|i| x >> i & 1 == 1).collect();
        let out = sim::eval_outputs(&g, &inputs);
        assert!(!out[0], "positive sign");
        let mut exp = 0u32;
        for i in 0..4 {
            if out[1 + i] {
                exp |= 1 << i;
            }
        }
        assert_eq!(exp, 6, "floor(log2(40)) + 1 = 6");
    }

    #[test]
    fn all_generators_elaborate() {
        let gens: Vec<(&str, Aig)> = vec![
            ("arbiter", arbiter()),
            ("cavlc", cavlc()),
            ("ctrl", ctrl()),
            ("dec", dec()),
            ("i2c", i2c()),
            ("int2float", int2float()),
            ("mem_ctrl", mem_ctrl()),
            ("priority", priority()),
            ("router", router()),
            ("voter", voter()),
            ("sin", sin()),
        ];
        for (name, aig) in gens {
            assert!(aig.num_ands() > 20, "{name} too small: {}", aig.num_ands());
            assert_eq!(aig.num_latches(), 0, "{name} must be combinational");
        }
    }
}
