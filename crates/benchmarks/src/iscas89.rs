//! ISCAS89 sequential benchmark equivalents (paper Table 6).
//!
//! `s27` is the exact published netlist (it is reproduced verbatim in the
//! ISCAS89 paper and countless textbooks). The larger circuits are
//! rebuilt from their documented character — traffic-light controllers,
//! fractional counters, multiplier control FSMs, PLD state machines — with
//! flip-flop counts matching the originals exactly (that is the column the
//! paper reports) and combinational cores of comparable size.

use xsfq_aig::{build, Aig, Lit};

/// The exact s27 netlist: 4 inputs, 1 output, 3 flip-flops, 10 gates
/// (Brglez/Bryan/Kozminski, ISCAS 1989).
pub fn s27() -> Aig {
    let mut g = Aig::new("s27");
    let g0 = g.input("G0");
    let g1 = g.input("G1");
    let g2 = g.input("G2");
    let g3 = g.input("G3");
    let g5 = g.latch("G5", false);
    let g6 = g.latch("G6", false);
    let g7 = g.latch("G7", false);
    let g14 = !g0;
    let g8 = g.and(g14, g6);
    let g12 = g.nor(g1, g7);
    let g15 = g.or(g12, g8);
    let g16 = g.or(g3, g8);
    let g9 = g.nand(g16, g15);
    let g11 = g.nor(g5, g9);
    let g10 = g.nor(g14, g11);
    let g13 = g.nor(g2, g12);
    let g17 = !g11;
    g.set_latch_next(g5, g10);
    g.set_latch_next(g6, g11);
    g.set_latch_next(g7, g13);
    g.output("G17", g17);
    g
}

/// A Moore controller skeleton: `state_bits` one-hot-decoded state with
/// input-conditioned transitions and decoded outputs. Deterministic
/// "random" wiring comes from a simple LCG so every instantiation is
/// reproducible.
fn controller(
    name: &str,
    num_inputs: usize,
    state_bits: usize,
    extra_counter_bits: usize,
    num_outputs: usize,
    seed: u64,
) -> Aig {
    let mut g = Aig::new(name);
    let inputs = g.input_word("in", num_inputs);
    let state: Vec<Lit> = (0..state_bits)
        .map(|i| g.latch(format!("st{i}"), false))
        .collect();
    let counter: Vec<Lit> = (0..extra_counter_bits)
        .map(|i| g.latch(format!("cnt{i}"), false))
        .collect();
    let mut rng = seed | 1;
    let mut next_rand = |m: usize| -> usize {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as usize % m.max(1)
    };
    // Counter: increments when a state-dependent enable holds, clears on a
    // decoded terminal value.
    let (inc, _) = build::increment(&mut g, &counter);
    let enable = if state_bits > 0 {
        g.or(state[0], inputs[0])
    } else {
        inputs[0]
    };
    let terminal = if counter.is_empty() {
        Lit::FALSE
    } else {
        g.and_many(&counter)
    };
    for (i, &c) in counter.iter().enumerate() {
        let stepped = g.mux(enable, inc[i], c);
        let next = g.and(stepped, !terminal);
        g.set_latch_next(c, next);
    }
    // State transitions: each state bit's next function mixes a couple of
    // state bits and inputs through AND/OR/XOR picked deterministically.
    for &s in &state {
        let a = state[next_rand(state_bits)];
        let b = inputs[next_rand(num_inputs)];
        let c = inputs[next_rand(num_inputs)];
        let t1 = match next_rand(3) {
            0 => g.and(a, b),
            1 => g.or(a, b),
            _ => g.xor(a, b),
        };
        let t2 = match next_rand(3) {
            0 => g.and(t1, !c),
            1 => g.or(t1, c),
            _ => g.mux(c, t1, s),
        };
        let gated = g.and(t2, !terminal);
        let kick = g.and(terminal, b);
        let next = g.or(gated, kick);
        g.set_latch_next(s, next);
    }
    // Moore outputs: decode windows of the state/counter vector.
    let all: Vec<Lit> = state.iter().chain(counter.iter()).copied().collect();
    for o in 0..num_outputs {
        let a = all[next_rand(all.len())];
        let b = all[next_rand(all.len())];
        let c = inputs[next_rand(num_inputs)];
        let t = match next_rand(3) {
            0 => g.and(a, !b),
            1 => g.nor(a, b),
            _ => g.xor(a, b),
        };
        let out = g.and(t, !c.complement_if(o % 2 == 0));
        g.output(format!("out{o}"), out);
    }
    g
}

/// Fractional counter in cascaded blocks (the documented structure of
/// s420.1 / s838.1): `blocks` 4-bit counter stages with ripple enables.
fn fractional_counter(name: &str, blocks: usize) -> Aig {
    let mut g = Aig::new(name);
    let clear = g.input("C");
    let count_en = g.input("P");
    let mut carry = count_en;
    let mut all_bits = Vec::new();
    for b in 0..blocks {
        let bits: Vec<Lit> = (0..4)
            .map(|i| g.latch(format!("q{b}_{i}"), false))
            .collect();
        let (inc, block_carry) = build::ripple_add(&mut g, &bits, &build::constant(0, 4), carry);
        for (i, &q) in bits.iter().enumerate() {
            let stepped = g.mux(carry, inc[i], q);
            let next = g.and(stepped, !clear);
            g.set_latch_next(q, next);
        }
        carry = g.and(carry, block_carry);
        all_bits.extend(bits);
    }
    // Observation outputs: block MSBs and a terminal-count flag.
    for b in 0..blocks {
        g.output(format!("z{b}"), all_bits[b * 4 + 3]);
    }
    let tc = g.and_many(&all_bits);
    g.output("tc", tc);
    g
}

/// Traffic-light-style controller (s382/s400/s444 class): two phase
/// counters plus a state register with timed transitions.
fn traffic(name: &str, seed: u64) -> Aig {
    let mut g = Aig::new(name);
    let test = g.input("test");
    let cars = g.input("cars");
    let timer_in = g.input("timer");
    // 21 FFs: 5-bit main timer, 5-bit walk timer, 8-bit state history, 3-bit phase.
    let timer: Vec<Lit> = (0..5).map(|i| g.latch(format!("t{i}"), false)).collect();
    let walk: Vec<Lit> = (0..5).map(|i| g.latch(format!("w{i}"), false)).collect();
    let hist: Vec<Lit> = (0..8).map(|i| g.latch(format!("h{i}"), false)).collect();
    let phase: Vec<Lit> = (0..3).map(|i| g.latch(format!("p{i}"), false)).collect();
    let _ = seed;
    let (t_inc, _) = build::increment(&mut g, &timer);
    let t_done = g.and_many(&timer);
    for (i, &t) in timer.iter().enumerate() {
        let run = g.or(cars, test);
        let stepped = g.mux(run, t_inc[i], t);
        let next = g.and(stepped, !t_done);
        g.set_latch_next(t, next);
    }
    let (w_inc, _) = build::increment(&mut g, &walk);
    let w_done = g.and_many(&walk);
    for (i, &w) in walk.iter().enumerate() {
        let stepped = g.mux(timer_in, w_inc[i], w);
        let next = g.and(stepped, !w_done);
        g.set_latch_next(w, next);
    }
    // Phase advances on timer completion.
    let (p_inc, _) = build::increment(&mut g, &phase);
    for (i, &p) in phase.iter().enumerate() {
        let next = g.mux(t_done, p_inc[i], p);
        g.set_latch_next(p, next);
    }
    // History shifts the phase LSB.
    let mut prev = phase[0];
    for &h in &hist {
        g.set_latch_next(h, prev);
        prev = h;
    }
    let ph = build::decoder(&mut g, &phase, None);
    for (i, &p) in ph.iter().take(6).enumerate() {
        g.output(format!("light{i}"), p);
    }
    let walk_req = g.and(w_done, ph[4]);
    g.output("walk", walk_req);
    g
}

/// PLD-style dense FSM (s820/s832 class): 5 state FFs, 18 inputs, wide
/// AND-OR transition terms.
fn pld_fsm(name: &str, seed: u64) -> Aig {
    let mut g = Aig::new(name);
    let inputs = g.input_word("in", 18);
    let state: Vec<Lit> = (0..5).map(|i| g.latch(format!("s{i}"), false)).collect();
    let st_dec = build::decoder(&mut g, &state, None);
    let mut rng = seed | 1;
    let mut next_rand = |m: usize| -> usize {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) as usize % m.max(1)
    };
    // Each next-state bit is an OR of product terms (state-decode × input
    // literals) — the classic two-level PLD profile.
    for &s in &state {
        let mut terms = Vec::new();
        for _ in 0..6 {
            let st = st_dec[next_rand(24)];
            let i1 = inputs[next_rand(18)].complement_if(next_rand(2) == 0);
            let i2 = inputs[next_rand(18)].complement_if(next_rand(2) == 0);
            let t = g.and_many(&[st, i1, i2]);
            terms.push(t);
        }
        let next = g.or_many(&terms);
        g.set_latch_next(s, next);
    }
    for o in 0..19 {
        let st = st_dec[next_rand(30)];
        let i1 = inputs[next_rand(18)];
        let out = g.and(st, i1.complement_if(o % 3 == 0));
        g.output(format!("out{o}"), out);
    }
    g
}

/// s298-class: traffic-light controller core, 3 inputs, 14 FFs.
pub fn s298() -> Aig {
    controller("s298", 3, 9, 5, 6, 298)
}

/// s344-class: 4×4 multiplier control unit, 9 inputs, 15 FFs.
pub fn s344() -> Aig {
    controller("s344", 9, 11, 4, 11, 344)
}

/// s349-class: s344 variant (same FF count, slightly different logic).
pub fn s349() -> Aig {
    controller("s349", 9, 11, 4, 11, 349)
}

/// s382-class: traffic controller, 3 inputs, 21 FFs.
pub fn s382() -> Aig {
    traffic("s382", 382)
}

/// s386-class: controller FSM, 7 inputs, 6 FFs.
pub fn s386() -> Aig {
    controller("s386", 7, 6, 0, 7, 386)
}

/// s400-class: s382 variant.
pub fn s400() -> Aig {
    traffic("s400", 400)
}

/// s420.1-class: 16-bit fractional counter (4 cascaded blocks).
pub fn s420_1() -> Aig {
    fractional_counter("s420.1", 4)
}

/// s444-class: s382 variant.
pub fn s444() -> Aig {
    traffic("s444", 444)
}

/// s510-class: controller FSM, 19 inputs, 6 FFs.
pub fn s510() -> Aig {
    controller("s510", 19, 6, 0, 7, 510)
}

/// s526-class: traffic controller variant, 3 inputs, 21 FFs.
pub fn s526() -> Aig {
    controller("s526", 3, 16, 5, 6, 526)
}

/// s641-class: feedforward logic with 19 FFs, 35 inputs, 24 outputs.
pub fn s641() -> Aig {
    controller("s641", 35, 14, 5, 24, 641)
}

/// s713-class: s641 variant (same interface, redundant logic added).
pub fn s713() -> Aig {
    controller("s713", 35, 14, 5, 24, 713)
}

/// s820-class: PLD FSM, 18 inputs, 5 FFs, 19 outputs.
pub fn s820() -> Aig {
    pld_fsm("s820", 820)
}

/// s832-class: s820 variant.
pub fn s832() -> Aig {
    pld_fsm("s832", 832)
}

/// s838.1-class: 32-bit fractional counter (8 cascaded blocks).
pub fn s838_1() -> Aig {
    fractional_counter("s838.1", 8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::sim::SeqSim;

    #[test]
    fn s27_matches_published_behaviour() {
        let g = s27();
        assert_eq!(g.num_inputs(), 4);
        assert_eq!(g.num_latches(), 3);
        assert_eq!(g.num_outputs(), 1);
        // Reference model of the s27 equations, stepped alongside.
        let mut sim = SeqSim::new(&g);
        let (mut g5, mut g6, mut g7) = (false, false, false);
        let mut lcg = 27u64;
        for _ in 0..200 {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bits = [
                lcg >> 13 & 1 == 1,
                lcg >> 17 & 1 == 1,
                lcg >> 23 & 1 == 1,
                lcg >> 29 & 1 == 1,
            ];
            let out = sim.step(&bits)[0];
            let (i0, i1, i2, i3) = (bits[0], bits[1], bits[2], bits[3]);
            let g14 = !i0;
            let g8 = g14 && g6;
            let g12 = !(i1 || g7);
            let g15 = g12 || g8;
            let g16 = i3 || g8;
            let g9 = !(g16 && g15);
            let g11 = !(g5 || g9);
            let g10 = !(g14 || g11);
            let g13 = !(i2 || g12);
            let g17 = !g11;
            assert_eq!(out, g17);
            g5 = g10;
            g6 = g11;
            g7 = g13;
        }
    }

    #[test]
    fn flip_flop_counts_match_the_originals() {
        let expect = [
            (s27(), 3),
            (s298(), 14),
            (s344(), 15),
            (s349(), 15),
            (s382(), 21),
            (s386(), 6),
            (s400(), 21),
            (s420_1(), 16),
            (s444(), 21),
            (s510(), 6),
            (s526(), 21),
            (s641(), 19),
            (s713(), 19),
            (s820(), 5),
            (s832(), 5),
            (s838_1(), 32),
        ];
        for (aig, ffs) in expect {
            assert_eq!(aig.num_latches(), ffs, "{} FF count", aig.name());
        }
    }

    #[test]
    fn fractional_counter_counts() {
        let g = fractional_counter("fc", 2);
        let mut sim = SeqSim::new(&g);
        // Enable counting (P=1, C=0) for 5 cycles; MSB of block 0 appears
        // after 8 increments.
        for step in 0..9 {
            let out = sim.step(&[false, true]);
            // z0 = bit 3 of the low block: set once 8 counts have landed.
            assert_eq!(out[0], step >= 8, "step {step}");
        }
        // Clear resets everything.
        sim.step(&[true, false]);
        let out = sim.step(&[false, false]);
        assert!(!out[0]);
    }

    #[test]
    fn traffic_phase_advances_only_on_timer() {
        let g = s382();
        let mut sim = SeqSim::new(&g);
        // With no cars and no test, the timer never runs → lights stay in
        // phase 0 (light0 decoded high).
        for _ in 0..10 {
            let out = sim.step(&[false, false, false]);
            assert!(out[0], "phase must stay 0 while idle");
        }
        // With cars, the 5-bit timer eventually completes and the phase
        // moves off 0.
        let mut moved = false;
        for _ in 0..40 {
            let out = sim.step(&[false, true, false]);
            if !out[0] {
                moved = true;
                break;
            }
        }
        assert!(moved, "phase should advance once the timer completes");
    }

    #[test]
    fn controllers_are_connected() {
        for aig in [s298(), s344(), s386(), s510(), s526(), s641(), s820()] {
            assert!(aig.num_ands() > 30, "{} too small", aig.name());
            // Every latch has a non-constant next-state function.
            let nonconst = aig.latches().iter().filter(|l| !l.next.is_const()).count();
            assert!(
                nonconst >= aig.num_latches() / 2,
                "{}: too many constant latches",
                aig.name()
            );
        }
    }
}
