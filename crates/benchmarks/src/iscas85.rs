//! ISCAS85 combinational benchmark equivalents.
//!
//! The original netlists are distribution-restricted artifacts; these
//! generators rebuild each circuit's *documented function and structure*
//! (Hansen/Yalcin/Hayes, "Unveiling the ISCAS-85 benchmarks", IEEE D&T
//! 1999) at the same I/O widths, so synthesis behaviour — duplication
//! penalty, JJ savings, depth — has the same shape as the originals. Users
//! with the real files can load them through `xsfq_aig::io::read_blif`.

use xsfq_aig::{build, Aig, Lit};

/// c432-class: 27-channel interrupt controller. Three 9-bit request buses
/// with a priority relation and channel-enable logic.
pub fn c432() -> Aig {
    let mut g = Aig::new("c432");
    let pa = g.input_word("pa", 9);
    let pb = g.input_word("pb", 9);
    let pc = g.input_word("pc", 9);
    let en = g.input_word("en", 9);
    // Bus priority: A over B over C; a channel is requesting if any enabled
    // line is high.
    let a_lines: Vec<Lit> = pa.iter().zip(&en).map(|(&p, &e)| g.and(p, e)).collect();
    let b_lines: Vec<Lit> = pb.iter().zip(&en).map(|(&p, &e)| g.and(p, e)).collect();
    let c_lines: Vec<Lit> = pc.iter().zip(&en).map(|(&p, &e)| g.and(p, e)).collect();
    let a_any = g.or_many(&a_lines);
    let b_any = g.or_many(&b_lines);
    let c_any = g.or_many(&c_lines);
    let grant_a = a_any;
    let grant_b = g.and(!a_any, b_any);
    let gbc = g.and(!b_any, c_any);
    let grant_c = g.and(!a_any, gbc);
    g.output("grant_a", grant_a);
    g.output("grant_b", grant_b);
    g.output("grant_c", grant_c);
    // Encoded index of the highest-priority active line in the granted bus.
    let mut line_active = Vec::with_capacity(9);
    for i in 0..9 {
        let ab = g.mux(grant_a, a_lines[i], b_lines[i]);
        let sel = g.mux(grant_b, b_lines[i], ab);
        let line = g.mux(grant_c, c_lines[i], sel);
        line_active.push(line);
    }
    let (onehot, _) = build::priority_encoder(&mut g, &line_active);
    let idx = build::onehot_to_binary(&mut g, &onehot);
    g.output_word("chan", &idx);
    g
}

/// Parity-check matrix used by the SEC codec equivalents: column `i` is a
/// distinct non-zero syndrome for data bit `i`.
fn sec_codes(data_bits: usize, check_bits: usize) -> Vec<u32> {
    // Use the Hamming convention: skip powers of two (those are the check
    // positions themselves).
    let mut codes = Vec::with_capacity(data_bits);
    let mut value = 1u32;
    while codes.len() < data_bits {
        if !value.is_power_of_two() {
            codes.push(value);
        }
        value += 1;
        assert!(value < 1 << check_bits, "not enough syndrome space");
    }
    codes
}

fn sec_corrector(name: &str, data_bits: usize, check_bits: usize) -> Aig {
    let mut g = Aig::new(name);
    let data = g.input_word("d", data_bits);
    let checks = g.input_word("c", check_bits);
    let codes = sec_codes(data_bits, check_bits);
    // Recompute each parity and compare with the received check bit.
    let mut syndrome = Vec::with_capacity(check_bits);
    for (j, &check) in checks.iter().enumerate().take(check_bits) {
        let members: Vec<Lit> = data
            .iter()
            .zip(&codes)
            .filter(|(_, &code)| code >> j & 1 == 1)
            .map(|(&d, _)| d)
            .collect();
        let parity = g.xor_many(&members);
        syndrome.push(g.xor(parity, check));
    }
    // Flip the data bit whose code matches the syndrome.
    for (i, &d) in data.clone().iter().enumerate() {
        let bits: Vec<Lit> = syndrome
            .iter()
            .enumerate()
            .map(|(j, &s)| s.complement_if(codes[i] >> j & 1 == 0))
            .collect();
        let hit = g.and_many(&bits);
        let corrected = g.xor(d, hit);
        g.output(format!("q[{i}]"), corrected);
    }
    let any = g.or_many(&syndrome);
    g.output("err", any);
    g
}

/// c499/c1355-class: 32-bit single-error-correcting codec (syndrome decode
/// plus correction network).
pub fn c499() -> Aig {
    sec_corrector("c499", 32, 7)
}

/// c1908-class: 16-bit single-error-correcting codec with error flags.
pub fn c1908() -> Aig {
    sec_corrector("c1908", 16, 6)
}

/// An `width`-bit ALU slice used by the c880/c3540/c5315 equivalents:
/// add/sub/and/or/xor selected by 3 control bits, with carry and parity.
fn alu(g: &mut Aig, a: &[Lit], b: &[Lit], ctl: &[Lit], cin: Lit) -> (Vec<Lit>, Lit, Lit) {
    let (sum, carry) = build::ripple_add(g, a, b, cin);
    let (diff, borrow) = build::ripple_sub(g, a, b);
    let ands: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| g.and(x, y)).collect();
    let ors: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| g.or(x, y)).collect();
    let xors: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| g.xor(x, y)).collect();
    let arith = build::mux_word(g, ctl[0], &diff, &sum);
    let logic1 = build::mux_word(g, ctl[0], &ors, &ands);
    let logic = build::mux_word(g, ctl[1], &xors, &logic1);
    // ctl[2] selects the arithmetic unit; the carry flag is only
    // meaningful there.
    let out = build::mux_word(g, ctl[2], &arith, &logic);
    let cflag = {
        let c = g.mux(ctl[0], borrow, carry);
        g.and(c, ctl[2])
    };
    let parity = g.xor_many(&out);
    (out, cflag, parity)
}

/// c880-class: 8-bit ALU with control decode, carry and parity outputs.
pub fn c880() -> Aig {
    let mut g = Aig::new("c880");
    let a = g.input_word("a", 8);
    let b = g.input_word("b", 8);
    let ctl = g.input_word("ctl", 3);
    let cin = g.input("cin");
    let mask = g.input_word("mask", 8);
    let (out, cflag, parity) = alu(&mut g, &a, &b, &ctl, cin);
    let masked: Vec<Lit> = out.iter().zip(&mask).map(|(&o, &m)| g.and(o, m)).collect();
    g.output_word("f", &masked);
    g.output("cout", cflag);
    g.output("parity", parity);
    let zero = {
        let any = g.or_many(&masked);
        !any
    };
    g.output("zero", zero);
    g
}

/// c3540-class: 8-bit ALU with a BCD-adjust path and a barrel shifter, mode
/// selected by control inputs.
pub fn c3540() -> Aig {
    let mut g = Aig::new("c3540");
    let a = g.input_word("a", 8);
    let b = g.input_word("b", 8);
    let ctl = g.input_word("ctl", 3);
    let mode = g.input("mode_bcd");
    let shamt = g.input_word("sh", 3);
    let cin = g.input("cin");
    let (out, cflag, parity) = alu(&mut g, &a, &b, &ctl, cin);
    // BCD adjust: add 6 to any nibble > 9 (classic DAA dataflow).
    let lo = &out[0..4];
    let hi = &out[4..8];
    let adjust_needed = |g: &mut Aig, nib: &[Lit]| {
        // nib > 9  <=>  nib[3] & (nib[2] | nib[1])
        let or21 = g.or(nib[2], nib[1]);
        g.and(nib[3], or21)
    };
    let adj_lo = adjust_needed(&mut g, lo);
    let adj_hi = adjust_needed(&mut g, hi);
    let six_lo: Vec<Lit> = build::constant(6, 4)
        .iter()
        .map(|&c| g.and(c, adj_lo))
        .collect();
    let six_hi: Vec<Lit> = build::constant(6, 4)
        .iter()
        .map(|&c| g.and(c, adj_hi))
        .collect();
    let (lo_adj, _) = build::ripple_add(&mut g, lo, &six_lo, Lit::FALSE);
    let (hi_adj, _) = build::ripple_add(&mut g, hi, &six_hi, Lit::FALSE);
    let mut bcd = lo_adj;
    bcd.extend(hi_adj);
    let selected = build::mux_word(&mut g, mode, &bcd, &out);
    let shifted = build::barrel_shift_left(&mut g, &selected, &shamt);
    g.output_word("f", &shifted);
    g.output("cout", cflag);
    g.output("parity", parity);
    g
}

/// c5315-class: 9-bit ALU with two arithmetic units and merged outputs.
pub fn c5315() -> Aig {
    let mut g = Aig::new("c5315");
    let a = g.input_word("a", 9);
    let b = g.input_word("b", 9);
    let c = g.input_word("c", 9);
    let d = g.input_word("d", 9);
    let ctl = g.input_word("ctl", 3);
    let sel = g.input("unit_sel");
    let cin0 = g.input("cin0");
    let cin1 = g.input("cin1");
    let (out0, cf0, p0) = alu(&mut g, &a, &b, &ctl, cin0);
    let (out1, cf1, p1) = alu(&mut g, &c, &d, &ctl, cin1);
    let merged = build::mux_word(&mut g, sel, &out1, &out0);
    g.output_word("f", &merged);
    g.output_word("f0", &out0);
    g.output_word("f1", &out1);
    let cf = g.mux(sel, cf1, cf0);
    let pp = g.xor(p0, p1);
    g.output("cout", cf);
    g.output("parity", pp);
    let eq = build::equals(&mut g, &out0, &out1);
    g.output("eq", eq);
    g
}

/// c6288-class: 16×16 array multiplier (the paper's pipelining case study,
/// Table 5). The original is a Braun array of 240 adder cells; this is the
/// same carry-save array structure.
pub fn c6288() -> Aig {
    let mut g = Aig::new("c6288");
    let a = g.input_word("a", 16);
    let b = g.input_word("b", 16);
    let p = build::array_multiplier(&mut g, &a, &b);
    g.output_word("p", &p);
    g
}

/// c7552-class: 32-bit adder / magnitude comparator with parity checking
/// (the paper's table lists it as "c7752").
pub fn c7552() -> Aig {
    let mut g = Aig::new("c7552");
    let a = g.input_word("a", 32);
    let b = g.input_word("b", 32);
    let cin = g.input("cin");
    let par_in = g.input_word("par", 4);
    let (sum, carry) = build::ripple_add(&mut g, &a, &b, cin);
    g.output_word("sum", &sum);
    g.output("cout", carry);
    let lt = build::less_than(&mut g, &a, &b);
    let eq = build::equals(&mut g, &a, &b);
    let gt = g.and(!lt, !eq);
    g.output("a_lt_b", lt);
    g.output("a_eq_b", eq);
    g.output("a_gt_b", gt);
    // Byte parity checks against the received parity inputs.
    for (i, &pin) in par_in.iter().enumerate() {
        let byte = &a[i * 8..(i + 1) * 8];
        let p = g.xor_many(byte);
        let ok = g.xnor(p, pin);
        g.output(format!("par_ok[{i}]"), ok);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::sim;

    #[test]
    fn c6288_multiplies() {
        let g = c6288();
        assert_eq!(g.num_inputs(), 32);
        assert_eq!(g.num_outputs(), 32);
        for (x, y) in [(3u64, 5u64), (65535, 65535), (1234, 4321), (0, 99)] {
            let mut inputs = Vec::new();
            for i in 0..16 {
                inputs.push(x >> i & 1 == 1);
            }
            for i in 0..16 {
                inputs.push(y >> i & 1 == 1);
            }
            let out = sim::eval_outputs(&g, &inputs);
            let mut got = 0u64;
            for (i, &bit) in out.iter().enumerate() {
                got |= (bit as u64) << i;
            }
            assert_eq!(got, x * y, "{x} * {y}");
        }
    }

    #[test]
    fn c499_corrects_single_errors() {
        let g = c499();
        assert_eq!(g.num_inputs(), 39);
        // Encode a word: compute the check bits the circuit expects
        // (parity of code-selected data bits), then inject an error.
        let codes = sec_codes(32, 7);
        let data: u32 = 0xDEAD_BEEF;
        let mut checks = [false; 7];
        for (j, c) in checks.iter_mut().enumerate() {
            let mut p = false;
            for (i, &code) in codes.iter().enumerate() {
                if code >> j & 1 == 1 {
                    p ^= data >> i & 1 == 1;
                }
            }
            *c = p;
        }
        for error_pos in [None, Some(0usize), Some(13), Some(31)] {
            let mut received = data;
            if let Some(e) = error_pos {
                received ^= 1 << e;
            }
            let mut inputs = Vec::new();
            for i in 0..32 {
                inputs.push(received >> i & 1 == 1);
            }
            inputs.extend_from_slice(&checks);
            let out = sim::eval_outputs(&g, &inputs);
            let mut corrected = 0u32;
            for (i, &bit) in out.iter().enumerate().take(32) {
                if bit {
                    corrected |= 1 << i;
                }
            }
            assert_eq!(corrected, data, "error at {error_pos:?} not corrected");
            assert_eq!(out[32], error_pos.is_some(), "error flag");
        }
    }

    #[test]
    fn c880_alu_adds_and_masks() {
        let g = c880();
        // ctl = [0,0,1] selects arithmetic-add (ctl2=1, ctl0=0).
        let mut inputs = Vec::new();
        let (a, b) = (100u64, 55u64);
        for i in 0..8 {
            inputs.push(a >> i & 1 == 1);
        }
        for i in 0..8 {
            inputs.push(b >> i & 1 == 1);
        }
        inputs.extend([false, false, true]); // ctl
        inputs.push(false); // cin
        inputs.extend([true; 8]); // mask all ones
        let out = sim::eval_outputs(&g, &inputs);
        let mut f = 0u64;
        for (i, &bit) in out.iter().enumerate().take(8) {
            f |= (bit as u64) << i;
        }
        assert_eq!(f, (a + b) & 0xff);
        assert!(!out[10], "zero flag clear for non-zero result");
    }

    #[test]
    fn c7552_compares() {
        let g = c7552();
        let mut inputs = Vec::new();
        let (a, b) = (7u64, 9u64);
        for i in 0..32 {
            inputs.push(a >> i & 1 == 1);
        }
        for i in 0..32 {
            inputs.push(b >> i & 1 == 1);
        }
        inputs.push(false); // cin
        inputs.extend([false; 4]); // parity inputs
        let out = sim::eval_outputs(&g, &inputs);
        // Outputs: sum[0..32], cout, lt, eq, gt, par_ok[0..4]
        assert!(out[33], "7 < 9");
        assert!(!out[34]);
        assert!(!out[35]);
    }

    #[test]
    fn all_generators_elaborate() {
        for (name, aig) in [
            ("c432", c432()),
            ("c499", c499()),
            ("c880", c880()),
            ("c1908", c1908()),
            ("c3540", c3540()),
            ("c5315", c5315()),
            ("c6288", c6288()),
            ("c7552", c7552()),
        ] {
            assert!(aig.num_ands() > 50, "{name} too small: {}", aig.num_ands());
            assert_eq!(aig.num_latches(), 0, "{name} must be combinational");
            assert_eq!(aig.name(), name);
        }
    }
}
