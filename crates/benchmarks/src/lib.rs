//! # xsfq-benchmarks — ISCAS85 / EPFL / ISCAS89 benchmark equivalents
//!
//! The paper evaluates on the ISCAS85, EPFL and ISCAS89 suites. Those
//! netlists are distribution-restricted artifacts, so this crate rebuilds
//! each circuit's *documented function* as an AIG generator (see the module
//! docs for the fidelity notes per circuit; `s27` is the exact published
//! netlist). Users with the original files can load them via
//! [`xsfq_aig::io::read_blif`] and run the identical flow.
//!
//! ```
//! use xsfq_benchmarks as benchmarks;
//!
//! let aig = benchmarks::by_name("c6288").expect("known benchmark");
//! assert_eq!(aig.num_inputs(), 32); // 16×16 multiplier
//!
//! // Iterate a whole suite:
//! for bench in benchmarks::table4_circuits() {
//!     let aig = (bench.build)();
//!     assert!(aig.num_ands() > 0, "{}", bench.name);
//! }
//! ```

#![warn(missing_docs)]

pub mod epfl;
pub mod iscas85;
pub mod iscas89;

use xsfq_aig::Aig;

/// Which suite a benchmark belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Suite {
    /// ISCAS85 combinational circuits.
    Iscas85,
    /// EPFL combinational circuits.
    Epfl,
    /// ISCAS89 sequential circuits.
    Iscas89,
}

/// A registered benchmark generator.
#[derive(Copy, Clone, Debug)]
pub struct Benchmark {
    /// Canonical name (as used in the paper's tables).
    pub name: &'static str,
    /// Owning suite.
    pub suite: Suite,
    /// Generator function.
    pub build: fn() -> Aig,
}

/// Every registered benchmark.
pub fn all() -> Vec<Benchmark> {
    use Suite::*;
    vec![
        Benchmark {
            name: "c432",
            suite: Iscas85,
            build: iscas85::c432,
        },
        Benchmark {
            name: "c499",
            suite: Iscas85,
            build: iscas85::c499,
        },
        Benchmark {
            name: "c880",
            suite: Iscas85,
            build: iscas85::c880,
        },
        Benchmark {
            name: "c1908",
            suite: Iscas85,
            build: iscas85::c1908,
        },
        Benchmark {
            name: "c3540",
            suite: Iscas85,
            build: iscas85::c3540,
        },
        Benchmark {
            name: "c5315",
            suite: Iscas85,
            build: iscas85::c5315,
        },
        Benchmark {
            name: "c6288",
            suite: Iscas85,
            build: iscas85::c6288,
        },
        Benchmark {
            name: "c7552",
            suite: Iscas85,
            build: iscas85::c7552,
        },
        Benchmark {
            name: "arbiter",
            suite: Epfl,
            build: epfl::arbiter,
        },
        Benchmark {
            name: "cavlc",
            suite: Epfl,
            build: epfl::cavlc,
        },
        Benchmark {
            name: "ctrl",
            suite: Epfl,
            build: epfl::ctrl,
        },
        Benchmark {
            name: "dec",
            suite: Epfl,
            build: epfl::dec,
        },
        Benchmark {
            name: "i2c",
            suite: Epfl,
            build: epfl::i2c,
        },
        Benchmark {
            name: "int2float",
            suite: Epfl,
            build: epfl::int2float,
        },
        Benchmark {
            name: "mem_ctrl",
            suite: Epfl,
            build: epfl::mem_ctrl,
        },
        Benchmark {
            name: "priority",
            suite: Epfl,
            build: epfl::priority,
        },
        Benchmark {
            name: "router",
            suite: Epfl,
            build: epfl::router,
        },
        Benchmark {
            name: "voter",
            suite: Epfl,
            build: epfl::voter,
        },
        Benchmark {
            name: "sin",
            suite: Epfl,
            build: epfl::sin,
        },
        Benchmark {
            name: "s27",
            suite: Iscas89,
            build: iscas89::s27,
        },
        Benchmark {
            name: "s298",
            suite: Iscas89,
            build: iscas89::s298,
        },
        Benchmark {
            name: "s344",
            suite: Iscas89,
            build: iscas89::s344,
        },
        Benchmark {
            name: "s349",
            suite: Iscas89,
            build: iscas89::s349,
        },
        Benchmark {
            name: "s382",
            suite: Iscas89,
            build: iscas89::s382,
        },
        Benchmark {
            name: "s386",
            suite: Iscas89,
            build: iscas89::s386,
        },
        Benchmark {
            name: "s400",
            suite: Iscas89,
            build: iscas89::s400,
        },
        Benchmark {
            name: "s420.1",
            suite: Iscas89,
            build: iscas89::s420_1,
        },
        Benchmark {
            name: "s444",
            suite: Iscas89,
            build: iscas89::s444,
        },
        Benchmark {
            name: "s510",
            suite: Iscas89,
            build: iscas89::s510,
        },
        Benchmark {
            name: "s526",
            suite: Iscas89,
            build: iscas89::s526,
        },
        Benchmark {
            name: "s641",
            suite: Iscas89,
            build: iscas89::s641,
        },
        Benchmark {
            name: "s713",
            suite: Iscas89,
            build: iscas89::s713,
        },
        Benchmark {
            name: "s820",
            suite: Iscas89,
            build: iscas89::s820,
        },
        Benchmark {
            name: "s832",
            suite: Iscas89,
            build: iscas89::s832,
        },
        Benchmark {
            name: "s838.1",
            suite: Iscas89,
            build: iscas89::s838_1,
        },
    ]
}

/// Look a benchmark up by its canonical name.
pub fn by_name(name: &str) -> Option<Aig> {
    all()
        .into_iter()
        .find(|b| b.name == name)
        .map(|b| (b.build)())
}

/// The combinational circuits of the paper's Table 4, in row order.
pub fn table4_circuits() -> Vec<Benchmark> {
    let rows = [
        "c880",
        "c1908",
        "c499",
        "c3540",
        "c5315",
        "c7552",
        "int2float",
        "dec",
        "priority",
        "sin",
        "cavlc",
    ];
    rows.iter()
        .map(|n| {
            all()
                .into_iter()
                .find(|b| b.name == *n)
                .expect("registered")
        })
        .collect()
}

/// The EPFL control circuits of the paper's Table 3, in column order.
pub fn table3_circuits() -> Vec<Benchmark> {
    let cols = [
        "arbiter",
        "cavlc",
        "ctrl",
        "dec",
        "i2c",
        "int2float",
        "mem_ctrl",
        "priority",
        "router",
        "voter",
    ];
    cols.iter()
        .map(|n| {
            all()
                .into_iter()
                .find(|b| b.name == *n)
                .expect("registered")
        })
        .collect()
}

/// The sequential circuits of the paper's Table 6, in row order.
pub fn table6_circuits() -> Vec<Benchmark> {
    all()
        .into_iter()
        .filter(|b| b.suite == Suite::Iscas89)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let benches = all();
        let mut names: Vec<&str> = benches.iter().map(|b| b.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), benches.len(), "duplicate names");
        assert!(by_name("c6288").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn table_selections_match_the_paper() {
        assert_eq!(table4_circuits().len(), 11);
        assert_eq!(table3_circuits().len(), 10);
        assert_eq!(table6_circuits().len(), 16);
    }

    #[test]
    fn suites_are_consistent() {
        for b in all() {
            let aig = (b.build)();
            match b.suite {
                Suite::Iscas85 | Suite::Epfl => {
                    assert_eq!(aig.num_latches(), 0, "{} must be combinational", b.name)
                }
                Suite::Iscas89 => {
                    assert!(aig.num_latches() > 0, "{} must be sequential", b.name)
                }
            }
        }
    }
}
