//! # xsfq-baselines — clocked RSFQ comparison flows
//!
//! The paper compares against PBMap (Pasandi & Pedram, TASC'19) for
//! combinational circuits and qSeq (DAC'21) for sequential ones. Neither
//! tool is redistributable, so this crate implements their *cost
//! structure*: technology mapping to clocked RSFQ cells, full path
//! balancing with DRO/DFF insertion, and an exactly-sized clock splitter
//! tree — the three overheads clock-free xSFQ eliminates.
//!
//! ```
//! use xsfq_aig::{Aig, build};
//! use xsfq_baselines::pbmap;
//!
//! let mut g = Aig::new("fa");
//! let a = g.input("a");
//! let b = g.input("b");
//! let c = g.input("cin");
//! let (s, co) = build::full_adder(&mut g, a, b, c);
//! g.output("s", s);
//! g.output("cout", co);
//!
//! let baseline = pbmap(&g);
//! assert!(baseline.jj_with_clock_tree() > baseline.jj_total());
//! ```

#![warn(missing_docs)]

mod rsfq_map;

pub use rsfq_map::{map_rsfq, RsfqDesign};

use xsfq_aig::opt::{self, Effort};
use xsfq_aig::Aig;

/// PBMap-style combinational baseline: AIG optimization (same script as the
/// xSFQ flow, so the comparison isolates architecture) followed by clocked
/// RSFQ mapping with full path balancing.
pub fn pbmap(aig: &Aig) -> RsfqDesign {
    pbmap_with_effort(aig, Effort::Standard)
}

/// [`pbmap`] with an explicit optimization effort.
pub fn pbmap_with_effort(aig: &Aig, effort: Effort) -> RsfqDesign {
    let optimized = opt::optimize(aig, effort);
    map_rsfq(&optimized)
}

/// qSeq-style sequential baseline: identical mapping; latches become RSFQ
/// DFF cells whose data paths are balanced to the global logic depth.
pub fn qseq(aig: &Aig) -> RsfqDesign {
    pbmap(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::build;
    use xsfq_aig::Lit;

    #[test]
    fn pbmap_on_adder_produces_balanced_clocked_netlist() {
        let mut g = Aig::new("add4");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let (s, c) = build::ripple_add(&mut g, &a, &b, Lit::FALSE);
        g.output_word("s", &s);
        g.output("c", c);
        let d = pbmap(&g);
        assert!(d.gates > 0);
        assert!(d.balancing_dffs > 0, "ripple carry needs balancing DROs");
        assert_eq!(d.state_dffs, 0);
        let stats = d.netlist.stats();
        assert!(stats.clocked_cells > 0);
        assert!(d.jj_with_clock_tree() > d.jj_total());
    }

    #[test]
    fn qseq_counts_state_dffs() {
        let mut g = Aig::new("cnt");
        let q = g.latch("q", false);
        let en = g.input("en");
        let nx = g.xor(q, en);
        g.set_latch_next(q, nx);
        g.output("o", q);
        let d = qseq(&g);
        assert_eq!(d.state_dffs, 1);
    }
}
