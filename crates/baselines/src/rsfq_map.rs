//! Clocked-RSFQ technology mapping with full path balancing — the cost
//! model of the PBMap / qSeq baselines the paper compares against (§4.2).
//!
//! Conventional RSFQ clocks *every* logic gate, which imposes:
//!
//! 1. gate-level pipelining: every gate is a synchronous stage,
//! 2. **path balancing**: any reconvergent edge skipping `k` levels needs
//!    `k` DRO (DFF) cells so operands meet in the same clock cycle,
//! 3. a clock splitter tree reaching every clocked cell.
//!
//! The mapper is demand-driven on signal polarity (a shared NOT cell per
//! complemented node), recognizes the XOR structure the AIG builders emit,
//! and maps `(¬a ∧ ¬b)` nodes to OR cells via De Morgan when the complement
//! is what consumers want.

use xsfq_aig::hash::FxHashMap;
use xsfq_aig::{Aig, Lit, NodeKind};
use xsfq_cells::{CellKind, CellLibrary};
use xsfq_netlist::{NetId, Netlist};

/// Result of the RSFQ baseline flow.
#[derive(Clone, Debug)]
pub struct RsfqDesign {
    /// Physical netlist (path-balanced, splitter trees inserted).
    pub netlist: Netlist,
    /// Logic gates (AND/OR/XOR/NOT).
    pub gates: usize,
    /// Path-balancing DFF (DRO) cells.
    pub balancing_dffs: usize,
    /// State-holding DFF cells (one per latch).
    pub state_dffs: usize,
}

impl RsfqDesign {
    /// Total JJs excluding the clock tree (what PBMap/qSeq report).
    pub fn jj_total(&self) -> u64 {
        self.netlist.stats().jj_total
    }

    /// Total JJs including the clock splitter tree (the paper's "+30%"
    /// correction, computed exactly here).
    pub fn jj_with_clock_tree(&self) -> u64 {
        let stats = self.netlist.stats();
        let split = u64::from(self.netlist.library().jj(CellKind::RsfqSplitter));
        stats.jj_with_clock_tree(split)
    }
}

#[derive(Default, Clone, Copy)]
struct Wires {
    pos: Option<NetId>,
    neg: Option<NetId>,
}

/// Map an AIG to a clocked RSFQ netlist with full path balancing.
///
/// The AIG should already be optimized (the baselines enjoy the same AIG
/// optimization as the xSFQ flow, so the comparison isolates the
/// architectural overheads).
pub fn map_rsfq(aig: &Aig) -> RsfqDesign {
    let n = aig.num_nodes();
    // ---- Pattern analysis ----
    // XOR pattern: r = AND(!x, !y) with x = AND(a,b), y = AND(!a,!b) and
    // x/y single-fanout. r computes XOR(a,b).
    let fanouts = aig.fanout_counts(true);
    let mut xor_root: Vec<Option<(Lit, Lit)>> = vec![None; n];
    let mut absorbed = vec![false; n];
    for (i, kind) in aig.nodes().iter().enumerate() {
        let NodeKind::And { a, b } = *kind else {
            continue;
        };
        if !(a.is_complement() && b.is_complement()) {
            continue;
        }
        let (xa, xb) = (a.node(), b.node());
        let (NodeKind::And { a: p, b: q }, NodeKind::And { a: r, b: s }) =
            (aig.node(xa), aig.node(xb))
        else {
            continue;
        };
        if fanouts[xa.index()] != 1 || fanouts[xb.index()] != 1 {
            continue;
        }
        // (p,q) and (r,s) over the same nodes with opposite polarities.
        let same = |u: Lit, v: Lit| u.node() == v.node() && u.is_complement() != v.is_complement();
        let is_xor = (same(p, r) && same(q, s)) || (same(p, s) && same(q, r));
        if is_xor {
            // r_node = !(p&q) & !(!p&!q) = p XOR q (for the right phases).
            // Determine the XOR operand literals: node value = XOR(p, q)
            // exactly when the two inner ANDs cover opposite phase pairs.
            xor_root[i] = Some((p, q));
            absorbed[xa.index()] = true;
            absorbed[xb.index()] = true;
        }
    }

    // ---- Polarity demand ----
    let mut need_pos = vec![false; n];
    let mut need_neg = vec![false; n];
    let want = |lit: Lit, positive: bool, need_pos: &mut Vec<bool>, need_neg: &mut Vec<bool>| {
        if positive ^ lit.is_complement() {
            need_pos[lit.node().index()] = true;
        } else {
            need_neg[lit.node().index()] = true;
        }
    };
    for o in aig.outputs() {
        want(o.lit, true, &mut need_pos, &mut need_neg);
    }
    for l in aig.latches() {
        want(l.next, true, &mut need_pos, &mut need_neg);
    }
    for i in (1..n).rev() {
        if absorbed[i] || !(need_pos[i] || need_neg[i]) {
            continue;
        }
        match (aig.nodes()[i], xor_root[i]) {
            (_, Some((p, q))) => {
                // XOR consumes the positive sense of its operand edges.
                want(p, true, &mut need_pos, &mut need_neg);
                want(q, true, &mut need_pos, &mut need_neg);
            }
            (NodeKind::And { a, b }, None) => {
                if a.is_complement() && b.is_complement() && need_neg[i] {
                    // Mapped as OR(a, b) producing the complement directly.
                    want(a, false, &mut need_pos, &mut need_neg);
                    want(b, false, &mut need_pos, &mut need_neg);
                    // A positive consumer will add a NOT on our output.
                } else {
                    want(a, true, &mut need_pos, &mut need_neg);
                    want(b, true, &mut need_pos, &mut need_neg);
                }
            }
            _ => {}
        }
    }

    // ---- Emission ----
    let mut netlist = Netlist::new(aig.name().to_string(), CellLibrary::rsfq());
    let mut wires: Vec<Wires> = vec![Wires::default(); n];
    let mut gates = 0usize;
    // Constant outputs (possible after optimization) come from a dedicated
    // constant-source port, mirroring the xSFQ mapper's convention.
    if need_pos[0] || need_neg[0] {
        let net = netlist.add_input("const0");
        wires[0].pos = Some(net);
    }
    // Primary inputs.
    for (idx, &id) in aig.inputs().iter().enumerate() {
        let net = netlist.add_input(aig.input_name(idx).to_string());
        wires[id.index()].pos = Some(net);
    }
    // Latches become DFF cells; their data is wired after logic emission.
    let mut latch_dffs = Vec::new();
    for latch in aig.latches() {
        let (dff, outs) = netlist.add_cell_deferred(CellKind::RsfqDff);
        wires[latch.output.index()].pos = Some(outs[0]);
        latch_dffs.push(dff);
    }

    fn wire(
        netlist: &mut Netlist,
        wires: &mut [Wires],
        gates: &mut usize,
        node: usize,
        positive: bool,
    ) -> NetId {
        let w = wires[node];
        if positive {
            if let Some(net) = w.pos {
                return net;
            }
            let src = w.neg.expect("some wire for node");
            let net = netlist.add_cell(CellKind::RsfqNot, &[src])[0];
            *gates += 1;
            wires[node].pos = Some(net);
            net
        } else {
            if let Some(net) = w.neg {
                return net;
            }
            let src = w.pos.expect("some wire for node");
            let net = netlist.add_cell(CellKind::RsfqNot, &[src])[0];
            *gates += 1;
            wires[node].neg = Some(net);
            net
        }
    }

    for i in 1..n {
        if absorbed[i] || !(need_pos[i] || need_neg[i]) {
            continue;
        }
        let NodeKind::And { a, b } = aig.nodes()[i] else {
            continue;
        };
        if let Some((p, q)) = xor_root[i] {
            // The node computes XOR or XNOR of (p,q) depending on phases;
            // recover the phase by evaluating the pattern at p=q=0:
            // value = (!p&!q term present) — with our builder the node is
            // always the XOR of the two operand edges' positive senses.
            let ia = wire(
                &mut netlist,
                &mut wires,
                &mut gates,
                p.node().index(),
                !p.is_complement(),
            );
            let ib = wire(
                &mut netlist,
                &mut wires,
                &mut gates,
                q.node().index(),
                !q.is_complement(),
            );
            let net = netlist.add_cell(CellKind::RsfqXor, &[ia, ib])[0];
            gates += 1;
            wires[i].pos = Some(net);
            continue;
        }
        if a.is_complement() && b.is_complement() && need_neg[i] {
            // node = ¬x ∧ ¬y, so an OR over the children's positive wires
            // produces the complement (De Morgan) that consumers want.
            let ia = wire(&mut netlist, &mut wires, &mut gates, a.node().index(), true);
            let ib = wire(&mut netlist, &mut wires, &mut gates, b.node().index(), true);
            let net = netlist.add_cell(CellKind::RsfqOr, &[ia, ib])[0];
            gates += 1;
            wires[i].neg = Some(net);
        } else {
            let ia = wire(
                &mut netlist,
                &mut wires,
                &mut gates,
                a.node().index(),
                !a.is_complement(),
            );
            let ib = wire(
                &mut netlist,
                &mut wires,
                &mut gates,
                b.node().index(),
                !b.is_complement(),
            );
            let net = netlist.add_cell(CellKind::RsfqAnd, &[ia, ib])[0];
            gates += 1;
            wires[i].pos = Some(net);
        }
        // The opposite polarity, if demanded, comes from a shared NOT at
        // first use (see `wire`).
    }

    // Outputs and latch data (positive polarity).
    let mut root_nets = Vec::new();
    for o in aig.outputs() {
        let net = wire(
            &mut netlist,
            &mut wires,
            &mut gates,
            o.lit.node().index(),
            !o.lit.is_complement(),
        );
        root_nets.push((o.name.clone(), net, false));
    }
    for (latch, &dff) in aig.latches().iter().zip(&latch_dffs) {
        let net = wire(
            &mut netlist,
            &mut wires,
            &mut gates,
            latch.next.node().index(),
            !latch.next.is_complement(),
        );
        root_nets.push((String::new(), net, true));
        // Temporarily connect; path balancing rewires below.
        netlist.connect_input(dff, 0, net);
    }

    // ---- Path balancing ----
    let balanced = balance_paths(&netlist, &root_nets, &latch_dffs);
    let physical = balanced.netlist.insert_splitters();
    RsfqDesign {
        netlist: physical,
        gates,
        balancing_dffs: balanced.balancing_dffs,
        state_dffs: latch_dffs.len(),
    }
}

struct Balanced {
    netlist: Netlist,
    balancing_dffs: usize,
}

/// Insert DFF chains so every cell's inputs arrive at the same clock level
/// and every root (PO / latch data) sits at the global maximum level.
fn balance_paths(
    netlist: &Netlist,
    roots: &[(String, NetId, bool)],
    latch_dffs: &[xsfq_netlist::CellId],
) -> Balanced {
    // Level of each net: PIs and DFF outputs are 0 (DFFs retime state);
    // clocked logic cell output = 1 + max(input levels). Net ids are dense,
    // so a flat vector replaces the former per-net hash map.
    let mut level: Vec<Option<u32>> = vec![None; netlist.num_nets()];
    for p in netlist.inputs() {
        level[p.net.index()] = Some(0);
    }
    let mut latch_set = vec![false; netlist.cells().len()];
    for c in latch_dffs {
        latch_set[c.index()] = true;
    }
    for (ci, cell) in netlist.cells().iter().enumerate() {
        if latch_set[ci] {
            for &o in &cell.outputs {
                level[o.index()] = Some(0);
            }
        }
    }
    // Resolve levels with a worklist (cells except state DFFs).
    let mut remaining: Vec<usize> = (0..netlist.cells().len())
        .filter(|&ci| !latch_set[ci])
        .collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|&ci| {
            let cell = &netlist.cells()[ci];
            if !cell.inputs.iter().all(|i| level[i.index()].is_some()) {
                return true;
            }
            let lv = 1 + cell
                .inputs
                .iter()
                .map(|i| level[i.index()].expect("resolved above"))
                .max()
                .unwrap_or(0);
            for &o in &cell.outputs {
                level[o.index()] = Some(lv);
            }
            false
        });
        assert!(
            remaining.len() < before,
            "combinational cycle in RSFQ netlist"
        );
    }
    let max_root_level = roots
        .iter()
        .map(|(_, net, _)| level[net.index()].expect("root level resolved"))
        .max()
        .unwrap_or(0);

    // Rebuild with DFF chains. Chains are shared per net: one chain per
    // net, consumers tap the depth they need.
    let mut out = Netlist::new(netlist.name().to_string(), netlist.library().clone());
    let mut net_map: Vec<Option<NetId>> = vec![None; netlist.num_nets()];
    for p in netlist.inputs() {
        net_map[p.net.index()] = Some(out.add_input(p.name.clone()));
    }
    let mut cell_map: Vec<Option<xsfq_netlist::CellId>> = vec![None; netlist.cells().len()];
    // Create all cells (deferred inputs), preserving kinds.
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let (new_cell, outs) = out.add_cell_deferred(cell.kind);
        cell_map[ci] = Some(new_cell);
        for (o, n) in cell.outputs.iter().zip(outs) {
            net_map[o.index()] = Some(n);
        }
    }
    // DFF chain cache: (net, depth) → tapped net.
    let mut chains: FxHashMap<(usize, u32), NetId> = FxHashMap::default();
    let mut balancing_dffs = 0usize;
    let tap = |out: &mut Netlist,
               chains: &mut FxHashMap<(usize, u32), NetId>,
               balancing_dffs: &mut usize,
               net_map: &[Option<NetId>],
               net: usize,
               depth: u32|
     -> NetId {
        let mut current = net_map[net].expect("net built");
        let mut have = 0u32;
        // Find the deepest existing tap.
        while have < depth {
            if let Some(&cached) = chains.get(&(net, have + 1)) {
                current = cached;
                have += 1;
                continue;
            }
            let next = out.add_cell(CellKind::RsfqDff, &[current])[0];
            *balancing_dffs += 1;
            chains.insert((net, have + 1), next);
            current = next;
            have += 1;
        }
        current
    };
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let new_cell = cell_map[ci].expect("created");
        let target_level = if latch_set[ci] {
            // State DFF data is balanced to the global root level.
            max_root_level
        } else {
            cell.outputs
                .first()
                .map(|o| level[o.index()].expect("resolved").saturating_sub(1))
                .unwrap_or(0)
        };
        for (pin, &inp) in cell.inputs.iter().enumerate() {
            let in_level = level[inp.index()].expect("resolved");
            let depth = target_level.saturating_sub(in_level);
            let net = tap(
                &mut out,
                &mut chains,
                &mut balancing_dffs,
                &net_map,
                inp.index(),
                depth,
            );
            out.connect_input(new_cell, pin, net);
        }
    }
    for (name, net, is_latch) in roots {
        if *is_latch {
            continue; // handled as DFF data above
        }
        let depth = max_root_level - level[net.index()].expect("resolved");
        let tapped = tap(
            &mut out,
            &mut chains,
            &mut balancing_dffs,
            &net_map,
            net.index(),
            depth,
        );
        out.add_output(name.clone(), tapped);
    }
    out.assert_connected();
    Balanced {
        netlist: out,
        balancing_dffs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::build;

    fn full_adder() -> Aig {
        let mut g = Aig::new("fa");
        let a = g.input("a");
        let b = g.input("b");
        let c = g.input("cin");
        let (s, co) = build::full_adder(&mut g, a, b, c);
        g.output("s", s);
        g.output("cout", co);
        g
    }

    #[test]
    fn xor_pattern_is_recognized() {
        let mut g = Aig::new("x");
        let a = g.input("a");
        let b = g.input("b");
        let x = g.xor(a, b);
        g.output("o", x);
        let d = map_rsfq(&g);
        let stats = d.netlist.stats();
        assert_eq!(
            d.netlist.count_kind(CellKind::RsfqXor),
            1,
            "parity maps to one XOR cell, stats: {stats}"
        );
        assert_eq!(d.netlist.count_kind(CellKind::RsfqAnd), 0);
    }

    #[test]
    fn full_adder_maps_and_balances() {
        let g = full_adder();
        let d = map_rsfq(&g);
        let stats = d.netlist.stats();
        assert!(d.gates >= 3, "at least 2 XOR + carry logic: {}", d.gates);
        assert!(stats.jj_total > 0);
        // Every clocked cell's inputs must arrive at the same level —
        // checked indirectly: balancing inserted at least one DFF (the
        // carry path is shorter than the sum path).
        assert!(d.balancing_dffs > 0, "FA needs path balancing");
        // Clock tree covers all clocked cells.
        assert!(stats.clocked_cells > d.gates / 2);
    }

    #[test]
    fn balancing_makes_all_pi_po_paths_equal() {
        // Verify the invariant structurally: recompute levels on the
        // balanced netlist; every cell's inputs must be at level(cell)-1.
        let g = full_adder();
        let d = map_rsfq(&g);
        let nl = &d.netlist;
        let mut level: std::collections::HashMap<usize, u32> = std::collections::HashMap::new();
        for p in nl.inputs() {
            level.insert(p.net.index(), 0);
        }
        let mut remaining: Vec<usize> = (0..nl.cells().len()).collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|&ci| {
                let cell = &nl.cells()[ci];
                if !cell.inputs.iter().all(|i| level.contains_key(&i.index())) {
                    return true;
                }
                let ins: Vec<u32> = cell.inputs.iter().map(|i| level[&i.index()]).collect();
                let clocked = cell.kind.is_clocked();
                let lv = if cell.kind == CellKind::RsfqSplitter {
                    ins[0] // splitters are transparent
                } else {
                    1 + ins.iter().copied().max().unwrap_or(0)
                };
                if clocked && ins.len() > 1 {
                    assert!(
                        ins.iter().all(|&l| l == ins[0]),
                        "unbalanced inputs at cell {ci}: {ins:?}"
                    );
                }
                let store = if cell.kind == CellKind::RsfqSplitter {
                    ins[0]
                } else {
                    lv
                };
                for &o in &cell.outputs {
                    level.insert(o.index(), store);
                }
                false
            });
            assert!(remaining.len() < before);
        }
        // All outputs at the same level.
        let out_levels: Vec<u32> = nl.outputs().iter().map(|p| level[&p.net.index()]).collect();
        assert!(
            out_levels.windows(2).all(|w| w[0] == w[1]),
            "outputs unbalanced: {out_levels:?}"
        );
    }

    #[test]
    fn sequential_design_gets_state_dffs() {
        let mut g = Aig::new("cnt");
        let q0 = g.latch("q0", false);
        let q1 = g.latch("q1", false);
        g.set_latch_next(q0, !q0);
        let n1 = g.xor(q1, q0);
        g.set_latch_next(q1, n1);
        g.output("o", q1);
        let d = map_rsfq(&g);
        assert_eq!(d.state_dffs, 2);
        assert!(d.jj_with_clock_tree() > d.jj_total());
    }

    #[test]
    fn rsfq_costs_exceed_xsfq_on_full_adder() {
        // The headline comparison at miniature scale: clocked RSFQ with
        // path balancing and clock splitting vs clock-free xSFQ.
        let g = full_adder();
        let rsfq = map_rsfq(&g);
        let xsfq = xsfq_core::map_xsfq(&g, &xsfq_core::MapOptions::default());
        let rsfq_jj = rsfq.jj_with_clock_tree();
        let xsfq_jj = xsfq.physical.stats().jj_total;
        assert!(
            rsfq_jj as f64 / xsfq_jj as f64 > 2.0,
            "expected ≥2× savings, rsfq={rsfq_jj} xsfq={xsfq_jj}"
        );
    }
}
