//! Agreement tests: the SAT-sweeping CEC engine must return exactly the
//! same verdicts as the classic monolithic miter encoder — on equivalent
//! pairs (a design against its optimized self) and on mutated pairs (a
//! design against a randomly perturbed copy) — and every counterexample
//! must actually distinguish the two designs under simulation.

use proptest::prelude::*;

use xsfq_aig::{opt, sim, Aig, Lit};
use xsfq_sat::cec::{check_equivalence, check_equivalence_monolithic, EquivResult};

/// Random multi-output DAG from a recipe of (op, operand, operand) triples.
fn circuit_from_recipe(recipe: &[(u8, usize, usize)], inputs: usize) -> Aig {
    let mut g = Aig::new("rand");
    let mut pool: Vec<Lit> = (0..inputs).map(|i| g.input(format!("x{i}"))).collect();
    for &(op, i, j) in recipe {
        let a = pool[i % pool.len()];
        let b = pool[j % pool.len()];
        let lit = match op % 6 {
            0 => g.and(a, b),
            1 => g.or(a, b),
            2 => g.xor(a, b),
            3 => g.nand(a, b),
            4 => g.mux(a, b, !a),
            _ => g.xnor(a, b),
        };
        pool.push(lit);
    }
    // Several outputs so the per-pair final queries get exercised.
    for (k, &lit) in pool.iter().rev().take(3).enumerate() {
        g.output(format!("o{k}"), lit);
    }
    g
}

/// Both checkers on the same pair: verdicts must match, counterexamples
/// must distinguish.
fn assert_agreement(a: &Aig, b: &Aig) -> Result<(), TestCaseError> {
    let swept = check_equivalence(a, b);
    let mono = check_equivalence_monolithic(a, b);
    prop_assert_eq!(
        swept.is_equivalent(),
        mono.is_equivalent(),
        "verdicts diverge: swept {:?} vs monolithic {:?}",
        swept,
        mono
    );
    for result in [&swept, &mono] {
        if let EquivResult::Counterexample(cex) = result {
            prop_assert_eq!(cex.len(), a.num_inputs());
            prop_assert_ne!(
                sim::eval_outputs(a, cex),
                sim::eval_outputs(b, cex),
                "counterexample does not distinguish the designs"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A design and its optimized self: both engines must say Equivalent.
    /// The input range straddles `Simulator::EXHAUSTIVE_LIMIT` (12), so
    /// both the exhaustive-signature path and the random-simulation +
    /// counterexample-replay path face the oracle.
    #[test]
    fn agree_on_equivalent_pairs(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 4..40),
        inputs in 2usize..16,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let o = opt::optimize(&g, opt::Effort::Fast);
        prop_assert!(check_equivalence(&g, &o).is_equivalent(),
            "sweep must prove an optimized design equivalent");
        assert_agreement(&g, &o)?;
    }

    /// A design and a mutated copy (one operator swapped): verdicts must
    /// agree either way — the mutation may or may not change the function.
    #[test]
    fn agree_on_mutated_pairs(
        recipe in prop::collection::vec((any::<u8>(), 0usize..64, 0usize..64), 4..40),
        inputs in 2usize..16,
        mutate_at in 0usize..64,
        new_op in 0u8..6,
    ) {
        let g = circuit_from_recipe(&recipe, inputs);
        let mut mutated = recipe.clone();
        let k = mutate_at % mutated.len();
        mutated[k].0 = new_op;
        let m = circuit_from_recipe(&mutated, inputs);
        assert_agreement(&g, &m)?;
    }
}
