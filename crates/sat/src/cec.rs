//! Combinational equivalence checking.
//!
//! [`check_equivalence`] is the default decision procedure: it delegates to
//! the simulation-guided SAT-sweeping engine ([`crate::sweep`]), which
//! merges internally equivalent logic with small incremental queries before
//! deciding the outputs. [`check_equivalence_monolithic`] keeps the classic
//! encoding — shared inputs, per-output XORs, disjunction asserted true,
//! one cold solve — as a cross-check oracle; the `sweep_agreement`
//! integration test pins the two to identical verdicts.
//!
//! This is the verification backbone of the whole flow: every AIG
//! optimization pass and every xSFQ mapping step is checked against it.

use std::collections::HashMap;

use xsfq_aig::{Aig, Lit as AigLit, NodeId, NodeKind};

use crate::solver::{Lit, SatResult, Solver, Var};

/// Result of an equivalence check.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EquivResult {
    /// The two designs agree on every input pattern.
    Equivalent,
    /// The designs differ; the payload is an input vector (one bool per
    /// shared primary input) on which at least one output differs.
    Counterexample(Vec<bool>),
}

impl EquivResult {
    /// True when the result is [`EquivResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivResult::Equivalent)
    }
}

/// Tseitin-encode the combinational logic of `aig` into `solver`.
///
/// Returns the literal map from AIG nodes to SAT literals. `input_vars` maps
/// each primary input index to an existing SAT variable (so multiple AIGs
/// can share inputs). Latch outputs are treated as free inputs via
/// `latch_vars` (cut-point abstraction for sequential designs).
pub fn encode(
    solver: &mut Solver,
    aig: &Aig,
    input_vars: &[Var],
    latch_vars: &[Var],
) -> HashMap<NodeId, Lit> {
    assert_eq!(input_vars.len(), aig.num_inputs(), "input var count");
    assert_eq!(latch_vars.len(), aig.num_latches(), "latch var count");
    let mut map: HashMap<NodeId, Lit> = HashMap::with_capacity(aig.num_nodes());
    // Constant node: a frozen variable forced to false.
    let const_var = solver.new_var();
    solver.add_clause(&[const_var.negative()]);
    map.insert(NodeId::CONST0, const_var.positive());
    for (i, kind) in aig.nodes().iter().enumerate() {
        let id = NodeId::from_index(i);
        match *kind {
            NodeKind::Const0 => {}
            NodeKind::Input { index } => {
                map.insert(id, input_vars[index as usize].positive());
            }
            NodeKind::Latch { index } => {
                map.insert(id, latch_vars[index as usize].positive());
            }
            NodeKind::And { a, b } => {
                let la = lit_of(&map, a);
                let lb = lit_of(&map, b);
                let n = solver.new_var().positive();
                // n <-> la & lb
                solver.add_clause(&[!n, la]);
                solver.add_clause(&[!n, lb]);
                solver.add_clause(&[n, !la, !lb]);
                map.insert(id, n);
            }
        }
    }
    map
}

fn lit_of(map: &HashMap<NodeId, Lit>, l: AigLit) -> Lit {
    let base = map[&l.node()];
    if l.is_complement() {
        !base
    } else {
        base
    }
}

/// SAT literal of an AIG edge given the map produced by [`encode`].
pub fn edge_lit(map: &HashMap<NodeId, Lit>, l: AigLit) -> Lit {
    lit_of(map, l)
}

/// Check combinational equivalence of two AIGs with identical interfaces
/// (same input count/order and output count/order). Latches, if present,
/// must match pairwise and are treated as free cut-point inputs, which is
/// sound for netlists whose registers were not moved (use bounded sequential
/// checks for retimed designs).
///
/// Decided by SAT sweeping ([`crate::sweep::check_equivalence_swept`]) with
/// default options; verdicts and counterexample validity are identical to
/// [`check_equivalence_monolithic`].
///
/// # Panics
///
/// Panics if the interfaces differ.
pub fn check_equivalence(a: &Aig, b: &Aig) -> EquivResult {
    crate::sweep::check_equivalence_swept(a, b, &crate::sweep::SweepOptions::default())
}

/// The classic one-shot miter encoding: every output pair XORed, the
/// disjunction asserted, one monolithic solve on a cold solver. Kept as the
/// reference oracle for the sweeping engine (and for callers that want a
/// single self-contained query). Interface requirements and verdict
/// semantics match [`check_equivalence`].
///
/// # Panics
///
/// Panics if the interfaces differ.
pub fn check_equivalence_monolithic(a: &Aig, b: &Aig) -> EquivResult {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    assert_eq!(a.num_latches(), b.num_latches(), "latch counts differ");

    let mut solver = Solver::new();
    let inputs: Vec<Var> = (0..a.num_inputs()).map(|_| solver.new_var()).collect();
    let latches: Vec<Var> = (0..a.num_latches()).map(|_| solver.new_var()).collect();
    let map_a = encode(&mut solver, a, &inputs, &latches);
    let map_b = encode(&mut solver, b, &inputs, &latches);

    // Miter: OR over outputs (and latch-next pairs) of XOR differences.
    let mut diffs: Vec<Lit> = Vec::new();
    let pairs = a
        .outputs()
        .iter()
        .map(|o| o.lit)
        .chain(a.latches().iter().map(|l| l.next))
        .zip(
            b.outputs()
                .iter()
                .map(|o| o.lit)
                .chain(b.latches().iter().map(|l| l.next)),
        );
    for (oa, ob) in pairs {
        let la = lit_of(&map_a, oa);
        let lb = lit_of(&map_b, ob);
        let d = solver.new_var().positive();
        // d <-> la XOR lb
        solver.add_clause(&[!d, la, lb]);
        solver.add_clause(&[!d, !la, !lb]);
        solver.add_clause(&[d, !la, lb]);
        solver.add_clause(&[d, la, !lb]);
        diffs.push(d);
    }
    if diffs.is_empty() {
        return EquivResult::Equivalent;
    }
    solver.add_clause(&diffs);
    match solver.solve() {
        SatResult::Unsat => EquivResult::Equivalent,
        SatResult::Sat => {
            let pattern = inputs
                .iter()
                .map(|&v| solver.value(v).unwrap_or(false))
                .collect();
            EquivResult::Counterexample(pattern)
        }
    }
}

/// Convenience wrapper: `true` iff the designs are equivalent.
pub fn equivalent(a: &Aig, b: &Aig) -> bool {
    check_equivalence(a, b).is_equivalent()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::{build, opt, Aig};

    #[test]
    fn equivalent_adders() {
        let mut g1 = Aig::new("g1");
        let a = g1.input_word("a", 4);
        let b = g1.input_word("b", 4);
        let (s, c) = build::ripple_add(&mut g1, &a, &b, AigLit::FALSE);
        g1.output_word("s", &s);
        g1.output("c", c);
        let g2 = opt::optimize(&g1, opt::Effort::Standard);
        assert!(equivalent(&g1, &g2));
    }

    #[test]
    fn counterexample_on_difference() {
        let mut g1 = Aig::new("g1");
        let a = g1.input("a");
        let b = g1.input("b");
        let x = g1.and(a, b);
        g1.output("o", x);

        let mut g2 = Aig::new("g2");
        let a2 = g2.input("a");
        let b2 = g2.input("b");
        let x2 = g2.or(a2, b2);
        g2.output("o", x2);

        let EquivResult::Counterexample(cex) = check_equivalence(&g1, &g2) else {
            panic!("AND and OR must differ");
        };
        // The counterexample must actually distinguish them.
        let oa = xsfq_aig::sim::eval_outputs(&g1, &cex)[0];
        let ob = xsfq_aig::sim::eval_outputs(&g2, &cex)[0];
        assert_ne!(oa, ob);
    }

    #[test]
    fn complemented_outputs_differ() {
        let mut g1 = Aig::new("g1");
        let a = g1.input("a");
        g1.output("o", a);
        let mut g2 = Aig::new("g2");
        let a2 = g2.input("a");
        g2.output("o", !a2);
        assert!(!equivalent(&g1, &g2));
    }

    #[test]
    fn sequential_cutpoint_check() {
        // Same next-state logic expressed differently.
        let mut g1 = Aig::new("g1");
        let d = g1.input("d");
        let q = g1.latch("q", false);
        let n = g1.xor(d, q);
        g1.set_latch_next(q, n);
        g1.output("o", q);

        let mut g2 = Aig::new("g2");
        let d2 = g2.input("d");
        let q2 = g2.latch("q", false);
        // d^q = (d|q) & !(d&q)
        let or = g2.or(d2, q2);
        let and = g2.and(d2, q2);
        let n2 = g2.and(or, !and);
        g2.set_latch_next(q2, n2);
        g2.output("o", q2);

        assert!(equivalent(&g1, &g2));
    }

    #[test]
    fn constant_handling() {
        let mut g1 = Aig::new("g1");
        let a = g1.input("a");
        let f = g1.and(a, AigLit::FALSE);
        g1.output("o", f);
        let mut g2 = Aig::new("g2");
        let _a = g2.input("a");
        g2.output("o", AigLit::FALSE);
        assert!(equivalent(&g1, &g2));
    }

    #[test]
    fn multiplier_against_itself_optimized() {
        let mut g = Aig::new("mul4");
        let a = g.input_word("a", 4);
        let b = g.input_word("b", 4);
        let p = build::array_multiplier(&mut g, &a, &b);
        g.output_word("p", &p);
        let o = opt::optimize(&g, opt::Effort::Fast);
        assert!(equivalent(&g, &o));
    }
}
