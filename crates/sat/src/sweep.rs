//! Simulation-guided SAT sweeping (fraiging) — the fast path behind
//! combinational equivalence checking and a standalone AIG optimization.
//!
//! # Engine invariants
//!
//! The engine rests on a strict division of labor:
//!
//! * **Signature = candidate.** Bit-parallel random (or, for ≤ 12
//!   combinational inputs, exhaustive) simulation assigns every node a
//!   signature; nodes whose polarity-canonicalized signatures agree are
//!   *candidate* equivalences. A signature match is never trusted on its
//!   own.
//! * **SAT = proof.** Each candidate pair is decided by two bounded
//!   incremental queries on one shared CNF encoding (`x ∧ ¬y` and
//!   `¬x ∧ y` both UNSAT ⟺ `x ≡ y`). Only a proof merges nodes.
//! * **Disproof = pattern.** A SAT model is a distinguishing input
//!   pattern; it is replayed into the simulator
//!   ([`xsfq_aig::sim::Simulator::add_pattern`]) so the next round's
//!   classes no longer contain the refuted pair. Rounds therefore
//!   monotonically shrink the candidate set, and the loop ends when a round
//!   produces no counterexample (or the round cap is hit).
//! * **Proof = clause.** A proven equivalence is added to the solver as a
//!   biconditional, so later queries propagate through it — the clause-level
//!   analogue of structurally merging the nodes, which keeps the thousands
//!   of small queries shallow.
//!
//! Equivalences are tracked in a union-find over nodes whose edges carry a
//! complement bit; roots are always the lowest node id in their class, so a
//! merged graph can be rebuilt in one topological pass ([`fraig`]).
//!
//! [`check_equivalence_swept`] uses the same engine for CEC: both designs
//! are imported into one shared, structurally hashed miter AIG (identical
//! subgraphs collapse for free), internal equivalences are swept, and only
//! the surviving output pairs are decided by final unbounded queries.

use xsfq_aig::sim::Simulator;
use xsfq_aig::{Aig, Lit as AigLit, NodeId, NodeKind};
use xsfq_exec::CancelToken;

use crate::cec::EquivResult;
use crate::solver::{Lit, SatResult, Solver, Var};

/// Tuning knobs for the sweeping engine.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Random simulation words (64 patterns each) seeding the signatures.
    /// Ignored when the design is small enough for exhaustive simulation.
    pub sim_words: usize,
    /// Conflict budget per bounded candidate query. Pairs exceeding it are
    /// left unmerged (sound: merging is optional) rather than blocking the
    /// sweep; CEC decides surviving *output* pairs without a budget.
    pub max_conflicts: u64,
    /// Maximum simulate → prove → refine rounds.
    pub max_rounds: usize,
    /// Seed for the random patterns.
    pub seed: u64,
    /// Cooperative cancellation: checked before every candidate class (and
    /// every round). A cancelled sweep stops proving and returns with the
    /// merges established so far — sound, since merging is optional. The
    /// default token never cancels.
    pub cancel: CancelToken,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            sim_words: 4,
            max_conflicts: 100,
            max_rounds: 32,
            seed: 0x5eed,
            cancel: CancelToken::default(),
        }
    }
}

/// Counters describing what a sweep did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Refinement rounds executed.
    pub rounds: usize,
    /// Incremental SAT queries issued (bounded and final).
    pub sat_calls: u64,
    /// Candidate pairs proven equivalent and merged.
    pub proved: usize,
    /// Candidate pairs refuted by a counterexample.
    pub disproved: usize,
    /// Candidate pairs skipped because the conflict budget ran out.
    pub deferred: usize,
}

/// Outcome of one candidate query.
enum PairOutcome {
    Proved,
    Disproved(Vec<bool>),
    Deferred,
}

/// The sweeping engine: one AIG, one simulator, one incremental solver, one
/// union-find of proven equivalences.
struct Sweeper<'a> {
    aig: &'a Aig,
    sim: Simulator<'a>,
    solver: Solver,
    /// SAT variable per combinational input (primary inputs, then latches).
    ci_vars: Vec<Var>,
    /// SAT literal per AIG node (dense Tseitin encoding).
    node_lit: Vec<Lit>,
    /// Union-find parent edges with complement: `repr[i].node() == i` marks
    /// a root; roots are always the lowest id of their class.
    repr: Vec<AigLit>,
    opts: SweepOptions,
    stats: SweepStats,
}

impl<'a> Sweeper<'a> {
    fn new(aig: &'a Aig, opts: &SweepOptions) -> Self {
        let num_cis = aig.num_inputs() + aig.num_latches();
        let sim = if num_cis <= Simulator::EXHAUSTIVE_LIMIT {
            Simulator::exhaustive(aig)
        } else {
            Simulator::random(aig, opts.sim_words.max(1), opts.seed)
        };
        // Dense Tseitin encoding of the whole graph up front: encoding is
        // linear and cheap next to solving, and a flat Vec beats a map in
        // the per-query literal lookups.
        let mut solver = Solver::new();
        let const_var = solver.new_var();
        solver.add_clause(&[const_var.negative()]);
        let mut ci_vars = Vec::with_capacity(num_cis);
        let mut node_lit = vec![const_var.positive(); aig.num_nodes()];
        // Inputs come before latches in the CI ordering, matching the
        // pattern layout of [`Simulator`].
        let mut latch_vars = Vec::with_capacity(aig.num_latches());
        for _ in 0..aig.num_inputs() {
            ci_vars.push(solver.new_var());
        }
        for _ in 0..aig.num_latches() {
            let v = solver.new_var();
            latch_vars.push(v);
            ci_vars.push(v);
        }
        for (i, kind) in aig.nodes().iter().enumerate() {
            match *kind {
                NodeKind::Const0 => {}
                NodeKind::Input { index } => {
                    node_lit[i] = ci_vars[index as usize].positive();
                }
                NodeKind::Latch { index } => {
                    node_lit[i] = latch_vars[index as usize].positive();
                }
                NodeKind::And { a, b } => {
                    let la = edge(&node_lit, a);
                    let lb = edge(&node_lit, b);
                    let n = solver.new_var().positive();
                    solver.add_clause(&[!n, la]);
                    solver.add_clause(&[!n, lb]);
                    solver.add_clause(&[n, !la, !lb]);
                    node_lit[i] = n;
                }
            }
        }
        Sweeper {
            aig,
            sim,
            solver,
            ci_vars,
            node_lit,
            repr: (0..aig.num_nodes())
                .map(|i| NodeId::from_index(i).lit())
                .collect(),
            opts: opts.clone(),
            stats: SweepStats::default(),
        }
    }

    /// Representative literal of a node, with path compression.
    fn find(&mut self, node: NodeId) -> AigLit {
        let parent = self.repr[node.index()];
        if parent.node() == node {
            return parent;
        }
        let root = self.find(parent.node());
        let resolved = root.complement_if(parent.is_complement());
        self.repr[node.index()] = resolved;
        resolved
    }

    /// Representative of an edge literal.
    fn resolve(&mut self, l: AigLit) -> AigLit {
        self.find(l.node()).complement_if(l.is_complement())
    }

    /// Record the proven fact `x ≡ y`, keeping the lower node id as root.
    fn union(&mut self, x: AigLit, y: AigLit) {
        let rx = self.resolve(x);
        let ry = self.resolve(y);
        if rx.node() == ry.node() {
            debug_assert_eq!(rx, ry, "contradictory merge");
            return;
        }
        let (hi, lo) = if rx.node().index() > ry.node().index() {
            (rx, ry)
        } else {
            (ry, rx)
        };
        // `hi ≡ lo` as literals, so node(hi) ≡ lo ⊕ complement(hi).
        self.repr[hi.node().index()] = lo.complement_if(hi.is_complement());
    }

    fn sat_lit(&self, l: AigLit) -> Lit {
        let base = self.node_lit[l.node().index()];
        if l.is_complement() {
            !base
        } else {
            base
        }
    }

    /// The solver model restricted to the combinational inputs, in CI order.
    fn model_pattern(&self) -> Vec<bool> {
        self.ci_vars
            .iter()
            .map(|&v| self.solver.value(v).unwrap_or(false))
            .collect()
    }

    /// Decide `x ≡ y` with two assumption queries under `budget` conflicts
    /// each. On proof, the biconditional is taught to the solver.
    fn prove_lits_equal(&mut self, x: AigLit, y: AigLit, budget: u64) -> PairOutcome {
        let sx = self.sat_lit(x);
        let sy = self.sat_lit(y);
        self.stats.sat_calls += 1;
        match self.solver.solve_limited(&[sx, !sy], budget) {
            None => return PairOutcome::Deferred,
            Some(SatResult::Sat) => return PairOutcome::Disproved(self.model_pattern()),
            Some(SatResult::Unsat) => {}
        }
        self.stats.sat_calls += 1;
        match self.solver.solve_limited(&[!sx, sy], budget) {
            None => PairOutcome::Deferred,
            Some(SatResult::Sat) => PairOutcome::Disproved(self.model_pattern()),
            Some(SatResult::Unsat) => {
                // Both directions refuted ⇒ the formula entails x ↔ y, so
                // the clauses are implied and can never make it UNSAT.
                self.solver.add_clause(&[!sx, sy]);
                self.solver.add_clause(&[sx, !sy]);
                PairOutcome::Proved
            }
        }
    }

    /// The sweep loop: group by signature, prove candidates, replay
    /// counterexamples, repeat until a round is counterexample-free.
    fn sweep(&mut self) {
        use xsfq_aig::hash::FxHashMap;
        for round in 0..self.opts.max_rounds.max(1) {
            if self.opts.cancel.is_cancelled() {
                return;
            }
            self.stats.rounds = round + 1;
            // Candidate classes: canonical signature hash → members. Only
            // class roots participate (merged nodes ride with their root).
            let mut classes: FxHashMap<u64, Vec<(NodeId, bool)>> = FxHashMap::default();
            for i in 0..self.aig.num_nodes() {
                let id = NodeId::from_index(i);
                if self.find(id).node() != id {
                    continue;
                }
                let (key, complement) = self.sim.canonical_key(id);
                classes.entry(key).or_default().push((id, complement));
            }
            let mut class_list: Vec<Vec<(NodeId, bool)>> = classes
                .into_values()
                .filter(|members| members.len() > 1)
                .collect();
            // Deterministic order, shallow classes first (members are
            // already in id order because nodes were scanned in order).
            class_list.sort_by_key(|members| members[0].0);

            let mut num_cex = 0usize;
            for members in &class_list {
                // Candidate-class boundary: bail out of a long proving round
                // in bounded time. Established merges stay valid.
                if self.opts.cancel.is_cancelled() {
                    return;
                }
                let (rep, rep_c) = members[0];
                for &(m, m_c) in &members[1..] {
                    // The hash key can collide; only a full signature match
                    // makes a candidate.
                    let phase = rep_c ^ m_c;
                    if !self.sim.signatures_match(rep, m, phase) {
                        continue;
                    }
                    let x = self.resolve(rep.lit());
                    let y = self.resolve(m.lit().complement_if(phase));
                    if x.node() == y.node() {
                        continue; // already merged (transitively)
                    }
                    match self.prove_lits_equal(x, y, self.opts.max_conflicts) {
                        PairOutcome::Proved => {
                            self.stats.proved += 1;
                            self.union(x, y);
                        }
                        PairOutcome::Disproved(pattern) => {
                            self.stats.disproved += 1;
                            num_cex += 1;
                            self.sim.add_pattern(&pattern);
                        }
                        PairOutcome::Deferred => self.stats.deferred += 1,
                    }
                }
            }
            self.sim.flush();
            if num_cex == 0 {
                break;
            }
        }
    }
}

#[inline]
fn edge(node_lit: &[Lit], l: AigLit) -> Lit {
    let base = node_lit[l.node().index()];
    if l.is_complement() {
        !base
    } else {
        base
    }
}

/// Import the combinational logic of `src` into `dst` over the shared CI
/// literals (primary inputs first, then latches as free cut-point inputs).
/// Returns the root literals: outputs first, then latch next-state functions.
fn import_comb(src: &Aig, dst: &mut Aig, cis: &[AigLit]) -> Vec<AigLit> {
    let mut map: Vec<AigLit> = vec![AigLit::FALSE; src.num_nodes()];
    for (i, kind) in src.nodes().iter().enumerate() {
        map[i] = match *kind {
            NodeKind::Const0 => AigLit::FALSE,
            NodeKind::Input { index } => cis[index as usize],
            NodeKind::Latch { index } => cis[src.num_inputs() + index as usize],
            NodeKind::And { a, b } => {
                let fa = map[a.node().index()].complement_if(a.is_complement());
                let fb = map[b.node().index()].complement_if(b.is_complement());
                dst.and(fa, fb)
            }
        };
    }
    src.outputs()
        .iter()
        .map(|o| o.lit)
        .chain(src.latches().iter().map(|l| l.next))
        .map(|l| map[l.node().index()].complement_if(l.is_complement()))
        .collect()
}

/// Check combinational equivalence of two AIGs by SAT sweeping a shared
/// miter. Drop-in replacement for
/// [`crate::cec::check_equivalence_monolithic`]: identical interface
/// requirements and identical verdicts. For latch-free designs a
/// counterexample (one bool per primary input) is a valid distinguishing
/// pattern; with latches, both checkers report only the primary-input slice
/// of the model, and the distinguishing latch values (latches are free
/// cut-point inputs) are not included.
///
/// # Panics
///
/// Panics if the interfaces (input/output/latch counts) differ.
pub fn check_equivalence_swept(a: &Aig, b: &Aig, opts: &SweepOptions) -> EquivResult {
    assert_eq!(a.num_inputs(), b.num_inputs(), "input counts differ");
    assert_eq!(a.num_outputs(), b.num_outputs(), "output counts differ");
    assert_eq!(a.num_latches(), b.num_latches(), "latch counts differ");

    // Shared miter AIG: structural hashing already merges identical cones.
    let mut miter = Aig::new("sweep_miter");
    let cis: Vec<AigLit> = (0..a.num_inputs() + a.num_latches())
        .map(|i| miter.input(format!("i{i}")))
        .collect();
    let roots_a = import_comb(a, &mut miter, &cis);
    let roots_b = import_comb(b, &mut miter, &cis);
    if roots_a == roots_b {
        return EquivResult::Equivalent; // collapsed structurally
    }

    let mut sweeper = Sweeper::new(&miter, opts);
    sweeper.sweep();

    // Only output pairs the sweep did not merge go to the (unbounded)
    // final queries.
    for (&la, &lb) in roots_a.iter().zip(&roots_b) {
        let x = sweeper.resolve(la);
        let y = sweeper.resolve(lb);
        if x == y {
            continue;
        }
        match sweeper.prove_lits_equal(x, y, u64::MAX) {
            PairOutcome::Proved => sweeper.union(x, y),
            PairOutcome::Disproved(pattern) => {
                // The monolithic checker reports primary inputs only.
                return EquivResult::Counterexample(pattern[..a.num_inputs()].to_vec());
            }
            PairOutcome::Deferred => unreachable!("unbounded query cannot defer"),
        }
    }
    EquivResult::Equivalent
}

/// SAT-sweep an AIG as an optimization pass: prove functionally equivalent
/// (up to complement) internal nodes equivalent and merge them, like ABC's
/// `fraig`. Latches are cut points (their next-state cones are swept
/// combinationally), so the pass is safe on sequential designs.
///
/// Returns the merged graph and the sweep counters.
pub fn fraig_with_stats(aig: &Aig, opts: &SweepOptions) -> (Aig, SweepStats) {
    let mut sweeper = Sweeper::new(aig, opts);
    sweeper.sweep();

    let mut out = Aig::new(aig.name().to_string());
    let mut map: Vec<AigLit> = vec![AigLit::FALSE; aig.num_nodes()];
    for (i, &id) in aig.inputs().iter().enumerate() {
        map[id.index()] = out.input(aig.input_name(i).to_string());
    }
    for latch in aig.latches() {
        map[latch.output.index()] = out.latch(latch.name.clone(), latch.init);
    }
    for (i, kind) in aig.nodes().iter().enumerate() {
        let NodeKind::And { a, b } = *kind else {
            continue;
        };
        let id = NodeId::from_index(i);
        let root = sweeper.find(id);
        map[i] = if root.node() != id {
            // Roots have lower ids, so the root's image already exists.
            map[root.node().index()].complement_if(root.is_complement())
        } else {
            let fa = map[a.node().index()].complement_if(a.is_complement());
            let fb = map[b.node().index()].complement_if(b.is_complement());
            out.and(fa, fb)
        };
    }
    for o in aig.outputs() {
        let lit = map[o.lit.node().index()].complement_if(o.lit.is_complement());
        out.output(o.name.clone(), lit);
    }
    for (i, latch) in aig.latches().iter().enumerate() {
        let next = map[latch.next.node().index()].complement_if(latch.next.is_complement());
        let output = out.latches()[i].output.lit();
        out.set_latch_next(output, next);
    }
    (out.compact(), sweeper.stats)
}

/// [`fraig_with_stats`] with default options, returning only the graph.
pub fn fraig(aig: &Aig) -> Aig {
    fraig_with_stats(aig, &SweepOptions::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cec::{check_equivalence_monolithic, equivalent};
    use xsfq_aig::{build, opt, sim};

    #[test]
    fn swept_cec_agrees_on_adders() {
        let mut g1 = Aig::new("g1");
        let a = g1.input_word("a", 4);
        let b = g1.input_word("b", 4);
        let (s, c) = build::ripple_add(&mut g1, &a, &b, AigLit::FALSE);
        g1.output_word("s", &s);
        g1.output("c", c);
        let g2 = opt::optimize(&g1, opt::Effort::Standard);
        let swept = check_equivalence_swept(&g1, &g2, &SweepOptions::default());
        assert!(swept.is_equivalent());
        assert_eq!(
            swept.is_equivalent(),
            check_equivalence_monolithic(&g1, &g2).is_equivalent()
        );
    }

    #[test]
    fn swept_cec_counterexample_is_valid() {
        let mut g1 = Aig::new("g1");
        let a = g1.input("a");
        let b = g1.input("b");
        let x = g1.and(a, b);
        g1.output("o", x);
        let mut g2 = Aig::new("g2");
        let a2 = g2.input("a");
        let b2 = g2.input("b");
        let x2 = g2.or(a2, b2);
        g2.output("o", x2);
        let EquivResult::Counterexample(cex) =
            check_equivalence_swept(&g1, &g2, &SweepOptions::default())
        else {
            panic!("AND and OR must differ");
        };
        assert_eq!(cex.len(), 2);
        let oa = sim::eval_outputs(&g1, &cex)[0];
        let ob = sim::eval_outputs(&g2, &cex)[0];
        assert_ne!(oa, ob);
    }

    #[test]
    fn fraig_merges_functional_duplicates() {
        // Two structurally different XOR implementations (AND-form vs
        // MUX-form, which strash does NOT share): fraig must collapse them
        // onto one cone.
        let mut g = Aig::new("dup");
        let a = g.input("a");
        let b = g.input("b");
        let x1 = g.xor(a, b);
        let x2 = g.mux(a, !b, b);
        g.output("x1", x1);
        g.output("x2", x2);
        assert_ne!(x1, x2, "test premise: strash must not share the cones");
        let before = g.num_ands();
        let (merged, stats) = fraig_with_stats(&g, &SweepOptions::default());
        assert!(stats.proved > 0, "expected at least one merge: {stats:?}");
        assert!(
            merged.num_ands() < before,
            "fraig must shrink the duplicated graph ({} -> {})",
            before,
            merged.num_ands()
        );
        assert!(equivalent(&g, &merged));
        let o = merged.outputs();
        assert_eq!(
            o[0].lit, o[1].lit,
            "both outputs must point at the same cone"
        );
    }

    #[test]
    fn fraig_detects_constant_nodes() {
        // (a & b) & (a & !b) is constant false but hidden from strash.
        let mut g = Aig::new("konst");
        let a = g.input("a");
        let b = g.input("b");
        let ab = g.and(a, b);
        let anb = g.and(a, !b);
        let f = g.and(ab, anb);
        g.output("o", f);
        let merged = fraig(&g);
        assert_eq!(merged.num_ands(), 0, "constant cone must vanish");
        assert_eq!(merged.outputs()[0].lit, AigLit::FALSE);
    }

    #[test]
    fn fraig_preserves_sequential_interface() {
        let mut g = Aig::new("seq");
        let d = g.input("d");
        let q = g.latch("q", true);
        let n1 = g.xor(d, q);
        g.set_latch_next(q, n1);
        // A redundant MUX-form XOR cone feeding an output.
        let n2 = g.mux(d, !q, q);
        g.output("o", n2);
        let merged = fraig(&g);
        assert_eq!(merged.num_latches(), 1);
        assert!(merged.latches()[0].init);
        assert!(equivalent(&g, &merged));
        assert!(merged.num_ands() <= g.num_ands());
    }

    #[test]
    fn sweep_handles_wide_random_designs() {
        // 16 CIs forces the random-simulation (non-exhaustive) path.
        let mut g = Aig::new("wide");
        let xs = g.input_word("x", 16);
        let mut acc = AigLit::FALSE;
        for pair in xs.chunks(2) {
            let t = g.and(pair[0], pair[1]);
            acc = g.xor(acc, t);
        }
        g.output("o", acc);
        let o = opt::optimize(&g, opt::Effort::Standard);
        assert!(check_equivalence_swept(&g, &o, &SweepOptions::default()).is_equivalent());
        // And a mutated copy must be caught.
        let mut bad = Aig::new("wide");
        let xs = bad.input_word("x", 16);
        let mut acc = AigLit::FALSE;
        for (i, pair) in xs.chunks(2).enumerate() {
            let t = if i == 5 {
                bad.or(pair[0], pair[1])
            } else {
                bad.and(pair[0], pair[1])
            };
            acc = bad.xor(acc, t);
        }
        bad.output("o", acc);
        let r = check_equivalence_swept(&g, &bad, &SweepOptions::default());
        let EquivResult::Counterexample(cex) = r else {
            panic!("mutation must be caught");
        };
        assert_ne!(sim::eval_outputs(&g, &cex), sim::eval_outputs(&bad, &cex));
    }
}
