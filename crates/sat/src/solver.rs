//! A CDCL SAT solver (MiniSat-style) with two-literal watching, 1UIP conflict
//! analysis, VSIDS branching, phase saving, Luby restarts and learnt-clause
//! reduction.
//!
//! The solver is *incremental*: clauses (and learnt clauses) are retained
//! across [`Solver::solve_with_assumptions`] calls, new clauses may be added
//! between solves, and [`Solver::solve_limited`] bounds a query by conflict
//! count — which is what lets the SAT-sweeping engine ([`crate::sweep`]) fire
//! thousands of small equivalence queries at one shared encoding. The
//! one-shot [`Solver::solve`] is a wrapper over the incremental core.
//!
//! The solver is the decision procedure behind combinational equivalence
//! checking ([`crate::cec`]): every optimization and mapping pass in the
//! workspace is verified against it in the test suites.

use std::fmt;

/// A boolean variable.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(u32);

impl Var {
    /// Index of the variable (dense, starting at 0).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// Negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal of this variable with the given sign.
    pub fn lit(self, negative: bool) -> Lit {
        Lit(self.0 << 1 | negative as u32)
    }
}

/// A literal: a variable or its negation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The variable underlying this literal.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// True if the literal is negated.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}",
            if self.is_negative() { "-" } else { "" },
            self.0 >> 1
        )
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with [`Solver::value`]).
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

const CLAUSE_NONE: u32 = u32::MAX;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

/// CDCL SAT solver.
///
/// ```
/// use xsfq_sat::{Solver, SatResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.positive(), b.positive()]);
/// s.add_clause(&[a.negative()]);
/// assert_eq!(s.solve(), SatResult::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // indexed by literal; clause watches !lit
    assigns: Vec<i8>,       // per var: 0 unknown, 1 true, -1 false
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    phase: Vec<bool>,
    order: Vec<Var>, // lazily sorted decision candidates
    seen: Vec<bool>,
    ok: bool,
    num_learnts: usize,
    /// Learnt-clause count that triggers a reduction; `None` uses the
    /// MiniSat-style default `4000 + 4 × num_vars`.
    reduce_limit: Option<usize>,
    /// Statistics: number of conflicts encountered.
    pub conflicts: u64,
    /// Statistics: number of decisions taken.
    pub decisions: u64,
    /// Statistics: number of literal propagations.
    pub propagations: u64,
    /// Statistics: number of learnt-clause reductions performed.
    pub reductions: u64,
}

impl Solver {
    /// New empty solver.
    pub fn new() -> Self {
        Solver {
            var_inc: 1.0,
            cla_inc: 1.0,
            ok: true,
            ..Default::default()
        }
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Override the learnt-clause count that triggers a reduction (the
    /// default is MiniSat's `4000 + 4 × num_vars`). Primarily a test/tuning
    /// knob: a tiny limit forces reductions mid-solve, which the
    /// verdict-stability unit tests rely on.
    pub fn set_reduce_limit(&mut self, limit: Option<usize>) {
        self.reduce_limit = limit;
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(0);
        self.level.push(0);
        self.reason.push(CLAUSE_NONE);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(v);
        v
    }

    fn lit_value(&self, l: Lit) -> i8 {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            -v
        } else {
            v
        }
    }

    /// Model value of `var` after a [`SatResult::Sat`] answer; `None` if the
    /// variable was irrelevant (never assigned).
    pub fn value(&self, var: Var) -> Option<bool> {
        match self.assigns[var.index()] {
            1 => Some(true),
            -1 => Some(false),
            _ => None,
        }
    }

    /// Add a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state (conflicting unit clauses).
    ///
    /// May be called between solves: any outstanding assignments from a
    /// previous [`SatResult::Sat`] answer are undone first (the model becomes
    /// invalid, as in MiniSat's incremental interface).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        // Simplify: remove duplicates/false literals, detect tautologies.
        let mut simplified: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            if sorted.binary_search(&!l).is_ok() {
                return true; // tautology: l and !l both present
            }
            match self.lit_value(l) {
                1 => return true, // already satisfied at level 0
                -1 => {}          // drop false literal
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(simplified[0], CLAUSE_NONE);
                self.ok = self.propagate() == CLAUSE_NONE;
                self.ok
            }
            _ => {
                self.attach_clause(simplified, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> u32 {
        let idx = self.clauses.len() as u32;
        self.watches[(!lits[0]).index()].push(idx);
        self.watches[(!lits[1]).index()].push(idx);
        if learnt {
            self.num_learnts += 1;
        }
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        idx
    }

    fn unchecked_enqueue(&mut self, l: Lit, reason: u32) {
        debug_assert_eq!(self.lit_value(l), 0);
        let v = l.var().index();
        self.assigns[v] = if l.is_negative() { -1 } else { 1 };
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.phase[v] = !l.is_negative();
        self.trail.push(l);
    }

    /// Propagate all enqueued assignments. Returns the conflicting clause
    /// index or `CLAUSE_NONE`.
    fn propagate(&mut self) -> u32 {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let mut watch_list = std::mem::take(&mut self.watches[p.index()]);
            let mut i = 0;
            while i < watch_list.len() {
                let ci = watch_list[i];
                // Make sure the false literal (!p) is at position 1.
                let (first, need_new_watch) = {
                    let c = &mut self.clauses[ci as usize];
                    if c.lits[0] == !p {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], !p);
                    (c.lits[0], true)
                };
                let _ = need_new_watch;
                if self.lit_value(first) == 1 {
                    i += 1;
                    continue; // clause satisfied; keep watching
                }
                // Look for a new literal to watch.
                let mut found = None;
                {
                    let c = &self.clauses[ci as usize];
                    for (k, &l) in c.lits.iter().enumerate().skip(2) {
                        if self.lit_value(l) != -1 {
                            found = Some((k, l));
                            break;
                        }
                    }
                }
                if let Some((k, l)) = found {
                    self.clauses[ci as usize].lits.swap(1, k);
                    self.watches[(!l).index()].push(ci);
                    watch_list.swap_remove(i);
                    continue; // do not advance i: swapped element takes this slot
                }
                // No new watch: clause is unit or conflicting.
                if self.lit_value(first) == -1 {
                    // Conflict: restore remaining watches and bail out.
                    self.watches[p.index()].extend_from_slice(&watch_list[..]);
                    self.qhead = self.trail.len();
                    return ci;
                }
                self.unchecked_enqueue(first, ci);
                i += 1;
            }
            // Retain processed watches (minus relocated ones).
            let existing = std::mem::replace(&mut self.watches[p.index()], watch_list);
            self.watches[p.index()].extend(existing);
        }
        CLAUSE_NONE
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        c.activity += self.cla_inc;
        if c.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    /// First-UIP conflict analysis. Returns (learnt clause, backjump level).
    fn analyze(&mut self, mut conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let current_level = self.trail_lim.len() as u32;

        loop {
            debug_assert_ne!(conflict, CLAUSE_NONE);
            self.bump_clause(conflict);
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[conflict as usize].lits[start..].to_vec();
            for q in lits {
                let v = q.var();
                if self.seen[v.index()] || self.level[v.index()] == 0 {
                    continue;
                }
                self.seen[v.index()] = true;
                self.bump_var(v);
                if self.level[v.index()] == current_level {
                    counter += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Select the next trail literal at the current level.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = !lit;
                break;
            }
            p = Some(lit);
            conflict = self.reason[lit.var().index()];
        }

        // Clear the seen flags for the learnt literals.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        // Backjump level = max level among the non-asserting literals.
        let backjump = learnt[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Put a literal of the backjump level at position 1 (watch invariant).
        if learnt.len() > 1 {
            let pos = learnt[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == backjump)
                .expect("literal at backjump level")
                + 1;
            learnt.swap(1, pos);
        }
        (learnt, backjump)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("non-root level");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail entry");
                let v = l.var();
                self.assigns[v.index()] = 0;
                self.reason[v.index()] = CLAUSE_NONE;
                self.order.push(v);
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        // Lazy VSIDS: sort pending candidates by activity on demand.
        loop {
            if self.order.is_empty() {
                // Refill with all unassigned vars (restarts may have lost some).
                for i in 0..self.assigns.len() {
                    if self.assigns[i] == 0 {
                        self.order.push(Var(i as u32));
                    }
                }
                if self.order.is_empty() {
                    return None;
                }
            }
            // Pick the max-activity candidate.
            let mut best = 0usize;
            for (i, v) in self.order.iter().enumerate() {
                if self.activity[v.index()] > self.activity[self.order[best].index()] {
                    best = i;
                }
            }
            let v = self.order.swap_remove(best);
            if self.assigns[v.index()] == 0 {
                return Some(v);
            }
        }
    }

    /// Remove the less active half of the (long) learnt clauses.
    ///
    /// The clause arena is compacted in place (no clause is cloned) and the
    /// watch lists are **patched through the `remap` table** instead of
    /// being rebuilt from scratch: every surviving watcher entry keeps its
    /// list position with its index rewritten, removed clauses' entries are
    /// dropped. This preserves the watch invariant (each clause is watched
    /// by `!lits[0]` and `!lits[1]`, which propagation maintains at
    /// positions 0/1) without touching the untouched majority of lists.
    fn reduce_learnts(&mut self) {
        let mut acts: Vec<f64> = self
            .clauses
            .iter()
            .filter(|c| c.learnt && c.lits.len() > 2)
            .map(|c| c.activity)
            .collect();
        if acts.len() < 2 {
            return;
        }
        acts.sort_by(|a, b| a.partial_cmp(b).expect("finite activities"));
        let threshold = acts[acts.len() / 2];
        let mut locked: Vec<u32> = self
            .trail
            .iter()
            .map(|l| self.reason[l.var().index()])
            .filter(|&r| r != CLAUSE_NONE)
            .collect();
        locked.sort_unstable();
        // Compact kept clauses to the front (a swap moves each already
        // rejected clause into a slot that has been examined before), and
        // record old → new indices in `remap`.
        let mut remap = vec![CLAUSE_NONE; self.clauses.len()];
        let mut write = 0usize;
        // Index loop: the body swaps within `self.clauses`, which an
        // iterator borrow would forbid.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.clauses.len() {
            let keep = {
                let c = &self.clauses[i];
                !c.learnt
                    || c.lits.len() <= 2
                    || c.activity >= threshold
                    || locked.binary_search(&(i as u32)).is_ok()
            };
            if keep {
                remap[i] = write as u32;
                if write != i {
                    self.clauses.swap(write, i);
                }
                write += 1;
            }
        }
        self.clauses.truncate(write);
        self.num_learnts = self.clauses.iter().filter(|c| c.learnt).count();
        self.reductions += 1;
        for w in &mut self.watches {
            w.retain_mut(|ci| match remap[*ci as usize] {
                CLAUSE_NONE => false,
                new => {
                    *ci = new;
                    true
                }
            });
        }
        for r in &mut self.reason {
            if *r != CLAUSE_NONE {
                *r = remap[*r as usize];
                debug_assert_ne!(*r, CLAUSE_NONE, "locked reason clause was removed");
            }
        }
    }

    /// Solve the formula.
    pub fn solve(&mut self) -> SatResult {
        self.solve_with_assumptions(&[])
    }

    /// Solve under the given assumption literals (forced at decision levels
    /// before any free decisions).
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SatResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unbounded solve always decides")
    }

    /// Solve under assumptions with a conflict budget. Returns `None` when
    /// the budget is exhausted before a verdict (the query is *unknown*;
    /// clauses learnt so far are retained, so retrying is cheaper).
    ///
    /// This is the workhorse of SAT sweeping: candidate equivalences get a
    /// small budget, and the rare hard pairs are deferred instead of
    /// blocking the sweep.
    pub fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SatResult> {
        if !self.ok {
            return Some(SatResult::Unsat);
        }
        self.cancel_until(0);
        let mut restarts = 0u32;
        let mut remaining = max_conflicts;
        loop {
            if remaining == 0 {
                self.cancel_until(0);
                return None;
            }
            let budget = (luby(restarts) * 256).min(remaining);
            match self.search(assumptions, budget) {
                Some(result) => {
                    if result == SatResult::Unsat {
                        self.cancel_until(0);
                    }
                    return Some(result);
                }
                None => {
                    remaining -= budget;
                    restarts += 1;
                    self.cancel_until(0);
                }
            }
        }
    }

    /// Run CDCL until `budget` conflicts; `None` means restart.
    fn search(&mut self, assumptions: &[Lit], budget: u64) -> Option<SatResult> {
        let mut conflicts_here = 0u64;
        loop {
            let conflict = self.propagate();
            if conflict != CLAUSE_NONE {
                self.conflicts += 1;
                conflicts_here += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return Some(SatResult::Unsat);
                }
                let (learnt, backjump) = self.analyze(conflict);
                // Never backjump into the assumption prefix unless forced.
                self.cancel_until(backjump);
                if learnt.len() == 1 {
                    self.cancel_until(0);
                    if self.lit_value(learnt[0]) == -1 {
                        self.ok = false;
                        return Some(SatResult::Unsat);
                    }
                    if self.lit_value(learnt[0]) == 0 {
                        self.unchecked_enqueue(learnt[0], CLAUSE_NONE);
                    }
                } else {
                    let ci = self.attach_clause(learnt.clone(), true);
                    self.unchecked_enqueue(learnt[0], ci);
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if conflicts_here >= budget {
                    return None; // restart
                }
                let limit = self
                    .reduce_limit
                    .unwrap_or_else(|| 4000 + self.num_vars() * 4);
                if self.num_learnts > limit {
                    self.reduce_learnts();
                }
                continue;
            }
            // Assumption handling: force the next unassigned assumption.
            let mut decided = false;
            for &a in assumptions {
                match self.lit_value(a) {
                    -1 => return Some(SatResult::Unsat),
                    0 => {
                        self.trail_lim.push(self.trail.len());
                        self.unchecked_enqueue(a, CLAUSE_NONE);
                        decided = true;
                        break;
                    }
                    _ => {}
                }
            }
            if decided {
                continue;
            }
            // Free decision.
            match self.pick_branch_var() {
                None => return Some(SatResult::Sat),
                Some(v) => {
                    self.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let lit = v.lit(!self.phase[v.index()]);
                    self.unchecked_enqueue(lit, CLAUSE_NONE);
                }
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…), MiniSat's formulation.
fn luby(x: u32) -> u64 {
    let mut x = x as u64;
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sat_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause(&[a.positive()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(a), Some(true));

        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause(&[a.positive()]);
        assert!(!s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn three_sat_instance() {
        // (a|b|c)(!a|b)(!b|c)(!c|!a): satisfiable.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        s.add_clause(&[c.negative(), a.negative()]);
        assert_eq!(s.solve(), SatResult::Sat);
        // Verify the model satisfies every clause.
        let va = s.value(a).unwrap();
        let vb = s.value(b).unwrap();
        let vc = s.value(c).unwrap();
        assert!(va || vb || vc);
        assert!(!va || vb);
        assert!(!vb || vc);
        assert!(!vc || !va);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: classic small UNSAT instance.
        let mut s = Solver::new();
        let mut p = [[Var(0); 2]; 3];
        for pi in p.iter_mut() {
            for h in pi.iter_mut() {
                *h = s.new_var();
            }
        }
        for pi in &p {
            s.add_clause(&[pi[0].positive(), pi[1].positive()]);
        }
        // `h` indexes the second dimension, so a range loop is clearest.
        #[allow(clippy::needless_range_loop)]
        for h in 0..2 {
            for i in 0..3 {
                for j in (i + 1)..3 {
                    s.add_clause(&[p[i][h].negative(), p[j][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn assumptions() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]); // a -> b
        assert_eq!(s.solve_with_assumptions(&[a.positive()]), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert_eq!(
            s.solve_with_assumptions(&[a.positive(), b.negative()]),
            SatResult::Unsat
        );
        // Solver stays usable after an assumption-UNSAT.
        assert_eq!(s.solve(), SatResult::Sat);
    }

    #[test]
    fn random_instances_agree_with_brute_force() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(123);
        for round in 0..60 {
            let nvars = 6;
            let nclauses = rng.gen_range(4..24);
            let mut clauses: Vec<Vec<(usize, bool)>> = Vec::new();
            for _ in 0..nclauses {
                let len = rng.gen_range(1..=3);
                let mut cl = Vec::new();
                for _ in 0..len {
                    cl.push((rng.gen_range(0..nvars), rng.gen()));
                }
                clauses.push(cl);
            }
            // Brute force.
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, neg)| (m >> v & 1 == 1) != neg) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            // Solver.
            let mut s = Solver::new();
            let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
            for cl in &clauses {
                let lits: Vec<Lit> = cl.iter().map(|&(v, neg)| vars[v].lit(neg)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve() == SatResult::Sat;
            assert_eq!(got, brute_sat, "round {round}: clauses {clauses:?}");
        }
    }

    #[test]
    fn incremental_clause_adds_between_solves() {
        // Narrow the same formula across solves; clauses added after a Sat
        // answer must take effect without rebuilding the solver.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[a.positive(), b.positive()]);
        assert_eq!(s.solve(), SatResult::Sat);
        assert!(s.add_clause(&[a.negative()]));
        assert_eq!(s.solve(), SatResult::Sat);
        assert_eq!(s.value(b), Some(true));
        assert!(!s.add_clause(&[b.negative()]));
        assert_eq!(s.solve(), SatResult::Unsat);
    }

    #[test]
    fn solve_limited_exhausts_budget_and_stays_usable() {
        // A pigeonhole instance needing many conflicts: with a tiny budget
        // the query is unknown, and the solver stays usable for an
        // unbounded retry that benefits from the retained learnt clauses.
        let mut s = Solver::new();
        let mut p = [[Var(0); 3]; 4];
        for pi in p.iter_mut() {
            for h in pi.iter_mut() {
                *h = s.new_var();
            }
        }
        for pi in &p {
            s.add_clause(&[pi[0].positive(), pi[1].positive(), pi[2].positive()]);
        }
        #[allow(clippy::needless_range_loop)]
        for h in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    s.add_clause(&[p[i][h].negative(), p[j][h].negative()]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[], 1), None, "1 conflict cannot refute");
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(SatResult::Unsat));
    }

    /// Build the pigeonhole instance `pigeons → holes` (UNSAT when
    /// `pigeons > holes`, and needs many conflicts to refute).
    fn pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let p: Vec<Vec<Var>> = (0..pigeons)
            .map(|_| (0..holes).map(|_| s.new_var()).collect())
            .collect();
        for pi in &p {
            let all: Vec<Lit> = pi.iter().map(|v| v.positive()).collect();
            s.add_clause(&all);
        }
        // `h` indexes the second dimension, so a range loop is clearest.
        #[allow(clippy::needless_range_loop)]
        for h in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause(&[p[i][h].negative(), p[j][h].negative()]);
                }
            }
        }
    }

    /// In-place watch-list patching: a reduction in the middle of a
    /// `solve_limited` run must not change any verdict. A tiny reduce
    /// limit forces reductions constantly; the pigeonhole refutation and a
    /// seeded batch of random instances must agree with brute force, and
    /// the solver must stay usable incrementally afterwards.
    #[test]
    fn reduce_learnts_mid_solve_keeps_verdicts() {
        // Deterministic hard case: PHP(6, 5) needs far more conflicts than
        // the limit, so reductions definitely fire mid-solve.
        let mut s = Solver::new();
        s.set_reduce_limit(Some(10));
        pigeonhole(&mut s, 6, 5);
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(SatResult::Unsat));
        assert!(s.reductions > 0, "tiny limit must force reductions");

        // Random instances: verdicts must match brute force with reductions
        // firing along the way.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut total_reductions = 0u64;
        for round in 0..40 {
            let nvars = 9;
            let nclauses = rng.gen_range(20..45);
            let clauses: Vec<Vec<(usize, bool)>> = (0..nclauses)
                .map(|_| {
                    (0..rng.gen_range(2..=3))
                        .map(|_| (rng.gen_range(0..nvars), rng.gen()))
                        .collect()
                })
                .collect();
            let mut brute_sat = false;
            'outer: for m in 0..(1u32 << nvars) {
                for cl in &clauses {
                    if !cl.iter().any(|&(v, neg)| (m >> v & 1 == 1) != neg) {
                        continue 'outer;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = Solver::new();
            s.set_reduce_limit(Some(6));
            let vars: Vec<Var> = (0..nvars).map(|_| s.new_var()).collect();
            for cl in &clauses {
                let lits: Vec<Lit> = cl.iter().map(|&(v, neg)| vars[v].lit(neg)).collect();
                s.add_clause(&lits);
            }
            let got = s.solve_limited(&[], u64::MAX);
            assert_eq!(
                got,
                Some(if brute_sat {
                    SatResult::Sat
                } else {
                    SatResult::Unsat
                }),
                "round {round}"
            );
            // Incremental use after reductions must stay sound: force the
            // first variable both ways under assumptions.
            if brute_sat {
                let a = s.solve_with_assumptions(&[vars[0].positive()]);
                let b = s.solve_with_assumptions(&[vars[0].negative()]);
                assert!(
                    a == SatResult::Sat || b == SatResult::Sat,
                    "round {round}: some phase of v0 must extend a model"
                );
            }
            total_reductions += s.reductions;
        }
        // Reductions are not guaranteed on every small instance; the
        // PHP(6,5) case above already pins a mid-solve reduction, so here
        // it is enough that the batch's verdicts all agreed (asserted per
        // round) regardless of how often reductions fired.
        let _ = total_reductions;
    }

    #[test]
    fn luby_sequence() {
        let expected = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }
}
