//! SAT sweeping as a first-class optimization pass.
//!
//! The structural passes in `xsfq-aig` cannot see functionally equivalent
//! cones with different structure; [`fraig`](crate::sweep::fraig) can. This
//! module wraps the sweep as an [`xsfq_aig::pass::Pass`] so scripts can
//! schedule it (`"standard; f"`), and [`register`] adds it to a
//! [`PassRegistry`] under `f` / `fraig` — `xsfq_core::flow_registry` calls
//! that for the synthesis flow.

use xsfq_aig::pass::{Pass, PassCtx, PassRegistry, ScriptError};
use xsfq_aig::Aig;

use crate::sweep::{fraig_with_stats, SweepOptions};

/// The SAT-sweeping (`fraig`) pass: merge proven-equivalent nodes, keeping
/// the result only when it is strictly smaller than its input (sweeping
/// never helps when nothing merges, and the flow's legacy `fraig(true)`
/// knob had exactly this accept rule).
#[derive(Default, Debug, Clone)]
pub struct FraigPass {
    opts: SweepOptions,
}

impl FraigPass {
    /// Pass with default sweep options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pass with explicit sweep options.
    pub fn with_options(opts: SweepOptions) -> Self {
        FraigPass { opts }
    }
}

impl Pass for FraigPass {
    fn name(&self) -> &str {
        "f"
    }

    fn run(&self, aig: &Aig, ctx: &mut PassCtx) -> Aig {
        // Thread the job's cancellation token into the sweep so a cancelled
        // job escapes a long proving round at a class boundary.
        let mut opts = self.opts.clone();
        opts.cancel = ctx.token().clone();
        let (swept, stats) = fraig_with_stats(aig, &opts);
        ctx.add_commits(stats.proved as u64);
        if swept.num_ands() < aig.num_ands() {
            swept
        } else {
            aig.clone()
        }
    }
}

/// Register the `f` / `fraig` pass (no arguments) in `registry`.
pub fn register(registry: &mut PassRegistry) {
    registry.register(&["f", "fraig"], |args| {
        if !args.is_empty() {
            return Err(ScriptError::BadArgs {
                pass: "f".to_string(),
                msg: format!("takes no arguments, got {args:?}"),
            });
        }
        Ok(Box::new(FraigPass::new()))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_aig::pass::Script;
    use xsfq_exec::ThreadPool;

    /// Duplicated xor/mux cones the structural passes cannot share.
    fn duplicated() -> Aig {
        let mut g = Aig::new("dup");
        let a = g.input("a");
        let b = g.input("b");
        let x1 = g.xor(a, b);
        let x2 = g.mux(a, !b, b);
        g.output("x1", x1);
        g.output("x2", x2);
        g
    }

    #[test]
    fn fraig_runs_as_scripted_pass() {
        let g = duplicated();
        let mut reg = PassRegistry::structural();
        register(&mut reg);
        let compiled = Script::parse("c; f").unwrap().compile(&reg).unwrap();
        let mut ctx = PassCtx::new(ThreadPool::global());
        let out = compiled.run(&g, &mut ctx);
        assert!(out.num_ands() < g.num_ands(), "sweep must merge the cones");
        let stats = ctx.telemetry();
        assert_eq!(stats[1].name, "f");
        assert!(stats[1].commits > 0, "proved merges are the commit count");
        assert!(
            crate::check_equivalence(&g, &out).is_equivalent(),
            "fraig pass broke the function"
        );
    }

    #[test]
    fn fraig_rejects_arguments() {
        let mut reg = PassRegistry::structural();
        register(&mut reg);
        assert!(matches!(
            Script::parse("f -K 4").unwrap().compile(&reg),
            Err(ScriptError::BadArgs { .. })
        ));
    }
}
