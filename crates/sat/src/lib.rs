//! # xsfq-sat — SAT solving and equivalence checking
//!
//! A self-contained CDCL SAT solver ([`Solver`]) plus combinational
//! equivalence checking of AND-Inverter graphs ([`cec`]). In the paper's
//! toolchain this role is played by ABC's `cec`; here it verifies every
//! optimization and technology-mapping step of the xSFQ flow.
//!
//! ```
//! use xsfq_aig::{Aig, build, opt, Lit};
//! use xsfq_sat::cec;
//!
//! let mut adder = Aig::new("adder");
//! let a = adder.input_word("a", 3);
//! let b = adder.input_word("b", 3);
//! let (s, c) = build::ripple_add(&mut adder, &a, &b, Lit::FALSE);
//! adder.output_word("s", &s);
//! adder.output("c", c);
//!
//! let optimized = opt::optimize(&adder, opt::Effort::Standard);
//! assert!(cec::equivalent(&adder, &optimized));
//! ```

#![warn(missing_docs)]

pub mod cec;
mod solver;

pub use cec::{check_equivalence, equivalent, EquivResult};
pub use solver::{Lit, SatResult, Solver, Var};
