//! # xsfq-sat — SAT solving and equivalence checking
//!
//! A self-contained incremental CDCL SAT solver ([`Solver`]), combinational
//! equivalence checking of AND-Inverter graphs ([`cec`]), and the
//! simulation-guided SAT-sweeping engine ([`sweep`]) that powers both the
//! default CEC path and the `fraig` optimization pass. In the paper's
//! toolchain this role is played by ABC's `cec`/`fraig`; here it verifies
//! every optimization and technology-mapping step of the xSFQ flow.
//!
//! ```
//! use xsfq_aig::{Aig, build, opt, Lit};
//! use xsfq_sat::cec;
//!
//! let mut adder = Aig::new("adder");
//! let a = adder.input_word("a", 3);
//! let b = adder.input_word("b", 3);
//! let (s, c) = build::ripple_add(&mut adder, &a, &b, Lit::FALSE);
//! adder.output_word("s", &s);
//! adder.output("c", c);
//!
//! let optimized = opt::optimize(&adder, opt::Effort::Standard);
//! assert!(cec::equivalent(&adder, &optimized));
//! ```

#![warn(missing_docs)]

pub mod cec;
pub mod pass;
mod solver;
pub mod sweep;

pub use cec::{check_equivalence, check_equivalence_monolithic, equivalent, EquivResult};
pub use pass::FraigPass;
pub use solver::{Lit, SatResult, Solver, Var};
pub use sweep::{check_equivalence_swept, fraig, fraig_with_stats, SweepOptions, SweepStats};
