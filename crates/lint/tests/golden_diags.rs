//! Golden-diagnostic fixtures: one deliberately corrupted netlist per lint
//! code, each asserting the exact code and site the checker reports — the
//! contract that keeps the codes stable across refactors.

use xsfq_aig::Aig;
use xsfq_cells::{CellKind, CellLibrary};
use xsfq_lint::{lint_aig, lint_netlist, lint_timing, Code, Diag, NetlistProfile, Severity, Site};
use xsfq_netlist::{CellId, Netlist, PinVec};

fn codes(diags: &[Diag]) -> Vec<(Code, Site)> {
    diags.iter().map(|d| (d.code, d.site.clone())).collect()
}

#[test]
fn x001_unconnected_deferred_pin() {
    let mut n = Netlist::new("x001", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let (cell, outs) = n.add_cell_deferred(CellKind::La);
    n.connect_input(cell, 0, a);
    n.add_output("y", outs[0]);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X001, Site::Cell(0))],
        "{diags:?}"
    );
    assert_eq!(diags[0].severity, Severity::Error);
}

#[test]
fn x002_pin_count_mismatch() {
    let mut n = Netlist::new("x002", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let q = n.add_cell(CellKind::La, &[a, b]);
    n.add_output("y", q[0]);
    // The ordinary constructors enforce arity, so corrupt the cell through
    // the test backdoor: an LA with a single input pin.
    n.corrupt_cell_for_tests(CellId::from_index(0)).inputs = PinVec::from_slice(&[a]);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X002, Site::Cell(0))],
        "{diags:?}"
    );
}

#[test]
fn x003_combinational_cycle() {
    let mut n = Netlist::new("x003", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let (la1, la1_out) = n.add_cell_deferred(CellKind::La);
    let la2_out = n.add_cell(CellKind::La, &[la1_out[0], a]);
    n.connect_input(la1, 0, la2_out[0]);
    n.connect_input(la1, 1, b);
    n.add_output("y", la2_out[0]);
    let mut got = codes(&lint_netlist(&n, NetlistProfile::Logical));
    got.sort_by_key(|(_, s)| match s {
        Site::Cell(i) => *i,
        _ => usize::MAX,
    });
    assert_eq!(
        got,
        vec![(Code::X003, Site::Cell(0)), (Code::X003, Site::Cell(1))]
    );
}

#[test]
fn x004_multi_sink_net_in_physical_netlist() {
    let mut n = Netlist::new("x004", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let q = n.add_cell(CellKind::La, &[a, b]);
    n.add_output("y", q[0]);
    n.add_output("z", q[0]);
    // Fine as a logical netlist — splitters come later …
    assert!(lint_netlist(&n, NetlistProfile::Logical).is_empty());
    // … but illegal once claimed physical.
    let diags = lint_netlist(&n, NetlistProfile::Physical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X004, Site::Net(q[0].index()))],
        "{diags:?}"
    );
}

#[test]
fn x005_unpaired_dual_rail_output() {
    let mut n = Netlist::new("x005", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    n.add_output("x_p", a);
    n.add_output("x_n", b);
    n.add_output("y_p", c);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X005, Site::Port("y_p".into()))],
        "{diags:?}"
    );
}

#[test]
fn x006_preloaded_droc_never_triggered() {
    let mut n = Netlist::new("x006", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let q = n.add_cell(CellKind::Droc { preload: true }, &[a]);
    n.add_output("qp", q[0]);
    n.add_output("qn", q[1]);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X006, Site::Cell(0))],
        "{diags:?}"
    );
    assert!(
        diags[0].message.contains("never trigger-clocked"),
        "{diags:?}"
    );
}

#[test]
fn x006_droc_on_wrong_rank_parity() {
    // A plain DROC straight off the inputs sits on rank boundary 1, which
    // §3.2 requires to be preloaded.
    let mut n = Netlist::new("x006b", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let q = n.add_cell(CellKind::Droc { preload: false }, &[a]);
    n.add_output("qp", q[0]);
    n.add_output("qn", q[1]);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X006, Site::Cell(0))],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("rank boundary 1"), "{diags:?}");
}

#[test]
fn x007_splitter_flavor_mismatch() {
    let mut n = Netlist::new("x007", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let q = n.add_cell(CellKind::La, &[a, b]);
    let s = n.add_cell(CellKind::RsfqSplitter, &[q[0]]);
    n.add_output("y", s[0]);
    n.add_output("z", s[1]);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::X007, Site::Cell(1))],
        "{diags:?}"
    );
}

#[test]
fn x007_family_mixing() {
    let mut n = Netlist::new("x007b", CellLibrary::rsfq());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let q = n.add_cell(CellKind::RsfqAnd, &[a, b]);
    let r = n.add_cell(CellKind::La, &[q[0], a]);
    n.add_output("y", r[0]);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(codes(&diags), vec![(Code::X007, Site::Design)], "{diags:?}");
}

#[test]
fn x008_duplicate_and_shadowing_ports() {
    let mut n = Netlist::new("x008", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    n.add_input("a");
    n.add_output("y", a);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(codes(&diags), vec![(Code::X008, Site::Port("a".into()))]);

    let mut n = Netlist::new("x008b", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    n.add_output("a", a);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(codes(&diags), vec![(Code::X008, Site::Port("a".into()))]);
    assert!(diags[0].message.contains("shadows"), "{diags:?}");
}

#[test]
fn w101_dead_cell() {
    let mut n = Netlist::new("w101", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    n.add_cell(CellKind::La, &[a, b]);
    n.add_output("y", a);
    let diags = lint_netlist(&n, NetlistProfile::Logical);
    assert_eq!(
        codes(&diags),
        vec![(Code::W101, Site::Cell(0))],
        "{diags:?}"
    );
    assert_eq!(diags[0].severity, Severity::Warning);
}

#[test]
fn w102_chained_splitter_tree() {
    let mut n = Netlist::new("w102", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let s1 = n.add_cell(CellKind::Splitter, &[a]);
    let s2 = n.add_cell(CellKind::Splitter, &[s1[0]]);
    let s3 = n.add_cell(CellKind::Splitter, &[s2[0]]);
    n.add_output("o1", s1[1]);
    n.add_output("o2", s2[1]);
    n.add_output("o3", s3[0]);
    n.add_output("o4", s3[1]);
    let diags = lint_netlist(&n, NetlistProfile::Physical);
    assert_eq!(
        codes(&diags),
        vec![(Code::W102, Site::Cell(0))],
        "{diags:?}"
    );
}

#[test]
fn clean_netlists_stay_clean() {
    // Hand-built well-formed netlist, logical and physical.
    let mut n = Netlist::new("clean", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let q = n.add_cell(CellKind::La, &[a, b]);
    n.add_output("y", q[0]);
    assert!(lint_netlist(&n, NetlistProfile::Logical).is_empty());
    assert!(lint_netlist(&n, NetlistProfile::Physical).is_empty());
    // Splitter insertion keeps it clean under the physical profile.
    let mut fan = Netlist::new("fan", CellLibrary::xsfq_abutted());
    let a = fan.add_input("a");
    let b = fan.add_input("b");
    let q = fan.add_cell(CellKind::La, &[a, b]);
    for i in 0..5 {
        fan.add_output(format!("y{i}"), q[0]);
    }
    let phys = fan.insert_splitters();
    assert!(lint_netlist(&phys, NetlistProfile::Physical).is_empty());
}

#[test]
fn aig_port_collisions_and_validation() {
    let mut g = Aig::new("dup");
    let a = g.input("a");
    let b = g.input("b");
    let x = g.and(a, b);
    g.output("y", x);
    g.output("y", a);
    let diags = lint_aig(&g);
    assert_eq!(codes(&diags), vec![(Code::X008, Site::Port("y".into()))]);

    let mut g = Aig::new("shadow");
    let a = g.input("a");
    g.output("a", a);
    let diags = lint_aig(&g);
    assert_eq!(codes(&diags), vec![(Code::X008, Site::Port("a".into()))]);
    assert!(diags[0].message.contains("shadows"), "{diags:?}");

    let mut g = Aig::new("ok");
    let a = g.input("a");
    let b = g.input("b");
    let x = g.and(a, b);
    g.output("y", x);
    assert!(lint_aig(&g).is_empty());
    assert!(g.validate().is_empty());
}

#[test]
fn x011_residual_arrival_skew() {
    // Join skew: an LA chain where one input of cell 1 lags by a full LA
    // delay (7.2 ps > the 4.6 ps JTL tolerance).
    let mut n = Netlist::new("x011", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let la1 = n.add_cell(CellKind::La, &[a, b]);
    let la2 = n.add_cell(CellKind::La, &[la1[0], c]);
    n.add_output("y", la2[0]);
    let tol = n.library().delay(CellKind::Jtl);
    let diags = lint_timing(&n, tol);
    assert_eq!(
        codes(&diags),
        vec![(Code::X011, Site::Cell(1))],
        "{diags:?}"
    );
    assert_eq!(diags[0].severity, Severity::Error);

    // Dual-rail output skew: `y_p` goes straight out, `y_n` through two
    // JTLs (9.2 ps apart > 4.6 ps tolerance) — flagged at the `_p` port.
    let mut n = Netlist::new("x011-rails", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let sp = n.add_cell(CellKind::Splitter, &[a]);
    let j1 = n.add_cell(CellKind::Jtl, &[sp[1]]);
    let j2 = n.add_cell(CellKind::Jtl, &[j1[0]]);
    n.add_output("y_p", sp[0]);
    n.add_output("y_n", j2[0]);
    n.add_output("z", b);
    let diags = lint_timing(&n, tol);
    assert_eq!(
        codes(&diags),
        vec![(Code::X011, Site::Port("y_p".into()))],
        "{diags:?}"
    );

    // Balancing clears both findings.
    use xsfq_timing::{balance_netlist, TimingOptions};
    let mut n = Netlist::new("x011-fixed", CellLibrary::xsfq_abutted());
    let a = n.add_input("a");
    let b = n.add_input("b");
    let c = n.add_input("c");
    let la1 = n.add_cell(CellKind::La, &[a, b]);
    let la2 = n.add_cell(CellKind::La, &[la1[0], c]);
    n.add_output("y", la2[0]);
    let balanced = balance_netlist(&n, &TimingOptions::default(), None)
        .netlist
        .expect("skewed join gets a pad");
    assert!(lint_timing(&balanced, tol).is_empty());
}
