//! The analyzers: netlist design-rule checks X001–X008 / W101–W102, the
//! AIG invariant wrapper (X009) and the cut-arena audit (X010).
//!
//! Every check is written to be total over *corrupted* netlists — the
//! whole point is to diagnose structures the ordinary constructors refuse
//! to build, so nothing here may index past a table or panic.

use std::collections::{HashMap, HashSet};

use xsfq_aig::cuts::CutArena;
use xsfq_aig::Aig;
use xsfq_cells::CellKind;
use xsfq_netlist::{input_pins, output_pins, Driver, NetId, Netlist};

use crate::diag::{Code, Diag, Site};

/// Which invariant set applies: logical netlists may still have multi-sink
/// nets (splitter insertion comes later); physical netlists may not.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum NetlistProfile {
    /// Pre-splitter-insertion: X004/W102 do not apply.
    Logical,
    /// Post-splitter-insertion: every net drives at most one sink.
    Physical,
}

/// Run every applicable design-rule check over a netlist.
pub fn lint_netlist(n: &Netlist, profile: NetlistProfile) -> Vec<Diag> {
    let mut out = Vec::new();
    check_connectivity(n, &mut out);
    check_pin_counts(n, &mut out);
    check_cycles(n, &mut out);
    if profile == NetlistProfile::Physical {
        check_fanout(n, &mut out);
    }
    check_dual_rail(n, &mut out);
    check_ranks(n, &mut out);
    check_style(n, &mut out);
    check_ports(n, &mut out);
    check_dead_cells(n, &mut out);
    if profile == NetlistProfile::Physical {
        check_splitter_balance(n, &mut out);
    }
    out
}

/// Validate an AIG: structural invariants ([`Aig::validate`], X009) plus
/// port-name collisions (X008) — the checks `xsfq-serve` runs at admission.
pub fn lint_aig(aig: &Aig) -> Vec<Diag> {
    let mut out = Vec::new();
    for defect in aig.validate() {
        let site = defect.node.map(Site::Node).unwrap_or(Site::Design);
        out.push(Diag::new(Code::X009, site, defect.detail));
    }
    let mut seen_in: HashMap<&str, usize> = HashMap::new();
    for i in 0..aig.num_inputs() {
        let name = aig.input_name(i);
        if seen_in.insert(name, i).is_some() {
            out.push(Diag::new(
                Code::X008,
                Site::Port(name.to_string()),
                format!("duplicate input port name `{name}`"),
            ));
        }
    }
    let mut seen_out: HashSet<&str> = HashSet::new();
    for o in aig.outputs() {
        if !seen_out.insert(&o.name) {
            out.push(Diag::new(
                Code::X008,
                Site::Port(o.name.clone()),
                format!("duplicate output port name `{}`", o.name),
            ));
        } else if seen_in.contains_key(o.name.as_str()) {
            out.push(Diag::new(
                Code::X008,
                Site::Port(o.name.clone()),
                format!("output port `{}` shadows an input port", o.name),
            ));
        }
    }
    out
}

/// Audit the CSR cut arena (X010). See `CutArena::check_integrity`.
pub fn lint_cut_arena(arena: &CutArena) -> Vec<Diag> {
    match arena.check_integrity() {
        Ok(()) => Vec::new(),
        Err(msg) => vec![Diag::new(Code::X010, Site::Design, msg)],
    }
}

// ---------------------------------------------------------------------------
// X001 — connectivity
// ---------------------------------------------------------------------------

fn check_connectivity(n: &Netlist, out: &mut Vec<Diag>) {
    for (cell, pin) in n.unconnected_pins() {
        let kind = n.cell(cell).kind;
        out.push(Diag::new(
            Code::X001,
            Site::Cell(cell.index()),
            format!(
                "cell {} ({kind}) input pin {pin} is unconnected",
                cell.index()
            ),
        ));
    }
    for port in n.outputs() {
        if port.net.index() >= n.num_nets() {
            out.push(Diag::new(
                Code::X001,
                Site::Port(port.name.clone()),
                format!(
                    "output port `{}` is attached to a nonexistent net",
                    port.name
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// X002 — pin arity
// ---------------------------------------------------------------------------

fn check_pin_counts(n: &Netlist, out: &mut Vec<Diag>) {
    for (ci, cell) in n.cells().iter().enumerate() {
        let want_in = input_pins(cell.kind);
        let want_out = output_pins(cell.kind);
        if cell.inputs.len() != want_in {
            out.push(Diag::new(
                Code::X002,
                Site::Cell(ci),
                format!(
                    "cell {ci} ({}) has {} input pins, its kind takes {want_in}",
                    cell.kind,
                    cell.inputs.len()
                ),
            ));
        }
        if cell.outputs.len() != want_out {
            out.push(Diag::new(
                Code::X002,
                Site::Cell(ci),
                format!(
                    "cell {ci} ({}) has {} output pins, its kind drives {want_out}",
                    cell.kind,
                    cell.outputs.len()
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// X003 — combinational cycles
// ---------------------------------------------------------------------------

/// Kahn-style resolution mirroring `NetlistStats::path_analysis`: nets
/// driven by inputs or clocked cells start known; a clock-free cell
/// resolves when all its (connected) inputs are known. Clock-free cells
/// left unresolved sit on a cycle with no storage element in it.
fn check_cycles(n: &Netlist, out: &mut Vec<Diag>) {
    let num_nets = n.num_nets();
    let cells = n.cells();
    let mut pending: Vec<usize> = cells
        .iter()
        .map(|c| {
            if c.kind.is_clocked() {
                0
            } else {
                c.inputs.iter().filter(|x| x.index() < num_nets).count()
            }
        })
        .collect();
    let mut listeners: Vec<Vec<u32>> = vec![Vec::new(); num_nets];
    let mut cell_queue: Vec<usize> = Vec::new();
    for (ci, c) in cells.iter().enumerate() {
        if c.kind.is_clocked() {
            continue;
        }
        for &x in c.inputs.iter() {
            if x.index() < num_nets {
                listeners[x.index()].push(ci as u32);
            }
        }
        if pending[ci] == 0 {
            cell_queue.push(ci);
        }
    }
    let mut net_queue: Vec<usize> = (0..num_nets)
        .filter(|&ni| match n.driver(NetId::from_index(ni)) {
            Driver::Input(_) => true,
            Driver::Cell { cell, .. } => {
                cell.index() < cells.len() && cells[cell.index()].kind.is_clocked()
            }
        })
        .collect();
    let mut known = vec![false; num_nets];
    for &ni in &net_queue {
        known[ni] = true;
    }
    loop {
        while let Some(ci) = cell_queue.pop() {
            for &o in cells[ci].outputs.iter() {
                if o.index() < num_nets && !known[o.index()] {
                    known[o.index()] = true;
                    net_queue.push(o.index());
                }
            }
        }
        let Some(ni) = net_queue.pop() else { break };
        for &ci in &listeners[ni] {
            let ci = ci as usize;
            pending[ci] -= 1;
            if pending[ci] == 0 {
                cell_queue.push(ci);
            }
        }
    }
    for (ci, c) in cells.iter().enumerate() {
        if !c.kind.is_clocked() && pending[ci] > 0 {
            out.push(Diag::new(
                Code::X003,
                Site::Cell(ci),
                format!(
                    "cell {ci} ({}) sits on a combinational cycle with no storage element",
                    c.kind
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// X004 — single-sink nets (physical profile)
// ---------------------------------------------------------------------------

/// Bounds-checked sink tally — `Netlist::fanout_counts` assumes every pin
/// is connected, which a corrupted netlist may violate.
fn sink_counts(n: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; n.num_nets()];
    for cell in n.cells() {
        for &x in cell.inputs.iter() {
            if let Some(c) = counts.get_mut(x.index()) {
                *c += 1;
            }
        }
    }
    for port in n.outputs() {
        if let Some(c) = counts.get_mut(port.net.index()) {
            *c += 1;
        }
    }
    counts
}

fn check_fanout(n: &Netlist, out: &mut Vec<Diag>) {
    for (ni, &count) in sink_counts(n).iter().enumerate() {
        if count > 1 {
            out.push(Diag::new(
                Code::X004,
                Site::Net(ni),
                format!(
                    "net {ni} drives {count} sinks in a physical netlist — \
                     SFQ pulses cannot fan out without a splitter"
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// X005 — dual-rail output pairing
// ---------------------------------------------------------------------------

/// Applies only when the output interface *is* dual-rail — i.e. every
/// output carries a `_p`/`_n` rail suffix, as the dual-rail mapper emits.
/// Single-rail polarity modes leave names unsuffixed and are exempt.
fn check_dual_rail(n: &Netlist, out: &mut Vec<Diag>) {
    let names: Vec<&str> = n.outputs().iter().map(|p| p.name.as_str()).collect();
    if names.is_empty() || !names.iter().all(|s| s.ends_with("_p") || s.ends_with("_n")) {
        return;
    }
    let set: HashSet<&str> = names.iter().copied().collect();
    for name in names {
        let (stem, suffix) = name.split_at(name.len() - 2);
        let twin_suffix = if suffix == "_p" { "_n" } else { "_p" };
        let twin = format!("{stem}{twin_suffix}");
        if !set.contains(twin.as_str()) {
            out.push(Diag::new(
                Code::X005,
                Site::Port(name.to_string()),
                format!("dual-rail output `{name}` is missing its `{twin}` rail"),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// X006 — rank legality
// ---------------------------------------------------------------------------

/// Forward rank propagation: a net's rank is the number of DROC boundaries
/// on its path from the inputs. Cells on feedback paths (through storage,
/// e.g. mapped latches) never resolve and are skipped — their legality is
/// covered by the sequential mapper's own construction.
fn check_ranks(n: &Netlist, out: &mut Vec<Diag>) {
    let num_nets = n.num_nets();
    let cells = n.cells();
    let mut rank = vec![0u32; num_nets];
    let mut pending: Vec<usize> = cells
        .iter()
        .map(|c| c.inputs.iter().filter(|x| x.index() < num_nets).count())
        .collect();
    let mut listeners: Vec<Vec<u32>> = vec![Vec::new(); num_nets];
    let mut cell_queue: Vec<usize> = Vec::new();
    for (ci, c) in cells.iter().enumerate() {
        for &x in c.inputs.iter() {
            if x.index() < num_nets {
                listeners[x.index()].push(ci as u32);
            }
        }
        if pending[ci] == 0 {
            cell_queue.push(ci);
        }
    }
    let mut net_queue: Vec<usize> = (0..num_nets)
        .filter(|&ni| matches!(n.driver(NetId::from_index(ni)), Driver::Input(_)))
        .collect();
    // `in_rank[ci] = Some(r)` once every connected input of cell `ci`
    // resolved with maximum rank `r`.
    let mut in_rank: Vec<Option<u32>> = vec![None; cells.len()];
    loop {
        while let Some(ci) = cell_queue.pop() {
            let c = &cells[ci];
            let r = c
                .inputs
                .iter()
                .filter(|x| x.index() < num_nets)
                .map(|x| rank[x.index()])
                .max()
                .unwrap_or(0);
            in_rank[ci] = Some(r);
            let out_rank = r + u32::from(matches!(c.kind, CellKind::Droc { .. }));
            for &o in c.outputs.iter() {
                if o.index() < num_nets {
                    rank[o.index()] = out_rank;
                    net_queue.push(o.index());
                }
            }
        }
        let Some(ni) = net_queue.pop() else { break };
        for &ci in &listeners[ni] {
            let ci = ci as usize;
            if pending[ci] > 0 {
                pending[ci] -= 1;
                if pending[ci] == 0 {
                    cell_queue.push(ci);
                }
            }
        }
    }

    let trigger: HashSet<usize> = n.trigger_clocked().iter().map(|c| c.index()).collect();
    for &ci in &trigger {
        if ci >= cells.len() {
            continue;
        }
        if cells[ci].kind != (CellKind::Droc { preload: true }) {
            out.push(Diag::new(
                Code::X006,
                Site::Cell(ci),
                format!(
                    "cell {ci} ({}) is trigger-clocked but only preloaded DROCs \
                     take the trigger net (§3.2)",
                    cells[ci].kind
                ),
            ));
        }
    }
    for (ci, c) in cells.iter().enumerate() {
        if let CellKind::Droc { preload } = c.kind {
            if preload && !trigger.contains(&ci) {
                out.push(Diag::new(
                    Code::X006,
                    Site::Cell(ci),
                    format!(
                        "cell {ci} (DROC_P) is preloaded but never trigger-clocked — \
                         its initial token would never be emitted"
                    ),
                ));
            }
            if let Some(r) = in_rank[ci] {
                let boundary = r + 1;
                let want_preload = boundary % 2 == 1;
                if preload != want_preload {
                    out.push(Diag::new(
                        Code::X006,
                        Site::Cell(ci),
                        format!(
                            "cell {ci} ({}) sits on rank boundary {boundary}, which must \
                             {} preloaded (§3.2 alternating initialization)",
                            c.kind,
                            if want_preload { "be" } else { "not be" }
                        ),
                    ));
                }
            }
        }
        // Rank-monotone paths: an LA/FA joining rails from different ranks
        // merges pulses from different waves of the computation.
        if c.kind.is_xsfq_logic() && in_rank[ci].is_some() {
            let ranks: Vec<u32> = c
                .inputs
                .iter()
                .filter(|x| x.index() < num_nets)
                .map(|x| rank[x.index()])
                .collect();
            if let (Some(&lo), Some(&hi)) = (ranks.iter().min(), ranks.iter().max()) {
                if lo != hi {
                    out.push(Diag::new(
                        Code::X006,
                        Site::Cell(ci),
                        format!(
                            "cell {ci} ({}) joins rails from ranks {lo} and {hi}",
                            c.kind
                        ),
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// X007 — style mixing
// ---------------------------------------------------------------------------

fn is_rsfq_logic(kind: CellKind) -> bool {
    kind.is_rsfq() && !matches!(kind, CellKind::RsfqSplitter | CellKind::RsfqMerger)
}

fn is_xsfq_core(kind: CellKind) -> bool {
    matches!(
        kind,
        CellKind::La | CellKind::Fa | CellKind::Droc { .. } | CellKind::DcToSfq
    )
}

fn check_style(n: &Netlist, out: &mut Vec<Diag>) {
    let cells = n.cells();
    let rsfq = cells.iter().filter(|c| is_rsfq_logic(c.kind)).count();
    let xsfq = cells.iter().filter(|c| is_xsfq_core(c.kind)).count();
    if rsfq > 0 && xsfq > 0 {
        out.push(Diag::new(
            Code::X007,
            Site::Design,
            format!(
                "netlist mixes {xsfq} clock-free xSFQ cells with {rsfq} clocked RSFQ \
                 cells — the families run different timing disciplines"
            ),
        ));
    }
    // Splitter boundaries: a splitter's flavor must match the pulse train
    // it splits, i.e. the family of its driver cell.
    for (ci, c) in cells.iter().enumerate() {
        let flavor_mismatch = match c.kind {
            CellKind::Splitter => driver_is_rsfq(n, c.inputs.first().copied()) == Some(true),
            CellKind::RsfqSplitter => driver_is_rsfq(n, c.inputs.first().copied()) == Some(false),
            _ => continue,
        };
        if flavor_mismatch {
            out.push(Diag::new(
                Code::X007,
                Site::Cell(ci),
                format!(
                    "cell {ci} ({}) splits a pulse train from the other logic family",
                    c.kind
                ),
            ));
        }
    }
}

/// Whether the driver of `net` is an RSFQ-family cell; `None` when the net
/// is missing, input-driven, or the driver index is corrupt.
fn driver_is_rsfq(n: &Netlist, net: Option<NetId>) -> Option<bool> {
    let net = net?;
    if net.index() >= n.num_nets() {
        return None;
    }
    match n.driver(net) {
        Driver::Input(_) => None,
        Driver::Cell { cell, .. } => {
            let cells = n.cells();
            cells.get(cell.index()).map(|c| c.kind.is_rsfq())
        }
    }
}

// ---------------------------------------------------------------------------
// X008 — port-name collisions
// ---------------------------------------------------------------------------

fn check_ports(n: &Netlist, out: &mut Vec<Diag>) {
    let mut inputs: HashSet<&str> = HashSet::new();
    for p in n.inputs() {
        if !inputs.insert(&p.name) {
            out.push(Diag::new(
                Code::X008,
                Site::Port(p.name.clone()),
                format!("duplicate input port name `{}`", p.name),
            ));
        }
    }
    let mut outputs: HashSet<&str> = HashSet::new();
    for p in n.outputs() {
        if !outputs.insert(&p.name) {
            out.push(Diag::new(
                Code::X008,
                Site::Port(p.name.clone()),
                format!("duplicate output port name `{}`", p.name),
            ));
        } else if inputs.contains(p.name.as_str()) {
            out.push(Diag::new(
                Code::X008,
                Site::Port(p.name.clone()),
                format!("output port `{}` shadows an input port", p.name),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// W101 — dead cells
// ---------------------------------------------------------------------------

fn check_dead_cells(n: &Netlist, out: &mut Vec<Diag>) {
    let counts = sink_counts(n);
    for (ci, c) in n.cells().iter().enumerate() {
        if c.outputs.is_empty() {
            continue; // arity problem — X002's finding, not a dead cell
        }
        let dead = c
            .outputs
            .iter()
            .all(|o| counts.get(o.index()).is_none_or(|&f| f == 0));
        if dead {
            out.push(Diag::new(
                Code::W101,
                Site::Cell(ci),
                format!("cell {ci} ({}) drives nothing — dead hardware", c.kind),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// W102 — splitter-tree balance
// ---------------------------------------------------------------------------

fn is_splitter(kind: CellKind) -> bool {
    matches!(kind, CellKind::Splitter | CellKind::RsfqSplitter)
}

/// For every splitter tree (rooted at a splitter whose driver is not a
/// splitter), compare the depths at which leaves hang. `insert_splitters`
/// builds balanced trees; a depth spread beyond one means someone chained
/// splitters and lengthened the critical path for no reason (§4.2.1).
fn check_splitter_balance(n: &Netlist, out: &mut Vec<Diag>) {
    let num_nets = n.num_nets();
    let cells = n.cells();
    // net → consuming splitter cells; port/leaf consumption via counts.
    let mut split_sinks: Vec<Vec<u32>> = vec![Vec::new(); num_nets];
    let mut leaf_sinks = vec![0u32; num_nets];
    for (ci, c) in cells.iter().enumerate() {
        for &x in c.inputs.iter() {
            if x.index() >= num_nets {
                continue;
            }
            if is_splitter(c.kind) {
                split_sinks[x.index()].push(ci as u32);
            } else {
                leaf_sinks[x.index()] += 1;
            }
        }
    }
    for p in n.outputs() {
        if let Some(c) = leaf_sinks.get_mut(p.net.index()) {
            *c += 1;
        }
    }
    for (ci, c) in cells.iter().enumerate() {
        if !is_splitter(c.kind) || driver_is_splitter(n, c.inputs.first().copied()) {
            continue;
        }
        // `ci` roots a tree: walk it, collecting leaf depths.
        let (mut min_leaf, mut max_leaf) = (usize::MAX, 0usize);
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(usize, usize)> = vec![(ci, 1)];
        while let Some((si, depth)) = stack.pop() {
            if !visited.insert(si) {
                continue; // corrupt: splitter cycle — X003 reports it
            }
            for &o in cells[si].outputs.iter() {
                let Some(&leaves) = leaf_sinks.get(o.index()) else {
                    continue;
                };
                let children = &split_sinks[o.index()];
                if leaves > 0 || children.is_empty() {
                    // A non-splitter sink (or a dangling rail) hangs here.
                    min_leaf = min_leaf.min(depth);
                    max_leaf = max_leaf.max(depth);
                }
                for &child in children {
                    stack.push((child as usize, depth + 1));
                }
            }
        }
        if min_leaf != usize::MAX && max_leaf - min_leaf > 1 {
            out.push(Diag::new(
                Code::W102,
                Site::Cell(ci),
                format!(
                    "splitter tree rooted at cell {ci} has leaves at depths \
                     {min_leaf}–{max_leaf} — a balanced tree would be shallower"
                ),
            ));
        }
    }
}

fn driver_is_splitter(n: &Netlist, net: Option<NetId>) -> bool {
    let Some(net) = net else { return false };
    if net.index() >= n.num_nets() {
        return false;
    }
    match n.driver(net) {
        Driver::Input(_) => false,
        Driver::Cell { cell, .. } => n
            .cells()
            .get(cell.index())
            .is_some_and(|c| is_splitter(c.kind)),
    }
}
