//! # xsfq-lint — static design-rule checking for clock-free superconducting circuits
//!
//! The paper's resource-efficiency argument (§2, §4.2) rests on structural
//! discipline: dual-rail signals with both polarities materialized,
//! alternating-polarity LA/FA logic, DROC storage placed on rank
//! boundaries, and physical nets fanned out through splitter trees so every
//! pulse source drives exactly one sink. This crate turns those rules —
//! previously enforced by scattered `panic!`s and `debug_assert`s — into a
//! diagnostic engine: every check emits a [`Diag`] with a stable code, a
//! severity, a message and a [`Site`], renderable as text or JSON.
//!
//! Entry points: [`lint_netlist`] (technology netlists), [`lint_aig`]
//! (AND-inverter graphs, wrapping [`xsfq_aig::Aig::validate`]),
//! [`lint_cut_arena`] (the CSR cut storage of the rewrite passes),
//! [`lint_timing`] (residual arrival-skew audit of balanced netlists, on
//! the `xsfq_timing` engine), and the `xsfq-lint` CLI binary (BLIF/AIGER
//! in, diagnostics out, nonzero exit on errors). The flow runs these via
//! the `CheckLevel` knob on `xsfq_core::FlowOptions`; the `xsfq-serve`
//! daemon lints submissions at admission time.
//!
//! ## Lint-code catalog
//!
//! Errors (`X0xx`) describe structures the flow cannot implement in
//! hardware; warnings (`W1xx`) describe legal but wasteful structures.
//!
//! | code | meaning | motivation | example fix |
//! |---|---|---|---|
//! | `X001` | unconnected cell input pin (deferred wiring never completed) or output port on a nonexistent net | every xSFQ input must see a pulse or its absence — a floating C-element input deadlocks the cell (§2.1) | call `Netlist::connect_input` for every pin opened by `add_cell_deferred` |
//! | `X002` | cell pin count differs from `input_pins`/`output_pins` for its kind | the cell library (Table 2) defines fixed-arity cells; a 1-input LA is not a cell that exists | construct cells through `Netlist::add_cell`, which enforces arity |
//! | `X003` | combinational cycle through clock-free cells | a pulse loop with no storage element re-triggers forever; only DROC/DFF boundaries may close cycles (§2.2) | break the loop with a DROC pair (sequential mapping does this for latches) |
//! | `X004` | net with more than one sink in a physicalized netlist | SFQ pulses cannot fan out passively — every multi-sink net needs a splitter tree (Equation 1, §4.2) | run `Netlist::insert_splitters` after mapping |
//! | `X005` | dual-rail output rails unpaired (a `_p` port without its `_n` twin) | the alternating protocol encodes one bit as a pulse on exactly one of two rails; a missing rail makes the value unobservable (§2.1) | emit both polarities for every dual-rail output (`PolarityMode::DualRail` mapping does) |
//! | `X006` | rank legality: trigger-clocked cell that is not a preloaded DROC, preloaded DROC never triggered, DROC preload flag disagreeing with its rank parity, or an LA/FA joining rails from different ranks | §3.2's preloading scheme initializes odd rank boundaries via the trigger net; mixing ranks at a gate merges pulses from different waves | place storage through the rank-aware mapper (`MapOptions::rank_levels`) |
//! | `X007` | RSFQ/xSFQ style mixing: both families' logic in one netlist, or a splitter whose flavor disagrees with its driver | the families run different timing disciplines (clocked vs clock-free, §4.2); a splitter must match the family of the pulse train it splits | map the whole design with one library; let `insert_splitters` pick splitter flavors |
//! | `X008` | port-name collision: duplicate input names, duplicate output names, or an output shadowing an input | dual-rail emission appends `_p`/`_n` to port names, so colliding base names produce colliding Verilog ports | rename the offending ports at the source |
//! | `X009` | AIG structural invariant violation (see [`xsfq_aig::Aig::validate`]) | every pass assumes topological fanin order and strash canonicity; a violation turns later passes into silent miscompiles | rebuild the graph through `Aig::and` instead of mutating nodes |
//! | `X010` | cut-arena CSR integrity violation (see `CutArena::check_integrity`) | mapping reads cut lists by node range; a corrupt range reads another node's cuts | re-enumerate cuts; report the pass that corrupted the arena |
//! | `X011` | residual dual-rail arrival skew beyond tolerance at a join cell or output rail pair (post-balancing timing check, [`lint_timing`]) | alternating logic only works when paired pulse arrivals stay aligned (§2.1); skew past the tolerance lets a pulse race its partner wave at a C-element | run the flow's Timing stage with full balancing (`xsfq_timing::balance_netlist`), or widen `TimingOptions::tolerance_ps` |
//! | `W101` | dead cell: no output net reaches a sink | dead hardware still costs JJs and bias current | sweep dead logic before mapping (`Aig::compact`) |
//! | `W102` | unbalanced splitter tree (leaf depths differ by more than one) | splitter depth adds to the critical path (§4.2.1); a chain where a tree fits wastes clock period | rebuild the tree with `Netlist::insert_splitters` |

#![warn(missing_docs)]

mod diag;
mod drc;
mod timing;

pub use diag::{has_errors, render_json, render_text, CheckLevel, Code, Diag, Severity, Site};
pub use drc::{lint_aig, lint_cut_arena, lint_netlist, NetlistProfile};
pub use timing::lint_timing;
