//! The X011 timing check: residual dual-rail arrival skew.
//!
//! Runs the `xsfq_timing` engine sequentially (no thread pool — safe from
//! inside the flow's parallel sections, like every other check in this
//! crate) and reports every xSFQ join cell and dual-rail output pair whose
//! latest-arrival skew exceeds the given allowance. Intended for netlists
//! the balancer already processed: on those, a finding means the balancing
//! promise is broken, which is why the flow runs this at `Stage` level
//! only after `BalanceMode::Full`.

use xsfq_netlist::Netlist;
use xsfq_timing::{BalanceMode, TimingAnalysis, TimingOptions};

use crate::diag::{Code, Diag, Site};

/// Audit residual arrival skew: one `X011` per join cell or `_p`/`_n`
/// output pair with skew beyond `allowed_skew_ps`.
///
/// Clocked RSFQ joins are exempt (their inputs align on the clock, not on
/// JTL padding), as are joins with unresolved arrivals (dangling pins and
/// combinational cycles — those are X001/X003 findings, not timing ones).
/// Like every check in this crate the function is total: it never panics,
/// whatever the netlist looks like.
pub fn lint_timing(netlist: &Netlist, allowed_skew_ps: f64) -> Vec<Diag> {
    let opts = TimingOptions {
        balance: BalanceMode::Off,
        tolerance_ps: Some(allowed_skew_ps),
    };
    let analysis = TimingAnalysis::analyze(netlist, &opts);
    // Float guard: arrivals sum delays in slightly different orders on the
    // two legs of a join, so exact-tolerance skew must not flag.
    let limit = allowed_skew_ps + 1e-9;
    let mut diags = Vec::new();
    for join in &analysis.joins {
        if join.kind.is_rsfq() || join.skew_ps <= limit {
            continue;
        }
        diags.push(Diag::new(
            Code::X011,
            Site::Cell(join.cell),
            format!(
                "arrival skew {:.2} ps at {} exceeds the {:.2} ps tolerance \
                 (inputs arrive at {:.2} / {:.2} ps)",
                join.skew_ps, join.kind, allowed_skew_ps, join.arrival_ps[0], join.arrival_ps[1],
            ),
        ));
    }
    for pair in &analysis.rail_pairs {
        if pair.skew_ps <= limit {
            continue;
        }
        diags.push(Diag::new(
            Code::X011,
            Site::Port(format!("{}_p", pair.base)),
            format!(
                "dual-rail output `{0}_p`/`{0}_n` arrivals are {1:.2} ps apart, \
                 beyond the {2:.2} ps tolerance ({3:.2} vs {4:.2} ps)",
                pair.base, pair.skew_ps, allowed_skew_ps, pair.arrival_ps[0], pair.arrival_ps[1],
            ),
        ));
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsfq_cells::{CellKind, CellLibrary};
    use xsfq_timing::balance_netlist;

    #[test]
    fn skewed_join_flags_and_balancing_clears_it() {
        let mut n = Netlist::new("skew", CellLibrary::xsfq_abutted());
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let la1 = n.add_cell(CellKind::La, &[a, b])[0];
        let la2 = n.add_cell(CellKind::La, &[la1, c])[0];
        n.add_output("y", la2);
        let tol = n.library().delay(CellKind::Jtl);
        let diags = lint_timing(&n, tol);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::X011);
        assert_eq!(diags[0].site, Site::Cell(1));
        let balanced = balance_netlist(&n, &TimingOptions::default(), None)
            .netlist
            .expect("the 7.2 ps skew gets a pad");
        assert!(lint_timing(&balanced, tol).is_empty());
    }
}
