//! `xsfq-lint` — lint BLIF/AIGER designs from the command line.
//!
//! ```text
//! xsfq-lint [--json] FILE...
//! ```
//!
//! Each file is format-sniffed (BLIF, ASCII AIGER or binary AIGER — the
//! same `read_netlist_auto` the daemon uses), validated, and its
//! diagnostics printed one per line (or as one JSON object per file with
//! `--json`). Exit status: 0 when every file is clean or carries only
//! warnings, 1 when any file has an error-severity diagnostic, 2 on I/O or
//! parse failure.

use std::process::ExitCode;

use xsfq_aig::io::read_netlist_auto;
use xsfq_lint::{has_errors, lint_aig, render_json, render_text};

fn main() -> ExitCode {
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("usage: xsfq-lint [--json] FILE...");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with('-') => {
                eprintln!("xsfq-lint: unknown flag `{arg}` (try --help)");
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: xsfq-lint [--json] FILE...");
        return ExitCode::from(2);
    }

    let mut worst = ExitCode::SUCCESS;
    for file in &files {
        let bytes = match std::fs::read(file) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("xsfq-lint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        let aig = match read_netlist_auto(&bytes) {
            Ok(aig) => aig,
            Err(e) => {
                eprintln!("xsfq-lint: {file}: parse error: {e}");
                return ExitCode::from(2);
            }
        };
        let diags = lint_aig(&aig);
        if json {
            println!(
                "{{\"schema\":\"xsfq-lint/1\",\"file\":\"{}\",\"diags\":{}}}",
                file.replace('\\', "\\\\").replace('"', "\\\""),
                render_json(&diags)
            );
        } else if diags.is_empty() {
            println!("{file}: clean");
        } else {
            print!("{}", render_text(&diags));
        }
        if has_errors(&diags) {
            worst = ExitCode::from(1);
        }
    }
    worst
}
