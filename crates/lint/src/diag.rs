//! The diagnostic vocabulary: codes, severities, sites, and rendering.

use std::fmt;

/// How bad a finding is.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Severity {
    /// The structure cannot be implemented in hardware; flows must fail.
    Error,
    /// Legal but wasteful or suspicious; flows may proceed.
    Warning,
}

impl Severity {
    /// Stable lowercase name (JSON field value).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Stable lint codes. `X0xx` are errors, `W1xx` are warnings; the full
/// catalog with motivations lives in the [crate docs](crate).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[allow(missing_docs)] // the variants are documented in the crate-level catalog
pub enum Code {
    X001,
    X002,
    X003,
    X004,
    X005,
    X006,
    X007,
    X008,
    X009,
    X010,
    X011,
    W101,
    W102,
}

impl Code {
    /// The code's stable string form (`"X001"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::X001 => "X001",
            Code::X002 => "X002",
            Code::X003 => "X003",
            Code::X004 => "X004",
            Code::X005 => "X005",
            Code::X006 => "X006",
            Code::X007 => "X007",
            Code::X008 => "X008",
            Code::X009 => "X009",
            Code::X010 => "X010",
            Code::X011 => "X011",
            Code::W101 => "W101",
            Code::W102 => "W102",
        }
    }

    /// Severity class implied by the code family.
    pub fn severity(self) -> Severity {
        match self {
            Code::W101 | Code::W102 => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Site {
    /// The design as a whole (cross-cutting findings).
    Design,
    /// A net, by index.
    Net(usize),
    /// A cell instance, by index.
    Cell(usize),
    /// A named port.
    Port(String),
    /// An AIG node, by index.
    Node(usize),
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Design => f.write_str("design"),
            Site::Net(i) => write!(f, "net {i}"),
            Site::Cell(i) => write!(f, "cell {i}"),
            Site::Port(name) => write!(f, "port `{name}`"),
            Site::Node(i) => write!(f, "node {i}"),
        }
    }
}

/// One finding: a stable code, its severity, a human-readable message and
/// the structure it points at.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diag {
    /// Stable lint code.
    pub code: Code,
    /// Severity (derived from the code family).
    pub severity: Severity,
    /// Human-readable description of this particular finding.
    pub message: String,
    /// The structure the finding anchors to.
    pub site: Site,
}

impl Diag {
    /// A diagnostic for `code` at `site`; severity follows the code.
    pub fn new(code: Code, site: Site, message: impl Into<String>) -> Diag {
        Diag {
            code,
            severity: code.severity(),
            message: message.into(),
            site,
        }
    }
}

impl fmt::Display for Diag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} (at {})",
            self.severity.name(),
            self.code,
            self.message,
            self.site
        )
    }
}

/// Whether any diagnostic in the slice is an error.
pub fn has_errors(diags: &[Diag]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render diagnostics one per line, in the [`Diag`] `Display` form.
pub fn render_text(diags: &[Diag]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Render diagnostics as a JSON array (schema `xsfq-lint-diags/1`
/// elements): `{"code", "severity", "message", "site": {"kind", ...}}`.
pub fn render_json(diags: &[Diag]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"site\":{}}}",
            d.code,
            d.severity.name(),
            json_escape(&d.message),
            site_json(&d.site)
        ));
    }
    out.push(']');
    out
}

fn site_json(site: &Site) -> String {
    match site {
        Site::Design => "{\"kind\":\"design\"}".into(),
        Site::Net(i) => format!("{{\"kind\":\"net\",\"index\":{i}}}"),
        Site::Cell(i) => format!("{{\"kind\":\"cell\",\"index\":{i}}}"),
        Site::Port(name) => format!("{{\"kind\":\"port\",\"name\":\"{}\"}}", json_escape(name)),
        Site::Node(i) => format!("{{\"kind\":\"node\",\"index\":{i}}}"),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// How much static checking the synthesis flow runs.
///
/// Lives here (not in `xsfq-core`) so the daemon, the flow and the CLI all
/// share one vocabulary without depending on the flow crate.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum CheckLevel {
    /// No checking — byte-for-byte the pre-lint flow, at zero cost.
    #[default]
    Off,
    /// Validate the AIG after the optimize stage and DRC both mapped
    /// netlists after the map stage. Costs on the order of one
    /// `NetlistStats` pass per stage.
    Stage,
    /// Everything `Stage` does, plus an AIG validation after every
    /// optimization pass and a cut-arena integrity audit after the script.
    /// Meant for debugging passes, not production.
    Paranoid,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_stable() {
        let diags = vec![
            Diag::new(Code::X001, Site::Cell(3), "input pin 1 is unconnected"),
            Diag::new(Code::W101, Site::Port("a\"b".into()), "dead"),
        ];
        assert_eq!(
            render_text(&diags),
            "error[X001]: input pin 1 is unconnected (at cell 3)\n\
             warning[W101]: dead (at port `a\"b`)\n"
        );
        let json = render_json(&diags);
        assert!(json.starts_with('['), "{json}");
        assert!(json.contains("\"code\":\"X001\""), "{json}");
        assert!(json.contains("\"kind\":\"cell\",\"index\":3"), "{json}");
        assert!(json.contains("a\\\"b"), "{json}");
        assert!(has_errors(&diags));
        assert!(!has_errors(&diags[1..]));
    }

    #[test]
    fn check_levels_are_ordered() {
        assert!(CheckLevel::Off < CheckLevel::Stage);
        assert!(CheckLevel::Stage < CheckLevel::Paranoid);
        assert_eq!(CheckLevel::default(), CheckLevel::Off);
    }
}
