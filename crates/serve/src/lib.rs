//! # xsfq-serve — a crash-tolerant synthesis daemon
//!
//! Long-running serving layer over the fault-isolated synthesis flow of
//! [`xsfq_core`]: accept BLIF/AIGER designs over TCP or a watched job
//! directory, synthesize them on a sharded executor, and return the mapped
//! netlist plus per-pass telemetry — or a structured error verdict — per
//! job. Std-only: no async runtime, no external crates.
//!
//! ## Wire protocol
//!
//! Byte stream of length-prefixed frames:
//!
//! ```text
//! frame   := u32_be length | u8 kind | payload           (length counts kind + payload)
//! ```
//!
//! Frame bodies are capped at [`protocol::MAX_FRAME`] (64 MiB); a peer
//! announcing more is disconnected before any allocation. Request kinds:
//!
//! | kind | name   | payload |
//! |------|--------|---------|
//! | 0x01 | SUBMIT | `u8 version(=1)`, `u8 fault_kind`, `u16_be fault_pass`, `str script`, `str name`, `u32_be n` + `n` netlist bytes |
//! | 0x02 | PING   | empty |
//! | 0x03 | STATS  | empty |
//!
//! where `str` is `u16_be length + UTF-8 bytes`. The netlist bytes may be
//! BLIF, ASCII AIGER, or binary AIGER — the server sniffs the format by
//! content ([`xsfq_aig::io::read_netlist_auto`]). An empty `script` means
//! the server's default; `fault_kind` is 0 except in chaos builds (1
//! panic, 2 stall, 3 guard-trip at pass `fault_pass` — non-chaos servers
//! reject nonzero values). Response kinds:
//!
//! | kind | name  | payload |
//! |------|-------|---------|
//! | 0x81 | OK    | `u8 cache_hit`, `u32_be n` + netlist (Verilog), `u32_be m` + report JSON (`xsfq-flow-report/1`) |
//! | 0x82 | ERR   | `str kind`, `u32_be n` + verdict JSON (`xsfq-serve-verdict/1`) |
//! | 0x83 | BUSY  | `u32_be retry_after_ms` |
//! | 0x84 | PONG  | empty |
//! | 0x85 | STATS | stats JSON (`xsfq-serve-stats/1`) |
//!
//! A connection is strictly request-response: one in-flight request per
//! connection, pipelining is not supported. Submit a design, block, read
//! the verdict. The `examples/serve_client.rs` walkthrough exercises the
//! whole catalogue with [`client::Client`].
//!
//! ## Operational guide
//!
//! **Admission and backpressure.** The daemon holds at most
//! `queue_capacity` waiting jobs. Beyond that, submissions are *shed*: the
//! client gets BUSY with a retry-after hint (milliseconds, scaled by queue
//! depth) and the daemon's memory stays bounded no matter the offered
//! load. Watched-directory jobs are never lost by shedding — the file
//! stays in the directory and is retried on the next poll.
//!
//! **Durability.** Every accepted job is journaled (`state_dir/journal.log`
//! plus a spool file with the full submission) *before* it is queued, and
//! marked done when it reaches a terminal state. A daemon killed at any
//! point — including `kill -9` mid-synthesis — restarts, replays the
//! journal, and requeues exactly the accepted-but-unfinished jobs
//! (at-least-once semantics). Recovered TCP jobs re-run for the result
//! cache and the journal's completion record (their clients are gone);
//! recovered directory jobs still write their result files.
//!
//! **Deadlines and retries.** Each job runs under `job_deadline`
//! (wall-clock, counted from job start) and the per-pass resource
//! `guards`. Transient failures — worker panics and guard trips — are
//! retried with exponential backoff (`retry_base × 2^attempt`) up to
//! `retry_limit` times before the client sees the final verdict;
//! deterministic failures (parse errors, verification failures,
//! deadlines) fail fast. Faults never cross job boundaries: a panicking
//! design returns a `panicked` verdict while the jobs around it are
//! unaffected (chaos-soak tested, bit-identical to solo runs).
//!
//! **Result cache.** Results are cached under the key *(canonical AIG
//! digest, script, guard fingerprint)*. The digest
//! ([`xsfq_aig::digest::canonical_digest`]) is renaming- and
//! node-order-independent, so the same circuit resubmitted from a
//! different tool's writer hits. A hit returns the exact bytes the
//! original run produced, flagged with `cache_hit = 1`. The cache is LRU
//! under `cache_budget` bytes; 0 disables it.
//!
//! **Static checking.** `check` sets the [`CheckLevel`] for admission and
//! every job. At the default `Stage`, a submission that parses but is
//! structurally ill-formed (duplicate ports, an output shadowing an input,
//! …) is *rejected at admission* — the client gets a `rejected` verdict
//! whose `diags` field carries the lint findings as an
//! `xsfq-lint-diags/1` array (stable codes like `X008`), and no shard
//! time is spent on it. The same level is applied inside the flow, so a
//! pass or mapper bug that produces an ill-formed intermediate surfaces
//! as a `flow` verdict naming the lint codes instead of corrupt output.
//! `Paranoid` additionally validates the AIG after every optimization
//! pass and audits the cut arena — for debugging passes, not production
//! (expect measurable per-job overhead). `Off` restores the unchecked
//! fast path; the verdict `diags` field is then always `[]`. The checking
//! level is part of the result-cache fingerprint, so flipping it never
//! serves stale bytes. Recovered jobs are re-linted at replay: a spool
//! that a stricter level now rejects reaches a terminal journal state
//! instead of replaying forever.
//!
//! **Timing and constraints.** Setting `ServeConfig::timing` (a
//! [`xsfq_timing::TimingOptions`]) runs the flow's post-Map Timing stage
//! on every job: a static arrival/slack analysis of the mapped physical
//! netlist and — under `BalanceMode::Full` or `Budget` — slack-matching
//! JTL insertion that aligns pulse arrivals at join cells and dual-rail
//! output pairs. The report JSON inside the OK frame then carries a
//! `timing` object (critical path, worst slack/skew, buffers inserted, JJ
//! delta); with timing unset the key is absent and every byte matches an
//! untimed daemon. The timing configuration is part of the result-cache
//! fingerprint, so retuning the balance mode or tolerance never replays a
//! netlist balanced under the old settings. For one-off analysis or SDC /
//! CSV artifact export outside the daemon, use the `xsfq-time` CLI on the
//! emitted netlist instead of re-synthesizing.
//!
//! **Drain.** On SIGTERM/SIGINT (the `xsfq-serve` binary) or
//! [`Server::shutdown`] (embedded), the daemon stops admitting — new
//! submissions get BUSY — finishes queued and in-flight jobs, and after
//! `drain_grace` cancels whatever is still running (those jobs journal as
//! failed with a `cancelled` verdict). The journal is flushed at every
//! step, so even a drain cut short by `kill -9` recovers cleanly.
//!
//! **Sizing.** `shards` worker shards each own a `threads_per_job`-thread
//! executor pool and a warm arena set reused across jobs. Designs under a
//! few hundred AND nodes run on the sequential path
//! ([`xsfq_exec::ThreadPool::scoped_budget`]) where fan-out overhead would
//! dominate. Throughput scales with `shards`; per-job latency with
//! `threads_per_job`. The `serve/` criterion group tracks designs/sec.
//!
//! ```no_run
//! use xsfq_serve::{Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig::new("/var/lib/xsfq-serve")).unwrap();
//! println!("listening on {}", server.local_addr());
//! // ... run until told otherwise ...
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod job;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
mod sync;

pub use client::{Client, ClientError};
pub use server::{ServeConfig, Server};
pub use xsfq_lint::CheckLevel;
