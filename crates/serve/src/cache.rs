//! Canonical-AIG result cache: synthesis as a content-addressed function.
//!
//! The cache key is `(canonical digest of the input AIG, script text,
//! guard fingerprint)` — everything the synthesis output is a function of.
//! The canonical digest ([`xsfq_aig::digest::canonical_digest`]) sees
//! through internal node numbering and signal naming, so a design
//! resubmitted from a different tool's BLIF writer still hits. The cached
//! value is the exact encoded OK-response body (netlist + report bytes),
//! so a hit is byte-identical to the miss that populated it — the property
//! the smoke test pins.
//!
//! Eviction is LRU under a byte budget: each entry charges its value bytes
//! plus a small fixed overhead, and inserts evict least-recently-used
//! entries until the total fits. A budget of zero disables caching
//! entirely (every `get` misses, every `put` is dropped).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xsfq_aig::digest::Digest;

/// Everything the synthesis result is a function of.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Canonical structural digest of the parsed input.
    pub digest: Digest,
    /// Pass script text (post-defaulting, so `""` never appears).
    pub script: String,
    /// Fingerprint of the server's guard/flow configuration.
    pub guards: String,
}

/// Fixed per-entry overhead charged against the byte budget.
const ENTRY_OVERHEAD: usize = 128;

struct Entry {
    bytes: Arc<Vec<u8>>,
    stamp: u64,
}

struct State {
    map: HashMap<CacheKey, Entry>,
    clock: u64,
    used: usize,
}

/// The LRU result cache. See the [module docs](self).
pub struct ResultCache {
    state: Mutex<State>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `budget` value bytes; zero disables it.
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            state: Mutex::new(State {
                map: HashMap::new(),
                clock: 0,
                used: 0,
            }),
            budget,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up a result, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        if self.budget == 0 {
            // Ordering: Relaxed — hit/miss counters are telemetry only;
            // readers tolerate momentary skew and no data rides on them.
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut s = self.state.lock().unwrap();
        s.clock += 1;
        let stamp = s.clock;
        match s.map.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                // Ordering: Relaxed — telemetry counter, as above.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&e.bytes))
            }
            None => {
                // Ordering: Relaxed — telemetry counter, as above.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a result, evicting LRU entries to fit the budget. Values
    /// larger than the whole budget are not cached.
    pub fn put(&self, key: CacheKey, bytes: Vec<u8>) {
        let cost = bytes.len() + ENTRY_OVERHEAD;
        if self.budget == 0 || cost > self.budget {
            return;
        }
        let mut s = self.state.lock().unwrap();
        if let Some(old) = s.map.remove(&key) {
            s.used -= old.bytes.len() + ENTRY_OVERHEAD;
        }
        while s.used + cost > self.budget {
            // O(n) LRU scan: entry counts are small (netlists are large
            // relative to any sane budget), so a linked list isn't worth
            // its unsafe code here.
            let Some(lru) = s
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let e = s.map.remove(&lru).unwrap();
            s.used -= e.bytes.len() + ENTRY_OVERHEAD;
        }
        s.clock += 1;
        let stamp = s.clock;
        s.used += cost;
        s.map.insert(
            key,
            Entry {
                bytes: Arc::new(bytes),
                stamp,
            },
        );
    }

    /// `(hits, misses, entries, used_bytes)` counters for the stats frame.
    pub fn stats(&self) -> (u64, u64, usize, usize) {
        let s = self.state.lock().unwrap();
        (
            // Ordering: Relaxed — telemetry snapshot; a count racing in
            // from a concurrent lookup may or may not be included, and
            // either answer is a correct stats frame.
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            s.map.len(),
            s.used,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tag: u8, script: &str) -> CacheKey {
        CacheKey {
            digest: Digest([tag; 16]),
            script: script.into(),
            guards: "g".into(),
        }
    }

    #[test]
    fn hit_returns_the_exact_bytes() {
        let c = ResultCache::new(1 << 20);
        assert!(c.get(&key(1, "fast")).is_none());
        c.put(key(1, "fast"), b"payload".to_vec());
        assert_eq!(c.get(&key(1, "fast")).unwrap().as_slice(), b"payload");
        // Same design, different script: a distinct result.
        assert!(c.get(&key(1, "high")).is_none());
        assert_eq!(c.stats().0, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget() {
        let budget = 3 * (100 + ENTRY_OVERHEAD);
        let c = ResultCache::new(budget);
        for tag in 0..3 {
            c.put(key(tag, "s"), vec![tag; 100]);
        }
        // Touch 0 so 1 becomes the LRU, then insert a fourth entry.
        assert!(c.get(&key(0, "s")).is_some());
        c.put(key(3, "s"), vec![3; 100]);
        assert!(c.get(&key(1, "s")).is_none(), "LRU entry evicted");
        assert!(c.get(&key(0, "s")).is_some());
        assert!(c.get(&key(3, "s")).is_some());
        let (_, _, entries, used) = c.stats();
        assert_eq!(entries, 3);
        assert!(used <= budget);
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = ResultCache::new(0);
        c.put(key(1, "s"), b"x".to_vec());
        assert!(c.get(&key(1, "s")).is_none());
        assert_eq!(c.stats().2, 0);
    }
}
