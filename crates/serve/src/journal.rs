//! Append-only job journal: crash recovery as a replay problem.
//!
//! Every accepted job is made durable *before* it is queued: its full
//! submit payload is spooled to `state_dir/spool/<id>.job` (the wire
//! encoding, reused verbatim) and an `S <id> <spool-file>` line is
//! appended — and flushed — to `state_dir/journal.log`. Completion (in
//! any terminal state) appends `D <id> <status>`. A daemon killed at any
//! point therefore restarts into one of three cases per job, all safe:
//!
//! * no `S` line — the client never got an acceptance; nothing to do;
//! * `S` without `D` — accepted but not finished: the spool file replays
//!   the job through the normal path (at-least-once semantics);
//! * `S` and `D` — finished; the spool file is deleted at compaction.
//!
//! The journal is plain text, one record per line, and replay tolerates a
//! torn final line (the crash may have landed mid-append). On open, the
//! journal is compacted: completed jobs' records and spool files are
//! dropped, pending jobs are re-spooled into a fresh log, and the id
//! counter resumes past the highest id ever issued.

use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::protocol::SubmitRequest;

/// A pending job reconstructed from the journal at startup.
#[derive(Debug)]
pub struct RecoveredJob {
    /// The id the job had in the previous incarnation (kept stable so the
    /// journal's `S` record still matches).
    pub id: u64,
    /// The replayed submission.
    pub request: SubmitRequest,
    /// Result base path for job-directory submissions (`dir:` source tag),
    /// `None` for TCP jobs whose client is gone.
    pub dir_base: Option<PathBuf>,
}

/// The append-only journal. All appends are flushed before returning, so
/// an acceptance acknowledged to a client is always recoverable.
pub struct Journal {
    log: Mutex<BufWriter<File>>,
    dir: PathBuf,
    next_id: AtomicU64,
}

fn spool_dir(dir: &Path) -> PathBuf {
    dir.join("spool")
}

fn log_path(dir: &Path) -> PathBuf {
    dir.join("journal.log")
}

/// Spool file body: a one-line source tag (`tcp` or `dir:<base>`), a
/// newline, then the wire-encoded submit payload.
fn encode_spool(request: &SubmitRequest, dir_base: Option<&Path>) -> Vec<u8> {
    let tag = match dir_base {
        Some(base) => format!("dir:{}", base.display()),
        None => "tcp".to_string(),
    };
    let mut out = Vec::new();
    out.extend_from_slice(tag.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&request.encode());
    out
}

fn decode_spool(bytes: &[u8]) -> Option<(SubmitRequest, Option<PathBuf>)> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let tag = std::str::from_utf8(&bytes[..nl]).ok()?;
    let dir_base = match tag {
        "tcp" => None,
        t => Some(PathBuf::from(t.strip_prefix("dir:")?)),
    };
    let request = SubmitRequest::decode(&bytes[nl + 1..]).ok()?;
    Some((request, dir_base))
}

impl Journal {
    /// Open (or create) the journal under `state_dir`, replay it, compact
    /// it, and return the jobs that were accepted but never finished.
    pub fn open(state_dir: &Path) -> io::Result<(Journal, Vec<RecoveredJob>)> {
        fs::create_dir_all(spool_dir(state_dir))?;
        let mut max_id = 0u64;
        let mut pending: Vec<(u64, String)> = Vec::new();
        if let Ok(text) = fs::read_to_string(log_path(state_dir)) {
            let complete_lines = match text.rfind('\n') {
                Some(n) => &text[..n],
                // No terminator at all: the only line may be torn.
                None => "",
            };
            for line in complete_lines.lines() {
                let mut parts = line.split_whitespace();
                match (parts.next(), parts.next(), parts.next()) {
                    (Some("S"), Some(id), Some(spool)) => {
                        if let Ok(id) = id.parse::<u64>() {
                            max_id = max_id.max(id);
                            pending.push((id, spool.to_string()));
                        }
                    }
                    (Some("D"), Some(id), _) => {
                        if let Ok(id) = id.parse::<u64>() {
                            max_id = max_id.max(id);
                            pending.retain(|(p, _)| *p != id);
                        }
                    }
                    // Torn or foreign line: skip, never fail recovery.
                    _ => {}
                }
            }
        }

        // Reconstruct pending jobs from their spool files; a spool file
        // lost with the crash loses that job (it was never run).
        let mut recovered = Vec::new();
        let mut live_spools = Vec::new();
        for (id, spool) in pending {
            let path = spool_dir(state_dir).join(&spool);
            if let Ok(bytes) = fs::read(&path) {
                if let Some((request, dir_base)) = decode_spool(&bytes) {
                    recovered.push(RecoveredJob {
                        id,
                        request,
                        dir_base,
                    });
                    live_spools.push((id, spool));
                }
            }
        }

        // Compact: fresh log holding only the still-pending S records,
        // then drop every spool file the new log does not reference.
        let tmp = state_dir.join("journal.log.tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            for (id, spool) in &live_spools {
                writeln!(w, "S {id} {spool}")?;
            }
            w.flush()?;
            w.get_ref().sync_all()?;
        }
        fs::rename(&tmp, log_path(state_dir))?;
        if let Ok(entries) = fs::read_dir(spool_dir(state_dir)) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !live_spools.iter().any(|(_, s)| *s == name) {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }

        let log = OpenOptions::new().append(true).open(log_path(state_dir))?;
        Ok((
            Journal {
                log: Mutex::new(BufWriter::new(log)),
                dir: state_dir.to_path_buf(),
                next_id: AtomicU64::new(max_id + 1),
            },
            recovered,
        ))
    }

    /// Allocate the next job id.
    pub fn next_id(&self) -> u64 {
        // Ordering: Relaxed — the RMW's atomicity alone guarantees unique
        // ids; an id only becomes meaningful through the journal append
        // that follows, whose lock orders it against every observer.
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Make an accepted job durable: spool its payload, append + flush the
    /// `S` record. Must complete before the job is queued.
    pub fn record_submit(
        &self,
        id: u64,
        request: &SubmitRequest,
        dir_base: Option<&Path>,
    ) -> io::Result<()> {
        let spool_name = format!("{id}.job");
        let spool_path = spool_dir(&self.dir).join(&spool_name);
        // The spool payload must be durable *before* the fsynced `S` record
        // is: otherwise a crash can surface an `S` line whose spool bytes
        // were lost, and recovery would silently drop the job (fatal for
        // watched-dir jobs, whose source file is already deleted).
        {
            let mut f = File::create(&spool_path)?;
            f.write_all(&encode_spool(request, dir_base))?;
            f.sync_all()?;
        }
        // Directory entry too — a synced file can still vanish if its
        // directory was never flushed. Best-effort: not every platform
        // lets a directory be opened and fsynced.
        if let Ok(d) = File::open(spool_dir(&self.dir)) {
            let _ = d.sync_all();
        }
        let mut log = self.log.lock().unwrap();
        writeln!(log, "S {id} {spool_name}")?;
        log.flush()?;
        log.get_ref().sync_all()
    }

    /// Record a terminal state (`ok`, `err`, `shed`, `cancelled`) and drop
    /// the spool file.
    pub fn record_done(&self, id: u64, status: &str) -> io::Result<()> {
        {
            let mut log = self.log.lock().unwrap();
            writeln!(log, "D {id} {status}")?;
            log.flush()?;
            log.get_ref().sync_all()?;
        }
        let _ = fs::remove_file(spool_dir(&self.dir).join(format!("{id}.job")));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(name: &str) -> SubmitRequest {
        SubmitRequest {
            script: "fast".into(),
            name: name.into(),
            data: format!("netlist of {name}").into_bytes(),
            fault: None,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("xsfq-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn recovers_exactly_the_incomplete_jobs() {
        let dir = tmpdir("basic");
        {
            let (j, recovered) = Journal::open(&dir).unwrap();
            assert!(recovered.is_empty());
            let a = j.next_id();
            let b = j.next_id();
            let c = j.next_id();
            j.record_submit(a, &req("done"), None).unwrap();
            j.record_submit(b, &req("pending-tcp"), None).unwrap();
            j.record_submit(c, &req("pending-dir"), Some(Path::new("/tmp/out/x")))
                .unwrap();
            j.record_done(a, "ok").unwrap();
            // Journal dropped here as if the daemon was killed.
        }
        let (j2, recovered) = Journal::open(&dir).unwrap();
        let mut names: Vec<&str> = recovered.iter().map(|r| r.request.name.as_str()).collect();
        names.sort_unstable();
        assert_eq!(names, ["pending-dir", "pending-tcp"]);
        let dir_job = recovered
            .iter()
            .find(|r| r.request.name == "pending-dir")
            .unwrap();
        assert_eq!(dir_job.dir_base.as_deref(), Some(Path::new("/tmp/out/x")));
        // Ids never repeat across incarnations.
        let max_recovered = recovered.iter().map(|r| r.id).max().unwrap();
        assert!(j2.next_id() > max_recovered);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerates_a_torn_tail_line() {
        let dir = tmpdir("torn");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            let a = j.next_id();
            j.record_submit(a, &req("kept"), None).unwrap();
        }
        // Simulate a crash mid-append: garbage with no newline.
        let mut f = OpenOptions::new()
            .append(true)
            .open(log_path(&dir))
            .unwrap();
        f.write_all(b"D 99").unwrap(); // torn — no trailing newline
        drop(f);
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].request.name, "kept");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_removes_finished_spool_files() {
        let dir = tmpdir("compact");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            let a = j.next_id();
            j.record_submit(a, &req("done"), None).unwrap();
            j.record_done(a, "ok").unwrap();
            let b = j.next_id();
            j.record_submit(b, &req("live"), None).unwrap();
        }
        let (_, recovered) = Journal::open(&dir).unwrap();
        assert_eq!(recovered.len(), 1);
        let spools: Vec<_> = fs::read_dir(spool_dir(&dir)).unwrap().flatten().collect();
        assert_eq!(spools.len(), 1, "only the live job's spool survives");
        let _ = fs::remove_dir_all(&dir);
    }
}
